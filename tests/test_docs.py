"""Docs-consistency guarantees, enforced by the tier-1 suite.

Mirrors ``tools/check_docs.py`` (which CI also runs as a standalone step):
every ``src/repro/*`` package must appear in ``docs/ARCHITECTURE.md`` and
every python snippet in the README / docs must parse.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_all_packages_documented():
    assert check_docs.check_architecture_coverage() == []


def test_known_packages_discovered():
    packages = check_docs.repro_packages()
    assert "fleet" in packages
    assert "core" in packages
    assert "control" in packages
    assert "events" in packages
    assert len(packages) >= 12


def test_required_docs_exist():
    assert check_docs.check_required_docs() == []


def test_control_modules_documented():
    assert check_docs.check_control_coverage() == []
    modules = check_docs.control_modules()
    assert {"loop", "policies", "shedding", "uplink", "migration", "trace"} <= set(modules)


def test_accuracy_doc_required_and_names_its_modules():
    assert "ACCURACY.md" in check_docs.REQUIRED_DOCS
    assert check_docs.check_accuracy_coverage() == []
    assert set(check_docs.ACCURACY_MODULES) == {
        "repro.fleet.accuracy",
        "repro.control.trace",
        "repro.control.value",
    }


def test_obs_modules_documented():
    assert "OBSERVABILITY.md" in check_docs.REQUIRED_DOCS
    assert check_docs.check_obs_coverage() == []
    modules = check_docs.obs_modules()
    assert {"trace", "timeline", "slo", "profile", "alerts", "incident"} <= set(modules)
    assert set(check_docs.OBS_REQUIRED_MODULES) == {
        "repro.obs.alerts",
        "repro.obs.incident",
    }


def test_obs_required_modules_pinned(tmp_path):
    """The explicit pin catches a doc that names every auto-discovered module
    except the explainability layer (e.g. after an obs-package reshuffle)."""
    doc = tmp_path / "OBSERVABILITY.md"
    doc.write_text(
        "\n".join(f"repro.obs.{name}" for name in check_docs.obs_modules() if name != "alerts")
        + "\nrepro.obs.incident\n",
        encoding="utf-8",
    )
    problems = check_docs.check_obs_coverage(doc)
    assert any("repro.obs.alerts" in p for p in problems)
    # ... but no duplicate complaint from the two checks overlapping.
    assert sum("repro.obs.alerts" in p for p in problems) == 1


def test_hierarchy_modules_documented():
    assert check_docs.check_hierarchy_coverage() == []
    assert set(check_docs.HIERARCHY_MODULES) == {
        "repro.control.hierarchy",
        "repro.fleet.camera",
        "repro.fleet.sharding",
    }
    # Auto-discovery also sees the new control module, so CONTROL.md is
    # doubly pinned against a rename of the hierarchy plane.
    assert "hierarchy" in check_docs.control_modules()


def test_batched_modules_documented():
    assert check_docs.check_batched_coverage() == []
    assert set(check_docs.BATCHED_MODULES) == {
        "repro.nn.batched",
        "repro.core.batched",
        "repro.fleet.runtime",
    }


def test_events_modules_documented():
    assert "EVENTS.md" in check_docs.REQUIRED_DOCS
    assert check_docs.check_events_coverage() == []
    modules = check_docs.events_modules()
    assert {"broker", "outbox", "ingest", "plane"} <= set(modules)
    # The delivery story spans packages: the record/identity schema and the
    # shared-uplink transport integration are pinned by name.
    assert set(check_docs.EVENTS_REQUIRED_MODULES) == {
        "repro.core.events",
        "repro.fleet.sharding",
    }


def test_events_required_modules_pinned(tmp_path):
    """A doc naming every repro.events module but not the cross-package
    pins must still fail the events coverage check."""
    doc = tmp_path / "EVENTS.md"
    doc.write_text(
        "\n".join(f"repro.events.{name}" for name in check_docs.events_modules())
        + "\n",
        encoding="utf-8",
    )
    problems = check_docs.check_events_coverage(doc)
    assert any("repro.core.events" in p for p in problems)
    assert any("repro.fleet.sharding" in p for p in problems)


def test_doc_snippets_parse():
    assert check_docs.check_snippets() == []


def test_fence_info_strings_do_not_derail_parser(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        '```python title="listing 1"\nx = 1\n```\n\ntext\n\n```python\ndef broken(:\n```\n',
        encoding="utf-8",
    )
    snippets = check_docs.extract_python_snippets(doc)
    assert len(snippets) == 2  # the info-string block still counts as python
    assert snippets[0][1] == "x = 1"


def test_readme_has_snippets():
    readme = REPO_ROOT / "README.md"
    assert len(check_docs.extract_python_snippets(readme)) >= 2


def test_fleet_doc_names_real_metrics():
    """Metric names documented in FLEET.md must match what the runtime emits."""
    from repro.fleet.camera import CameraSpec
    from repro.fleet.runtime import FleetConfig, FleetRuntime

    doc = (REPO_ROOT / "docs" / "FLEET.md").read_text(encoding="utf-8")
    cameras = [
        CameraSpec("cam00", 32, 32, frame_rate=10.0, num_frames=6),
        CameraSpec("cam01", 32, 32, frame_rate=10.0, num_frames=6),
    ]
    report = FleetRuntime(
        cameras,
        config=FleetConfig(
            num_workers=1, max_in_flight=2, per_camera_quota=1, service_time_scale=0.5
        ),
    ).run()
    emitted = set(report.telemetry)
    for name in (
        "frames.generated",
        "frames.scored",
        "admission.in_flight",
        "admission.rejected_over_quota",
        "fairness.starved_cameras",
        "latency.queue_wait_seconds",
        "worker.service_seconds",
        "uplink.utilization",
        "uplink.backlog_seconds",
    ):
        assert name in doc, f"{name} missing from FLEET.md"
        assert name in emitted, f"{name} documented but never emitted"


def test_cli_entry_point():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "passed" in result.stdout
