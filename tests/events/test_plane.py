"""Unit tests for the end-to-end delivery plane (synthetic records)."""

import pytest

from repro.core.events import EventKey, EventRecord
from repro.events import (
    BrokerConfig,
    DeliveryConfig,
    EventDeliveryPlane,
    OutboxConfig,
    nearest_rank_percentile,
)
from repro.events.plane import STATE_ACKED, STATE_DEAD_LETTER, STATE_DROPPED_OVERFLOW
from repro.fleet.telemetry import TelemetryRegistry
from repro.obs.slo import DeliverySLOConfig


class FakeRuntime:
    """The duck-typed surface the plane touches on a FleetRuntime."""

    def __init__(self):
        self.telemetry = TelemetryRegistry()
        self.event_sink = None


def record(camera="cam0", epoch=0, event_id=1, closed_at=1.0):
    return EventRecord(
        key=EventKey(camera, epoch, event_id),
        mc_name="mc_a",
        start=0,
        end=4,
        source_start=0,
        source_end=4,
        peak_score=0.9,
        closed_at=closed_at,
    )


def finalize_with_fixed_transport(plane, transport=0.01):
    """Complete every attempt ``transport`` seconds after its send time."""
    end_times = {
        request.description: request.available_at + transport
        for request in plane.transfer_requests()
    }
    return plane.finalize(end_times)


class TestNearestRankPercentile:
    def test_empty_is_zero(self):
        assert nearest_rank_percentile([], 0.5) == 0.0

    def test_exact_ranks(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank_percentile(values, 0.50) == 2.0
        assert nearest_rank_percentile(values, 0.99) == 4.0
        assert nearest_rank_percentile(values, 1.0) == 4.0

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], 1.5)


class TestAttachAndPublish:
    def test_duplicate_attach_raises(self):
        plane = EventDeliveryPlane()
        plane.attach("node0", FakeRuntime())
        with pytest.raises(ValueError):
            plane.attach("node0", FakeRuntime())

    def test_attach_installs_sink(self):
        plane = EventDeliveryPlane()
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        assert callable(runtime.event_sink)
        runtime.event_sink(record())
        assert runtime.telemetry.counter("events.published").value == 1

    def test_publish_after_finalize_raises(self):
        plane = EventDeliveryPlane()
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        finalize_with_fixed_transport(plane)
        with pytest.raises(RuntimeError):
            runtime.event_sink(record())

    def test_finalize_twice_raises(self):
        plane = EventDeliveryPlane()
        plane.attach("node0", FakeRuntime())
        finalize_with_fixed_transport(plane)
        with pytest.raises(RuntimeError):
            plane.finalize({})

    def test_log_before_finalize_raises(self):
        plane = EventDeliveryPlane()
        with pytest.raises(RuntimeError):
            plane.delivery_log_jsonl()

    def test_missing_end_time_raises(self):
        plane = EventDeliveryPlane()
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        runtime.event_sink(record())
        with pytest.raises(KeyError):
            plane.finalize({})


class TestLosslessDelivery:
    def test_every_record_acked_first_try(self):
        plane = EventDeliveryPlane()
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        for i in range(5):
            runtime.event_sink(record(event_id=i + 1, closed_at=1.0 + i))
        report = finalize_with_fixed_transport(plane, transport=0.02)
        assert report.published == 5
        assert report.acked == 5
        assert report.delivered == 5
        assert report.retried == 0
        assert report.duped == 0
        assert report.dropped == 0
        assert report.latency_p50 == pytest.approx(0.02)
        assert report.latency_p99 == pytest.approx(0.02)
        assert runtime.telemetry.counter("events.acked").value == 5

    def test_consumer_lag_adds_to_latency(self):
        plane = EventDeliveryPlane(DeliveryConfig(consumer_rate_eps=10.0))
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        # Two records close at the same instant; the serial consumer
        # (0.1 s per record) queues the second behind the first.
        runtime.event_sink(record(event_id=1, closed_at=1.0))
        runtime.event_sink(record(event_id=2, closed_at=1.0))
        report = finalize_with_fixed_transport(plane, transport=0.0)
        assert report.latency_p50 == pytest.approx(0.1)
        assert report.latency_p99 == pytest.approx(0.2)
        assert report.max_consumer_lag == pytest.approx(0.2)


class TestLossyDelivery:
    def build(self, n=400):
        plane = EventDeliveryPlane(
            DeliveryConfig(
                broker=BrokerConfig(loss_rate=0.25, ack_loss_rate=0.15, seed=13),
                outbox=OutboxConfig(max_queue=10_000, max_retries=3),
            )
        )
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        for i in range(n):
            runtime.event_sink(record(event_id=i + 1, closed_at=1.0 + 0.01 * i))
        return plane, runtime

    def test_accounting_invariants(self):
        plane, _ = self.build()
        report = finalize_with_fixed_transport(plane)
        assert report.published == 400
        assert report.published == (
            report.acked + report.delivered_unacked + report.dead_letter
        )
        assert report.retried > 0
        # Dedupe: the datacenter ingested each delivered key exactly once.
        assert plane.ingest.unique_ingests == report.delivered
        assert plane.ingest.duplicates == report.duped

    def test_every_non_dropped_record_delivered(self):
        plane, _ = self.build()
        finalize_with_fixed_transport(plane)
        for entry in plane.log_records:
            if entry["state"] == STATE_DEAD_LETTER:
                assert entry["delivered_at"] is None
            else:
                assert entry["delivered_at"] is not None
                assert entry["latency"] >= 0

    def test_log_is_byte_stable(self):
        plane_a, _ = self.build()
        plane_b, _ = self.build()
        finalize_with_fixed_transport(plane_a)
        finalize_with_fixed_transport(plane_b)
        log_a = plane_a.delivery_log_jsonl()
        assert log_a == plane_b.delivery_log_jsonl()
        assert log_a.count("\n") == 400


class TestOverflow:
    def test_overflow_records_are_dropped_and_logged(self):
        plane = EventDeliveryPlane(
            DeliveryConfig(
                outbox=OutboxConfig(
                    max_queue=1, backoff_base_seconds=10.0, backoff_cap_seconds=10.0
                )
            )
        )
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        runtime.event_sink(record(event_id=1, closed_at=1.0))
        runtime.event_sink(record(event_id=2, closed_at=1.5))  # slot still held
        report = finalize_with_fixed_transport(plane)
        assert report.published == 1
        assert report.dropped_overflow == 1
        assert report.dropped == 1
        assert runtime.telemetry.counter("events.dropped").value == 1
        states = sorted(entry["state"] for entry in plane.log_records)
        assert states == [STATE_ACKED, STATE_DROPPED_OVERFLOW]


class TestSLOViolations:
    def test_slow_deliveries_count_against_the_slo(self):
        plane = EventDeliveryPlane(
            DeliveryConfig(slo=DeliverySLOConfig(ack_latency_seconds=0.05))
        )
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        runtime.event_sink(record(event_id=1, closed_at=1.0))
        runtime.event_sink(record(event_id=2, closed_at=2.0))
        end_times = {}
        for request in plane.transfer_requests():
            transport = 0.01 if request.description.endswith("/1/a0") else 0.5
            end_times[request.description] = request.available_at + transport
        report = plane.finalize(end_times)
        assert report.ack_violations == 1
        assert runtime.telemetry.counter("events.ack_violations").value == 1


class TestMultiNode:
    def test_cluster_report_sums_nodes(self):
        plane = EventDeliveryPlane()
        runtimes = {f"node{i}": FakeRuntime() for i in range(3)}
        for node_id, runtime in runtimes.items():
            plane.attach(node_id, runtime)
        for i, runtime in enumerate(runtimes.values()):
            for j in range(i + 1):
                runtime.event_sink(
                    record(camera=f"cam{i}", event_id=j + 1, closed_at=1.0 + j)
                )
        cluster = finalize_with_fixed_transport(plane)
        assert plane.node_ids() == ["node0", "node1", "node2"]
        assert [plane.node_reports[n].published for n in plane.node_ids()] == [1, 2, 3]
        assert cluster.published == 6
        assert cluster.scope == "cluster"
        assert cluster.published == sum(
            plane.node_reports[n].published for n in plane.node_ids()
        )

    def test_report_serialization(self):
        plane = EventDeliveryPlane()
        runtime = FakeRuntime()
        plane.attach("node0", runtime)
        runtime.event_sink(record())
        report = finalize_with_fixed_transport(plane)
        payload = report.to_dict()
        assert payload["scope"] == "cluster"
        assert payload["published"] == 1
        assert "events[cluster]" in report.summary()
