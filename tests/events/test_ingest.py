"""Tests for the idempotent datacenter ingest and consumer-lag model."""

import pytest

from repro.events import DatacenterIngest


class TestDatacenterIngest:
    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            DatacenterIngest(consumer_rate_eps=-1.0)

    def test_infinite_consumer_completes_instantly(self):
        ingest = DatacenterIngest(consumer_rate_eps=0.0)
        result = ingest.ingest("a", arrived_at=3.0)
        assert result.accepted
        assert result.completed_at == 3.0
        assert result.consumer_lag == 0.0

    def test_duplicate_keys_are_suppressed(self):
        ingest = DatacenterIngest()
        first = ingest.ingest("cam0/e0/1", arrived_at=1.0)
        second = ingest.ingest("cam0/e0/1", arrived_at=2.0)
        assert first.accepted and not second.accepted
        assert ingest.unique_ingests == 1
        assert ingest.duplicates == 1
        assert ingest.has_ingested("cam0/e0/1")
        assert not ingest.has_ingested("cam0/e0/2")

    def test_duplicates_cost_no_consumer_time(self):
        ingest = DatacenterIngest(consumer_rate_eps=1.0)
        ingest.ingest("a", arrived_at=0.0)
        dup = ingest.ingest("a", arrived_at=0.1)
        assert dup.completed_at == 0.1
        fresh = ingest.ingest("b", arrived_at=0.2)
        # "b" queues behind "a" (busy until 1.0), not behind the duplicate.
        assert fresh.completed_at == pytest.approx(2.0)

    def test_serial_consumer_builds_lag(self):
        ingest = DatacenterIngest(consumer_rate_eps=2.0)  # 0.5 s per record
        a = ingest.ingest("a", arrived_at=0.0)
        b = ingest.ingest("b", arrived_at=0.1)
        assert a.completed_at == pytest.approx(0.5)
        assert b.completed_at == pytest.approx(1.0)
        assert b.consumer_lag == pytest.approx(0.9)
        assert ingest.max_consumer_lag == pytest.approx(0.9)

    def test_idle_consumer_resets_queueing(self):
        ingest = DatacenterIngest(consumer_rate_eps=2.0)
        ingest.ingest("a", arrived_at=0.0)
        late = ingest.ingest("b", arrived_at=10.0)
        assert late.completed_at == pytest.approx(10.5)
        assert late.consumer_lag == pytest.approx(0.5)

    def test_rejects_out_of_order_arrivals(self):
        ingest = DatacenterIngest()
        ingest.ingest("a", arrived_at=5.0)
        with pytest.raises(ValueError):
            ingest.ingest("b", arrived_at=4.0)
