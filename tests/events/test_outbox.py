"""Tests for the bounded per-node outbox and its retry/backoff schedule."""

import pytest

from repro.events import NodeOutbox, OutboxConfig


class TestOutboxConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OutboxConfig(max_queue=0)
        with pytest.raises(ValueError):
            OutboxConfig(max_retries=-1)
        with pytest.raises(ValueError):
            OutboxConfig(backoff_base_seconds=0.0)
        with pytest.raises(ValueError):
            OutboxConfig(backoff_base_seconds=1.0, backoff_cap_seconds=0.5)

    def test_backoff_doubles_then_caps(self):
        config = OutboxConfig(backoff_base_seconds=0.1, backoff_cap_seconds=0.5)
        assert [config.backoff(i) for i in range(5)] == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_send_time_is_cumulative_backoff(self):
        config = OutboxConfig(backoff_base_seconds=0.1, backoff_cap_seconds=10.0)
        assert config.send_time(2.0, 0) == 2.0
        assert config.send_time(2.0, 1) == pytest.approx(2.1)
        assert config.send_time(2.0, 2) == pytest.approx(2.3)
        assert config.send_time(2.0, 3) == pytest.approx(2.7)

    def test_max_attempts(self):
        assert OutboxConfig(max_retries=3).max_attempts == 4
        assert OutboxConfig(max_retries=0).max_attempts == 1


class TestNodeOutbox:
    def test_offer_builds_send_schedule(self):
        config = OutboxConfig(backoff_base_seconds=0.05, backoff_cap_seconds=2.0)
        outbox = NodeOutbox("node0", config)
        entry = outbox.offer("cam0/e0/1", closed_at=1.0, bits=2048.0, attempts=3)
        assert entry is not None
        assert entry.attempts == 3
        assert entry.send_times == (1.0, 1.05, pytest.approx(1.15))
        assert entry.bits == 2048.0

    def test_rejects_decreasing_offers(self):
        outbox = NodeOutbox("node0", OutboxConfig())
        outbox.offer("a", closed_at=2.0, bits=8.0, attempts=1)
        with pytest.raises(ValueError):
            outbox.offer("b", closed_at=1.0, bits=8.0, attempts=1)

    def test_rejects_attempts_out_of_range(self):
        outbox = NodeOutbox("node0", OutboxConfig(max_retries=2))
        with pytest.raises(ValueError):
            outbox.offer("a", closed_at=0.0, bits=8.0, attempts=0)
        with pytest.raises(ValueError):
            outbox.offer("a", closed_at=0.0, bits=8.0, attempts=4)

    def test_overflow_drops_when_full(self):
        config = OutboxConfig(
            max_queue=1, backoff_base_seconds=0.1, backoff_cap_seconds=1.0
        )
        outbox = NodeOutbox("node0", config)
        assert outbox.offer("a", closed_at=0.0, bits=8.0, attempts=1) is not None
        # Slot still held ("a" occupies until its last send + one backoff).
        assert outbox.offer("b", closed_at=0.05, bits=8.0, attempts=1) is None
        assert outbox.dropped == 1

    def test_slot_frees_after_occupancy_window(self):
        config = OutboxConfig(
            max_queue=1, backoff_base_seconds=0.1, backoff_cap_seconds=1.0
        )
        outbox = NodeOutbox("node0", config)
        outbox.offer("a", closed_at=0.0, bits=8.0, attempts=1)
        # "a" occupies [0.0, 0.0 + backoff(0)] = [0.0, 0.1].
        entry = outbox.offer("b", closed_at=0.2, bits=8.0, attempts=1)
        assert entry is not None
        assert outbox.dropped == 0
        assert outbox.occupancy == 1

    def test_admitted_entries_are_recorded(self):
        outbox = NodeOutbox("node0", OutboxConfig(max_queue=8))
        for i in range(3):
            outbox.offer(f"k{i}", closed_at=float(i), bits=8.0, attempts=2)
        assert [entry.key for entry in outbox.entries] == ["k0", "k1", "k2"]
