"""Tests for the seeded, hash-deterministic broker loss model."""

import pytest

from repro.events import AttemptOutcome, BrokerConfig, SimulatedBroker


class TestBrokerConfig:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            BrokerConfig(loss_rate=-0.1)
        with pytest.raises(ValueError):
            BrokerConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            BrokerConfig(ack_loss_rate=-0.1)
        with pytest.raises(ValueError):
            BrokerConfig(ack_loss_rate=1.0)

    def test_rejects_combined_rates_at_or_above_one(self):
        with pytest.raises(ValueError):
            BrokerConfig(loss_rate=0.6, ack_loss_rate=0.4)


class TestAttemptOutcome:
    def test_semantics(self):
        assert not AttemptOutcome.LOST.reaches_datacenter
        assert AttemptOutcome.DELIVERED.reaches_datacenter
        assert AttemptOutcome.DELIVERED_ACK_LOST.reaches_datacenter
        assert AttemptOutcome.DELIVERED.acked
        assert not AttemptOutcome.DELIVERED_ACK_LOST.acked
        assert not AttemptOutcome.LOST.acked


class TestSimulatedBroker:
    def test_outcome_is_deterministic(self):
        a = SimulatedBroker(BrokerConfig(loss_rate=0.3, ack_loss_rate=0.2, seed=7))
        b = SimulatedBroker(BrokerConfig(loss_rate=0.3, ack_loss_rate=0.2, seed=7))
        outcomes_a = [a.outcome(f"cam{i}/e0/{i}", j) for i in range(50) for j in range(3)]
        outcomes_b = [b.outcome(f"cam{i}/e0/{i}", j) for i in range(50) for j in range(3)]
        assert outcomes_a == outcomes_b

    def test_seed_changes_outcomes(self):
        a = SimulatedBroker(BrokerConfig(loss_rate=0.5, seed=1))
        b = SimulatedBroker(BrokerConfig(loss_rate=0.5, seed=2))
        outcomes_a = [a.outcome(f"k{i}", 0) for i in range(200)]
        outcomes_b = [b.outcome(f"k{i}", 0) for i in range(200)]
        assert outcomes_a != outcomes_b

    def test_lossless_broker_always_delivers(self):
        broker = SimulatedBroker(BrokerConfig())
        assert all(
            broker.outcome(f"k{i}", j) is AttemptOutcome.DELIVERED
            for i in range(20)
            for j in range(3)
        )

    def test_loss_split_tracks_configured_rates(self):
        broker = SimulatedBroker(BrokerConfig(loss_rate=0.2, ack_loss_rate=0.1, seed=3))
        outcomes = [broker.outcome(f"cam/e0/{i}", 0) for i in range(5000)]
        lost = sum(o is AttemptOutcome.LOST for o in outcomes) / len(outcomes)
        ack_lost = sum(o is AttemptOutcome.DELIVERED_ACK_LOST for o in outcomes) / len(
            outcomes
        )
        assert lost == pytest.approx(0.2, abs=0.03)
        assert ack_lost == pytest.approx(0.1, abs=0.03)

    def test_plan_stops_at_first_ack(self):
        broker = SimulatedBroker(BrokerConfig(loss_rate=0.4, ack_loss_rate=0.2, seed=11))
        for i in range(200):
            plan = broker.plan(f"k{i}", max_attempts=6)
            assert 1 <= len(plan) <= 6
            # Only the last attempt may be acked; everything before failed.
            assert all(not outcome.acked for outcome in plan[:-1])
            if len(plan) < 6:
                assert plan[-1].acked

    def test_plan_is_prefix_stable(self):
        """The same key replans identically — retries never reroll history."""
        broker = SimulatedBroker(BrokerConfig(loss_rate=0.4, ack_loss_rate=0.2, seed=5))
        assert broker.plan("cam9/e1/3", 4) == broker.plan("cam9/e1/3", 4)
