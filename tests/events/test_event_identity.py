"""Global event identity across migration: the (camera, epoch, id) key.

The regression these tests pin: a detector's integer ``event_id`` restarts
from 1 when its camera reattaches on a new node, so events from different
stints of the same camera collide on the bare id.  The session epoch —
bumped on every reattach — keeps the global :class:`EventKey` unique.
"""

import math

import pytest

from repro.control import (
    ControlLoop,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
)
from repro.events import DeliveryConfig, EventDeliveryPlane, OutboxConfig
from repro.fleet.camera import CameraSpec
from repro.fleet.runtime import FleetConfig, FleetRuntime
from repro.fleet.sharding import ShardedFleetRuntime, ShardingConfig

FAST = FleetConfig(num_workers=2, queue_capacity=8, service_time_scale=0.05)


def spec(camera_id, seed, frame_rate=8.0, num_frames=64):
    return CameraSpec(
        camera_id=camera_id,
        width=48,
        height=32,
        frame_rate=frame_rate,
        num_frames=num_frames,
        scenario="busy_intersection",
        seed=seed,
        event_rate_scale=3.0,
    )


class TestHandoffIdentity:
    @pytest.fixture(scope="class")
    def migrated_run(self):
        source = FleetRuntime([spec("cam004", 4), spec("cam001", 1)], config=FAST)
        destination = FleetRuntime([spec("dst000", 9)], config=FAST)
        source.start()
        destination.start()
        source.advance_until(3.0)
        destination.advance_until(3.0)
        handoff = source.detach_camera("cam004", 3.0)
        destination.attach_camera(handoff, 3.0, resume_time=3.2)
        source.advance_until(math.inf)
        destination.advance_until(math.inf)
        source.finalize()
        destination.finalize()
        return source, destination, handoff

    def test_epoch_bumps_on_reattach(self, migrated_run):
        source, destination, handoff = migrated_run
        assert handoff.session_epoch == 0
        dst_epochs = {
            r.key.session_epoch
            for r in destination.event_records
            if r.key.camera_id == "cam004"
        }
        assert dst_epochs == {1}

    def test_bare_event_ids_collide_but_keys_do_not(self, migrated_run):
        source, destination, _ = migrated_run
        records = [
            r
            for r in source.event_records + destination.event_records
            if r.key.camera_id == "cam004"
        ]
        assert len(records) >= 2, "scenario must produce events on both stints"
        bare_ids = [(r.key.camera_id, r.key.event_id) for r in records]
        keys = [r.key for r in records]
        # The very collision the epoch exists for: per-detector ids repeat...
        assert len(set(bare_ids)) < len(bare_ids)
        # ...but the global key never does.
        assert len(set(keys)) == len(keys)

    def test_all_keys_unique_fleet_wide(self, migrated_run):
        source, destination, _ = migrated_run
        keys = [r.key for r in source.event_records + destination.event_records]
        assert len(set(keys)) == len(keys)


class TestMigrationControllerIdentity:
    """Same invariant composed with the real migration control loop."""

    @pytest.fixture(scope="class")
    def controlled_run(self):
        migration = MigrationController(
            MigrationConfig(
                imbalance_threshold=1.1,
                sustain_ticks=2,
                cooldown_ticks=2,
                cost_model=MigrationCostModel(
                    blackout_seconds=0.2, cold_start_seconds=0.2
                ),
            )
        )
        cameras = []
        for i in range(6):
            rate = 24.0 if i % 2 == 0 else 2.0
            cameras.append(
                spec(f"cam{i:03d}", seed=i, frame_rate=rate, num_frames=int(rate * 6.0))
            )
        plane = EventDeliveryPlane(
            DeliveryConfig(outbox=OutboxConfig(max_queue=512, max_retries=2))
        )
        runtime = ShardedFleetRuntime(
            cameras,
            config=ShardingConfig(
                num_nodes=2,
                placement="round_robin",
                total_uplink_bps=100_000.0,
                node_config=FleetConfig(
                    num_workers=1, queue_capacity=4, service_time_scale=0.12
                ),
            ),
            control_loop=ControlLoop([migration], interval_seconds=0.25),
            event_plane=plane,
        )
        report = runtime.run()
        return runtime, report, plane, migration

    def test_scenario_migrates_and_produces_events(self, controlled_run):
        runtime, report, _, migration = controlled_run
        assert migration.migrations, "scenario must actually migrate a camera"
        assert report.delivery.published > 0

    def test_keys_distinct_across_migration(self, controlled_run):
        runtime, _, _, _ = controlled_run
        keys = [
            record.key
            for node in runtime.nodes.values()
            for record in node.event_records
        ]
        assert len(set(keys)) == len(keys)
        migrated_epochs = {key.session_epoch for key in keys}
        # At least one record carries a post-migration epoch... unless the
        # migrated cameras happened to close no events after moving, which
        # the fixed seeds rule out for this scenario.
        assert migrated_epochs - {0}, "no post-migration epoch observed"

    def test_datacenter_never_ingests_a_key_twice(self, controlled_run):
        _, report, plane, _ = controlled_run
        assert plane.ingest.unique_ingests == report.delivery.delivered
        assert plane.ingest.unique_ingests == len(
            {entry["key"] for entry in plane.log_records if entry["delivered_at"]}
        )
