"""Fleet-level delivery-plane integration: both uplink modes, cooldowns,
golden-trace safety, and the O(nodes) hierarchy-payload contract."""

import pytest

from repro.control.hierarchy import HierarchicalControlPlane, NodeAggregate, QuantileSketch
from repro.events import BrokerConfig, DeliveryConfig, EventDeliveryPlane, OutboxConfig
from repro.fleet.camera import CameraSpec
from repro.fleet.runtime import FleetConfig, FleetRuntime
from repro.fleet.sharding import ShardedFleetRuntime, ShardingConfig
from repro.obs.timeline import MetricsTimeline

FAST = FleetConfig(num_workers=2, queue_capacity=8, service_time_scale=0.05)


def cameras(n=6, num_frames=40):
    return [
        CameraSpec(
            camera_id=f"cam{i:03d}",
            width=48,
            height=32,
            frame_rate=8.0,
            num_frames=num_frames,
            scenario="busy_intersection",
            seed=i,
            event_rate_scale=3.0,
        )
        for i in range(n)
    ]


def delivery_config(**kwargs):
    defaults = dict(
        broker=BrokerConfig(loss_rate=0.1, ack_loss_rate=0.05, seed=9),
        outbox=OutboxConfig(max_queue=256, max_retries=4),
        consumer_rate_eps=100.0,
    )
    defaults.update(kwargs)
    return DeliveryConfig(**defaults)


def run_cluster(sharing, plane):
    runtime = ShardedFleetRuntime(
        cameras(),
        config=ShardingConfig(num_nodes=2, uplink_sharing=sharing, node_config=FAST),
        event_plane=plane,
    )
    return runtime, runtime.run()


class TestShardedDelivery:
    @pytest.fixture(scope="class", params=["static", "work_conserving"])
    def cluster(self, request):
        plane = EventDeliveryPlane(delivery_config())
        runtime, report = run_cluster(request.param, plane)
        return runtime, report, plane

    def test_cluster_report_carries_delivery(self, cluster):
        _, report, plane = cluster
        assert report.delivery is plane.cluster_report
        assert report.delivery.published > 0
        assert report.delivery.summary() in report.summary()

    def test_node_reports_carry_delivery(self, cluster):
        _, report, plane = cluster
        for node in report.nodes:
            assert node.report.delivery is plane.node_reports[node.node_id]
        assert report.delivery.published == sum(
            n.report.delivery.published for n in report.nodes
        )

    def test_every_published_record_resolves(self, cluster):
        _, report, plane = cluster
        delivery = report.delivery
        assert delivery.published == (
            delivery.acked + delivery.delivered_unacked + delivery.dead_letter
        )
        assert plane.ingest.unique_ingests == delivery.delivered
        assert len(plane.log_records) == delivery.published + delivery.dropped_overflow

    def test_delivery_counters_reach_node_telemetry(self, cluster):
        _, report, _ = cluster
        published = sum(
            node.report.telemetry.get("events.published", 0) for node in report.nodes
        )
        assert published == report.delivery.published

    def test_event_bytes_ride_the_shared_link(self, cluster):
        _, report, plane = cluster
        # Every admitted attempt moved record_bytes * 8 bits through the
        # cluster's shared link — no free side channel.
        event_bits = sum(
            publish.entry.bits * publish.entry.attempts for publish in plane._publishes
        )
        assert event_bits > 0
        assert report.total_uplink_bits >= event_bits

    def test_reruns_are_bit_identical(self, cluster):
        runtime, _, plane = cluster
        sharing = runtime.config.uplink_sharing
        rerun_plane = EventDeliveryPlane(delivery_config())
        _, rerun_report = run_cluster(sharing, rerun_plane)
        assert plane.delivery_log_jsonl() == rerun_plane.delivery_log_jsonl()
        assert rerun_report.delivery.to_dict() == plane.cluster_report.to_dict()


class TestGoldenTraceSafety:
    def test_sinkless_run_has_no_delivery_counters(self):
        """Without a plane, the runtime's telemetry is byte-identical to the
        pre-delivery-plane world: no events.* delivery metrics materialize."""
        runtime = ShardedFleetRuntime(
            cameras(), config=ShardingConfig(num_nodes=2, node_config=FAST)
        )
        report = runtime.run()
        assert report.delivery is None
        for node in report.nodes:
            delivery_keys = [
                key
                for key in node.report.telemetry
                if key.startswith("events.") and key != "events.closed"
            ]
            assert delivery_keys == []
        assert runtime.nodes["node0"].event_records, (
            "records are still collected without a sink (collection is free; "
            "only publishing is gated)"
        )


class TestCooldown:
    def test_cooldown_rate_limits_publishes_not_collection(self):
        published = []
        runtime = FleetRuntime(
            cameras(n=6),
            config=FleetConfig(
                num_workers=2,
                queue_capacity=8,
                service_time_scale=0.05,
                event_cooldown_seconds=1e9,
            ),
            event_sink=published.append,
        )
        runtime.run()
        records = runtime.event_records
        assert len(records) > len(published) > 0
        pairs = {(r.key.camera_id, r.mc_name) for r in records}
        # One publish per (camera, MC) pair — everything else suppressed.
        assert len(published) == len(pairs)
        suppressed = runtime.telemetry.counter("events.suppressed").value
        assert suppressed == len(records) - len(published)

    def test_zero_cooldown_publishes_everything(self):
        published = []
        runtime = FleetRuntime(
            cameras(n=3),
            config=FAST,
            event_sink=published.append,
        )
        runtime.run()
        assert len(published) == len(runtime.event_records) > 0


class TestHierarchyPayloadContract:
    # The exact upstream-message schema: adding a per-event line (or any
    # unbounded field) to NodeAggregate.to_payload() must fail this pin.
    PINNED_PAYLOAD_KEYS = {
        "node_id",
        "t",
        "cameras",
        "workers",
        "generated",
        "scored",
        "rejected",
        "dropped",
        "matched",
        "events",
        "events_published",
        "events_dropped",
        "upload_bits",
        "offered_utilization",
        "wait_count",
        "wait_sketch",
        "resolutions",
    }

    def make_aggregate(self, **overrides):
        fields = dict(
            node_id="node0",
            now=1.0,
            num_cameras=4,
            num_workers=2,
            frames_generated=100.0,
            frames_scored=90.0,
            frames_rejected=5.0,
            frames_dropped=5.0,
            frames_matched=40.0,
            events_closed=3.0,
            estimated_upload_bits=1e6,
            offered_utilization=0.5,
            window_wait_count=10,
            window_wait_sketch=QuantileSketch.from_values([0.01, 0.02]),
            resolutions=((48, 32),),
        )
        fields.update(overrides)
        return NodeAggregate(**fields)

    def test_payload_key_set_is_pinned(self):
        aggregate = self.make_aggregate(events_published=7.0, events_dropped=1.0)
        assert set(aggregate.to_payload().keys()) == self.PINNED_PAYLOAD_KEYS

    def test_payload_size_independent_of_event_count(self):
        """1000x the delivered events only changes counter digit counts."""
        small = self.make_aggregate(events_published=1.0)
        large = self.make_aggregate(events_published=1000.0)
        assert large.payload_bytes() - small.payload_bytes() <= 8

    def test_hierarchical_run_rolls_up_delivery_counters(self):
        plane = EventDeliveryPlane(delivery_config())
        timeline = MetricsTimeline()
        runtime = ShardedFleetRuntime(
            cameras(),
            config=ShardingConfig(num_nodes=2, node_config=FAST),
            hierarchy=HierarchicalControlPlane(interval_seconds=0.5),
            timeline=timeline,
            event_plane=plane,
        )
        report = runtime.run()
        assert report.delivery is not None
        assert report.delivery.published > 0
        # The coordinator's fixed-size rollup saw the published counters the
        # nodes accumulated mid-run (finalize-time counters land after the
        # last tick, so the gauge is a lower bound).
        rollup = report.telemetry.get("cluster.events.published")
        assert rollup is not None and rollup["value"] >= 0
        assert report.coordination_payload_bytes, "hierarchy must have ticked"
