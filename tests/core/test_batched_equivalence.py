"""Equivalence harness: BatchedScorer ≡ per-camera scoring, bit for bit.

The tentpole claim of the cross-camera batched path is that it changes
wall-clock time and *nothing else*: probabilities, decisions, smoothed
outputs, events, and upload accounting must be bit-identical
(``np.array_equal``, never allclose) whether frames go through
:meth:`BatchedScorer.score_tick` or one-at-a-time per-camera pushes — across
randomized seeds, mixed resolutions, ragged batch tails, and live threshold
drift.  The fleet-level composition is covered by
``tests/fleet/test_batched_runtime.py``; this file pins the core mechanism.
"""

import zlib

import numpy as np
import pytest

from repro.core.batched import BatchedScorer
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.architectures import build_microclassifier
from repro.core.pipeline import PipelineConfig
from repro.core.streaming import StreamingPipeline
from repro.features.base_dnn import build_mobilenet_like
from repro.features.extractor import FeatureExtractor
from repro.video.frame import Frame

TAP = "conv2_2/sep"


def make_base_dnn(shape=(24, 32, 3), seed=0):
    return build_mobilenet_like(shape, alpha=0.125, rng=np.random.default_rng(seed))


def make_session(base_dnn, camera, seed, architecture="localized", threshold=0.6):
    """A deterministic per-camera session; same (camera, seed) -> same weights."""
    extractor = FeatureExtractor(base_dnn, [TAP], cache_size=4)
    mc = build_microclassifier(
        architecture,
        MicroClassifierConfig(name=f"{camera}/primary", input_layer=TAP, threshold=threshold),
        extractor.layer_shape(TAP),
        rng=np.random.default_rng(seed * 1000 + zlib.crc32(camera.encode()) % 997),
    )
    shape = base_dnn.input_shape
    return StreamingPipeline(
        extractor,
        [mc],
        config=PipelineConfig(batch_size=1, smoothing_window=3, smoothing_votes=2),
        frame_rate=10.0,
        resolution=(shape[1], shape[0]),
    )


def make_frames(shape, camera, seed, count):
    rng = np.random.default_rng(seed * 7919 + zlib.crc32(camera.encode()) % 4099)
    return [Frame(i, i / 10.0, rng.random(shape)) for i in range(count)]


def assert_results_identical(a, b):
    """PipelineResults bit-identical in every per-MC and aggregate output."""
    assert a.per_mc.keys() == b.per_mc.keys()
    for name in a.per_mc:
        ra, rb = a.per_mc[name], b.per_mc[name]
        assert np.array_equal(ra.probabilities, rb.probabilities), name
        assert np.array_equal(ra.decisions, rb.decisions), name
        assert np.array_equal(ra.smoothed, rb.smoothed), name
        assert np.array_equal(ra.matched_frame_indices, rb.matched_frame_indices), name
        assert ra.events == rb.events, name
    assert np.array_equal(a.uploaded_frame_indices, b.uploaded_frame_indices)
    assert a.total_uploaded_bits == b.total_uploaded_bits


def run_both_paths(cameras, seed, ticks=10, drift=None, architecture="localized"):
    """Drive identical sessions through batched and per-camera scoring.

    ``cameras`` maps camera name -> base DNN (cameras sharing an object share
    the resident model, the grouping the scorer batches on).  ``drift`` maps
    a tick index to a threshold override applied to every session at that
    tick (the live threshold-drift case).  Returns (batched, per-camera)
    finished results plus the scorer, keyed by camera.
    """
    drift = drift or {}
    batched_sessions = {
        cam: make_session(dnn, cam, seed, architecture) for cam, dnn in cameras.items()
    }
    scalar_sessions = {
        cam: make_session(dnn, cam, seed, architecture) for cam, dnn in cameras.items()
    }
    frames = {
        cam: make_frames(dnn.input_shape, cam, seed, ticks) for cam, dnn in cameras.items()
    }
    scorer = BatchedScorer()
    for tick in range(ticks):
        if tick in drift:
            for session in (*batched_sessions.values(), *scalar_sessions.values()):
                session.set_threshold(drift[tick])
        entries = [(batched_sessions[cam], frames[cam][tick]) for cam in cameras]
        scorer.score_tick(entries)
        for cam in cameras:
            scalar_sessions[cam].push(frames[cam][tick])
    batched = {cam: s.finish() for cam, s in batched_sessions.items()}
    scalar = {cam: s.finish() for cam, s in scalar_sessions.items()}
    return batched, scalar, scorer


class TestScoreTickEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_shared_dnn_batched_is_bit_identical(self, seed):
        dnn = make_base_dnn(seed=seed)
        cameras = {f"cam{i}": dnn for i in range(4)}
        batched, scalar, scorer = run_both_paths(cameras, seed)
        for cam in cameras:
            assert_results_identical(batched[cam], scalar[cam])
        assert scorer.frames_batched == 4 * 10
        assert scorer.batches_run == 10  # one forward per tick, not per camera

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_resolutions_group_per_base_dnn(self, seed):
        small = make_base_dnn((24, 32, 3), seed=seed)
        large = make_base_dnn((32, 48, 3), seed=seed + 50)
        cameras = {"s0": small, "s1": small, "s2": small, "l0": large, "l1": large}
        batched, scalar, scorer = run_both_paths(cameras, seed, ticks=6)
        for cam in cameras:
            assert_results_identical(batched[cam], scalar[cam])
        assert scorer.batches_run == 6 * 2  # one batch per resident base DNN per tick

    def test_ragged_tail_single_camera_batch(self):
        dnn = make_base_dnn()
        batched, scalar, scorer = run_both_paths({"solo": dnn}, seed=3, ticks=8)
        assert_results_identical(batched["solo"], scalar["solo"])
        assert scorer.batches_run == 8 and scorer.frames_batched == 8

    def test_camera_leaving_mid_stream_keeps_equivalence(self):
        """Tick sizes shrink mid-run (N cameras -> N-1): the ragged tail."""
        dnn = make_base_dnn()
        cameras = ["a", "b", "c"]
        seed = 9
        batched_sessions = {c: make_session(dnn, c, seed) for c in cameras}
        scalar_sessions = {c: make_session(dnn, c, seed) for c in cameras}
        frames = {c: make_frames(dnn.input_shape, c, seed, 10) for c in cameras}
        scorer = BatchedScorer()
        for tick in range(10):
            live = cameras if tick < 5 else cameras[:-1]  # "c" departs mid-run
            scorer.score_tick([(batched_sessions[c], frames[c][tick]) for c in live])
            for c in live:
                scalar_sessions[c].push(frames[c][tick])
        for c in cameras:
            assert_results_identical(batched_sessions[c].finish(), scalar_sessions[c].finish())

    @pytest.mark.parametrize("seed", range(3))
    def test_live_threshold_drift_stays_identical(self, seed):
        dnn = make_base_dnn(seed=seed)
        cameras = {f"cam{i}": dnn for i in range(3)}
        batched, scalar, _ = run_both_paths(
            cameras, seed, ticks=12, drift={3: 0.4, 7: 0.75}
        )
        for cam in cameras:
            assert_results_identical(batched[cam], scalar[cam])

    def test_windowed_architecture_is_covered(self):
        dnn = make_base_dnn()
        cameras = {f"cam{i}": dnn for i in range(2)}
        batched, scalar, _ = run_both_paths(cameras, seed=4, ticks=8, architecture="windowed")
        for cam in cameras:
            assert_results_identical(batched[cam], scalar[cam])


class TestScorerSemantics:
    def test_prefetch_skips_cached_and_already_prefetched(self):
        dnn = make_base_dnn()
        session = make_session(dnn, "cam", seed=1)
        [frame] = make_frames(dnn.input_shape, "cam", 1, 1)
        scorer = BatchedScorer()
        assert not scorer.has(session, frame)
        assert scorer.prefetch([(session, frame)]) == 1
        assert scorer.has(session, frame) and scorer.pending == 1
        assert scorer.prefetch([(session, frame)]) == 0  # already prefetched
        assert scorer.prime(session, frame)
        assert scorer.pending == 0
        session.push(frame)  # cache hit: activations were primed
        assert scorer.prefetch([(session, frame)]) == 0  # already in the cache

    def test_prime_without_prefetch_returns_false(self):
        dnn = make_base_dnn()
        session = make_session(dnn, "cam", seed=2)
        [frame] = make_frames(dnn.input_shape, "cam", 2, 1)
        assert not BatchedScorer().prime(session, frame)

    def test_primed_activations_match_extractor_exactly(self):
        dnn = make_base_dnn()
        primed = make_session(dnn, "cam", seed=5)
        direct = make_session(dnn, "cam", seed=5)
        [frame] = make_frames(dnn.input_shape, "cam", 5, 1)
        scorer = BatchedScorer()
        scorer.prefetch([(primed, frame)])
        scorer.prime(primed, frame)
        assert np.array_equal(
            primed.extractor.extract(frame)[TAP], direct.extractor.extract(frame)[TAP]
        )

    def test_resolution_mismatch_raises(self):
        dnn = make_base_dnn((24, 32, 3))
        session = make_session(dnn, "cam", seed=6)
        wrong = Frame(0, 0.0, np.zeros((32, 48, 3)))
        with pytest.raises(ValueError, match="resident base DNN"):
            BatchedScorer().prefetch([(session, wrong)])

    def test_clear_drops_prefetched_entries(self):
        dnn = make_base_dnn()
        session = make_session(dnn, "cam", seed=7)
        [frame] = make_frames(dnn.input_shape, "cam", 7, 1)
        scorer = BatchedScorer()
        scorer.prefetch([(session, frame)])
        scorer.clear()
        assert scorer.pending == 0 and not scorer.prime(session, frame)


class TestExtractorPrime:
    def test_prime_then_extract_runs_base_dnn_once(self):
        dnn = make_base_dnn()
        extractor = FeatureExtractor(dnn, [TAP], cache_size=4)
        [frame] = make_frames(dnn.input_shape, "cam", 8, 1)
        activations = {TAP: extractor.extract_pixels(frame.pixels)[TAP]}
        before = extractor.frames_processed
        extractor.prime(frame.index, activations)
        assert extractor.frames_processed == before + 1
        assert extractor.extract(frame)[TAP] is activations[TAP]  # cache hit, no copy
        assert extractor.frames_processed == before + 1

    def test_prime_missing_tap_raises(self):
        dnn = make_base_dnn()
        extractor = FeatureExtractor(dnn, [TAP], cache_size=4)
        with pytest.raises(KeyError, match="missing tapped layer"):
            extractor.prime(0, {"wrong_layer": np.zeros((1, 1, 1))})

    def test_prime_cached_frame_is_noop(self):
        dnn = make_base_dnn()
        extractor = FeatureExtractor(dnn, [TAP], cache_size=4)
        [frame] = make_frames(dnn.input_shape, "cam", 9, 1)
        original = extractor.extract(frame)
        extractor.prime(frame.index, {TAP: np.zeros_like(original[TAP])})
        assert extractor.extract(frame)[TAP] is original[TAP]
        assert extractor.frames_processed == 1


class TestPushOverhead:
    def test_push_never_rescans_states_by_name(self, monkeypatch):
        """The actuation lookup is bound at init: zero _states_for per push."""
        dnn = make_base_dnn()
        session = make_session(dnn, "cam", seed=10)
        calls = []
        original = StreamingPipeline._states_for

        def counting(self, mc_name):
            calls.append(mc_name)
            return original(self, mc_name)

        monkeypatch.setattr(StreamingPipeline, "_states_for", counting)
        for frame in make_frames(dnn.input_shape, "cam", 10, 5):
            session.push(frame)
        assert calls == []

    def test_bound_lookup_still_resolves_and_rejects(self):
        dnn = make_base_dnn()
        session = make_session(dnn, "cam", seed=11)
        session.set_threshold(0.3, mc_name="cam/primary")
        assert session.current_threshold("cam/primary") == 0.3
        with pytest.raises(KeyError, match="no_such_mc"):
            session.set_threshold(0.5, mc_name="no_such_mc")
