"""Tests for K-voting smoothing and transition detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.smoothing import KVotingSmoother, TransitionDetector


class TestKVotingSmoother:
    def test_paper_defaults(self):
        smoother = KVotingSmoother()
        assert smoother.window == 5 and smoother.votes == 2

    def test_isolated_positive_is_removed_with_strict_voting(self):
        smoother = KVotingSmoother(window=5, votes=2)
        decisions = np.array([0, 0, 0, 1, 0, 0, 0])
        np.testing.assert_array_equal(smoother.smooth(decisions), np.zeros(7))

    def test_two_nearby_positives_fill_the_gap(self):
        """K=2 of N=5 voting bridges short false-negative gaps (the paper's goal)."""
        smoother = KVotingSmoother(window=5, votes=2)
        decisions = np.array([0, 1, 0, 1, 0, 0, 0, 0])
        smoothed = smoother.smooth(decisions)
        assert smoothed[2] == 1  # the gap between the detections is filled
        assert smoothed[:1].sum() == 1 or smoothed[0] in (0, 1)  # boundary frames defined
        assert smoothed[6] == 0 and smoothed[7] == 0

    def test_k1_n1_is_identity(self):
        smoother = KVotingSmoother(window=1, votes=1)
        decisions = np.array([0, 1, 1, 0, 1, 0])
        np.testing.assert_array_equal(smoother.smooth(decisions), decisions)

    def test_unanimous_voting_erodes_run_edges(self):
        smoother = KVotingSmoother(window=3, votes=3)
        decisions = np.array([0, 1, 1, 1, 1, 0, 0])
        smoothed = smoother.smooth(decisions)
        assert smoothed.sum() < decisions.sum()
        assert smoothed[2] == 1 and smoothed[3] == 1

    def test_empty_input(self):
        assert KVotingSmoother().smooth(np.array([])).size == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KVotingSmoother(window=0)
        with pytest.raises(ValueError):
            KVotingSmoother(window=3, votes=4)
        with pytest.raises(ValueError):
            KVotingSmoother(window=3, votes=0)

    def test_rejects_multidimensional_input(self):
        with pytest.raises(ValueError):
            KVotingSmoother().smooth(np.zeros((2, 2)))

    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_output_is_binary_and_same_length(self, decisions):
        smoothed = KVotingSmoother().smooth(np.array(decisions))
        assert smoothed.size == len(decisions)
        assert set(np.unique(smoothed)).issubset({0, 1})

    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_all_negative_stays_negative(self, decisions):
        zeros = np.zeros(len(decisions), dtype=int)
        assert KVotingSmoother().smooth(zeros).sum() == 0

    @given(
        decisions=st.lists(st.sampled_from([0, 1]), min_size=1, max_size=60),
        flip_index=st.integers(min_value=0, max_value=59),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_adding_a_positive_never_removes_detections(self, decisions, flip_index):
        """K-voting is monotone: turning a 0 into a 1 can only add smoothed positives."""
        arr = np.array(decisions)
        if flip_index >= arr.size:
            flip_index = arr.size - 1
        more = arr.copy()
        more[flip_index] = 1
        smoother = KVotingSmoother()
        base = smoother.smooth(arr)
        extended = smoother.smooth(more)
        assert np.all(extended >= base)

    def test_matches_naive_reference_implementation(self, rng):
        decisions = rng.integers(0, 2, size=100)
        smoother = KVotingSmoother(window=5, votes=2)
        fast = smoother.smooth(decisions)
        half = 2
        slow = np.zeros_like(decisions)
        for i in range(decisions.size):
            lo = max(0, i - half)
            hi = min(decisions.size, i + 5 - half)
            slow[i] = 1 if decisions[lo:hi].sum() >= 2 else 0
        np.testing.assert_array_equal(fast, slow)


class TestTransitionDetector:
    def test_detects_contiguous_runs(self):
        detector = TransitionDetector()
        events = detector.detect(np.array([0, 1, 1, 0, 1, 1, 1, 0]))
        assert events == [(1, 1, 3), (2, 4, 7)]

    def test_ids_increase_across_calls(self):
        detector = TransitionDetector()
        first = detector.detect(np.array([1, 1, 0]))
        second = detector.detect(np.array([0, 1, 1]), frame_offset=3)
        assert first == [(1, 0, 2)]
        assert second == [(2, 4, 6)]
        assert detector.next_event_id == 3

    def test_frame_offset_shifts_boundaries(self):
        detector = TransitionDetector()
        events = detector.detect(np.array([1, 1]), frame_offset=100)
        assert events == [(1, 100, 102)]

    def test_custom_first_id(self):
        detector = TransitionDetector(first_event_id=10)
        assert detector.detect(np.array([1]))[0][0] == 10

    def test_empty_and_all_negative(self):
        detector = TransitionDetector()
        assert detector.detect(np.array([])) == []
        assert detector.detect(np.zeros(5)) == []
        assert detector.next_event_id == 1

    def test_invalid_first_id(self):
        with pytest.raises(ValueError):
            TransitionDetector(first_event_id=-1)

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError):
            TransitionDetector().detect(np.zeros((2, 3)))
