"""Tests for the end-to-end FilterForward pipeline."""

import numpy as np
import pytest

from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.pipeline import FilterForwardPipeline, PipelineConfig
from repro.features.extractor import FeatureExtractor, FeatureMapCrop


def make_mc(extractor, name, architecture="localized", layer="conv4_2/sep", crop=None, threshold=0.5):
    cfg = MicroClassifierConfig(name, layer, crop=crop, threshold=threshold, upload_bitrate=50_000)
    shape = extractor.cropped_layer_shape(layer, crop, (32, 48))
    return build_microclassifier(architecture, cfg, shape)


@pytest.fixture
def pipeline(tiny_extractor):
    mcs = [
        make_mc(tiny_extractor, "mc_localized"),
        make_mc(tiny_extractor, "mc_full_frame", architecture="full_frame", layer="conv5_6/sep"),
        make_mc(tiny_extractor, "mc_windowed", architecture="windowed"),
    ]
    return FilterForwardPipeline(tiny_extractor, mcs, PipelineConfig(batch_size=4))


class TestConstruction:
    def test_requires_at_least_one_mc(self, tiny_extractor):
        with pytest.raises(ValueError):
            FilterForwardPipeline(tiny_extractor, [])

    def test_rejects_duplicate_names(self, tiny_extractor):
        mcs = [make_mc(tiny_extractor, "same"), make_mc(tiny_extractor, "same")]
        with pytest.raises(ValueError, match="Duplicate"):
            FilterForwardPipeline(tiny_extractor, mcs)

    def test_rejects_untapped_layer(self, tiny_base_dnn):
        extractor = FeatureExtractor(tiny_base_dnn, ["conv5_6/sep"])
        mc = make_mc(
            FeatureExtractor(tiny_base_dnn, ["conv4_2/sep"]), "mc", layer="conv4_2/sep"
        )
        with pytest.raises(ValueError, match="does not tap"):
            FilterForwardPipeline(extractor, [mc])

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            PipelineConfig(batch_size=0)

    def test_invalid_smoothing_window(self):
        with pytest.raises(ValueError, match="smoothing_window"):
            PipelineConfig(smoothing_window=0)

    @pytest.mark.parametrize("votes", [0, 6])
    def test_invalid_smoothing_votes(self, votes):
        with pytest.raises(ValueError, match="smoothing_votes"):
            PipelineConfig(smoothing_window=5, smoothing_votes=votes)


class TestFeatureCollection:
    def test_base_dnn_runs_once_per_frame(self, pipeline, tiny_pipeline_stream, tiny_extractor):
        before = tiny_extractor.frames_processed
        pipeline.collect_feature_maps(tiny_pipeline_stream)
        assert tiny_extractor.frames_processed == before + len(tiny_pipeline_stream)

    def test_collected_shapes(self, pipeline, tiny_pipeline_stream, tiny_extractor):
        maps = pipeline.collect_feature_maps(tiny_pipeline_stream)
        assert set(maps) == {"mc_localized", "mc_full_frame", "mc_windowed"}
        assert maps["mc_localized"].shape == (12, *tiny_extractor.layer_shape("conv4_2/sep"))
        assert maps["mc_full_frame"].shape == (12, *tiny_extractor.layer_shape("conv5_6/sep"))

    def test_crop_applied_per_mc(self, tiny_extractor, tiny_pipeline_stream):
        crop = FeatureMapCrop(0, 16, 48, 32)
        mc = make_mc(tiny_extractor, "cropped", crop=crop)
        pipeline = FilterForwardPipeline(tiny_extractor, [mc])
        maps = pipeline.collect_feature_maps(tiny_pipeline_stream)
        expected = tiny_extractor.cropped_layer_shape("conv4_2/sep", crop, (32, 48))
        assert maps["cropped"].shape[1:] == expected


class TestProcessStream:
    def test_result_structure(self, pipeline, tiny_pipeline_stream):
        result = pipeline.process_stream(tiny_pipeline_stream)
        assert result.num_frames == 12
        assert set(result.per_mc) == {"mc_localized", "mc_full_frame", "mc_windowed"}
        for mc_result in result.per_mc.values():
            assert mc_result.probabilities.shape == (12,)
            assert mc_result.decisions.shape == (12,)
            assert mc_result.smoothed.shape == (12,)
            assert np.all((mc_result.probabilities >= 0) & (mc_result.probabilities <= 1))

    def test_thresholds_control_matches(self, tiny_extractor, tiny_pipeline_stream):
        accept_all = make_mc(tiny_extractor, "accept", threshold=0.01)
        reject_all = make_mc(tiny_extractor, "reject", threshold=0.99)
        pipeline = FilterForwardPipeline(tiny_extractor, [accept_all, reject_all])
        result = pipeline.process_stream(tiny_pipeline_stream)
        assert result.per_mc["accept"].num_matched_frames == 12
        assert result.per_mc["reject"].num_matched_frames == 0
        assert result.per_mc["reject"].encoded is None
        assert result.per_mc["reject"].average_bandwidth == 0.0

    def test_upload_accounting(self, tiny_extractor, tiny_pipeline_stream):
        accept_all = make_mc(tiny_extractor, "accept", threshold=0.01)
        pipeline = FilterForwardPipeline(tiny_extractor, [accept_all])
        result = pipeline.process_stream(tiny_pipeline_stream)
        assert result.upload_fraction == 1.0
        assert result.total_uploaded_bits > 0
        # Uploading everything at 50 kb/s costs ~50 kb/s on average.
        assert result.average_uplink_bandwidth == pytest.approx(50_000, rel=0.1)
        assert result.bandwidth_savings_versus(500_000) == pytest.approx(10.0, rel=0.1)

    def test_frames_annotated_with_events(self, tiny_extractor, tiny_pipeline_stream):
        accept_all = make_mc(tiny_extractor, "accept", threshold=0.01)
        pipeline = FilterForwardPipeline(tiny_extractor, [accept_all])
        result = pipeline.process_stream(tiny_pipeline_stream, annotate_frames=True)
        assert len(result.per_mc["accept"].events) == 1
        event_id = result.per_mc["accept"].events[0].event_id
        assert tiny_pipeline_stream[5].event_memberships() == {"accept": event_id}

    def test_events_match_smoothed_runs(self, pipeline, tiny_pipeline_stream):
        result = pipeline.process_stream(tiny_pipeline_stream)
        for mc_result in result.per_mc.values():
            covered = np.zeros(12, dtype=np.int8)
            for event in mc_result.events:
                covered[event.start : event.end] = 1
            np.testing.assert_array_equal(covered, mc_result.smoothed)

    def test_multiply_adds_accounting(self, pipeline, tiny_extractor):
        costs = pipeline.multiply_adds_per_frame()
        assert costs["base_dnn"] == tiny_extractor.multiply_adds_per_frame()
        for name in ("mc_localized", "mc_full_frame", "mc_windowed"):
            assert costs[name] > 0

    def test_no_savings_when_everything_matches_at_same_bitrate(self, tiny_extractor, tiny_pipeline_stream):
        mc = make_mc(tiny_extractor, "all", threshold=0.01)
        pipeline = FilterForwardPipeline(tiny_extractor, [mc])
        result = pipeline.process_stream(tiny_pipeline_stream)
        assert result.bandwidth_savings_versus(50_000) == pytest.approx(1.0, rel=0.1)
