"""Tests for the layer-selection heuristic (paper Section 3.4)."""

import pytest

from repro.core.layer_selection import select_input_layer
from repro.features.base_dnn import mobilenet_layer_shapes


class TestSelectInputLayer:
    def test_paper_example_pedestrians_at_1080p(self):
        """40-pixel pedestrians at 1080p should select a layer with 20:1-50:1 reduction."""
        shapes = mobilenet_layer_shapes((1920, 1080), alpha=1.0)
        candidates = {k: shapes[k] for k in ("conv2_2/sep", "conv3_2/sep", "conv4_2/sep", "conv5_6/sep")}
        selection = select_input_layer(1080, 40, candidates)
        assert 20 <= selection.reduction <= 50
        assert selection.layer in ("conv4_2/sep", "conv5_6/sep")

    def test_widened_window_recovers_paper_layer_choice(self):
        """Lowering the window's bottom edge reproduces the paper's conv4_2 pick (16:1)."""
        shapes = mobilenet_layer_shapes((1920, 1080), alpha=1.0)
        candidates = {k: shapes[k] for k in ("conv2_2/sep", "conv3_2/sep", "conv4_2/sep", "conv5_6/sep")}
        selection = select_input_layer(1080, 40, candidates, lower_factor=0.35)
        assert selection.layer == "conv4_2/sep"

    def test_small_objects_pick_shallow_layer(self):
        shapes = mobilenet_layer_shapes((256, 144), alpha=0.25)
        candidates = {k: shapes[k] for k in ("conv2_1/sep", "conv2_2/sep", "conv3_2/sep", "conv4_2/sep")}
        selection = select_input_layer(144, 6, candidates)
        assert selection.layer in ("conv2_1/sep", "conv2_2/sep")

    def test_large_objects_pick_deeper_layer(self):
        shapes = mobilenet_layer_shapes((1920, 1080), alpha=1.0)
        candidates = {k: shapes[k] for k in ("conv2_2/sep", "conv3_2/sep", "conv4_2/sep", "conv5_6/sep")}
        small = select_input_layer(1080, 20, candidates)
        large = select_input_layer(1080, 60, candidates)
        assert large.reduction >= small.reduction

    def test_falls_back_to_closest_reduction(self):
        # Only one very shallow candidate: nothing matches the window, so it is returned.
        selection = select_input_layer(1080, 40, {"conv1": (540, 960, 32)})
        assert selection.layer == "conv1"

    def test_object_cells_consistency(self):
        selection = select_input_layer(1080, 40, {"x": (68, 120, 512)})
        assert selection.object_cells == pytest.approx(40 / (1080 / 68))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            select_input_layer(0, 40, {"x": (1, 1, 1)})
        with pytest.raises(ValueError):
            select_input_layer(1080, 0, {"x": (1, 1, 1)})
        with pytest.raises(ValueError):
            select_input_layer(1080, 40, {})
