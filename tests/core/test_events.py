"""Tests for events and the per-MC event detector."""

import numpy as np
import pytest

from repro.core.events import Event, EventDetector, EventKey, EventRecord
from repro.video.annotations import EventAnnotation
from repro.video.frame import Frame


class TestEvent:
    def test_length_and_frames(self):
        event = Event(1, "mc", 10, 14)
        assert event.length == 4
        assert list(event.frames()) == [10, 11, 12, 13]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Event(1, "mc", 5, 5)

    def test_to_annotation(self):
        annotation = Event(3, "dogs", 2, 6).to_annotation()
        assert isinstance(annotation, EventAnnotation)
        assert (annotation.start, annotation.end, annotation.label) == (2, 6, "dogs")


class TestEventDetector:
    def test_smooths_then_detects(self):
        detector = EventDetector("mc_a", window=5, votes=2)
        decisions = np.array([0, 1, 0, 1, 0, 0, 0, 0, 0, 0])
        smoothed, events = detector.detect(decisions)
        assert smoothed.sum() > 0
        assert len(events) == 1
        assert events[0].mc_name == "mc_a"
        assert events[0].event_id == 1

    def test_event_ids_persist_across_chunks(self):
        detector = EventDetector("mc_a", window=1, votes=1)
        _, first = detector.detect(np.array([1, 1, 0]))
        _, second = detector.detect(np.array([1, 1]), frame_offset=3)
        assert [e.event_id for e in first + second] == [1, 2]
        assert second[0].start == 3

    def test_isolated_blip_produces_no_event(self):
        detector = EventDetector("mc_a", window=5, votes=2)
        _, events = detector.detect(np.array([0, 0, 0, 1, 0, 0, 0]))
        assert events == []

    def test_annotate_frames_records_membership(self, rng):
        frames = [Frame(i, i / 15, rng.random((8, 8, 3)).astype(np.float32)) for i in range(6)]
        events = [Event(1, "mc_a", 1, 3), Event(7, "mc_b", 2, 5)]
        EventDetector.annotate_frames(frames, events)
        assert frames[0].event_memberships() == {}
        assert frames[1].event_memberships() == {"mc_a": 1}
        assert frames[2].event_memberships() == {"mc_a": 1, "mc_b": 7}
        assert frames[4].event_memberships() == {"mc_b": 7}

    def test_annotate_frames_ignores_out_of_range_indices(self, rng):
        frames = [Frame(0, 0.0, rng.random((8, 8, 3)).astype(np.float32))]
        EventDetector.annotate_frames(frames, [Event(1, "mc", 0, 5)])
        assert frames[0].event_memberships() == {"mc": 1}


class TestEventKey:
    def test_str_form(self):
        assert str(EventKey("cam003", 2, 7)) == "cam003/e2/7"

    def test_validation(self):
        with pytest.raises(ValueError):
            EventKey("cam", -1, 0)
        with pytest.raises(ValueError):
            EventKey("cam", 0, -1)

    def test_distinct_epochs_distinct_keys(self):
        assert EventKey("cam", 0, 1) != EventKey("cam", 1, 1)
        assert len({EventKey("cam", e, 1) for e in range(3)}) == 3


class TestEventRecord:
    def make(self, **overrides):
        fields = dict(
            key=EventKey("cam0", 0, 1),
            mc_name="mc_a",
            start=2,
            end=6,
            source_start=4,
            source_end=12,
            peak_score=0.875,
            closed_at=1.5,
        )
        fields.update(overrides)
        return EventRecord(**fields)

    def test_length_and_serialization(self):
        record = self.make()
        assert record.length == 4
        payload = record.to_dict()
        assert payload["key"] == "cam0/e0/1"
        assert payload["camera"] == "cam0"
        assert payload["epoch"] == 0
        assert payload["event_id"] == 1
        assert payload["source_start"] == 4
        assert payload["source_end"] == 12
        assert payload["peak_score"] == 0.875
        assert payload["closed_at"] == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(end=2)
        with pytest.raises(ValueError):
            self.make(source_end=4)


class TestDetectorBoundaries:
    """Stream-edge semantics: open runs, window tails, and flush finality."""

    def test_open_run_closes_at_flush(self):
        detector = EventDetector("mc", window=3, votes=2)
        mid_events = []
        for decision in [0, 1, 1, 1]:
            _, events = detector.push(decision)
            mid_events.extend(events)
        assert mid_events == []  # run still open at stream end
        _, events = detector.flush()
        assert [(e.event_id, e.start, e.end) for e in events] == [(1, 1, 4)]

    def test_window_tail_votes_emitted_at_flush(self):
        """Frames still pending in the voting window finalize at flush."""
        detector = EventDetector("mc", window=3, votes=2)
        smoothed = []
        for decision in [1, 1]:
            finalized, events = detector.push(decision)
            smoothed.extend(finalized)
            assert events == []
        assert len(smoothed) < 2  # the tail is still held by the window
        tail, events = detector.flush()
        smoothed.extend(tail)
        assert [s.frame_index for s in smoothed] == [0, 1]
        assert [(e.event_id, e.start, e.end) for e in events] == [(1, 0, 2)]

    def test_push_after_flush_raises(self):
        detector = EventDetector("mc", window=3, votes=2)
        detector.push(1)
        detector.flush()
        with pytest.raises(RuntimeError, match="flushed"):
            detector.push(0)

    def test_double_flush_raises(self):
        detector = EventDetector("mc", window=3, votes=2)
        detector.flush()
        with pytest.raises(RuntimeError, match="flushed"):
            detector.flush()

    def test_detect_equals_push_then_flush(self):
        """The batch and online paths agree decision-for-decision."""
        rng = np.random.default_rng(7)
        for _ in range(5):
            decisions = rng.integers(0, 2, size=40)
            batch = EventDetector("mc", window=5, votes=2)
            batch_smoothed, batch_events = batch.detect(decisions)
            online = EventDetector("mc", window=5, votes=2)
            online_smoothed, online_events = [], []
            for decision in decisions:
                finalized, events = online.push(int(decision))
                online_smoothed.extend(finalized)
                online_events.extend(events)
            finalized, events = online.flush()
            online_smoothed.extend(finalized)
            online_events.extend(events)
            assert [s.smoothed for s in online_smoothed] == list(batch_smoothed)
            assert [s.frame_index for s in online_smoothed] == list(range(len(decisions)))
            assert online_events == batch_events
