"""Tests for events and the per-MC event detector."""

import numpy as np
import pytest

from repro.core.events import Event, EventDetector
from repro.video.annotations import EventAnnotation
from repro.video.frame import Frame


class TestEvent:
    def test_length_and_frames(self):
        event = Event(1, "mc", 10, 14)
        assert event.length == 4
        assert list(event.frames()) == [10, 11, 12, 13]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Event(1, "mc", 5, 5)

    def test_to_annotation(self):
        annotation = Event(3, "dogs", 2, 6).to_annotation()
        assert isinstance(annotation, EventAnnotation)
        assert (annotation.start, annotation.end, annotation.label) == (2, 6, "dogs")


class TestEventDetector:
    def test_smooths_then_detects(self):
        detector = EventDetector("mc_a", window=5, votes=2)
        decisions = np.array([0, 1, 0, 1, 0, 0, 0, 0, 0, 0])
        smoothed, events = detector.detect(decisions)
        assert smoothed.sum() > 0
        assert len(events) == 1
        assert events[0].mc_name == "mc_a"
        assert events[0].event_id == 1

    def test_event_ids_persist_across_chunks(self):
        detector = EventDetector("mc_a", window=1, votes=1)
        _, first = detector.detect(np.array([1, 1, 0]))
        _, second = detector.detect(np.array([1, 1]), frame_offset=3)
        assert [e.event_id for e in first + second] == [1, 2]
        assert second[0].start == 3

    def test_isolated_blip_produces_no_event(self):
        detector = EventDetector("mc_a", window=5, votes=2)
        _, events = detector.detect(np.array([0, 0, 0, 1, 0, 0, 0]))
        assert events == []

    def test_annotate_frames_records_membership(self, rng):
        frames = [Frame(i, i / 15, rng.random((8, 8, 3)).astype(np.float32)) for i in range(6)]
        events = [Event(1, "mc_a", 1, 3), Event(7, "mc_b", 2, 5)]
        EventDetector.annotate_frames(frames, events)
        assert frames[0].event_memberships() == {}
        assert frames[1].event_memberships() == {"mc_a": 1}
        assert frames[2].event_memberships() == {"mc_a": 1, "mc_b": 7}
        assert frames[4].event_memberships() == {"mc_b": 7}

    def test_annotate_frames_ignores_out_of_range_indices(self, rng):
        frames = [Frame(0, 0.0, rng.random((8, 8, 3)).astype(np.float32))]
        EventDetector.annotate_frames(frames, [Event(1, "mc", 0, 5)])
        assert frames[0].event_memberships() == {"mc": 1}
