"""Tests for the classifier trainer."""

import numpy as np
import pytest

from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.training import TrainingConfig, TrainingHistory, train_classifier
from repro.nn.optimizers import SGD

FEATURE_SHAPE = (3, 4, 6)


def make_mc(seed=0):
    cfg = MicroClassifierConfig("trainee", "conv4_2/sep")
    return build_microclassifier(
        "localized", cfg, FEATURE_SHAPE, rng=np.random.default_rng(seed)
    )


def make_dataset(n=32, seed=0, positive_fraction=0.5):
    rng = np.random.default_rng(seed)
    x = rng.random((n, *FEATURE_SHAPE))
    y = (rng.random(n) < positive_fraction).astype(float)
    x[y == 1, :, :, 1] += 1.0  # channel-1 boost marks positives
    return x, y


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [{"epochs": 0}, {"batch_size": 0}, {"learning_rate": 0}, {"positive_weight": 0.0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)

    def test_fractional_epochs_allowed(self):
        """The paper trains on 0.5 epochs of data."""
        TrainingConfig(epochs=0.5)


class TestTrainClassifier:
    def test_reduces_loss_and_separates_classes(self):
        mc = make_mc()
        x, y = make_dataset()
        history = train_classifier(
            mc, x, y, TrainingConfig(epochs=5, batch_size=8, learning_rate=3e-3, seed=0)
        )
        assert isinstance(history, TrainingHistory)
        assert history.steps > 0
        assert history.final_loss < history.losses[0]
        probs = mc.predict_proba_batch(x)
        assert probs[y == 1].mean() > probs[y == 0].mean()

    def test_fractional_epoch_sees_fraction_of_samples(self):
        mc = make_mc()
        x, y = make_dataset(n=64)
        history = train_classifier(
            mc, x, y, TrainingConfig(epochs=0.5, batch_size=8, balanced_sampling=False, seed=0)
        )
        assert history.samples_seen == 32

    def test_balanced_sampling_with_rare_positives(self):
        mc = make_mc()
        x, y = make_dataset(n=60, positive_fraction=0.1)
        history = train_classifier(
            mc, x, y, TrainingConfig(epochs=3, batch_size=10, balanced_sampling=True, seed=0)
        )
        probs = mc.predict_proba_batch(x)
        assert probs[y == 1].mean() > probs[y == 0].mean()
        assert history.samples_seen >= 60

    def test_custom_optimizer_is_used(self):
        mc = make_mc()
        x, y = make_dataset(n=16)
        history = train_classifier(
            mc,
            x,
            y,
            TrainingConfig(epochs=1, batch_size=8),
            optimizer=SGD(learning_rate=0.01),
        )
        assert history.steps == 2

    def test_shape_mismatch_rejected(self):
        mc = make_mc()
        x, _ = make_dataset(n=8)
        with pytest.raises(ValueError, match="disagree on sample count"):
            train_classifier(mc, x, np.zeros(5))

    def test_empty_dataset_rejected(self):
        mc = make_mc()
        with pytest.raises(ValueError):
            train_classifier(mc, np.zeros((0, *FEATURE_SHAPE)), np.zeros(0))

    def test_mean_and_final_loss_nan_when_untrained(self):
        history = TrainingHistory()
        assert np.isnan(history.final_loss)
        assert np.isnan(history.mean_loss)

    def test_all_negative_labels_do_not_crash(self):
        mc = make_mc()
        x, _ = make_dataset(n=16)
        history = train_classifier(mc, x, np.zeros(16), TrainingConfig(epochs=1, batch_size=8))
        assert history.steps > 0
