"""Tests for the three microclassifier architectures (Figure 2)."""

import numpy as np
import pytest

from repro.core.architectures import (
    FullFrameObjectDetectorMC,
    LocalizedBinaryClassifierMC,
    WindowedLocalizedBinaryClassifierMC,
    build_microclassifier,
)
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.training import TrainingConfig, train_classifier

FEATURE_SHAPE = (4, 6, 8)
RNG = np.random.default_rng(0)


def config(name="mc", layer="conv4_2/sep", threshold=0.5):
    return MicroClassifierConfig(name=name, input_layer=layer, threshold=threshold)


def build(architecture, **kwargs):
    return build_microclassifier(architecture, config(architecture), FEATURE_SHAPE, **kwargs)


def make_separable_dataset(n=40, shape=FEATURE_SHAPE, seed=1):
    """Feature maps whose label depends on channel 0's mean — learnable by all MCs."""
    rng = np.random.default_rng(seed)
    x = rng.random((n, *shape))
    y = (x[..., 0].mean(axis=(1, 2)) > 0.5).astype(float)
    x[y == 1, :, :, 0] += 0.5
    return x, y


class TestBuildMicroclassifier:
    def test_factory_builds_each_architecture(self):
        assert isinstance(build("full_frame"), FullFrameObjectDetectorMC)
        assert isinstance(build("localized"), LocalizedBinaryClassifierMC)
        assert isinstance(build("windowed"), WindowedLocalizedBinaryClassifierMC)

    def test_unknown_architecture(self):
        with pytest.raises(ValueError, match="Unknown architecture"):
            build_microclassifier("transformer", config(), FEATURE_SHAPE)

    def test_architecture_kwargs_forwarded(self):
        mc = build_microclassifier("windowed", config("w"), FEATURE_SHAPE, window=3)
        assert mc.window == 3


class TestCommonBehaviour:
    @pytest.mark.parametrize("architecture", ["full_frame", "localized", "windowed"])
    def test_probabilities_in_unit_interval(self, architecture):
        mc = build(architecture)
        probs = mc.predict_proba_batch(RNG.random((5, *FEATURE_SHAPE)))
        assert probs.shape == (5,)
        assert np.all((probs >= 0) & (probs <= 1))

    @pytest.mark.parametrize("architecture", ["full_frame", "localized", "windowed"])
    def test_single_and_batch_prediction_agree(self, architecture):
        mc = build(architecture)
        x = RNG.random(FEATURE_SHAPE)
        single = mc.predict_proba(x)
        batch = mc.predict_proba_batch(x[None])[0]
        assert single == pytest.approx(batch)

    @pytest.mark.parametrize("architecture", ["full_frame", "localized", "windowed"])
    def test_classify_uses_threshold(self, architecture):
        mc = build(architecture)
        assert mc.classify(0.9) is True
        assert mc.classify(0.1) is False

    @pytest.mark.parametrize("architecture", ["full_frame", "localized", "windowed"])
    def test_has_trainable_parameters(self, architecture):
        mc = build(architecture)
        assert mc.num_parameters() > 0

    @pytest.mark.parametrize("architecture", ["full_frame", "localized", "windowed"])
    def test_marginal_cost_positive_and_far_below_base_dnn(self, architecture, tiny_base_dnn):
        mc = build(architecture)
        assert 0 < mc.multiply_adds()

    @pytest.mark.parametrize("architecture", ["full_frame", "localized", "windowed"])
    def test_unbuilt_usage_raises(self, architecture):
        classes = {
            "full_frame": FullFrameObjectDetectorMC,
            "localized": LocalizedBinaryClassifierMC,
            "windowed": WindowedLocalizedBinaryClassifierMC,
        }
        mc = classes[architecture](config("raw"))
        with pytest.raises(RuntimeError):
            mc.predict_proba_batch(RNG.random((1, *FEATURE_SHAPE)))

    @pytest.mark.parametrize(
        "architecture, margin",
        [("full_frame", 0.05), ("localized", 0.15), ("windowed", 0.15)],
    )
    def test_trainable_on_separable_problem(self, architecture, margin):
        mc = build(architecture)
        x, y = make_separable_dataset()
        history = train_classifier(
            mc, x, y, TrainingConfig(epochs=4, batch_size=8, learning_rate=3e-3, seed=0)
        )
        probs = mc.predict_proba_batch(x)
        assert probs[y == 1].mean() > probs[y == 0].mean() + margin
        assert np.isfinite(history.final_loss)


class TestFullFrameObjectDetector:
    def test_translation_invariance_of_max_aggregation(self):
        """Moving a distinctive local pattern must not change the frame score."""
        mc = build("full_frame")
        base = np.zeros((1, *FEATURE_SHAPE))
        a = base.copy()
        a[0, 0, 0, :] = 5.0
        b = base.copy()
        b[0, 3, 5, :] = 5.0
        assert mc.predict_proba_batch(a)[0] == pytest.approx(mc.predict_proba_batch(b)[0], rel=1e-9)

    def test_cost_scales_linearly_with_spatial_size(self):
        mc = build("full_frame")
        small = mc.multiply_adds((4, 6, 8))
        large = mc.multiply_adds((8, 12, 8))
        assert large == 4 * small

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            FullFrameObjectDetectorMC(config(), hidden_filters=0)


class TestLocalizedBinaryClassifier:
    def test_uses_separable_convolutions(self):
        mc = build("localized")
        layer_names = mc.model.layer_names()
        assert any("sepconv" in name for name in layer_names)

    def test_cost_matches_paper_formula_structure(self):
        mc = build("localized", )
        h, w, c = FEATURE_SHAPE
        first = h * w * c * (9 + 16)
        second = -(-h // 2) * -(-w // 2) * 16 * (9 + 32)
        fc = -(-h // 2) * -(-w // 2) * 32 * 200
        head = 200
        assert mc.multiply_adds() == first + second + fc + head

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LocalizedBinaryClassifierMC(config(), fc_units=0)


class TestWindowedLocalizedBinaryClassifier:
    def test_window_must_be_odd(self):
        with pytest.raises(ValueError):
            WindowedLocalizedBinaryClassifierMC(config(), window=4)

    def test_stream_prediction_length(self):
        mc = build("windowed")
        feature_maps = RNG.random((9, *FEATURE_SHAPE))
        probs = mc.predict_proba_stream(feature_maps)
        assert probs.shape == (9,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_buffered_reductions_are_reused(self):
        mc = build("windowed")
        feature_map = RNG.random(FEATURE_SHAPE)
        first = mc.buffer_reduction(0, feature_map)
        second = mc.buffer_reduction(0, feature_map)
        assert first is second

    def test_buffer_eviction_keeps_recent_entries(self):
        mc = build_microclassifier("windowed", config("w"), FEATURE_SHAPE, window=3)
        for i in range(mc._buffer_capacity + 5):
            mc.buffer_reduction(i, RNG.random(FEATURE_SHAPE))
        assert len(mc._reduction_buffer) == mc._buffer_capacity
        mc.reset_buffer()
        assert len(mc._reduction_buffer) == 0

    def test_predict_window_requires_exact_window_length(self):
        mc = build_microclassifier("windowed", config("w"), FEATURE_SHAPE, window=3)
        reduced = [mc.reduce_map(RNG.random(FEATURE_SHAPE)) for _ in range(2)]
        with pytest.raises(ValueError):
            mc.predict_window(reduced)

    def test_stream_prediction_uses_temporal_context(self):
        """A frame's score must depend on its neighbours, not only on itself."""
        mc = build("windowed")
        constant = np.tile(RNG.random(FEATURE_SHAPE), (5, 1, 1, 1))
        varied = constant.copy()
        varied[0] += 2.0
        varied[4] += 2.0
        p_constant = mc.predict_proba_stream(constant)[2]
        p_varied = mc.predict_proba_stream(varied)[2]
        assert p_constant != pytest.approx(p_varied, abs=1e-6)

    def test_marginal_cost_includes_one_reduction_plus_head(self):
        mc = build("windowed")
        reduce_cost = mc.reduce.multiply_adds(FEATURE_SHAPE)
        head_cost = mc.head.multiply_adds()
        assert mc.multiply_adds() == reduce_cost + head_cost
