"""Tests for the incremental streaming pipeline and its online primitives.

The load-bearing property: :class:`StreamingPipeline` must produce results
*identical* to the batch :class:`FilterForwardPipeline` — probabilities,
decisions, smoothed outputs, events, matched indices, and encoded upload
bits — while holding only O(1) state per frame.  The batch pipeline now
delegates to the streaming engine, so the reference below independently
re-implements the seed's original triple-pass flow from public pieces
(``collect_feature_maps`` + chunked scoring + batch ``EventDetector.detect``
+ ``codec.encode``) to keep the comparison meaningful.
"""

import numpy as np
import pytest

from repro.core.architectures import build_microclassifier
from repro.core.events import EventDetector
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.pipeline import FilterForwardPipeline, PipelineConfig
from repro.core.smoothing import KVotingSmoother, StreamingKVotingSmoother
from repro.core.streaming import StreamingPipeline
from repro.features.extractor import FeatureMapCrop
from repro.video.frame import Frame
from repro.video.stream import InMemoryVideoStream


# -- online smoother ----------------------------------------------------------
class TestStreamingKVotingSmoother:
    @pytest.mark.parametrize("window,votes", [(1, 1), (2, 1), (3, 2), (5, 2), (5, 5), (7, 3)])
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 17, 64])
    def test_matches_batch_smoother(self, window, votes, n):
        rng = np.random.default_rng(window * 100 + votes * 10 + n)
        decisions = rng.integers(0, 2, size=n)
        batch = KVotingSmoother(window=window, votes=votes).smooth(decisions)
        online = StreamingKVotingSmoother(window=window, votes=votes)
        emitted = []
        for d in decisions:
            emitted.extend(online.push(int(d)))
        emitted.extend(online.flush())
        np.testing.assert_array_equal(np.array(emitted, dtype=np.int8), batch)

    def test_emission_lookahead_is_bounded(self):
        online = StreamingKVotingSmoother(window=5, votes=2)
        emitted = []
        for i in range(20):
            out = online.push(1)
            emitted.extend(out)
            # smoothed[i] needs decisions through i + 2 (window=5), no more.
            assert online.pending <= 2
        assert len(emitted) == 18
        assert len(online.flush()) == 2

    def test_window_one_emits_immediately(self):
        online = StreamingKVotingSmoother(window=1, votes=1)
        assert online.push(1) == [1]
        assert online.push(0) == [0]
        assert online.flush() == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StreamingKVotingSmoother(window=0)
        with pytest.raises(ValueError):
            StreamingKVotingSmoother(window=3, votes=4)


# -- online event detector ----------------------------------------------------
class TestEventDetectorOnline:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_batch_detection(self, seed):
        rng = np.random.default_rng(seed)
        decisions = rng.integers(0, 2, size=40)
        batch_detector = EventDetector("mc", window=5, votes=2)
        batch_smoothed, batch_events = batch_detector.detect(decisions)

        online = EventDetector("mc", window=5, votes=2)
        smoothed, events = [], []
        for d in decisions:
            finalized, closed = online.push(int(d))
            smoothed.extend(f.smoothed for f in finalized)
            events.extend(closed)
        finalized, closed = online.flush()
        smoothed.extend(f.smoothed for f in finalized)
        events.extend(closed)

        np.testing.assert_array_equal(np.array(smoothed, dtype=np.int8), batch_smoothed)
        assert events == batch_events

    def test_event_ids_assigned_at_run_open(self):
        online = EventDetector("mc", window=1, votes=1)
        finalized, closed = online.push(1)
        assert finalized[0].event_id == 1 and not closed
        finalized, closed = online.push(0)
        assert finalized[0].event_id is None
        assert [e.event_id for e in closed] == [1]
        online.push(1)
        _, closed = online.flush()
        assert [e.event_id for e in closed] == [2]

    def test_flush_closes_open_event(self):
        online = EventDetector("mc", window=1, votes=1)
        for _ in range(3):
            online.push(1)
        _, closed = online.flush()
        assert len(closed) == 1
        assert (closed[0].start, closed[0].end) == (0, 3)

    def test_positions_track_stream_order(self):
        online = EventDetector("mc", window=3, votes=1)
        positions = []
        for d in [0, 1, 0, 0, 0, 1]:
            finalized, _ = online.push(d)
            positions.extend(f.frame_index for f in finalized)
        finalized, _ = online.flush()
        positions.extend(f.frame_index for f in finalized)
        assert positions == list(range(6))


# -- streaming pipeline equivalence -------------------------------------------
def make_mc(extractor, name, architecture="localized", layer="conv4_2/sep", crop=None, threshold=0.5):
    cfg = MicroClassifierConfig(name, layer, crop=crop, threshold=threshold, upload_bitrate=50_000)
    shape = extractor.cropped_layer_shape(layer, crop, (32, 48))
    return build_microclassifier(architecture, cfg, shape)


def reference_process(pipeline, stream):
    """The seed's original triple-pass batch flow, re-implemented independently."""
    feature_maps = pipeline.collect_feature_maps(stream)
    frames = list(stream)
    reference = {}
    for mc in pipeline.microclassifiers:
        maps = feature_maps[mc.name]
        probabilities = pipeline._score(mc, maps)
        decisions = (probabilities >= mc.config.threshold).astype(np.int8)
        detector = EventDetector(
            mc.name,
            window=pipeline.config.smoothing_window,
            votes=pipeline.config.smoothing_votes,
        )
        smoothed, events = detector.detect(decisions)
        matched = np.flatnonzero(smoothed)
        encoded = None
        if matched.size:
            encoded = pipeline.codec.encode(
                [frames[i] for i in matched],
                mc.config.upload_bitrate,
                stream.frame_rate,
                stream.resolution,
                stream_duration=stream.duration,
            )
        reference[mc.name] = (probabilities, decisions, smoothed, events, matched, encoded)
    return reference


@pytest.fixture
def three_mcs(tiny_extractor):
    return [
        make_mc(tiny_extractor, "mc_localized", threshold=0.45),
        make_mc(tiny_extractor, "mc_full_frame", architecture="full_frame", layer="conv5_6/sep", threshold=0.55),
        make_mc(
            tiny_extractor,
            "mc_windowed",
            architecture="windowed",
            crop=FeatureMapCrop(0, 8, 40, 32),
        ),
    ]


class TestStreamingPipelineEquivalence:
    @pytest.mark.parametrize(
        "seed,num_frames,batch_size,window,votes",
        [
            (0, 23, 4, 5, 2),
            (1, 9, 1, 3, 1),
            (2, 12, 32, 5, 2),
            (3, 5, 5, 1, 1),
            (4, 16, 7, 4, 3),
        ],
    )
    def test_identical_to_batch_reference(
        self, tiny_extractor, three_mcs, seed, num_frames, batch_size, window, votes
    ):
        """Property: streaming == batch on random synthetic streams."""
        rng = np.random.default_rng(seed)
        arrays = [rng.random((32, 48, 3)).astype(np.float32) for _ in range(num_frames)]
        stream = InMemoryVideoStream.from_arrays(arrays, frame_rate=15.0)
        config = PipelineConfig(batch_size=batch_size, smoothing_window=window, smoothing_votes=votes)
        pipeline = FilterForwardPipeline(tiny_extractor, three_mcs, config)
        reference = reference_process(pipeline, stream)

        session = StreamingPipeline(
            tiny_extractor,
            three_mcs,
            config=config,
            codec=pipeline.codec,
            frame_rate=stream.frame_rate,
            resolution=stream.resolution,
        )
        result = session.process_stream(stream)

        assert result.num_frames == num_frames
        for name, (probabilities, decisions, smoothed, events, matched, encoded) in reference.items():
            mc_result = result.per_mc[name]
            np.testing.assert_allclose(mc_result.probabilities, probabilities, rtol=0, atol=1e-12)
            np.testing.assert_array_equal(mc_result.decisions, decisions)
            np.testing.assert_array_equal(mc_result.smoothed, smoothed)
            assert mc_result.events == events
            np.testing.assert_array_equal(mc_result.matched_frame_indices, matched)
            if encoded is None:
                assert mc_result.encoded is None
            else:
                got = [(f.index, f.bits) for f in mc_result.encoded.frames]
                want = [(f.index, f.bits) for f in encoded.frames]
                assert [i for i, _ in got] == [i for i, _ in want]
                np.testing.assert_allclose(
                    [b for _, b in got], [b for _, b in want], rtol=0, atol=1e-9
                )

    def test_batch_pipeline_delegates_identically(self, tiny_extractor, three_mcs, tiny_pipeline_stream):
        """FilterForwardPipeline.process_stream == explicit push/finish."""
        config = PipelineConfig(batch_size=4)
        pipeline = FilterForwardPipeline(tiny_extractor, three_mcs, config)
        batch_result = pipeline.process_stream(tiny_pipeline_stream, annotate_frames=False)
        session = pipeline.streaming_session(
            tiny_pipeline_stream.frame_rate,
            tiny_pipeline_stream.resolution,
            annotate_frames=False,
        )
        for frame in tiny_pipeline_stream:
            session.push(frame)
        stream_result = session.finish(stream_duration=tiny_pipeline_stream.duration)
        for name, mc_result in batch_result.per_mc.items():
            other = stream_result.per_mc[name]
            np.testing.assert_array_equal(mc_result.probabilities, other.probabilities)
            np.testing.assert_array_equal(mc_result.smoothed, other.smoothed)
            assert mc_result.events == other.events
        assert batch_result.total_uploaded_bits == stream_result.total_uploaded_bits


class TestStreamingPipelineBehavior:
    def test_bounded_memory(self, tiny_extractor, three_mcs, rng):
        """Internal buffers must not grow with stream length (O(1) per frame)."""
        config = PipelineConfig(batch_size=4, smoothing_window=5, smoothing_votes=2)
        session = StreamingPipeline(
            tiny_extractor, three_mcs, config=config, frame_rate=15.0, resolution=(48, 32)
        )
        for i in range(60):
            pixels = rng.random((32, 48, 3)).astype(np.float32)
            session.push(Frame(index=i, timestamp=i / 15.0, pixels=pixels))
            # Pending frames: at most one chunk plus the smoothing lookahead
            # plus the windowed MC's temporal context.
            assert session.pending_frames <= config.batch_size + 5 + 5
            for state in session._states:
                assert len(state.chunk) < config.batch_size
                if state.is_windowed:
                    assert len(state.reduced) <= config.batch_size + state.mc.window + 1
        result = session.finish()
        assert result.num_frames == 60
        assert session.pending_frames == 0

    def test_updates_report_matches_and_events(self, tiny_extractor, tiny_pipeline_stream):
        accept = make_mc(tiny_extractor, "accept", threshold=0.01)
        session = StreamingPipeline(
            tiny_extractor,
            [accept],
            config=PipelineConfig(batch_size=1),
            frame_rate=tiny_pipeline_stream.frame_rate,
            resolution=tiny_pipeline_stream.resolution,
        )
        matches = []
        for frame in tiny_pipeline_stream:
            update = session.push(frame)
            matches.extend(update.new_matches)
        result = session.finish(stream_duration=tiny_pipeline_stream.duration)
        # All matches eventually surface (the tail arrives via finish()).
        assert len(matches) <= result.per_mc["accept"].num_matched_frames
        assert result.per_mc["accept"].num_matched_frames == len(tiny_pipeline_stream)
        assert len(result.per_mc["accept"].events) == 1

    def test_push_after_finish_raises(self, tiny_extractor, tiny_pipeline_stream):
        mc = make_mc(tiny_extractor, "mc")
        session = StreamingPipeline(tiny_extractor, [mc], frame_rate=15.0)
        session.push(tiny_pipeline_stream[0])
        session.finish()
        with pytest.raises(RuntimeError):
            session.push(tiny_pipeline_stream[1])

    def test_finish_is_idempotent(self, tiny_extractor, tiny_pipeline_stream):
        mc = make_mc(tiny_extractor, "mc")
        session = StreamingPipeline(tiny_extractor, [mc], frame_rate=15.0)
        for frame in tiny_pipeline_stream:
            session.push(frame)
        first = session.finish()
        assert session.finish() is first

    def test_annotations_match_batch(self, tiny_extractor, rng):
        accept = make_mc(tiny_extractor, "accept", threshold=0.01)
        arrays = [rng.random((32, 48, 3)).astype(np.float32) for _ in range(8)]
        stream = InMemoryVideoStream.from_arrays(arrays, frame_rate=15.0)
        pipeline = FilterForwardPipeline(tiny_extractor, [accept])
        result = pipeline.process_stream(stream, annotate_frames=True)
        event_id = result.per_mc["accept"].events[0].event_id
        assert stream[3].event_memberships() == {"accept": event_id}

    def test_empty_session_finishes_cleanly(self, tiny_extractor):
        mc = make_mc(tiny_extractor, "mc")
        session = StreamingPipeline(tiny_extractor, [mc], frame_rate=15.0, resolution=(48, 32))
        result = session.finish()
        assert result.num_frames == 0
        assert result.per_mc["mc"].probabilities.size == 0
        assert result.total_uploaded_bits == 0.0

    def test_validates_microclassifiers(self, tiny_extractor):
        with pytest.raises(ValueError):
            StreamingPipeline(tiny_extractor, [], frame_rate=15.0)

    def test_set_threshold_overrides_decisions_from_now_on(self, tiny_extractor, rng):
        # Same frames, one session with the trained threshold and one whose
        # threshold is raised to 1-epsilon mid-stream: decisions drained
        # before the change are untouched, later ones go all-negative.
        arrays = [rng.random((32, 48, 3)).astype(np.float32) for _ in range(10)]
        stream = InMemoryVideoStream.from_arrays(arrays, frame_rate=15.0)
        # batch_size=1 drains each frame's decision on its own push, so the
        # override's "from now on" boundary is exactly the frame index.
        config = PipelineConfig(batch_size=1)
        plain = StreamingPipeline(
            tiny_extractor,
            [make_mc(tiny_extractor, "mc", threshold=0.01)],
            config=config,
            frame_rate=15.0,
        )
        reference = plain.process_stream(stream)
        session = StreamingPipeline(
            tiny_extractor,
            [make_mc(tiny_extractor, "mc", threshold=0.01)],
            config=config,
            frame_rate=15.0,
        )
        assert session.current_threshold() == 0.01
        for i, frame in enumerate(stream):
            if i == 5:
                session.set_threshold(0.999, mc_name="mc")
                assert session.current_threshold("mc") == 0.999
            session.push(frame)
        result = session.finish()
        # Probabilities are threshold-independent; decisions diverge only
        # after the override landed.
        assert np.array_equal(
            result.per_mc["mc"].probabilities, reference.per_mc["mc"].probabilities
        )
        assert np.array_equal(
            result.per_mc["mc"].decisions[:5], reference.per_mc["mc"].decisions[:5]
        )
        assert not result.per_mc["mc"].decisions[5:].any()
        # The MC object itself keeps its configured threshold (shared-model
        # safety: overrides are session state).
        assert session.microclassifiers[0].config.threshold == 0.01

    def test_set_threshold_validation(self, tiny_extractor, tiny_pipeline_stream):
        session = StreamingPipeline(
            tiny_extractor, [make_mc(tiny_extractor, "mc")], frame_rate=15.0
        )
        with pytest.raises(ValueError, match="threshold"):
            session.set_threshold(0.0)
        with pytest.raises(KeyError, match="no_such_mc"):
            session.set_threshold(0.5, mc_name="no_such_mc")
        session.push(tiny_pipeline_stream[0])
        session.finish()
        with pytest.raises(RuntimeError, match="finished"):
            session.set_threshold(0.5)

    def test_rejects_bad_frame_rate(self, tiny_extractor):
        mc = make_mc(tiny_extractor, "mc")
        with pytest.raises(ValueError):
            StreamingPipeline(tiny_extractor, [mc], frame_rate=0.0)


class TestStreamingEventRecords:
    """Closed events surface as first-class EventRecords with global keys."""

    def run_session(self, tiny_extractor, tiny_pipeline_stream, camera_id=None, epoch=0):
        accept = make_mc(tiny_extractor, "accept", threshold=0.01)
        session = StreamingPipeline(
            tiny_extractor,
            [accept],
            config=PipelineConfig(batch_size=1),
            frame_rate=tiny_pipeline_stream.frame_rate,
            resolution=tiny_pipeline_stream.resolution,
        )
        if camera_id is not None:
            session.bind_identity(camera_id, session_epoch=epoch)
        records = []
        for frame in tiny_pipeline_stream:
            records.extend(session.push(frame).closed_records)
        result = session.finish(stream_duration=tiny_pipeline_stream.duration)
        return session, result, records

    def test_records_mirror_closed_events(self, tiny_extractor, tiny_pipeline_stream):
        session, result, _ = self.run_session(
            tiny_extractor, tiny_pipeline_stream, camera_id="cam007", epoch=3
        )
        events = result.per_mc["accept"].events
        assert len(session.closed_records) == len(events) == 1
        record = session.closed_records[0]
        event = events[0]
        assert record.key.camera_id == "cam007"
        assert record.key.session_epoch == 3
        assert record.key.event_id == event.event_id
        assert record.mc_name == "accept"
        assert (record.start, record.end) == (event.start, event.end)
        assert record.source_start == session.source_indices[event.start]
        assert record.source_end == session.source_indices[event.end - 1] + 1
        assert record.peak_score == max(
            result.per_mc["accept"].probabilities[event.start : event.end]
        )
        # The session never stamps wall-clock closure; the runtime does.
        assert record.closed_at == -1.0

    def test_update_records_plus_finish_cover_everything(
        self, tiny_extractor, tiny_pipeline_stream
    ):
        session, _, pushed = self.run_session(tiny_extractor, tiny_pipeline_stream)
        assert pushed == session.closed_records[: len(pushed)]
        assert len(session.closed_records) >= len(pushed)

    def test_default_identity(self, tiny_extractor, tiny_pipeline_stream):
        session, _, _ = self.run_session(tiny_extractor, tiny_pipeline_stream)
        assert session.closed_records[0].key.camera_id == "stream"
        assert session.closed_records[0].key.session_epoch == 0

    def test_bind_identity_rejects_negative_epoch(self, tiny_extractor):
        session = StreamingPipeline(
            tiny_extractor, [make_mc(tiny_extractor, "mc")], frame_rate=15.0
        )
        with pytest.raises(ValueError):
            session.bind_identity("cam0", session_epoch=-1)
