"""Tests for the microclassifier configuration and base API."""

import numpy as np
import pytest

from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig, stack_feature_maps
from repro.features.extractor import FeatureMapCrop
from repro.video.frame import Frame


class TestMicroClassifierConfig:
    def test_valid_config(self):
        cfg = MicroClassifierConfig("dogs", "conv4_2/sep")
        assert cfg.threshold == 0.5
        assert cfg.crop is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"threshold": 0.0},
            {"threshold": 1.0},
            {"upload_bitrate": 0.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        base = dict(name="mc", input_layer="conv4_2/sep")
        base.update(kwargs)
        with pytest.raises(ValueError):
            MicroClassifierConfig(**base)

    def test_config_is_frozen(self):
        cfg = MicroClassifierConfig("mc", "conv4_2/sep")
        with pytest.raises(AttributeError):
            cfg.threshold = 0.9  # type: ignore[misc]


class TestMicroClassifierWithExtractor:
    def test_build_for_extractor_uses_cropped_shape(self, tiny_extractor):
        crop = FeatureMapCrop(0, 16, 48, 32)
        cfg = MicroClassifierConfig("mc", "conv4_2/sep", crop=crop)
        mc = build_microclassifier(
            "localized", cfg, tiny_extractor.cropped_layer_shape("conv4_2/sep", crop, (32, 48))
        )
        assert mc.input_shape == tiny_extractor.cropped_layer_shape("conv4_2/sep", crop, (32, 48))

    def test_score_frame_end_to_end(self, tiny_extractor, rng):
        cfg = MicroClassifierConfig("mc", "conv4_2/sep")
        mc = build_microclassifier("localized", cfg, tiny_extractor.layer_shape("conv4_2/sep"))
        frame = Frame(0, 0.0, rng.random((32, 48, 3)).astype(np.float32))
        probability = mc.score_frame(tiny_extractor, frame)
        assert 0.0 <= probability <= 1.0

    def test_score_frame_with_crop(self, tiny_extractor, rng):
        crop = FeatureMapCrop(0, 16, 48, 32)
        cfg = MicroClassifierConfig("mc", "conv4_2/sep", crop=crop)
        mc = build_microclassifier(
            "localized", cfg, tiny_extractor.cropped_layer_shape("conv4_2/sep", crop, (32, 48))
        )
        frame = Frame(0, 0.0, rng.random((32, 48, 3)).astype(np.float32))
        assert 0.0 <= mc.score_frame(tiny_extractor, frame) <= 1.0

    def test_build_for_extractor_convenience(self, tiny_extractor):
        cfg = MicroClassifierConfig("mc", "conv5_6/sep")
        from repro.core.architectures import FullFrameObjectDetectorMC

        mc = FullFrameObjectDetectorMC(cfg)
        mc.build_for_extractor(tiny_extractor, frame_size=(32, 48))
        assert mc.built
        assert mc.input_shape == tiny_extractor.layer_shape("conv5_6/sep")


class TestStackFeatureMaps:
    def test_stacks_to_batch(self, rng):
        maps = [rng.random((3, 4, 2)) for _ in range(5)]
        batch = stack_feature_maps(maps)
        assert batch.shape == (5, 3, 4, 2)
        assert batch.dtype == np.float64

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stack_feature_maps([])
