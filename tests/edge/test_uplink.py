"""Tests for the constrained uplink."""

import pytest

from repro.edge.uplink import ConstrainedUplink, SharedUplink


class TestConstrainedUplink:
    def test_transfer_duration_is_bits_over_capacity(self):
        uplink = ConstrainedUplink(capacity_bps=1000)
        transfer = uplink.upload(5000)
        assert transfer.duration == pytest.approx(5.0)
        assert transfer.start_time == 0.0

    def test_transfers_are_serialized(self):
        uplink = ConstrainedUplink(capacity_bps=1000)
        first = uplink.upload(1000, available_at=0.0)
        second = uplink.upload(1000, available_at=0.0)
        assert second.start_time == pytest.approx(first.end_time)
        assert uplink.busy_until == pytest.approx(2.0)

    def test_transfer_waits_for_availability_time(self):
        uplink = ConstrainedUplink(capacity_bps=1000)
        transfer = uplink.upload(500, available_at=10.0)
        assert transfer.start_time == 10.0
        assert transfer.end_time == pytest.approx(10.5)

    def test_total_bits_and_utilization(self):
        uplink = ConstrainedUplink(capacity_bps=2000)
        uplink.upload(1000)
        uplink.upload(3000)
        assert uplink.total_bits == 4000
        assert uplink.utilization(duration=10.0) == pytest.approx(0.2)

    def test_backlog_reports_lag_behind_real_time(self):
        uplink = ConstrainedUplink(capacity_bps=100)
        uplink.upload(1000)  # takes 10 seconds
        assert uplink.backlog_seconds(now=4.0) == pytest.approx(6.0)
        assert uplink.backlog_seconds(now=20.0) == 0.0

    def test_reset_clears_history(self):
        uplink = ConstrainedUplink(capacity_bps=100)
        uplink.upload(100)
        uplink.reset()
        assert uplink.total_bits == 0
        assert uplink.busy_until == 0.0
        assert uplink.transfers == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConstrainedUplink(capacity_bps=0)
        uplink = ConstrainedUplink(capacity_bps=100)
        with pytest.raises(ValueError):
            uplink.upload(-1)
        with pytest.raises(ValueError):
            uplink.utilization(duration=0)

    def test_transfer_descriptions_recorded(self):
        uplink = ConstrainedUplink(capacity_bps=100)
        uplink.upload(10, description="event 1")
        assert uplink.transfers[0].description == "event 1"


class TestSharedUplink:
    def test_weighted_allocation(self):
        shared = SharedUplink(1000.0, {"node0": 3.0, "node1": 1.0})
        assert shared.links["node0"].capacity_bps == pytest.approx(750.0)
        assert shared.links["node1"].capacity_bps == pytest.approx(250.0)
        assert shared.allocated_bps == pytest.approx(1000.0)

    def test_sequence_means_equal_split(self):
        shared = SharedUplink(900.0, ["a", "b", "c"])
        for link in shared.links.values():
            assert link.capacity_bps == pytest.approx(300.0)

    def test_manual_allocation_and_oversubscription(self):
        shared = SharedUplink(1000.0)
        shared.allocate("node0", 600.0)
        with pytest.raises(ValueError, match="oversubscribes"):
            shared.allocate("node1", 500.0)
        shared.allocate("node1", 400.0)
        with pytest.raises(ValueError, match="already holds"):
            shared.allocate("node0", 1.0)

    def test_aggregate_accounting(self):
        shared = SharedUplink(1000.0, ["node0", "node1"])
        shared.links["node0"].upload(500.0)  # 1s on a 500 bps slice
        shared.links["node1"].upload(250.0)  # 0.5s
        assert shared.total_bits == pytest.approx(750.0)
        assert shared.utilization(duration=1.0) == pytest.approx(0.75)
        assert shared.backlog_seconds(now=0.25) == pytest.approx(0.75)

    def test_empty_backlog_is_zero(self):
        assert SharedUplink(100.0).backlog_seconds(now=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedUplink(0.0)
        with pytest.raises(ValueError):
            SharedUplink(100.0, {"a": 0.0})
        shared = SharedUplink(100.0)
        with pytest.raises(ValueError):
            shared.allocate("a", 0.0)
        with pytest.raises(ValueError):
            shared.utilization(duration=0.0)
