"""Tests for the constrained uplink."""

import pytest

from repro.edge.uplink import ConstrainedUplink, SharedUplink


class TestConstrainedUplink:
    def test_transfer_duration_is_bits_over_capacity(self):
        uplink = ConstrainedUplink(capacity_bps=1000)
        transfer = uplink.upload(5000)
        assert transfer.duration == pytest.approx(5.0)
        assert transfer.start_time == 0.0

    def test_transfers_are_serialized(self):
        uplink = ConstrainedUplink(capacity_bps=1000)
        first = uplink.upload(1000, available_at=0.0)
        second = uplink.upload(1000, available_at=0.0)
        assert second.start_time == pytest.approx(first.end_time)
        assert uplink.busy_until == pytest.approx(2.0)

    def test_transfer_waits_for_availability_time(self):
        uplink = ConstrainedUplink(capacity_bps=1000)
        transfer = uplink.upload(500, available_at=10.0)
        assert transfer.start_time == 10.0
        assert transfer.end_time == pytest.approx(10.5)

    def test_total_bits_and_utilization(self):
        uplink = ConstrainedUplink(capacity_bps=2000)
        uplink.upload(1000)
        uplink.upload(3000)
        assert uplink.total_bits == 4000
        assert uplink.utilization(duration=10.0) == pytest.approx(0.2)

    def test_backlog_reports_lag_behind_real_time(self):
        uplink = ConstrainedUplink(capacity_bps=100)
        uplink.upload(1000)  # takes 10 seconds
        assert uplink.backlog_seconds(now=4.0) == pytest.approx(6.0)
        assert uplink.backlog_seconds(now=20.0) == 0.0

    def test_reset_clears_history(self):
        uplink = ConstrainedUplink(capacity_bps=100)
        uplink.upload(100)
        uplink.reset()
        assert uplink.total_bits == 0
        assert uplink.busy_until == 0.0
        assert uplink.transfers == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConstrainedUplink(capacity_bps=0)
        uplink = ConstrainedUplink(capacity_bps=100)
        with pytest.raises(ValueError):
            uplink.upload(-1)

    def test_empty_window_utilization_is_zero(self):
        # A zero-length run used to crash report finalization with a
        # ValueError; an empty window simply used nothing of the link.
        uplink = ConstrainedUplink(capacity_bps=100)
        uplink.upload(50)
        assert uplink.utilization(duration=0.0) == 0.0
        assert uplink.utilization(duration=-1.0) == 0.0

    def test_transfer_descriptions_recorded(self):
        uplink = ConstrainedUplink(capacity_bps=100)
        uplink.upload(10, description="event 1")
        assert uplink.transfers[0].description == "event 1"


class TestSharedUplink:
    def test_weighted_allocation(self):
        shared = SharedUplink(1000.0, {"node0": 3.0, "node1": 1.0})
        assert shared.links["node0"].capacity_bps == pytest.approx(750.0)
        assert shared.links["node1"].capacity_bps == pytest.approx(250.0)
        assert shared.allocated_bps == pytest.approx(1000.0)

    def test_sequence_means_equal_split(self):
        shared = SharedUplink(900.0, ["a", "b", "c"])
        for link in shared.links.values():
            assert link.capacity_bps == pytest.approx(300.0)

    def test_manual_allocation_and_oversubscription(self):
        shared = SharedUplink(1000.0)
        shared.allocate("node0", 600.0)
        with pytest.raises(ValueError, match="oversubscribes"):
            shared.allocate("node1", 500.0)
        shared.allocate("node1", 400.0)
        with pytest.raises(ValueError, match="already holds"):
            shared.allocate("node0", 1.0)

    def test_aggregate_accounting(self):
        shared = SharedUplink(1000.0, ["node0", "node1"])
        shared.links["node0"].upload(500.0)  # 1s on a 500 bps slice
        shared.links["node1"].upload(250.0)  # 0.5s
        assert shared.total_bits == pytest.approx(750.0)
        assert shared.utilization(duration=1.0) == pytest.approx(0.75)
        assert shared.backlog_seconds(now=0.25) == pytest.approx(0.75)

    def test_empty_backlog_is_zero(self):
        assert SharedUplink(100.0).backlog_seconds(now=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedUplink(0.0)
        with pytest.raises(ValueError):
            SharedUplink(100.0, {"a": 0.0})
        shared = SharedUplink(100.0)
        with pytest.raises(ValueError):
            shared.allocate("a", 0.0)

    def test_empty_window_utilization_is_zero(self):
        shared = SharedUplink(1000.0, ["node0"])
        shared.links["node0"].upload(500.0)
        assert shared.utilization(duration=0.0) == 0.0


class TestWorkConservingUplink:
    def make_link(self, capacity=100.0, weights=None):
        from repro.edge.uplink import WorkConservingUplink

        return WorkConservingUplink(capacity, weights or {"a": 1.0, "b": 1.0})

    def request(self, node, bits, at, description="upload"):
        from repro.edge.uplink import SharedTransferRequest

        return SharedTransferRequest(
            node_id=node, bits=bits, available_at=at, description=description
        )

    def test_lone_backlogged_node_gets_the_whole_link(self):
        link = self.make_link()
        [transfer] = link.drain([self.request("a", 100.0, 0.0)])
        # 100 bits at the full 100 bps, not the 50 bps static guarantee.
        assert transfer.start_time == pytest.approx(0.0)
        assert transfer.end_time == pytest.approx(1.0)
        # Half the bits moved above the guarantee.
        assert link.reclaimed_bits == pytest.approx(50.0)
        assert link.node_reclaimed_bits("a") == pytest.approx(50.0)
        assert link.node_bits("a") == pytest.approx(100.0)

    def test_concurrent_nodes_split_by_weight(self):
        link = self.make_link(weights={"a": 3.0, "b": 1.0})
        transfers = link.drain(
            [self.request("a", 75.0, 0.0), self.request("b", 25.0, 0.0)]
        )
        # Both drain exactly at their guaranteed rates: done at t=1, no reclaim.
        assert all(t.end_time == pytest.approx(1.0) for t in transfers)
        assert link.reclaimed_bits == pytest.approx(0.0)

    def test_capacity_flows_when_a_node_finishes(self):
        link = self.make_link()
        transfers = {
            t.node_id: t
            for t in link.drain(
                [self.request("a", 50.0, 0.0), self.request("b", 150.0, 0.0)]
            )
        }
        # Shared 50/50 until t=1 (a done), then b alone at 100 bps.
        assert transfers["a"].end_time == pytest.approx(1.0)
        assert transfers["b"].end_time == pytest.approx(2.0)
        assert link.reclaimed_bits == pytest.approx(50.0)

    def test_fifo_per_node(self):
        link = self.make_link()
        transfers = link.drain(
            [
                self.request("a", 50.0, 0.0, "first"),
                self.request("a", 50.0, 0.0, "second"),
            ]
        )
        by_name = {t.description: t for t in transfers}
        assert by_name["first"].end_time <= by_name["second"].start_time + 1e-9
        assert by_name["second"].end_time == pytest.approx(1.0)

    def test_zero_bit_transfer_completes_instantly(self):
        link = self.make_link()
        [transfer] = link.drain([self.request("a", 0.0, 0.5)])
        assert transfer.start_time == pytest.approx(0.5)
        assert transfer.end_time == pytest.approx(0.5)

    def test_late_availability_waits(self):
        link = self.make_link()
        [transfer] = link.drain([self.request("a", 100.0, 2.0)])
        assert transfer.start_time == pytest.approx(2.0)
        assert transfer.end_time == pytest.approx(3.0)
        assert link.backlog_seconds(now=2.5) == pytest.approx(0.5)
        assert link.node_backlog_seconds("a", 2.5) == pytest.approx(0.5)
        assert link.utilization(duration=3.0) == pytest.approx(100.0 / 300.0)

    def test_scheduled_weight_change_shifts_rates(self):
        link = self.make_link()
        link.schedule_weights(1.0, {"a": 9.0, "b": 1.0})
        transfers = {
            t.node_id: t
            for t in link.drain(
                [self.request("a", 100.0, 0.0), self.request("b", 100.0, 0.0)]
            )
        }
        # Until t=1: 50/50 (50 bits each).  After: a at 90 bps finishes its
        # remaining 50 bits at t ~= 1.556; b finishes last.
        assert transfers["a"].end_time == pytest.approx(1.0 + 50.0 / 90.0, rel=1e-6)
        assert transfers["b"].end_time > transfers["a"].end_time

    def test_guaranteed_bps_uses_initial_weights(self):
        link = self.make_link(weights={"a": 1.0, "b": 3.0})
        assert link.guaranteed_bps("a") == pytest.approx(25.0)
        assert link.guaranteed_bps("b") == pytest.approx(75.0)

    def test_empty_window_utilization_is_zero(self):
        link = self.make_link()
        link.drain([self.request("a", 100.0, 0.0)])
        assert link.utilization(duration=0.0) == 0.0

    def test_validation(self):
        from repro.edge.uplink import WorkConservingUplink

        with pytest.raises(ValueError):
            WorkConservingUplink(0.0, {"a": 1.0})
        with pytest.raises(ValueError):
            WorkConservingUplink(100.0, {})
        with pytest.raises(ValueError):
            WorkConservingUplink(100.0, {"a": 0.0})
        link = self.make_link()
        with pytest.raises(ValueError, match="cover exactly"):
            link.schedule_weights(0.0, {"a": 1.0})
        with pytest.raises(ValueError):
            link.schedule_weights(-1.0, {"a": 1.0, "b": 1.0})
        with pytest.raises(ValueError, match="Unknown node"):
            link.drain([self.request("zz", 1.0, 0.0)])

    def test_drain_is_single_shot(self):
        link = self.make_link()
        link.drain([])
        with pytest.raises(RuntimeError, match="once"):
            link.drain([])
        with pytest.raises(RuntimeError, match="after drain"):
            link.schedule_weights(0.0, {"a": 1.0, "b": 1.0})

    def test_drain_is_deterministic(self):
        def run():
            link = self.make_link(weights={"a": 2.0, "b": 1.0})
            link.schedule_weights(0.5, {"a": 1.0, "b": 2.0})
            reqs = [
                self.request("a", 120.0, 0.0, "a0"),
                self.request("a", 30.0, 0.4, "a1"),
                self.request("b", 80.0, 0.2, "b0"),
                self.request("b", 0.0, 0.9, "b1"),
            ]
            transfers = link.drain(reqs)
            return [
                (t.node_id, t.description, t.start_time, t.end_time) for t in transfers
            ], link.reclaimed_bits

        assert run() == run()
