"""Tests for the edge node's local frame archive."""

import numpy as np
import pytest

from repro.edge.archive import FrameArchive
from repro.video.frame import Frame


def make_frame(index: int, size: int = 8) -> Frame:
    rng = np.random.default_rng(index)
    return Frame(index, index / 15.0, rng.random((size, size, 3)).astype(np.float32))


class TestFrameArchive:
    def test_store_and_fetch(self):
        archive = FrameArchive(capacity_bytes=10 * 1024**2)
        for i in range(10):
            archive.store(make_frame(i))
        segment = archive.demand_fetch(3, 7)
        assert [f.index for f in segment.frames] == [3, 4, 5, 6]
        assert segment.missing == 0

    def test_eviction_is_oldest_first(self):
        frame_bytes = make_frame(0).pixels.nbytes
        archive = FrameArchive(capacity_bytes=frame_bytes * 3 + 1)
        for i in range(5):
            archive.store(make_frame(i))
        assert len(archive) == 3
        assert archive.oldest_index == 2
        assert 0 not in archive and 4 in archive

    def test_missing_counts_evicted_frames(self):
        frame_bytes = make_frame(0).pixels.nbytes
        archive = FrameArchive(capacity_bytes=frame_bytes * 2 + 1)
        for i in range(4):
            archive.store(make_frame(i))
        segment = archive.demand_fetch(0, 4)
        assert segment.missing == 2

    def test_restoring_same_index_does_not_double_count(self):
        archive = FrameArchive(capacity_bytes=10 * 1024**2)
        frame = make_frame(0)
        archive.store(frame)
        archive.store(frame)
        assert len(archive) == 1
        assert archive.bytes_used == pytest.approx(frame.pixels.nbytes)

    def test_fetch_event_context_extends_range(self):
        archive = FrameArchive(capacity_bytes=10 * 1024**2)
        for i in range(20):
            archive.store(make_frame(i))
        segment = archive.fetch_event_context(10, 12, context=3)
        assert segment.start == 7 and segment.end == 15

    def test_context_clamped_at_stream_start(self):
        archive = FrameArchive(capacity_bytes=10 * 1024**2)
        for i in range(5):
            archive.store(make_frame(i))
        segment = archive.fetch_event_context(1, 2, context=5)
        assert segment.start == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FrameArchive(capacity_bytes=0)
        archive = FrameArchive(capacity_bytes=1024**2)
        with pytest.raises(ValueError):
            archive.demand_fetch(5, 5)
        with pytest.raises(ValueError):
            archive.fetch_event_context(0, 1, context=-1)

    def test_single_frame_larger_than_capacity_rejected(self):
        archive = FrameArchive(capacity_bytes=10)
        with pytest.raises(ValueError):
            archive.store(make_frame(0))
