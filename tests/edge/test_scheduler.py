"""Tests for the phased execution schedule."""

import pytest

from repro.edge.scheduler import build_phased_schedule
from repro.perf.throughput_model import ExecutionBreakdown


def breakdown(num=10):
    return ExecutionBreakdown(
        num_classifiers=num,
        base_dnn_seconds=0.3,
        classifiers_seconds=0.1,
        overhead_seconds=0.05,
    )


class TestPhasedSchedule:
    def test_phases_do_not_overlap_and_cover_total(self):
        schedule = build_phased_schedule(breakdown(), classifier_batches=2)
        for earlier, later in zip(schedule.phases, schedule.phases[1:]):
            assert later.start == pytest.approx(earlier.end)
        assert schedule.total_seconds == pytest.approx(0.45)
        assert schedule.fps == pytest.approx(1 / 0.45)

    def test_base_dnn_and_classifiers_are_separate_phases(self):
        """Base DNN and MC execution never overlap (phased, not pipelined)."""
        schedule = build_phased_schedule(breakdown())
        base = schedule.phase("base_dnn")
        mcs = schedule.phase("microclassifiers_batch_0")
        assert base.end <= mcs.start

    def test_classifier_batches_split_evenly(self):
        schedule = build_phased_schedule(breakdown(), classifier_batches=4)
        batch_durations = [
            p.duration for p in schedule.phases if p.name.startswith("microclassifiers")
        ]
        assert len(batch_durations) == 4
        assert all(d == pytest.approx(0.025) for d in batch_durations)

    def test_fraction_helper(self):
        schedule = build_phased_schedule(breakdown())
        assert schedule.fraction("base_dnn") == pytest.approx(0.3 / 0.45)

    def test_unknown_phase_raises(self):
        schedule = build_phased_schedule(breakdown())
        with pytest.raises(KeyError):
            schedule.phase("gpu")

    def test_invalid_batches(self):
        with pytest.raises(ValueError):
            build_phased_schedule(breakdown(), classifier_batches=0)
