"""Tests for the edge node (pipeline + archive + uplink)."""

import pytest

from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.pipeline import FilterForwardPipeline
from repro.edge.archive import FrameArchive
from repro.edge.node import EdgeNode
from repro.edge.uplink import ConstrainedUplink


def make_node(extractor, threshold=0.01, capacity_bps=1_000_000):
    cfg = MicroClassifierConfig("mc", "conv4_2/sep", threshold=threshold, upload_bitrate=50_000)
    mc = build_microclassifier("localized", cfg, extractor.layer_shape("conv4_2/sep"))
    pipeline = FilterForwardPipeline(extractor, [mc])
    return EdgeNode(pipeline, ConstrainedUplink(capacity_bps), FrameArchive(64 * 1024**2))


class TestEdgeNode:
    def test_archives_every_frame(self, tiny_extractor, tiny_pipeline_stream):
        node = make_node(tiny_extractor)
        report = node.process_stream(tiny_pipeline_stream)
        assert report.archived_frames == len(tiny_pipeline_stream)

    def test_uploads_consume_uplink(self, tiny_extractor, tiny_pipeline_stream):
        node = make_node(tiny_extractor, threshold=0.01)
        report = node.process_stream(tiny_pipeline_stream)
        assert node.uplink.total_bits > 0
        assert report.uplink_utilization > 0

    def test_no_matches_means_no_uploads(self, tiny_extractor, tiny_pipeline_stream):
        node = make_node(tiny_extractor, threshold=0.999)
        report = node.process_stream(tiny_pipeline_stream)
        assert node.uplink.total_bits == 0
        assert report.uplink_utilization == 0
        assert report.within_bandwidth_budget

    def test_narrow_uplink_builds_backlog(self, tiny_extractor, tiny_pipeline_stream):
        wide = make_node(tiny_extractor, capacity_bps=10_000_000)
        narrow = make_node(tiny_extractor, capacity_bps=1_000)
        wide_report = wide.process_stream(tiny_pipeline_stream)
        narrow_report = narrow.process_stream(tiny_pipeline_stream)
        assert narrow_report.uplink_backlog_seconds > wide_report.uplink_backlog_seconds
        assert not narrow_report.within_bandwidth_budget

    def test_demand_fetch_returns_frames_and_charges_uplink(self, tiny_extractor, tiny_pipeline_stream):
        node = make_node(tiny_extractor, threshold=0.999)
        report = node.process_stream(tiny_pipeline_stream)
        bits_before = node.uplink.total_bits
        segment = node.demand_fetch(2, 5, report=report)
        assert [f.index for f in segment.frames] == [2, 3, 4]
        assert node.uplink.total_bits > bits_before
        assert report.demand_fetches == [segment]

    def test_uploads_become_available_after_event_ends(self, tiny_extractor, tiny_pipeline_stream):
        node = make_node(tiny_extractor, threshold=0.01, capacity_bps=10_000_000)
        node.process_stream(tiny_pipeline_stream)
        # The single all-frames event ends at the end of the stream, so the
        # upload cannot start before then.
        assert node.uplink.transfers[0].start_time >= tiny_pipeline_stream.duration - 1e-9
