"""Tests for wall-clock throughput measurement."""

import pytest

from repro.metrics.throughput import ThroughputMeasurement, measure_throughput


class TestThroughputMeasurement:
    def test_fps_and_latency(self):
        measurement = ThroughputMeasurement(frames=30, seconds=2.0)
        assert measurement.fps == pytest.approx(15.0)
        assert measurement.seconds_per_frame == pytest.approx(2.0 / 30)

    def test_zero_duration_is_infinite_fps(self):
        assert ThroughputMeasurement(frames=5, seconds=0.0).fps == float("inf")

    def test_zero_frames_latency(self):
        assert ThroughputMeasurement(frames=0, seconds=1.0).seconds_per_frame == 0.0


class TestMeasureThroughput:
    def test_counts_calls_and_uses_timer(self):
        calls = []
        fake_time = iter([0.0, 2.0])

        measurement = measure_throughput(
            lambda i: calls.append(i), num_frames=10, timer=lambda: next(fake_time)
        )
        assert calls == list(range(10))
        assert measurement.frames == 10
        assert measurement.seconds == pytest.approx(2.0)
        assert measurement.fps == pytest.approx(5.0)

    def test_warmup_frames_not_timed(self):
        calls = []
        fake_time = iter([0.0, 1.0])
        measure_throughput(
            lambda i: calls.append(i), num_frames=3, warmup_frames=2, timer=lambda: next(fake_time)
        )
        assert len(calls) == 5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            measure_throughput(lambda i: None, num_frames=0)
        with pytest.raises(ValueError):
            measure_throughput(lambda i: None, num_frames=1, warmup_frames=-1)

    def test_exceptions_propagate(self):
        def boom(i):
            raise RuntimeError("frame failed")

        with pytest.raises(RuntimeError, match="frame failed"):
            measure_throughput(boom, num_frames=1)
