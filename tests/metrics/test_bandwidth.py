"""Tests for bandwidth accounting helpers."""

import pytest

from repro.metrics.bandwidth import BandwidthReport, bandwidth_reduction, bits_to_mbps


class TestConversions:
    def test_bits_to_mbps(self):
        assert bits_to_mbps(2_000_000) == pytest.approx(2.0)

    def test_bandwidth_reduction(self):
        assert bandwidth_reduction(10_000_000, 1_000_000) == pytest.approx(10.0)

    def test_zero_filtered_bandwidth_is_infinite_reduction(self):
        assert bandwidth_reduction(1_000_000, 0.0) == float("inf")

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_reduction(-1.0, 1.0)


class TestBandwidthReport:
    def make(self, strategy="ff", bps=250_000, uploaded=100, total=1000):
        return BandwidthReport(
            strategy=strategy,
            average_bps=bps,
            uploaded_frames=uploaded,
            total_frames=total,
            stream_duration=60.0,
        )

    def test_mbps_and_upload_fraction(self):
        report = self.make()
        assert report.average_mbps == pytest.approx(0.25)
        assert report.upload_fraction == pytest.approx(0.1)

    def test_reduction_versus_other(self):
        ff = self.make(bps=200_000)
        compress = self.make(strategy="compress", bps=2_600_000, uploaded=1000)
        assert ff.reduction_versus(compress) == pytest.approx(13.0)

    def test_empty_stream_fraction(self):
        report = self.make(uploaded=0, total=0)
        assert report.upload_fraction == 0.0
