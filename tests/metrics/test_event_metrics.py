"""Tests for event-centric accuracy metrics (paper Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.event_metrics import (
    event_f1_score,
    event_recall,
    existence_score,
    frame_precision,
    overlap_score,
)
from repro.video.annotations import EventAnnotation


class TestExistenceAndOverlap:
    def test_existence_rewards_any_detection(self):
        event = EventAnnotation(2, 6)
        assert existence_score(event, np.array([0, 0, 0, 1, 0, 0, 0])) == 1.0
        assert existence_score(event, np.array([1, 0, 0, 0, 0, 0, 1])) == 0.0

    def test_overlap_is_detected_fraction(self):
        event = EventAnnotation(2, 6)
        assert overlap_score(event, np.array([0, 0, 1, 1, 0, 0, 0])) == pytest.approx(0.5)
        assert overlap_score(event, np.array([0, 0, 1, 1, 1, 1, 0])) == pytest.approx(1.0)

    def test_event_beyond_prediction_length(self):
        event = EventAnnotation(10, 20)
        assert existence_score(event, np.zeros(5)) == 0.0
        assert overlap_score(event, np.zeros(5)) == 0.0


class TestEventRecall:
    def test_weights_existence_and_overlap(self):
        """EventRecall = 0.9 * Existence + 0.1 * Overlap (paper's alpha/beta)."""
        truth = np.array([0, 1, 1, 1, 1, 0])
        predictions = np.array([0, 1, 0, 0, 0, 0])  # one of four event frames
        expected = 0.9 * 1.0 + 0.1 * 0.25
        assert event_recall(truth, predictions) == pytest.approx(expected)

    def test_averages_over_events(self):
        truth = np.array([1, 1, 0, 0, 1, 1])
        predictions = np.array([1, 1, 0, 0, 0, 0])  # first event fully found, second missed
        expected = (1.0 + 0.0) / 2
        assert event_recall(truth, predictions) == pytest.approx(expected)

    def test_no_events_is_perfect_recall(self):
        assert event_recall(np.zeros(5), np.zeros(5)) == 1.0

    def test_custom_alpha_beta_must_sum_to_one(self):
        with pytest.raises(ValueError):
            event_recall(np.array([1]), np.array([1]), alpha=0.5, beta=0.1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            event_recall(np.zeros(4), np.zeros(5))


class TestFramePrecision:
    def test_counts_correct_detections(self):
        truth = np.array([0, 1, 1, 0])
        predictions = np.array([1, 1, 0, 0])
        assert frame_precision(truth, predictions) == pytest.approx(0.5)

    def test_no_predictions_is_perfect_precision(self):
        assert frame_precision(np.array([1, 0]), np.array([0, 0])) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            frame_precision(np.zeros(3), np.zeros(4))


class TestEventF1:
    def test_perfect_prediction_scores_one(self):
        truth = np.array([0, 1, 1, 0, 1, 0])
        assert event_f1_score(truth, truth) == pytest.approx(1.0)

    def test_all_negative_prediction_scores_zero_when_events_exist(self):
        truth = np.array([0, 1, 1, 0])
        predictions = np.zeros(4)
        assert event_f1_score(truth, predictions) == pytest.approx(0.0, abs=1e-9)

    def test_harmonic_mean_of_components(self):
        truth = np.array([0, 1, 1, 1, 1, 0, 0, 0])
        predictions = np.array([0, 1, 1, 0, 0, 1, 1, 0])
        breakdown = event_f1_score(truth, predictions, return_breakdown=True)
        expected = 2 * breakdown.precision * breakdown.recall / (breakdown.precision + breakdown.recall)
        assert breakdown.f1 == pytest.approx(expected)
        assert breakdown.num_events == 1
        assert breakdown.num_predicted_frames == 4

    def test_false_positives_hurt_precision_not_recall(self):
        truth = np.array([0, 1, 1, 0, 0, 0])
        clean = np.array([0, 1, 1, 0, 0, 0])
        noisy = np.array([1, 1, 1, 1, 1, 1])
        clean_b = event_f1_score(truth, clean, return_breakdown=True)
        noisy_b = event_f1_score(truth, noisy, return_breakdown=True)
        assert noisy_b.recall == pytest.approx(clean_b.recall)
        assert noisy_b.precision < clean_b.precision
        assert noisy_b.f1 < clean_b.f1

    def test_missing_an_entire_event_is_much_worse_than_partial_coverage(self):
        """alpha=0.9 makes existence dominate: partial coverage of both events
        beats full coverage of one and none of the other."""
        truth = np.array([1, 1, 1, 1, 0, 1, 1, 1, 1])
        partial_both = np.array([1, 0, 0, 1, 0, 1, 0, 0, 1])
        one_full = np.array([1, 1, 1, 1, 0, 0, 0, 0, 0])
        assert event_recall(truth, partial_both) > event_recall(truth, one_full)

    @given(
        truth=st.lists(st.sampled_from([0, 1]), min_size=1, max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_scores_bounded_in_unit_interval(self, truth):
        rng = np.random.default_rng(0)
        predictions = rng.integers(0, 2, size=len(truth))
        truth_arr = np.array(truth)
        f1 = event_f1_score(truth_arr, predictions)
        assert 0.0 <= f1 <= 1.0
        assert 0.0 <= event_recall(truth_arr, predictions) <= 1.0
        assert 0.0 <= frame_precision(truth_arr, predictions) <= 1.0

    @given(truth=st.lists(st.sampled_from([0, 1]), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_predicting_exactly_the_truth_is_optimal(self, truth):
        truth_arr = np.array(truth)
        assert event_f1_score(truth_arr, truth_arr) == pytest.approx(1.0)
