"""End-to-end integration tests: synthetic camera -> edge node -> events -> metrics.

These exercise the whole stack the way the examples and benchmarks do, on a
miniature scene: generate an annotated video, train a microclassifier on the
train split, deploy it on an edge node with a constrained uplink, filter the
test split, and score the detected events against ground truth.
"""

import numpy as np
import pytest

from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.pipeline import FilterForwardPipeline, PipelineConfig
from repro.core.training import TrainingConfig, train_classifier
from repro.edge.archive import FrameArchive
from repro.edge.node import EdgeNode
from repro.edge.uplink import ConstrainedUplink
from repro.features.base_dnn import build_mobilenet_like
from repro.features.extractor import FeatureExtractor
from repro.metrics.event_metrics import event_f1_score
from repro.nn.serialization import load_weights, save_weights
from repro.video.datasets import make_roadway_like


@pytest.fixture(scope="module")
def dataset():
    return make_roadway_like(num_frames=120, width=96, height=40, seed=31)


@pytest.fixture(scope="module")
def deployment(dataset):
    """A trained microclassifier plus the extractor it was trained against."""
    height, width = 40, 96
    base = build_mobilenet_like((height, width, 3), alpha=0.125, rng=np.random.default_rng(0))
    layer = "conv2_2/sep"
    extractor = FeatureExtractor(base, [layer], cache_size=8)
    config = MicroClassifierConfig("red_people", layer, threshold=0.5, upload_bitrate=20_000)
    mc = build_microclassifier("localized", config, extractor.layer_shape(layer))

    train_maps = np.stack(
        [extractor.extract_pixels(frame.pixels)[layer] for frame in dataset.train_stream]
    )
    train_classifier(
        mc,
        train_maps,
        dataset.train_labels.labels,
        TrainingConfig(epochs=3, batch_size=16, learning_rate=2e-3, seed=0),
    )
    extractor.reset_cache()
    return extractor, mc


class TestEndToEnd:
    def test_edge_node_filters_and_uploads_events(self, dataset, deployment):
        extractor, mc = deployment
        pipeline = FilterForwardPipeline(extractor, [mc], PipelineConfig())
        node = EdgeNode(pipeline, ConstrainedUplink(capacity_bps=200_000), FrameArchive(256 * 1024**2))
        report = node.process_stream(dataset.test_stream)

        result = report.pipeline_result
        assert result.num_frames == len(dataset.test_stream)
        assert report.archived_frames == len(dataset.test_stream)

        mc_result = result.per_mc["red_people"]
        # The filter must be selective: not everything, and bandwidth bounded.
        assert mc_result.num_matched_frames < result.num_frames
        assert result.average_uplink_bandwidth <= 20_000 * 1.2

        # Events recorded in frame metadata match the detected events.
        for event in mc_result.events:
            middle = dataset.test_stream[event.start]
            assert middle.event_memberships().get("red_people") == event.event_id

    def test_detections_beat_chance_on_ground_truth(self, dataset, deployment):
        extractor, mc = deployment
        pipeline = FilterForwardPipeline(extractor, [mc])
        result = pipeline.process_stream(dataset.test_stream, annotate_frames=False)
        smoothed = result.per_mc["red_people"].smoothed
        truth = dataset.test_labels.labels
        f1 = event_f1_score(truth, smoothed)
        # Random guessing at the positive rate would land far below this.
        assert 0.0 <= f1 <= 1.0
        probabilities = result.per_mc["red_people"].probabilities
        positives = probabilities[truth.astype(bool)]
        negatives = probabilities[~truth.astype(bool)]
        if positives.size and negatives.size:
            assert positives.mean() > negatives.mean()

    def test_microclassifier_weights_roundtrip_through_deployment_archive(
        self, dataset, deployment, tmp_path
    ):
        """An MC can be trained offline, serialized, and re-deployed with identical behaviour."""
        extractor, mc = deployment
        path = save_weights(mc.model, tmp_path / "red_people")
        fresh = build_microclassifier(
            "localized",
            mc.config,
            mc.input_shape,
            rng=np.random.default_rng(123),
        )
        load_weights(fresh.model, path, strict=False)
        frame = dataset.test_stream[10]
        assert fresh.score_frame(extractor, frame) == pytest.approx(
            mc.score_frame(extractor, frame)
        )

    def test_demand_fetch_retrieves_event_context(self, dataset, deployment):
        extractor, mc = deployment
        pipeline = FilterForwardPipeline(extractor, [mc])
        node = EdgeNode(pipeline, ConstrainedUplink(capacity_bps=1_000_000), FrameArchive(256 * 1024**2))
        report = node.process_stream(dataset.test_stream)
        events = report.pipeline_result.per_mc["red_people"].events
        if not events:
            pytest.skip("No events detected in this miniature run")
        event = events[0]
        segment = node.demand_fetch(max(0, event.start - 2), event.end + 2, report=report)
        assert segment.frames
        assert report.demand_fetches
