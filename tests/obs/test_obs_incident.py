"""Incident grouping and correlation with decision provenance."""

from types import SimpleNamespace

from repro.obs.alerts import AlertInterval
from repro.obs.incident import (
    Incident,
    correlate_incident,
    group_incidents,
    incident_reports,
)


def interval(rule="r", source="node0", severity="warn", start=0.0, end=1.0):
    return AlertInterval(
        rule=rule, source=source, severity=severity, start=start, end=end
    )


# --- grouping ---------------------------------------------------------------


def test_disjoint_intervals_become_separate_incidents():
    incidents = group_incidents(
        [interval(start=0.0, end=1.0), interval(start=2.0, end=3.0)]
    )
    assert [i.incident_id for i in incidents] == ["INC-001", "INC-002"]
    assert incidents[0].window() == (0.0, 1.0)
    assert incidents[1].window() == (2.0, 3.0)


def test_transitive_overlap_unions_into_one_incident():
    # A overlaps B, B overlaps C, but A and C never touch.
    incidents = group_incidents(
        [
            interval(rule="a", start=0.0, end=1.0),
            interval(rule="b", start=0.5, end=2.5),
            interval(rule="c", start=2.0, end=3.0),
        ]
    )
    (incident,) = incidents
    assert (incident.start, incident.end) == (0.0, 3.0)
    assert [a.rule for a in incident.alerts] == ["a", "b", "c"]


def test_open_ended_interval_leaves_the_incident_open():
    (incident,) = group_incidents(
        [interval(start=0.0, end=None), interval(start=5.0, end=6.0)]
    )
    assert incident.end is None
    assert not incident.alerts[0].resolved
    # An open end clamps to the horizon when given, else infinity.
    assert incident.window(horizon=10.0) == (0.0, 10.0)
    assert incident.window() == (0.0, float("inf"))


def test_incident_severity_is_the_worst_of_its_alerts():
    (incident,) = group_incidents(
        [
            interval(rule="a", severity="info", start=0.0, end=2.0),
            interval(rule="b", severity="page", source="node1", start=1.0, end=2.0),
        ]
    )
    assert incident.severity == "page"
    assert incident.sources == ["node0", "node1"]


def test_grouping_is_order_independent():
    shuffled = [
        interval(rule="b", start=2.0, end=3.0),
        interval(rule="a", start=0.0, end=1.0),
    ]
    incidents = group_incidents(shuffled)
    assert [(i.incident_id, i.alerts[0].rule) for i in incidents] == [
        ("INC-001", "a"),
        ("INC-002", "b"),
    ]


# --- correlation ------------------------------------------------------------

DECISIONS = [
    {"controller": "shed", "kind": "tighten", "t": 0.75, "actions": ["quota"], "node": "node0"},
    {"controller": "shed", "kind": "idle", "t": 5.0, "actions": [], "reason": "calm"},
]

CONTROL_LOG = [
    "t=0.750 shed: cam000: quota 2",
    "t=5.000 shed: cam001: quota None",
]


def test_correlate_joins_decisions_actions_and_traces_by_window():
    incident = Incident(
        incident_id="INC-001",
        alerts=(interval(start=0.5, end=1.0),),
        start=0.5,
        end=1.0,
    )
    traces = [
        SimpleNamespace(arrival=0.6, end=0.9),   # inside
        SimpleNamespace(arrival=0.0, end=0.55),  # straddles the start
        SimpleNamespace(arrival=4.0, end=4.5),   # outside
    ]
    report = correlate_incident(
        incident,
        decision_records=DECISIONS,
        control_log=CONTROL_LOG,
        frame_traces=traces,
    )
    assert [d["t"] for d in report.decisions] == [0.75]
    assert report.actions == ("t=0.750 shed: cam000: quota 2",)
    assert len(report.traces) == 2


def test_slack_widens_the_correlation_window():
    incident = Incident(
        incident_id="INC-001",
        alerts=(interval(start=1.0, end=2.0),),
        start=1.0,
        end=2.0,
    )
    bare = correlate_incident(incident, decision_records=DECISIONS)
    padded = correlate_incident(
        incident, decision_records=DECISIONS, slack_seconds=0.5
    )
    # The causing decision lands one tick before the alert's first breach:
    # only the padded window catches it.
    assert not bare.decisions
    assert [d["t"] for d in padded.decisions] == [0.75]


def test_open_incident_correlates_to_the_horizon():
    incident = Incident(
        incident_id="INC-001",
        alerts=(interval(start=0.5, end=None),),
        start=0.5,
        end=None,
    )
    clamped = correlate_incident(
        incident, decision_records=DECISIONS, horizon=3.0
    )
    unclamped = correlate_incident(incident, decision_records=DECISIONS)
    assert [d["t"] for d in clamped.decisions] == [0.75]
    assert [d["t"] for d in unclamped.decisions] == [0.75, 5.0]


# --- reports ----------------------------------------------------------------


def _sample_report():
    incident = Incident(
        incident_id="INC-001",
        alerts=(interval(start=0.5, end=1.0),),
        start=0.5,
        end=1.0,
    )
    decisions = [
        {
            "controller": "shed",
            "kind": "tighten",
            "t": 0.75,
            "node": "node0",
            "actions": ["cam000: quota 2"],
            "inputs": {"wait_p99": 0.9},
            "candidates": [
                {"id": "cam000", "score": 0.9, "chosen": True},
                {"id": "cam001", "score": 0.1, "chosen": False},
            ],
        }
    ]
    return correlate_incident(
        incident,
        decision_records=decisions,
        control_log=["t=0.750 shed: cam000: quota 2"],
        slack_seconds=0.25,
    )


def test_report_dict_is_json_ready_and_stable():
    first = _sample_report().to_dict()
    second = _sample_report().to_dict()
    assert first == second
    assert first["id"] == "INC-001"
    assert first["alerts"][0]["rule"] == "r"
    assert first["decisions"][0]["controller"] == "shed"
    assert first["actions"] == ["t=0.750 shed: cam000: quota 2"]
    assert first["sampled_frames"] == 0


def test_report_markdown_names_the_decision_and_candidates():
    markdown = _sample_report().to_markdown()
    assert "## INC-001 [warn] t=0.500 .. t=1.000" in markdown
    assert "`shed`/tighten on `node0`: cam000: quota 2" in markdown
    assert "cam000=0.9*" in markdown  # chosen candidate marked
    assert "inputs: wait_p99=0.9" in markdown
    assert _sample_report().to_markdown() == markdown


def test_markdown_handles_empty_windows_and_noop_reasons():
    incident = Incident(
        incident_id="INC-002",
        alerts=(interval(start=0.0, end=None),),
        start=0.0,
        end=None,
    )
    report = correlate_incident(
        incident,
        decision_records=[
            {"controller": "shed", "kind": "idle", "t": 1.0, "reason": "calm"}
        ],
    )
    markdown = report.to_markdown()
    assert ".. unresolved" in markdown
    assert "`shed`/idle on `cluster` — calm" in markdown
    assert "### Applied actions in window\n- none" in markdown


def test_incident_reports_covers_every_incident():
    class FakeLog:
        def intervals(self):
            return [
                interval(start=0.0, end=1.0),
                interval(rule="s", start=3.0, end=4.0),
            ]

    from repro.obs.alerts import AlertLog

    log = AlertLog(events=())
    # Exercise the real AlertLog path with no events first: no incidents.
    assert incident_reports(log) == []
    reports = [
        correlate_incident(i, decision_records=DECISIONS)
        for i in group_incidents(FakeLog().intervals())
    ]
    assert [r.incident.incident_id for r in reports] == ["INC-001", "INC-002"]
    assert [d["t"] for d in reports[0].decisions] == [0.75]
