"""Metric timelines: scrape flattening, series access, and exporters."""

import json

import pytest

from repro.fleet.telemetry import TelemetryRegistry
from repro.obs.timeline import MetricsTimeline, TimelineSample


def _registry() -> TelemetryRegistry:
    registry = TelemetryRegistry()
    registry.counter("frames.scored").inc(5)
    registry.gauge("queue.depth").set(3.0)
    for value in (0.1, 0.2, 0.3, 0.4):
        registry.histogram("wait").observe(value)
    return registry


class TestScraping:
    def test_scrape_flattens_all_metric_families(self):
        timeline = MetricsTimeline()
        sample = timeline.scrape(1.0, "node0", _registry())
        assert sample.time == 1.0 and sample.source == "node0"
        assert sample.get("frames.scored") == 5.0
        assert sample.get("queue.depth") == 3.0  # gauges keep last value
        assert sample.get("wait.count") == 4.0
        assert sample.get("wait.mean") == pytest.approx(0.25)
        assert sample.get("wait.p50") == pytest.approx(0.2)
        assert sample.get("wait.p99") == pytest.approx(0.4)
        assert sample.get("missing", -1.0) == -1.0

    def test_samples_accumulate_in_order(self):
        timeline = MetricsTimeline()
        registry = _registry()
        timeline.scrape(0.25, "node0", registry)
        registry.counter("frames.scored").inc(2)
        timeline.scrape(0.5, "node0", registry)
        assert len(timeline) == 2
        assert [s.time for s in timeline.samples] == [0.25, 0.5]
        assert timeline.samples[1].get("frames.scored") == 7.0

    def test_sources_and_metric_names_sorted(self):
        timeline = MetricsTimeline()
        timeline.scrape(0.0, "node1", _registry())
        timeline.scrape(0.0, "control", TelemetryRegistry())
        assert timeline.sources == ["control", "node1"]
        names = timeline.metric_names()
        assert names == sorted(names)
        assert "wait.p99" in names


class TestSeriesAccess:
    def test_series_of_single_source(self):
        timeline = MetricsTimeline()
        registry = _registry()
        timeline.scrape(0.25, "node0", registry)
        timeline.scrape(0.5, "node0", registry)
        assert timeline.series("frames.scored") == [(0.25, 5.0), (0.5, 5.0)]

    def test_series_requires_source_when_ambiguous(self):
        timeline = MetricsTimeline()
        timeline.scrape(0.0, "node0", _registry())
        timeline.scrape(0.0, "node1", _registry())
        with pytest.raises(ValueError, match="pass source="):
            timeline.series("frames.scored")
        assert timeline.series("frames.scored", source="node1") == [(0.0, 5.0)]

    def test_series_skips_samples_missing_the_metric(self):
        timeline = MetricsTimeline()
        timeline.scrape(0.0, "node0", TelemetryRegistry())  # metric not born yet
        timeline.scrape(1.0, "node0", _registry())
        assert timeline.series("frames.scored") == [(1.0, 5.0)]

    def test_latest_per_source(self):
        timeline = MetricsTimeline()
        registry = _registry()
        timeline.scrape(0.25, "node0", registry)
        timeline.scrape(0.5, "node0", registry)
        assert timeline.latest("node0").time == 0.5
        assert timeline.latest("ghost") is None


class TestExporters:
    def test_jsonl_is_one_sorted_object_per_scrape(self):
        timeline = MetricsTimeline()
        timeline.scrape(0.25, "node0", _registry())
        timeline.scrape(0.5, "control", TelemetryRegistry())
        lines = timeline.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["t"] == 0.25 and first["source"] == "node0"
        assert first["values"]["wait.p50"] == pytest.approx(0.2)
        assert json.loads(lines[1])["values"] == {}
        # Keys are sorted so the export is byte-stable.
        assert lines[0].index('"source"') < lines[0].index('"values"')

    def test_write_jsonl_round_trips(self, tmp_path):
        timeline = MetricsTimeline()
        timeline.scrape(0.25, "node0", _registry())
        path = timeline.write_jsonl(tmp_path / "metrics.jsonl")
        assert path.read_text(encoding="utf-8") == timeline.to_jsonl() + "\n"

    def test_write_jsonl_empty_timeline_writes_empty_file(self, tmp_path):
        path = MetricsTimeline().write_jsonl(tmp_path / "empty.jsonl")
        assert path.read_text(encoding="utf-8") == ""

    def test_prometheus_emits_latest_value_per_source(self):
        timeline = MetricsTimeline()
        registry = _registry()
        timeline.scrape(0.25, "node0", registry)
        registry.counter("frames.scored").inc(5)
        timeline.scrape(0.5, "node0", registry)
        text = timeline.to_prometheus()
        assert "# HELP frames_scored Timeline series for telemetry 'frames.scored'." in text
        assert "# TYPE frames_scored untyped" in text
        assert 'frames_scored{node="node0"} 10' in text
        assert 'frames_scored{node="node0"} 5' not in text  # only the latest
        assert 'wait_p99{node="node0"} 0.4' in text
        assert text.endswith("\n")

    def test_prometheus_labels_every_source(self):
        timeline = MetricsTimeline()
        timeline.scrape(0.0, "node0", _registry())
        timeline.scrape(0.0, "node1", _registry())
        text = timeline.to_prometheus()
        assert 'queue_depth{node="node0"} 3' in text
        assert 'queue_depth{node="node1"} 3' in text
        assert text.count("# TYPE queue_depth untyped") == 1

    def test_prometheus_empty_timeline_is_empty(self):
        assert MetricsTimeline().to_prometheus() == ""

    def test_write_prometheus_round_trips(self, tmp_path):
        timeline = MetricsTimeline()
        timeline.scrape(0.0, "node0", _registry())
        path = timeline.write_prometheus(tmp_path / "metrics.prom")
        assert path.read_text(encoding="utf-8") == timeline.to_prometheus()


class TestTimelineSample:
    def test_is_frozen(self):
        sample = TimelineSample(time=0.0, source="node0", values={})
        with pytest.raises(AttributeError):
            sample.time = 1.0
