"""Per-camera SLO accounting: SLIs, error budgets, burn rates, merging."""

import pytest

from repro.obs.slo import CameraSLOStatus, SLOConfig, SLOReport, SLOTracker


class TestSLOConfig:
    def test_defaults_are_valid(self):
        config = SLOConfig()
        assert config.objective == 0.95
        assert config.burn_window == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"freshness_target_seconds": 0.0},
            {"latency_target_seconds": -1.0},
            {"objective": 0.0},
            {"objective": 1.0},
            {"burn_window": 0},
            {"burn_alert": 0.0},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            SLOConfig(**kwargs)


def _status(**overrides) -> CameraSLOStatus:
    fields = dict(
        camera_id="cam0",
        objective=0.9,
        frames=100,
        fresh=95,
        scored=90,
        within_latency=80,
        burn_rate=0.5,
        burning=False,
    )
    fields.update(overrides)
    return CameraSLOStatus(**fields)


class TestCameraSLOStatus:
    def test_fractions(self):
        status = _status()
        assert status.fresh_fraction == pytest.approx(0.95)
        assert status.latency_fraction == pytest.approx(80 / 90)
        assert status.meets_objective

    def test_empty_camera_is_vacuously_healthy(self):
        status = _status(frames=0, fresh=0, scored=0, within_latency=0)
        assert status.fresh_fraction == 1.0
        assert status.latency_fraction == 1.0
        assert status.meets_objective
        assert status.error_budget_remaining == 1.0

    def test_error_budget_accounting(self):
        # objective 0.9 over 100 frames allows 10 violations; 5 spent.
        assert _status().error_budget_remaining == pytest.approx(0.5)
        # Spending past the budget goes negative.
        assert _status(fresh=80).error_budget_remaining == pytest.approx(-1.0)
        # A zero-width budget is binary: perfect keeps it, any violation kills it.
        assert _status(frames=0, fresh=0).error_budget_remaining == 1.0

    def test_merged_with_adds_counts_and_keeps_worst_burn(self):
        first = _status(frames=60, fresh=55, scored=50, within_latency=45, burn_rate=0.5)
        second = _status(
            frames=40, fresh=40, scored=40, within_latency=35, burn_rate=2.5, burning=True
        )
        merged = first.merged_with(second)
        assert merged.frames == 100 and merged.fresh == 95
        assert merged.scored == 90 and merged.within_latency == 80
        assert merged.burn_rate == 2.5
        assert merged.burning

    def test_merged_with_rejects_mismatches(self):
        with pytest.raises(ValueError):
            _status().merged_with(_status(camera_id="cam1"))
        with pytest.raises(ValueError):
            _status().merged_with(_status(objective=0.95))


class TestSLOTracker:
    def _tracker(self, **kwargs) -> SLOTracker:
        defaults = dict(
            freshness_target_seconds=0.5,
            latency_target_seconds=0.25,
            objective=0.9,
            burn_window=4,
            burn_alert=2.0,
        )
        defaults.update(kwargs)
        return SLOTracker(SLOConfig(**defaults))

    def test_record_scored_classifies_both_slis(self):
        tracker = self._tracker()
        assert tracker.record_scored("cam", 0.1) == (True, True)
        assert tracker.record_scored("cam", 0.4) == (True, False)
        assert tracker.record_scored("cam", 0.9) == (False, False)
        status = tracker.camera_status("cam")
        assert status.frames == 3 and status.scored == 3
        assert status.fresh == 2 and status.within_latency == 1

    def test_lost_frames_count_against_freshness_only(self):
        tracker = self._tracker()
        tracker.record_scored("cam", 0.1)
        tracker.record_lost("cam", 3)
        status = tracker.camera_status("cam")
        assert status.frames == 4 and status.scored == 1
        assert status.fresh_fraction == pytest.approx(0.25)
        assert status.latency_fraction == 1.0  # the one scored frame was fast

    def test_record_lost_nonpositive_is_noop(self):
        tracker = self._tracker()
        tracker.record_lost("cam", 0)
        tracker.record_lost("cam", -5)
        assert tracker.camera_status("cam") is None

    def test_burn_rate_is_windowed(self):
        tracker = self._tracker()  # window 4, objective 0.9 -> allowed 10%
        for _ in range(4):
            tracker.record_scored("cam", 9.9)  # all stale
        status = tracker.camera_status("cam")
        assert status.burn_rate == pytest.approx(10.0)
        assert status.burning
        # Four fresh frames push the stale ones out of the window: burn
        # resets even though the cumulative SLI stays damaged.
        for _ in range(4):
            tracker.record_scored("cam", 0.01)
        status = tracker.camera_status("cam")
        assert status.burn_rate == 0.0
        assert not status.burning
        assert status.fresh_fraction == pytest.approx(0.5)

    def test_lost_burst_larger_than_window_saturates_it(self):
        tracker = self._tracker()
        tracker.record_lost("cam", 1000)
        status = tracker.camera_status("cam")
        assert status.frames == 1000
        assert status.burn_rate == pytest.approx(10.0)

    def test_unknown_camera_status_is_none(self):
        assert self._tracker().camera_status("ghost") is None

    def test_report_orders_cameras(self):
        tracker = self._tracker()
        for camera_id in ("z", "a", "m"):
            tracker.record_scored(camera_id, 0.1)
        report = tracker.report()
        assert [c.camera_id for c in report.cameras] == ["a", "m", "z"]
        assert report.camera("m").camera_id == "m"
        assert report.camera("ghost") is None


class TestSLOReport:
    def _report(self) -> SLOReport:
        tracker = SLOTracker(SLOConfig(objective=0.9, burn_window=4))
        tracker.record_scored("cam0", 0.1)
        tracker.record_scored("cam0", 0.1)
        tracker.record_lost("cam1", 2)
        return tracker.report()

    def test_fleet_aggregates(self):
        report = self._report()
        assert report.frames == 4
        assert report.fresh_fraction == pytest.approx(0.5)
        assert report.latency_fraction == 1.0
        assert report.cameras_missing_objective == 1
        assert report.cameras_burning == 1  # cam1's window is all violations

    def test_summary_line(self):
        summary = self._report().summary()
        assert summary.startswith("slo: fresh 50.0% of frames")
        assert "1/2 cameras below objective, 1 burning" in summary

    def test_empty_report_is_vacuously_healthy(self):
        report = SLOReport(config=SLOConfig(), cameras=())
        assert report.frames == 0
        assert report.fresh_fraction == 1.0
        assert report.latency_fraction == 1.0

    def test_merged_combines_migrated_cameras(self):
        config = SLOConfig(objective=0.9)
        stint_a = SLOTracker(config)
        stint_a.record_scored("cam0", 0.1)
        stint_a.record_scored("only_a", 0.1)
        stint_b = SLOTracker(config)
        stint_b.record_lost("cam0", 1)
        merged = SLOReport.merged([stint_a.report(), None, stint_b.report()])
        assert [c.camera_id for c in merged.cameras] == ["cam0", "only_a"]
        cam0 = merged.camera("cam0")
        assert cam0.frames == 2 and cam0.fresh == 1

    def test_merged_of_nothing_is_none(self):
        assert SLOReport.merged([]) is None
        assert SLOReport.merged([None, None]) is None

    def test_merged_rejects_config_mismatch(self):
        first = SLOReport(config=SLOConfig(objective=0.9), cameras=())
        second = SLOReport(config=SLOConfig(objective=0.95), cameras=())
        with pytest.raises(ValueError):
            SLOReport.merged([first, second])
