"""Observability wired through the fleet runtimes, control loop, and uplinks."""

import pytest

from repro.control import AdaptiveSheddingController, ControlLoop, SheddingConfig
from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    FleetRuntime,
    ShardedFleetRuntime,
    ShardingConfig,
    generate_fleet,
)
from repro.fleet.runtime import default_pipeline_factory
from repro.obs import (
    MetricsTimeline,
    SLOConfig,
    SLOReport,
    Tracer,
    profile_from_tracer,
)

NODE_CONFIG = FleetConfig(
    num_workers=2,
    queue_capacity=3,
    drop_policy=DropPolicy.DROP_OLDEST,
    slo=SLOConfig(objective=0.9, burn_window=8),
)


class TestFleetRuntimeObservability:
    @pytest.fixture(scope="class")
    def observed_run(self):
        fleet = generate_fleet(6, seed=1, duration_seconds=1.5)
        tracer = Tracer(sample_every=1)
        runtime = FleetRuntime(
            fleet,
            config=NODE_CONFIG,
            pipeline_factory=default_pipeline_factory(threshold=0.05),
            tracer=tracer,
        )
        report = runtime.run()
        return runtime, tracer, report

    def test_report_carries_slo_and_summary_mentions_it(self, observed_run):
        _, _, report = observed_run
        assert report.slo is not None
        assert report.slo.frames == report.frames_generated
        assert "slo: fresh" in report.summary()

    def test_live_stats_expose_per_camera_slo(self, observed_run):
        runtime, _, _ = observed_run
        stats = runtime.camera_live_stats()
        assert stats, "fleet must have active cameras"
        for camera_id, live in stats.items():
            assert live.slo is not None
            assert live.slo.camera_id == camera_id
            assert live.slo.frames >= live.scored

    def test_slo_counters_and_latency_histogram_feed_telemetry(self, observed_run):
        runtime, _, report = observed_run
        latency = runtime.telemetry.histogram("latency.e2e_seconds")
        assert latency.count == report.frames_scored
        violations = runtime.telemetry.counter("slo.freshness_violations").value
        assert violations == report.slo.frames - sum(c.fresh for c in report.slo.cameras)

    def test_traces_account_for_every_generated_frame(self, observed_run):
        _, tracer, report = observed_run
        traces = tracer.frame_traces()
        assert len(traces) == report.frames_generated
        dropped = [t for t in traces if t.drop_reason is not None]
        scored = [t for t in traces if t.completed_at is not None]
        assert len(scored) == report.frames_scored
        assert len(dropped) == report.frames_generated - report.frames_scored

    def test_observability_does_not_change_the_simulation(self):
        fleet = generate_fleet(6, seed=1, duration_seconds=1.5)
        plain = FleetRuntime(fleet, config=FleetConfig(
            num_workers=2, queue_capacity=3, drop_policy=DropPolicy.DROP_OLDEST
        )).run()
        fleet = generate_fleet(6, seed=1, duration_seconds=1.5)
        observed = FleetRuntime(
            fleet,
            config=NODE_CONFIG,
            tracer=Tracer(sample_every=4),
        ).run()
        assert observed.frames_generated == plain.frames_generated
        assert observed.frames_scored == plain.frames_scored
        assert observed.frames_dropped == plain.frames_dropped


def _sharded_run(with_control: bool):
    fleet = generate_fleet(8, seed=2, duration_seconds=1.5)
    tracer = Tracer(sample_every=2)
    timeline = MetricsTimeline()
    loop = None
    if with_control:
        loop = ControlLoop(
            [AdaptiveSheddingController(SheddingConfig(cameras_per_step=1))],
            interval_seconds=0.25,
        )
    runtime = ShardedFleetRuntime(
        fleet,
        config=ShardingConfig(
            num_nodes=2,
            total_uplink_bps=300_000.0,
            uplink_sharing="work_conserving",
            node_config=NODE_CONFIG,
        ),
        pipeline_factory=default_pipeline_factory(threshold=0.05),
        control_loop=loop,
        tracer=tracer,
        timeline=timeline,
    )
    report = runtime.run()
    return report, tracer, timeline


class TestShardedObservability:
    def test_control_loop_path_scrapes_nodes_and_control(self):
        report, tracer, timeline = _sharded_run(with_control=True)
        assert timeline.sources == ["control", "node0", "node1"]
        assert len(timeline) > 3
        assert report.slo is not None
        assert "slo: fresh" in report.summary()
        assert tracer.node_ids == ["node0", "node1"]

    def test_lockstep_path_scrapes_without_a_control_loop(self):
        report, _, timeline = _sharded_run(with_control=False)
        assert timeline.sources == ["node0", "node1"]
        times = sorted({s.time for s in timeline.samples})
        assert len(times) > 2, "lockstep driver must scrape at interval boundaries"
        assert report.slo is not None

    def test_merged_slo_covers_every_camera_once(self):
        report, _, _ = _sharded_run(with_control=False)
        camera_ids = [c.camera_id for c in report.slo.cameras]
        assert camera_ids == sorted(camera_ids)
        assert len(camera_ids) == len(set(camera_ids)) == 8
        assert report.slo.frames == report.frames_generated

    def test_work_conserving_upload_spans_reach_the_trace(self):
        _, tracer, _ = _sharded_run(with_control=False)
        uploaded = [t for t in tracer.frame_traces() if t.upload_end is not None]
        assert uploaded, "threshold=0.05 over a shared uplink must upload frames"
        for trace in uploaded:
            assert trace.upload_start >= trace.completed_at
            assert abs(trace.unaccounted_seconds()) < 1e-9

    def test_sharded_observability_is_deterministic(self):
        first_report, first_tracer, first_timeline = _sharded_run(with_control=True)
        second_report, second_tracer, second_timeline = _sharded_run(with_control=True)
        assert first_tracer.chrome_trace_json() == second_tracer.chrome_trace_json()
        assert first_timeline.to_jsonl() == second_timeline.to_jsonl()
        assert first_timeline.to_prometheus() == second_timeline.to_prometheus()
        assert first_report.slo.summary() == second_report.slo.summary()


class TestMigrationObservability:
    def _cameras(self, n=2, frame_rate=16.0, duration=1.5):
        return [
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=48,
                height=32,
                frame_rate=frame_rate,
                num_frames=int(frame_rate * duration),
                scenario="urban_day",
                seed=i,
            )
            for i in range(n)
        ]

    def test_migration_losses_reach_traces_and_merged_slo(self):
        # BLOCK policy + slow service parks frames at the source, so the
        # detach sheds a real backlog; the blackout charges the destination.
        config = FleetConfig(
            num_workers=1,
            queue_capacity=2,
            drop_policy=DropPolicy.BLOCK,
            service_time_scale=50.0,
            slo=SLOConfig(objective=0.9, burn_window=8),
        )
        tracer = Tracer(sample_every=1)
        source = FleetRuntime(
            self._cameras(), config=config, tracer=tracer.node("src")
        )
        destination = FleetRuntime(
            [
                CameraSpec(
                    camera_id="dst000",
                    width=48,
                    height=32,
                    frame_rate=2.0,
                    num_frames=3,
                    scenario="urban_day",
                    seed=9,
                )
            ],
            config=config,
            tracer=tracer.node("dst"),
        )
        source.start()
        destination.start()
        source.advance_until(0.5)
        destination.advance_until(0.5)
        handoff = source.detach_camera("cam001", 0.5)
        destination.attach_camera(handoff, 0.5, resume_time=0.75)
        source.advance_until(float("inf"))
        destination.advance_until(float("inf"))
        src_report = source.finalize()
        dst_report = destination.finalize()

        lost = [
            t for t in tracer.frame_traces() if t.drop_reason == "migration_lost"
        ]
        assert lost, "a BLOCK-policy detach must shed parked frames"
        assert all(t.camera_id == "cam001" and t.dropped_at == 0.5 for t in lost)

        merged = SLOReport.merged([src_report.slo, dst_report.slo])
        moved = merged.camera("cam001")
        assert moved.frames == (
            src_report.cameras["cam001"].frames_generated
            + dst_report.cameras["cam001"].frames_generated
        )
        # Migration losses and the blackout both burn freshness.
        assert moved.fresh < moved.frames
        blackout = sum(1 for t, _ in handoff.feed.arrivals() if 0.5 < t < 0.75)
        assert blackout > 0
        assert dst_report.slo.camera("cam001").frames >= blackout


class TestProfileAttribution:
    @pytest.fixture(scope="class")
    def profile(self):
        fleet = generate_fleet(4, seed=3, duration_seconds=1.0)
        tracer = Tracer(sample_every=1)
        FleetRuntime(
            fleet,
            config=NODE_CONFIG,
            pipeline_factory=default_pipeline_factory(threshold=0.05),
            tracer=tracer,
        ).run()
        return profile_from_tracer(tracer)

    def test_rows_cover_lifecycle_stages_with_nesting(self, profile):
        stages = {row.stage for row in profile.rows}
        assert {"queue", "service"} <= stages
        sub_stages = [s for s in stages if s.startswith("service/")]
        assert sub_stages, "phased schedules must yield service sub-stages"
        for row in profile.rows:
            assert row.seconds >= 0.0 and row.frames > 0
            assert row.depth == row.stage.count("/")

    def test_sub_stages_sum_into_their_parent(self, profile):
        for camera_id in profile.cameras():
            rows = {row.stage: row for row in profile.camera_rows(camera_id)}
            service = rows.get("service")
            if service is None:
                continue
            nested = sum(
                row.seconds for stage, row in rows.items()
                if stage.startswith("service/") and stage.count("/") == 1
            )
            assert nested <= service.seconds + 1e-9

    def test_camera_total_counts_top_level_stages_only(self, profile):
        camera_id = profile.cameras()[0]
        total = profile.camera_total_seconds(camera_id)
        top = sum(r.seconds for r in profile.camera_rows(camera_id) if r.depth == 0)
        assert total == pytest.approx(top)

    def test_format_table_renders_every_camera(self, profile):
        table = profile.format_table()
        assert "per-stage attribution over sampled frames (1 in 1)" in table
        for camera_id in profile.cameras():
            assert camera_id in table
        assert "  base_dnn" in table or "service" in table

    def test_stage_totals_aggregate_across_cameras(self, profile):
        totals = profile.stage_totals()
        assert totals["queue"] == pytest.approx(
            sum(r.seconds for r in profile.rows if r.stage == "queue")
        )
