"""Frame-lifecycle tracing: sampling, span trees, and Chrome export."""

import json
import zlib

import pytest

from repro.fleet import DropPolicy, FleetConfig, FleetRuntime, generate_fleet
from repro.fleet.runtime import default_pipeline_factory
from repro.obs.trace import FrameTrace, NodeTracer, Span, Tracer


class TestSampling:
    def test_sample_every_one_traces_everything(self):
        tracer = Tracer(sample_every=1)
        assert all(tracer.sampled("cam", i) for i in range(100))

    def test_sampling_matches_crc32_formula(self):
        tracer = Tracer(sample_every=64)
        for index in range(256):
            expected = zlib.crc32(f"cam007/{index}".encode()) % 64 == 0
            assert tracer.sampled("cam007", index) is expected

    def test_sampling_is_identical_across_tracer_instances(self):
        decisions_a = [Tracer(sample_every=8).sampled("cam", i) for i in range(64)]
        decisions_b = [Tracer(sample_every=8).sampled("cam", i) for i in range(64)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_invalid_sample_every_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestSpan:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Span("bad", "test", start=1.0, end=0.5)

    def test_walk_is_depth_first(self):
        leaf = Span("leaf", "t", 0.0, 0.1)
        mid = Span("mid", "t", 0.0, 0.2, children=(leaf,))
        root = Span("root", "t", 0.0, 1.0, children=(mid, Span("tail", "t", 0.2, 1.0)))
        assert [s.name for s in root.walk()] == ["root", "mid", "leaf", "tail"]
        assert root.duration == 1.0


class TestFrameTrace:
    def _full_trace(self):
        trace = FrameTrace(camera_id="cam000", frame_index=3, arrival=1.0)
        trace.admitted = True
        trace.enqueued = True
        trace.dispatched_at = 1.25
        trace.phases = (("decode", 1.25, 1.3), ("base_dnn", 1.3, 1.5))
        trace.completed_at = 1.5
        trace.upload_description = "cam000/primary event"
        trace.upload_available_at = 1.5
        trace.upload_start = 1.6
        trace.upload_end = 1.9
        return trace

    def test_end_fallback_chain(self):
        trace = FrameTrace(camera_id="c", frame_index=0, arrival=2.0)
        assert trace.end == 2.0  # nothing happened yet
        trace.dropped_at = 2.5
        assert trace.end == 2.5
        trace.completed_at = 3.0
        assert trace.end == 3.0
        trace.upload_end = 3.5
        assert trace.end == 3.5
        assert trace.end_to_end_seconds == pytest.approx(1.5)

    def test_full_lifecycle_telescopes(self):
        trace = self._full_trace()
        root = trace.to_span()
        assert [c.name for c in root.children] == [
            "queue",
            "service",
            "upload_wait",
            "upload",
        ]
        # Children partition the root exactly: no unaccounted time.
        assert trace.unaccounted_seconds() == pytest.approx(0.0, abs=1e-12)
        service = root.children[1]
        assert [p.name for p in service.children] == ["decode", "base_dnn"]

    def test_root_args_carry_identity_and_annotations(self):
        trace = self._full_trace()
        trace.annotations["match_score"] = 0.9
        trace.annotations["event"] = "e1"
        args = trace.to_span().args
        assert args["camera"] == "cam000"
        assert args["frame_index"] == 3
        assert args["admitted"] is True
        assert args["event"] == "e1" and args["match_score"] == 0.9

    def test_queue_dropped_frame_gets_queue_only_tree(self):
        trace = FrameTrace(camera_id="c", frame_index=1, arrival=0.0)
        trace.admitted = True
        trace.enqueued = True
        trace.dropped_at = 0.4
        trace.drop_reason = "evicted_oldest"
        root = trace.to_span()
        assert [c.name for c in root.children] == ["queue"]
        assert root.args["drop_reason"] == "evicted_oldest"
        assert trace.unaccounted_seconds() == pytest.approx(0.0)

    def test_admission_rejected_frame_is_an_instant(self):
        trace = FrameTrace(camera_id="c", frame_index=2, arrival=0.0)
        trace.admitted = False
        trace.dropped_at = 0.0
        trace.drop_reason = "admission_rejected"
        root = trace.to_span()
        assert root.children == ()
        assert root.duration == 0.0

    def test_scored_but_not_uploaded_has_no_upload_spans(self):
        trace = self._full_trace()
        trace.upload_start = None
        trace.upload_end = None
        root = trace.to_span()
        assert [c.name for c in root.children] == ["queue", "service"]
        assert trace.unaccounted_seconds() == pytest.approx(0.0)


class TestNodeTracer:
    def test_unsampled_frames_are_ignored_everywhere(self):
        tracer = Tracer(sample_every=64)
        node = tracer.node("node0")
        index = next(i for i in range(200) if not tracer.sampled("cam", i))
        assert node.begin_frame("cam", index, 0.0) is False
        # Every record_* call on an untraced frame is a silent no-op.
        node.record_admission("cam", index, True)
        node.record_enqueue("cam", index, 2)
        node.record_drop("cam", index, "evicted_oldest", 0.1)
        node.record_dispatch("cam", index, 0.2)
        node.record_completion("cam", index, 0.3)
        node.annotate("cam", index, "k", "v")
        node.register_upload("desc", "cam", index, 0.3)
        assert not node.has_trace("cam", index)
        assert node.frame_traces() == []

    def test_register_upload_first_event_wins(self):
        node = Tracer(sample_every=1).node("node0")
        node.begin_frame("cam", 0, 0.0)
        node.register_upload("event A", "cam", 0, 1.0)
        node.register_upload("event B", "cam", 0, 2.0)
        [trace] = node.frame_traces()
        assert trace.upload_description == "event A"
        assert trace.upload_available_at == 1.0

    def test_complete_upload_stamps_every_rider_once(self):
        node = Tracer(sample_every=1).node("node0")
        for index in (0, 1):
            node.begin_frame("cam", index, 0.0)
            node.register_upload("shared event", "cam", index, 0.5)
        node.complete_upload("shared event", 1.0, 2.0)
        node.complete_upload("shared event", 9.0, 10.0)  # second stamp ignored
        for trace in node.frame_traces():
            assert (trace.upload_start, trace.upload_end) == (1.0, 2.0)

    def test_complete_upload_for_unknown_description_is_noop(self):
        node = Tracer(sample_every=1).node("node0")
        node.complete_upload("never registered", 0.0, 1.0)
        assert node.frame_traces() == []

    def test_frame_traces_sorted_by_camera_then_index(self):
        node = Tracer(sample_every=1).node("node0")
        for camera_id, index in [("b", 1), ("a", 2), ("b", 0), ("a", 0)]:
            node.begin_frame(camera_id, index, 0.0)
        keys = [(t.camera_id, t.frame_index) for t in node.frame_traces()]
        assert keys == [("a", 0), ("a", 2), ("b", 0), ("b", 1)]


class TestTracer:
    def test_node_pids_follow_creation_order(self):
        tracer = Tracer()
        node1 = tracer.node("nodeB")
        node0 = tracer.node("nodeA")
        assert (node1.pid, node0.pid) == (1, 2)
        assert tracer.node("nodeB") is node1
        assert tracer.node_ids == ["nodeB", "nodeA"]


def _run_traced_fleet():
    """A small seeded fleet with every frame traced and uploads forced."""
    fleet = generate_fleet(4, seed=0, duration_seconds=1.5)
    tracer = Tracer(sample_every=1)
    runtime = FleetRuntime(
        fleet,
        config=FleetConfig(
            num_workers=2,
            queue_capacity=3,
            drop_policy=DropPolicy.DROP_OLDEST,
            uplink_capacity_bps=200_000.0,
        ),
        pipeline_factory=default_pipeline_factory(threshold=0.05),
        tracer=tracer,
    )
    report = runtime.run()
    return tracer, report


class TestChromeExport:
    @pytest.fixture(scope="class")
    def traced(self):
        return _run_traced_fleet()

    def test_trace_is_valid_chrome_trace_json(self, traced):
        tracer, _ = traced
        doc = json.loads(tracer.chrome_trace_json())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events, "a fully sampled run must emit events"
        for event in events:
            assert {"ph", "pid", "tid", "ts"} <= set(event)
            assert event["ph"] in {"X", "i", "M"}
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_metadata_names_processes_and_threads(self, traced):
        tracer, _ = traced
        events = tracer.to_chrome_trace()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert thread_names == {t.camera_id for t in tracer.frame_traces()}

    def test_spans_nest_within_their_roots(self, traced):
        tracer, report = traced
        traces = tracer.frame_traces()
        assert len(traces) == report.frames_generated
        uploads = 0
        for trace in traces:
            root = trace.to_span()
            for span in root.walk():
                assert span.start >= root.start - 1e-9
                assert span.end <= root.end + 1e-9
            assert abs(trace.unaccounted_seconds()) < 1e-9
            uploads += trace.upload_end is not None
        assert uploads > 0, "threshold=0.05 must force some uploads"

    def test_export_is_bit_identical_across_runs(self, traced):
        first, _ = traced
        second, _ = _run_traced_fleet()
        assert first.chrome_trace_json() == second.chrome_trace_json()

    def test_write_chrome_trace_round_trips(self, traced, tmp_path):
        tracer, _ = traced
        path = tracer.write_chrome_trace(tmp_path / "trace.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == tracer.to_chrome_trace()
