"""Alert-rule evaluation over metric timelines: edge cases and determinism."""

import pytest

from repro.obs.alerts import (
    AlertEvent,
    AlertLog,
    AlertRule,
    BurnRateRule,
    evaluate_alerts,
    slo_burn_rule,
)
from repro.obs.slo import SLOConfig
from repro.obs.timeline import MetricsTimeline, TimelineSample


def make_timeline(rows):
    """A timeline from ``(time, source, values)`` rows."""
    timeline = MetricsTimeline()
    for time, source, values in rows:
        timeline._samples.append(
            TimelineSample(time=time, source=source, values=dict(values))
        )
    return timeline


QUEUE_RULE = AlertRule(name="queue_wait", metric="wait_p99", threshold=0.5)


# --- rule validation --------------------------------------------------------


def test_rule_rejects_bad_fields():
    with pytest.raises(ValueError, match="severity"):
        AlertRule(name="r", metric="m", threshold=1.0, severity="fatal")
    with pytest.raises(ValueError, match="op"):
        AlertRule(name="r", metric="m", threshold=1.0, op="eq")
    with pytest.raises(ValueError, match="mode"):
        AlertRule(name="r", metric="m", threshold=1.0, mode="delta")
    with pytest.raises(ValueError, match="for_seconds"):
        AlertRule(name="r", metric="m", threshold=1.0, for_seconds=-1.0)
    with pytest.raises(ValueError, match="non-empty"):
        AlertRule(name="", metric="m", threshold=1.0)
    with pytest.raises(ValueError, match="objective"):
        BurnRateRule(name="b", objective=1.0, threshold=2.0, window_seconds=1.0)
    with pytest.raises(ValueError, match="window_seconds"):
        BurnRateRule(name="b", objective=0.9, threshold=2.0, window_seconds=0.0)


def test_ops_cover_both_directions():
    ge = AlertRule(name="r", metric="m", threshold=1.0, op="ge")
    assert ge.breached(1.0) and not ge.breached(0.99)
    lt = AlertRule(name="r", metric="m", threshold=1.0, op="lt")
    assert lt.breached(0.5) and not lt.breached(1.0)
    le = AlertRule(name="r", metric="m", threshold=1.0, op="le")
    assert le.breached(1.0) and not le.breached(1.01)


# --- evaluation edge cases --------------------------------------------------


def test_empty_timeline_fires_nothing():
    log = evaluate_alerts(make_timeline([]), [QUEUE_RULE])
    assert len(log) == 0
    assert log.summary() == "alerts: none fired"
    assert log.intervals() == []
    assert log.to_jsonl() == ""


def test_fire_and_resolve_pair_into_an_interval():
    timeline = make_timeline(
        [
            (0.25, "node0", {"wait_p99": 0.1}),
            (0.50, "node0", {"wait_p99": 0.9}),
            (0.75, "node0", {"wait_p99": 0.2}),
        ]
    )
    log = evaluate_alerts(timeline, [QUEUE_RULE])
    assert [(e.state, e.time) for e in log.events] == [
        ("firing", 0.50),
        ("resolved", 0.75),
    ]
    (interval,) = log.intervals()
    assert (interval.start, interval.end) == (0.50, 0.75)
    assert interval.resolved
    assert log.active == []


def test_never_resolving_rule_stays_open():
    timeline = make_timeline(
        [(0.25 * i, "node0", {"wait_p99": 0.9}) for i in range(1, 5)]
    )
    log = evaluate_alerts(timeline, [QUEUE_RULE])
    assert [e.state for e in log.events] == ["firing"]
    (interval,) = log.intervals()
    assert interval.end is None and not interval.resolved
    assert log.active == [("queue_wait", "node0")]
    assert log.summary() == "alerts: 1 fired, 0 resolved, 1 still firing"


def test_flapping_metric_never_fires_with_for_duration():
    rule = AlertRule(name="queue_wait", metric="wait_p99", threshold=0.5, for_seconds=0.6)
    # Breaches never hold for 0.6s: every other scrape dips under.
    rows = [
        (0.25 * i, "node0", {"wait_p99": 0.9 if i % 2 else 0.1})
        for i in range(1, 12)
    ]
    log = evaluate_alerts(make_timeline(rows), [rule])
    assert len(log) == 0
    # The same flapping metric with no hold time pages on every swing.
    assert len(evaluate_alerts(make_timeline(rows), [QUEUE_RULE])) >= 4


def test_for_duration_fires_after_sustained_breach():
    rule = AlertRule(name="queue_wait", metric="wait_p99", threshold=0.5, for_seconds=0.5)
    rows = [(0.25 * i, "node0", {"wait_p99": 0.9}) for i in range(1, 5)]
    log = evaluate_alerts(make_timeline(rows), [rule])
    # Pending at 0.25, fires once the breach has held 0.5s (at t=0.75).
    assert [(e.state, e.time) for e in log.events] == [("firing", 0.75)]


def test_missing_metric_leaves_state_untouched():
    rule = AlertRule(name="queue_wait", metric="wait_p99", threshold=0.5)
    rows = [
        (0.25, "node0", {"wait_p99": 0.9}),
        (0.50, "node0", {"other": 1.0}),  # no data: still firing
        (0.75, "node0", {"wait_p99": 0.1}),
    ]
    log = evaluate_alerts(make_timeline(rows), [rule])
    assert [(e.state, e.time) for e in log.events] == [
        ("firing", 0.25),
        ("resolved", 0.75),
    ]


def test_rate_mode_fires_on_counter_slope_and_resolves():
    rule = AlertRule(name="uplink", metric="bits", threshold=1000.0, mode="rate")
    rows = [
        (1.0, "node0", {"bits": 0.0}),
        (2.0, "node0", {"bits": 5000.0}),  # 5000/s
        (3.0, "node0", {"bits": 5100.0}),  # 100/s
    ]
    log = evaluate_alerts(make_timeline(rows), [rule])
    assert [(e.state, e.value) for e in log.events] == [
        ("firing", 5000.0),
        ("resolved", 100.0),
    ]


def test_rate_mode_clamps_counter_reset_after_migration():
    """Regression: a camera migration detaches and re-attaches per-camera
    series, so the next scrape of the destination's counter restarts from
    zero.  The raw delta is negative; the rate must clamp to zero instead of
    reporting a negative slope (which would spuriously resolve gt rules —
    and fire lt rules — on an artifact of the handoff)."""
    rule = AlertRule(name="uplink", metric="bits", threshold=1000.0, mode="rate")
    rows = [
        (1.0, "node1", {"bits": 0.0}),
        (2.0, "node1", {"bits": 5000.0}),  # firing at 5000/s
        (3.0, "node1", {"bits": 100.0}),  # counter restarted mid-run
        (4.0, "node1", {"bits": 6000.0}),  # demand actually still high
    ]
    log = evaluate_alerts(make_timeline(rows), [rule])
    # The reset reads as zero-rate (resolving cleanly), never negative.
    assert [(e.state, e.value) for e in log.events] == [
        ("firing", 5000.0),
        ("resolved", 0.0),
        ("firing", 5900.0),
    ]
    assert all(e.value >= 0.0 for e in log.events)


def test_rate_mode_reset_does_not_fire_lt_rules():
    """The clamped zero-rate still honors explicit lt thresholds on real
    zero slopes, but a reset alone must not look like negative throughput."""
    rule = AlertRule(
        name="stalled", metric="bits", threshold=-1.0, op="lt", mode="rate"
    )
    rows = [
        (1.0, "node0", {"bits": 1000.0}),
        (2.0, "node0", {"bits": 10.0}),  # reset: clamped to 0.0, not -990
    ]
    log = evaluate_alerts(make_timeline(rows), [rule])
    assert not log.events


def test_sources_filter_restricts_evaluation():
    rule = AlertRule(
        name="queue_wait", metric="wait_p99", threshold=0.5, sources=("node1",)
    )
    rows = [
        (0.25, "node0", {"wait_p99": 0.9}),
        (0.25, "node1", {"wait_p99": 0.9}),
    ]
    log = evaluate_alerts(make_timeline(rows), [rule])
    assert [e.source for e in log.events] == ["node1"]


# --- burn-rate rules --------------------------------------------------------


def test_burn_rate_with_zero_budget_consumed_never_fires():
    rule = BurnRateRule(name="burn", objective=0.9, threshold=2.0, window_seconds=1.0)
    # Frames flow but violations stay flat: burn is exactly 0.
    rows = [
        (1.0 * i, "node0", {"frames.generated": 100.0 * i, "slo.freshness_violations": 0.0})
        for i in range(1, 5)
    ]
    log = evaluate_alerts(make_timeline(rows), [rule])
    assert len(log) == 0
    # ... and a window with no new frames burns nothing rather than NaN.
    stalled = [(1.0, "node0", {"frames.generated": 100.0})] + [
        (1.0 + i, "node0", {"frames.generated": 100.0}) for i in range(1, 3)
    ]
    assert len(evaluate_alerts(make_timeline(stalled), [rule])) == 0


def test_burn_rate_fires_when_violations_outpace_budget():
    rule = BurnRateRule(name="burn", objective=0.9, threshold=2.0, window_seconds=2.0)
    rows = [
        (1.0, "node0", {"frames.generated": 100.0, "slo.freshness_violations": 0.0}),
        (4.0, "node0", {"frames.generated": 200.0, "slo.freshness_violations": 50.0}),
    ]
    log = evaluate_alerts(make_timeline(rows), [rule])
    (event,) = log.events
    assert event.state == "firing"
    # 50 violations over 100 frames against a 10% budget: 5x burn.
    assert event.value == pytest.approx(5.0)


def test_slo_burn_rule_inherits_config():
    config = SLOConfig(objective=0.95, burn_alert=3.0)
    rule = slo_burn_rule(config, window_seconds=4.0)
    assert rule.objective == 0.95
    assert rule.threshold == 3.0
    assert rule.window_seconds == 4.0
    assert rule.severity == "page"


# --- determinism ------------------------------------------------------------


def test_two_evaluations_export_identical_jsonl(tmp_path):
    rows = [
        (0.25 * i, source, {"wait_p99": 0.9 if i % 3 else 0.1})
        for i in range(1, 20)
        for source in ("node0", "node1")
    ]
    first = evaluate_alerts(make_timeline(rows), [QUEUE_RULE])
    second = evaluate_alerts(make_timeline(rows), [QUEUE_RULE])
    assert len(first) > 0
    assert first.to_jsonl() == second.to_jsonl()
    path_a = first.write_jsonl(tmp_path / "a.jsonl")
    path_b = second.write_jsonl(tmp_path / "b.jsonl")
    assert path_a.read_bytes() == path_b.read_bytes()


def test_events_are_globally_ordered():
    rows = [
        (0.25, "node1", {"wait_p99": 0.9}),
        (0.25, "node0", {"wait_p99": 0.9}),
    ]
    log = evaluate_alerts(make_timeline(rows), [QUEUE_RULE])
    assert [e.source for e in log.events] == ["node0", "node1"]


def test_event_round_trips_through_dict():
    event = AlertEvent(
        time=1.0, rule="r", source="node0", state="firing", severity="warn",
        value=2.0, threshold=1.0,
    )
    assert event.to_dict() == {
        "t": 1.0, "rule": "r", "source": "node0", "state": "firing",
        "severity": "warn", "value": 2.0, "threshold": 1.0,
    }
    assert AlertLog(events=(event,)).fired == 1
