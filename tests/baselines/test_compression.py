"""Tests for the compress-everything baseline."""

import numpy as np
import pytest

from repro.baselines.compression import run_compress_everything
from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.pipeline import FilterForwardPipeline


@pytest.fixture
def simple_pipeline(tiny_extractor):
    cfg = MicroClassifierConfig("mc", "conv4_2/sep", threshold=0.5, upload_bitrate=50_000)
    mc = build_microclassifier("localized", cfg, tiny_extractor.layer_shape("conv4_2/sep"))
    return FilterForwardPipeline(tiny_extractor, [mc])


class TestCompressEverything:
    def test_bandwidth_equals_target_bitrate(self, simple_pipeline, tiny_pipeline_stream):
        result = run_compress_everything(tiny_pipeline_stream, simple_pipeline, target_bitrate=80_000)
        assert result.average_bandwidth == pytest.approx(80_000, rel=0.05)
        assert result.target_bitrate == 80_000

    def test_cloud_result_covers_every_frame(self, simple_pipeline, tiny_pipeline_stream):
        result = run_compress_everything(tiny_pipeline_stream, simple_pipeline, target_bitrate=80_000)
        assert result.cloud_result.num_frames == len(tiny_pipeline_stream)
        assert "mc" in result.cloud_result.per_mc

    def test_lower_bitrate_loses_more_detail(self, simple_pipeline, tiny_pipeline_stream):
        high = run_compress_everything(tiny_pipeline_stream, simple_pipeline, target_bitrate=2_000_000)
        low = run_compress_everything(tiny_pipeline_stream, simple_pipeline, target_bitrate=2_000)
        assert low.detail_scale < high.detail_scale

    def test_probabilities_change_under_heavy_compression(self, simple_pipeline, tiny_pipeline_stream):
        original = simple_pipeline.process_stream(tiny_pipeline_stream, annotate_frames=False)
        simple_pipeline.extractor.reset_cache()
        degraded = run_compress_everything(tiny_pipeline_stream, simple_pipeline, target_bitrate=2_000)
        assert not np.allclose(
            original.per_mc["mc"].probabilities,
            degraded.cloud_result.per_mc["mc"].probabilities,
        )

    def test_extractor_cache_reset_after_run(self, simple_pipeline, tiny_pipeline_stream):
        run_compress_everything(tiny_pipeline_stream, simple_pipeline, target_bitrate=10_000)
        # The degraded frames must not linger in the cache and pollute later runs.
        assert simple_pipeline.extractor._cache == {}
