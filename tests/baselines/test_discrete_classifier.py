"""Tests for NoScope-style discrete classifiers."""

import numpy as np
import pytest

from repro.baselines.discrete_classifier import (
    DiscreteClassifier,
    DiscreteClassifierConfig,
    discrete_classifier_pareto_configs,
)
from repro.core.training import TrainingConfig, train_classifier
from repro.perf.cost_model import discrete_classifier_cost

PIXEL_SHAPE = (24, 32, 3)
RNG = np.random.default_rng(0)


def build_dc(config=None):
    dc = DiscreteClassifier(config or DiscreteClassifierConfig())
    dc.build(PIXEL_SHAPE, rng=np.random.default_rng(1))
    return dc


class TestConfig:
    def test_defaults_valid(self):
        DiscreteClassifierConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kernels": (32,)},  # fewer than 2 conv layers
            {"kernels": (32, 32, 32, 32, 32)},  # more than 4
            {"kernels": (8, 32), "strides": (1, 1)},  # kernel count below 16
            {"kernels": (32, 128), "strides": (1, 1)},  # kernel count above 64
            {"kernels": (32, 32), "strides": (1,)},  # stride length mismatch
            {"kernels": (32, 32), "strides": (4, 1)},  # stride out of range
            {"pooling_layers": 3},
            {"threshold": 1.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        base = dict(kernels=(32, 32), strides=(1, 1))
        base.update(kwargs)
        with pytest.raises(ValueError):
            DiscreteClassifierConfig(**base)

    def test_pareto_configs_follow_paper_design_space(self):
        configs = discrete_classifier_pareto_configs()
        assert len(configs) >= 4
        for config in configs:
            assert 2 <= len(config.kernels) <= 4
            assert all(16 <= k <= 64 for k in config.kernels)
            assert all(1 <= s <= 3 for s in config.strides)
            assert 0 <= config.pooling_layers <= 2
            assert config.kernel_size == 3

    def test_pareto_costs_span_paper_range_at_1080p(self):
        """Costs should span roughly the paper's 100M-2.5B multiply-add range."""
        costs = [
            discrete_classifier_cost(c, (1920, 1080)) for c in discrete_classifier_pareto_configs()
        ]
        assert min(costs) < 150e6
        assert max(costs) > 1.5e9
        assert max(costs) < 3.0e9


class TestDiscreteClassifier:
    def test_probabilities_in_unit_interval(self):
        dc = build_dc()
        probs = dc.predict_proba_batch(RNG.random((4, *PIXEL_SHAPE)))
        assert probs.shape == (4,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_single_and_batch_agree(self):
        dc = build_dc()
        x = RNG.random(PIXEL_SHAPE)
        assert dc.predict_proba(x) == pytest.approx(dc.predict_proba_batch(x[None])[0])

    def test_classify_threshold(self):
        dc = build_dc(DiscreteClassifierConfig(threshold=0.7))
        assert dc.classify(0.71) and not dc.classify(0.69)

    def test_separable_configuration_builds(self):
        dc = build_dc(DiscreteClassifierConfig(separable=True))
        assert dc.predict_proba_batch(RNG.random((2, *PIXEL_SHAPE))).shape == (2,)

    def test_unbuilt_usage_raises(self):
        dc = DiscreteClassifier(DiscreteClassifierConfig())
        with pytest.raises(RuntimeError):
            dc.predict_proba_batch(RNG.random((1, *PIXEL_SHAPE)))
        assert dc.parameters() == []
        assert dc.num_parameters() == 0

    def test_trainable_on_pixel_task(self):
        dc = build_dc()
        rng = np.random.default_rng(5)
        x = rng.random((40, *PIXEL_SHAPE))
        y = (rng.random(40) > 0.5).astype(float)
        x[y == 1, :, :, 0] += 0.8  # positives are redder
        train_classifier(dc, x, y, TrainingConfig(epochs=4, batch_size=8, learning_rate=3e-3))
        probs = dc.predict_proba_batch(x)
        assert probs[y == 1].mean() > probs[y == 0].mean() + 0.1

    def test_multiply_adds_agree_with_cost_model(self):
        config = DiscreteClassifierConfig(kernels=(16, 32), strides=(2, 2), pooling_layers=1)
        dc = DiscreteClassifier(config)
        dc.build((64, 96, 3), rng=np.random.default_rng(0))
        # Cost model takes (width, height); the built model was given (H, W, C).
        assert dc.multiply_adds() == pytest.approx(
            discrete_classifier_cost(config, (96, 64)), rel=0.05
        )

    def test_cost_grows_with_depth(self):
        shallow = build_dc(DiscreteClassifierConfig(kernels=(16, 16), strides=(2, 2)))
        deep = build_dc(DiscreteClassifierConfig(kernels=(32, 48, 64), strides=(1, 1, 1)))
        assert deep.multiply_adds() > shallow.multiply_adds()
