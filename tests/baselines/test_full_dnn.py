"""Tests for the multiple-full-MobileNets baseline."""

import numpy as np
import pytest

from repro.baselines.full_dnn import (
    FullDNNClassifier,
    estimate_multiple_full_dnns,
)
from repro.features.base_dnn import mobilenet_multiply_adds


class TestFullDNNClassifier:
    @pytest.fixture(scope="class")
    def classifier(self):
        clf = FullDNNClassifier(alpha=0.125)
        clf.build((32, 48, 3), rng=np.random.default_rng(0))
        return clf

    def test_predicts_probabilities(self, classifier, rng):
        probs = classifier.predict_proba_batch(rng.random((3, 32, 48, 3)))
        assert probs.shape == (3,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_cost_equals_full_backbone(self, classifier):
        backbone_cost = mobilenet_multiply_adds((48, 32), alpha=0.125)
        assert classifier.multiply_adds() >= backbone_cost

    def test_parameters_cover_backbone_and_head(self, classifier):
        assert len(classifier.parameters()) > 20

    def test_unbuilt_usage(self):
        clf = FullDNNClassifier()
        with pytest.raises(RuntimeError):
            clf.predict_proba_batch(np.zeros((1, 32, 48, 3)))
        assert clf.parameters() == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FullDNNClassifier(threshold=1.5)


class TestMultipleFullDNNEstimate:
    def test_cost_scales_linearly(self):
        one = estimate_multiple_full_dnns(1)
        ten = estimate_multiple_full_dnns(10)
        assert ten.multiply_adds_per_frame == 10 * one.multiply_adds_per_frame
        assert ten.memory_bytes == pytest.approx(10 * one.memory_bytes)

    def test_out_of_memory_beyond_about_thirty(self):
        """Paper: multiple MobileNets run out of memory beyond 30 classifiers."""
        assert estimate_multiple_full_dnns(30).fits_in_memory
        assert not estimate_multiple_full_dnns(33).fits_in_memory

    def test_memory_gb_property(self):
        estimate = estimate_multiple_full_dnns(4)
        assert estimate.memory_gb == pytest.approx(4 * 1.0, rel=0.01)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            estimate_multiple_full_dnns(0)
