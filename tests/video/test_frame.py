"""Tests for the Frame container."""

import numpy as np
import pytest

from repro.video.frame import Frame


class TestFrame:
    def test_basic_properties(self, tiny_frame):
        assert tiny_frame.height == 24
        assert tiny_frame.width == 32
        assert tiny_frame.resolution == (32, 24)

    def test_pixels_cast_to_float32(self):
        frame = Frame(0, 0.0, np.zeros((4, 4, 3), dtype=np.float64))
        assert frame.pixels.dtype == np.float32

    def test_rejects_non_rgb_shapes(self):
        with pytest.raises(ValueError):
            Frame(0, 0.0, np.zeros((4, 4)))
        with pytest.raises(ValueError):
            Frame(0, 0.0, np.zeros((4, 4, 1)))

    def test_copy_is_deep(self, tiny_frame):
        clone = tiny_frame.copy()
        clone.pixels[0, 0, 0] = 0.123
        clone.metadata["x"] = 1
        assert tiny_frame.pixels[0, 0, 0] != np.float32(0.123) or tiny_frame.pixels[0, 0, 0] == clone.pixels[0, 0, 0] - 0  # values diverged
        assert "x" not in tiny_frame.metadata

    def test_with_pixels_preserves_identity_fields(self, tiny_frame):
        new_pixels = np.zeros_like(tiny_frame.pixels)
        replaced = tiny_frame.with_pixels(new_pixels)
        assert replaced.index == tiny_frame.index
        assert replaced.timestamp == tiny_frame.timestamp
        assert np.all(replaced.pixels == 0)

    def test_event_membership_recording(self, tiny_frame):
        tiny_frame.record_event("mc_dogs", 3)
        tiny_frame.record_event("mc_bikes", 7)
        assert tiny_frame.event_memberships() == {"mc_dogs": 3, "mc_bikes": 7}

    def test_event_memberships_returns_copy(self, tiny_frame):
        tiny_frame.record_event("mc", 1)
        memberships = tiny_frame.event_memberships()
        memberships["mc"] = 99
        assert tiny_frame.event_memberships()["mc"] == 1

    def test_record_event_overwrites_same_mc(self, tiny_frame):
        tiny_frame.record_event("mc", 1)
        tiny_frame.record_event("mc", 2)
        assert tiny_frame.event_memberships() == {"mc": 2}
