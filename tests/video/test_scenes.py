"""Tests for procedural scene rendering."""

import numpy as np
import pytest

from repro.video.scenes import Background, MovingObject, ObjectKind, render_scene


class TestBackground:
    def test_band_ordering(self):
        bg = Background(128, 96, seed=0)
        assert 0 < bg.sky_end < bg.trees_end < bg.buildings_end < bg.road_end < bg.height

    def test_image_shape_and_range(self):
        bg = Background(64, 48, seed=1)
        assert bg.image.shape == (48, 64, 3)
        assert bg.image.min() >= 0.0 and bg.image.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = Background(64, 48, seed=5).image
        b = Background(64, 48, seed=5).image
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = Background(64, 48, seed=5).image
        b = Background(64, 48, seed=6).image
        assert not np.array_equal(a, b)

    def test_crosswalk_inside_road(self):
        bg = Background(128, 96, seed=0)
        x0, y0, x1, y1 = bg.crosswalk_region
        assert bg.buildings_end == y0 and y1 == bg.road_end
        assert 0 < x0 < x1 < bg.width

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            Background(8, 8)

    def test_sky_is_blueish(self):
        bg = Background(64, 48, seed=0)
        sky = bg.image[: bg.sky_end]
        assert sky[..., 2].mean() > sky[..., 0].mean()


class TestMovingObject:
    def make(self, **kwargs):
        defaults = dict(
            kind=ObjectKind.PEDESTRIAN,
            start_frame=10,
            end_frame=20,
            start_position=(5.0, 7.0),
            velocity=(1.0, -0.5),
            size=(2, 6),
            color=(0.5, 0.5, 0.5),
        )
        defaults.update(kwargs)
        return MovingObject(**defaults)

    def test_active_window(self):
        obj = self.make()
        assert not obj.active_at(9)
        assert obj.active_at(10) and obj.active_at(19)
        assert not obj.active_at(20)

    def test_linear_motion(self):
        obj = self.make()
        assert obj.position_at(10) == (5.0, 7.0)
        assert obj.position_at(14) == (9.0, 5.0)

    def test_center_offset_by_half_size(self):
        obj = self.make()
        cx, cy = obj.center_at(10)
        assert cx == pytest.approx(6.0)
        assert cy == pytest.approx(10.0)

    def test_bounding_box(self):
        obj = self.make()
        assert obj.bounding_box(10) == (5, 7, 7, 13)

    def test_invalid_lifetime(self):
        with pytest.raises(ValueError):
            self.make(end_frame=10)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            self.make(size=(0, 5))

    def test_is_person_classification(self):
        assert ObjectKind.PEDESTRIAN.is_person
        assert ObjectKind.RED_PEDESTRIAN.is_person
        assert not ObjectKind.CAR.is_person

    def test_pick_color_red_pedestrian_is_red(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            r, g, b = MovingObject.pick_color(ObjectKind.RED_PEDESTRIAN, rng)
            assert r > 0.6 and g < 0.4 and b < 0.4


class TestRenderScene:
    def test_inactive_objects_leave_background_unchanged(self):
        bg = Background(64, 48, seed=0)
        obj = MovingObject(
            ObjectKind.CAR, 100, 110, (10.0, 30.0), (1.0, 0.0), (12, 4), (0.2, 0.2, 0.2)
        )
        frame = render_scene(bg, [obj], frame_index=0, noise_std=0.0)
        np.testing.assert_array_equal(frame, bg.image)

    def test_active_object_changes_pixels_at_its_location(self):
        bg = Background(64, 48, seed=0)
        obj = MovingObject(
            ObjectKind.CAR, 0, 10, (10.0, 30.0), (0.0, 0.0), (12, 4), (0.9, 0.1, 0.1)
        )
        frame = render_scene(bg, [obj], frame_index=0, noise_std=0.0)
        region = frame[30:34, 10:22]
        assert not np.array_equal(region, bg.image[30:34, 10:22])

    def test_red_pedestrian_renders_red_torso(self):
        bg = Background(64, 48, seed=0)
        obj = MovingObject(
            ObjectKind.RED_PEDESTRIAN, 0, 10, (20.0, 36.0), (0.0, 0.0), (3, 9), (0.9, 0.1, 0.1)
        )
        frame = render_scene(bg, [obj], frame_index=0, noise_std=0.0)
        torso = frame[39:42, 20:23]
        assert torso[..., 0].mean() > 0.7
        assert torso[..., 1].mean() < 0.3

    def test_objects_partially_off_screen_do_not_crash(self):
        bg = Background(64, 48, seed=0)
        obj = MovingObject(
            ObjectKind.PEDESTRIAN, 0, 10, (-5.0, 40.0), (0.0, 0.0), (8, 10), (0.3, 0.3, 0.6)
        )
        frame = render_scene(bg, [obj], frame_index=0, noise_std=0.0)
        assert frame.shape == bg.image.shape

    def test_noise_is_deterministic_per_frame(self):
        bg = Background(64, 48, seed=0)
        a = render_scene(bg, [], frame_index=3, noise_std=0.02)
        b = render_scene(bg, [], frame_index=3, noise_std=0.02)
        np.testing.assert_array_equal(a, b)

    def test_output_stays_in_unit_range(self):
        bg = Background(64, 48, seed=0)
        frame = render_scene(bg, [], frame_index=0, noise_std=0.3)
        assert frame.min() >= 0.0 and frame.max() <= 1.0
