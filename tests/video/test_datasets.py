"""Tests for the Jackson-like and Roadway-like dataset builders."""

import numpy as np
import pytest

from repro.video.datasets import DatasetSpec, make_jackson_like, make_roadway_like
from repro.video.synthetic import TASK_PEDESTRIAN, TASK_PEOPLE_WITH_RED


@pytest.fixture(scope="module")
def small_jackson():
    return make_jackson_like(num_frames=120, width=96, height=54, seed=3)


@pytest.fixture(scope="module")
def small_roadway():
    return make_roadway_like(num_frames=120, width=96, height=40, seed=5)


class TestSpecs:
    def test_jackson_spec(self, small_jackson):
        spec = small_jackson.spec
        assert spec.name == "jackson"
        assert spec.task == TASK_PEDESTRIAN
        assert spec.paper_resolution == (1920, 1080)
        assert spec.resolution == (96, 54)
        assert spec.frame_rate == 15.0
        assert spec.scale == pytest.approx(96 / 1920)

    def test_roadway_spec(self, small_roadway):
        spec = small_roadway.spec
        assert spec.name == "roadway"
        assert spec.task == TASK_PEOPLE_WITH_RED
        assert spec.paper_resolution == (2048, 850)

    def test_crop_rescaled_from_paper_coordinates(self, small_jackson):
        x0, y0, x1, y1 = small_jackson.spec.crop
        # Paper crop is the bottom half of the frame: (0, 539) - (1919, 1079).
        assert x0 == 0 and x1 == 96
        assert y0 == pytest.approx(539 / 1080 * 54, abs=1)
        assert y1 == 54

    def test_roadway_crop_covers_street_band(self, small_roadway):
        x0, y0, x1, y1 = small_roadway.spec.crop
        assert x0 == 0 and x1 == 96
        assert 0 < y0 < y1 <= 40


class TestGeneratedData:
    def test_split_sizes(self, small_jackson):
        assert len(small_jackson.train_stream) == 120
        assert len(small_jackson.test_stream) == 120
        assert len(small_jackson.train_labels) == 120
        assert len(small_jackson.test_labels) == 120

    def test_train_and_test_share_background_but_not_traffic(self, small_roadway):
        train0 = small_roadway.train_stream[0].pixels
        test0 = small_roadway.test_stream[0].pixels
        # Same static viewpoint: most pixels identical at frame 0 unless an
        # object happens to be present; the difference must be sparse.
        differing = np.mean(np.abs(train0 - test0) > 0.05)
        assert differing < 0.2
        # But the object traffic differs across the whole video.
        train_labels = small_roadway.train_labels.labels
        test_labels = small_roadway.test_labels.labels
        assert not np.array_equal(train_labels, test_labels)

    def test_resolution_matches_spec(self, small_roadway):
        assert small_roadway.train_stream.resolution == small_roadway.spec.resolution

    def test_deterministic_given_seed(self):
        a = make_jackson_like(num_frames=40, width=64, height=36, seed=11)
        b = make_jackson_like(num_frames=40, width=64, height=36, seed=11)
        np.testing.assert_array_equal(a.train_labels.labels, b.train_labels.labels)
        np.testing.assert_array_equal(a.test_stream[7].pixels, b.test_stream[7].pixels)

    def test_different_seed_changes_traffic(self):
        a = make_jackson_like(num_frames=60, width=64, height=36, seed=11)
        b = make_jackson_like(num_frames=60, width=64, height=36, seed=12)
        assert not np.array_equal(a.train_labels.labels, b.train_labels.labels)

    def test_summary_reports_generated_statistics(self, small_jackson):
        summary = small_jackson.summary()
        assert summary["frames"] == 240
        assert summary["task"] == TASK_PEDESTRIAN
        assert summary["event_frames"] == (
            small_jackson.train_labels.num_positive + small_jackson.test_labels.num_positive
        )

    def test_scene_overrides_are_applied(self):
        quiet = make_roadway_like(
            num_frames=60, width=64, height=36, seed=2, red_pedestrian_rate=0.0
        )
        assert quiet.train_labels.num_positive == 0
        assert quiet.test_labels.num_positive == 0


class TestEventStatistics:
    def test_events_are_rare_but_present(self):
        """Events occupy a minority of frames but several distinct events exist."""
        dataset = make_roadway_like(num_frames=480, width=96, height=40, seed=23)
        for labels in (dataset.train_labels, dataset.test_labels):
            assert 0.02 < labels.positive_fraction < 0.6
            assert len(labels.events()) >= 2

    def test_dataset_spec_is_frozen(self, small_jackson):
        with pytest.raises(AttributeError):
            small_jackson.spec.name = "other"  # type: ignore[misc]

    def test_spec_scale_consistency(self):
        spec = DatasetSpec(
            name="x",
            task="t",
            paper_resolution=(1000, 500),
            resolution=(100, 50),
            frame_rate=15.0,
            num_frames=10,
            paper_crop=(0, 0, 999, 499),
            crop=(0, 0, 100, 50),
        )
        assert spec.scale == pytest.approx(0.1)
