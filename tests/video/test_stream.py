"""Tests for video stream abstractions."""

import numpy as np
import pytest

from repro.video.frame import Frame
from repro.video.stream import InMemoryVideoStream


class TestInMemoryVideoStream:
    def test_length_and_indexing(self, tiny_stream):
        assert len(tiny_stream) == 12
        assert tiny_stream[0].index == 0
        assert tiny_stream[11].index == 11

    def test_out_of_range_raises(self, tiny_stream):
        with pytest.raises(IndexError):
            tiny_stream.frame(12)
        with pytest.raises(IndexError):
            tiny_stream.frame(-1)

    def test_iteration_order(self, tiny_stream):
        indices = [f.index for f in tiny_stream]
        assert indices == list(range(12))

    def test_duration(self, tiny_stream):
        assert tiny_stream.duration == pytest.approx(12 / 15.0)

    def test_resolution_is_width_height(self, tiny_stream):
        assert tiny_stream.resolution == (32, 24)

    def test_from_arrays_assigns_timestamps(self, rng):
        stream = InMemoryVideoStream.from_arrays(
            [rng.random((8, 8, 3)).astype(np.float32) for _ in range(4)], frame_rate=10.0
        )
        assert stream[2].timestamp == pytest.approx(0.2)

    def test_mixed_resolutions_rejected(self, rng):
        frames = [
            Frame(0, 0.0, rng.random((8, 8, 3)).astype(np.float32)),
            Frame(1, 0.1, rng.random((9, 8, 3)).astype(np.float32)),
        ]
        with pytest.raises(ValueError, match="share one resolution"):
            InMemoryVideoStream(frames, frame_rate=10.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            InMemoryVideoStream([], frame_rate=10.0)

    def test_segment_clamps_to_bounds(self, tiny_stream):
        segment = tiny_stream.segment(-5, 100)
        assert len(segment) == 12
        segment = tiny_stream.segment(3, 6)
        assert [f.index for f in segment] == [3, 4, 5]

    def test_raw_bits_per_second_matches_paper_example(self):
        """A 1080p30 stream decompressed is ~1.5 Gb/s (paper Section 2.1)."""
        class Dummy(InMemoryVideoStream):
            pass

        stream = InMemoryVideoStream.from_arrays(
            [np.zeros((4, 4, 3), dtype=np.float32)], frame_rate=30.0
        )
        # Use the formula directly at 1080p dimensions.
        stream.width, stream.height, stream.frame_rate = 1920, 1080, 30.0
        assert stream.raw_bits_per_second() == pytest.approx(1.49e9, rel=0.01)

    def test_invalid_frame_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            InMemoryVideoStream.from_arrays([rng.random((4, 4, 3))], frame_rate=0.0)
