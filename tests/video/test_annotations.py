"""Tests for event annotations and label/event conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.annotations import (
    EventAnnotation,
    FrameLabels,
    events_to_frame_labels,
    frame_labels_to_events,
)


class TestEventAnnotation:
    def test_length_and_contains(self):
        event = EventAnnotation(5, 9)
        assert event.length == 4
        assert event.contains(5) and event.contains(8)
        assert not event.contains(9) and not event.contains(4)

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            EventAnnotation(3, 3)
        with pytest.raises(ValueError):
            EventAnnotation(-1, 3)

    def test_overlap(self):
        a = EventAnnotation(0, 10)
        b = EventAnnotation(5, 15)
        c = EventAnnotation(20, 25)
        assert a.overlap(b) == 5
        assert b.overlap(a) == 5
        assert a.overlap(c) == 0

    def test_frames_range(self):
        assert list(EventAnnotation(2, 5).frames()) == [2, 3, 4]


class TestConversions:
    def test_labels_to_events_basic(self):
        events = frame_labels_to_events([0, 1, 1, 0, 0, 1, 0])
        assert [(e.start, e.end) for e in events] == [(1, 3), (5, 6)]

    def test_labels_to_events_edges(self):
        events = frame_labels_to_events([1, 1, 0, 1])
        assert [(e.start, e.end) for e in events] == [(0, 2), (3, 4)]

    def test_empty_labels(self):
        assert frame_labels_to_events([]) == []
        assert frame_labels_to_events([0, 0, 0]) == []

    def test_all_positive_is_one_event(self):
        events = frame_labels_to_events([1, 1, 1, 1])
        assert [(e.start, e.end) for e in events] == [(0, 4)]

    def test_events_to_labels(self):
        labels = events_to_frame_labels([EventAnnotation(1, 3), EventAnnotation(5, 6)], 7)
        np.testing.assert_array_equal(labels, [0, 1, 1, 0, 0, 1, 0])

    def test_events_past_end_are_clipped(self):
        labels = events_to_frame_labels([EventAnnotation(3, 10)], 5)
        np.testing.assert_array_equal(labels, [0, 0, 0, 1, 1])

    def test_event_entirely_past_end_is_ignored(self):
        labels = events_to_frame_labels([EventAnnotation(10, 12)], 5)
        assert labels.sum() == 0

    @given(st.lists(st.sampled_from([0, 1]), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_labels_events_labels(self, labels):
        events = frame_labels_to_events(labels)
        reconstructed = events_to_frame_labels(events, len(labels))
        np.testing.assert_array_equal(reconstructed, np.asarray(labels, dtype=np.int8))

    @given(st.lists(st.sampled_from([0, 1]), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_event_lengths_sum_to_positive_count(self, labels):
        events = frame_labels_to_events(labels)
        assert sum(e.length for e in events) == sum(labels)


class TestFrameLabels:
    def test_basic_statistics(self):
        labels = FrameLabels([0, 1, 1, 0, 1], task="demo")
        assert len(labels) == 5
        assert labels.num_positive == 3
        assert labels.positive_fraction == pytest.approx(0.6)
        assert labels[1] == 1

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            FrameLabels([0, 2, 1])

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError):
            FrameLabels(np.zeros((2, 2)))

    def test_events_property(self):
        labels = FrameLabels([0, 1, 1, 0, 1])
        assert [(e.start, e.end) for e in labels.events()] == [(1, 3), (4, 5)]

    def test_from_events_roundtrip(self):
        original = FrameLabels([0, 1, 1, 0, 0, 1, 1, 1])
        rebuilt = FrameLabels.from_events(original.events(), len(original))
        np.testing.assert_array_equal(rebuilt.labels, original.labels)
