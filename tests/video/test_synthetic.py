"""Tests for the synthetic surveillance-scene generator."""

import numpy as np
import pytest

from repro.video.annotations import FrameLabels
from repro.video.scenes import ObjectKind
from repro.video.synthetic import (
    TASK_PEDESTRIAN,
    TASK_PEOPLE_WITH_RED,
    SceneConfig,
    SurveillanceSceneGenerator,
)


class TestSceneConfig:
    def test_defaults_are_valid(self):
        SceneConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width": 16},
            {"num_frames": 0},
            {"frame_rate": 0},
            {"pedestrian_rate": -0.1},
            {"crossing_fraction": 1.5},
            {"person_speed_range": (0.0, 1.0)},
            {"person_speed_range": (2.0, 1.0)},
            {"max_person_duration": 1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SceneConfig(**kwargs)


class TestSpawning:
    def test_deterministic_given_seed(self, tiny_scene):
        a = tiny_scene.spawn_objects()
        b = tiny_scene.spawn_objects()
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.kind == y.kind and x.start_frame == y.start_frame
            assert x.start_position == y.start_position

    def test_object_seed_controls_traffic_independently(self):
        base = SceneConfig(width=64, height=48, num_frames=60, seed=1, pedestrian_rate=0.1)
        other = SceneConfig(
            width=64, height=48, num_frames=60, seed=1, pedestrian_rate=0.1, object_seed=999
        )
        a = SurveillanceSceneGenerator(base)
        b = SurveillanceSceneGenerator(other)
        np.testing.assert_array_equal(a.background.image, b.background.image)
        positions_a = [o.start_position for o in a.spawn_objects()]
        positions_b = [o.start_position for o in b.spawn_objects()]
        assert positions_a != positions_b

    def test_zero_rates_spawn_nothing(self):
        config = SceneConfig(
            width=64,
            height=48,
            num_frames=30,
            pedestrian_rate=0.0,
            red_pedestrian_rate=0.0,
            car_rate=0.0,
            cyclist_rate=0.0,
        )
        assert SurveillanceSceneGenerator(config).spawn_objects() == []

    def test_person_duration_cap(self):
        config = SceneConfig(
            width=96, height=64, num_frames=100, pedestrian_rate=0.3, max_person_duration=12
        )
        objects = SurveillanceSceneGenerator(config).spawn_objects()
        people = [o for o in objects if o.kind.is_person]
        assert people
        assert all(o.end_frame - o.start_frame <= 12 for o in people)

    def test_vehicles_travel_on_road(self, tiny_scene):
        objects = tiny_scene.spawn_objects()
        road_y0, road_y1 = tiny_scene.background.road_rows
        cars = [o for o in objects if o.kind is ObjectKind.CAR]
        assert cars
        for car in cars:
            assert road_y0 <= car.start_position[1] <= road_y1


class TestLabels:
    def test_pedestrian_task_only_counts_people_in_crosswalk(self, tiny_scene):
        objects = tiny_scene.spawn_objects()
        labels = tiny_scene.labels_for_task(objects, TASK_PEDESTRIAN)
        assert isinstance(labels, FrameLabels)
        assert len(labels) == tiny_scene.config.num_frames
        # Manually recompute: a frame is positive iff some person's centre is
        # inside the crosswalk region.
        region = tiny_scene.background.crosswalk_region
        for t in range(len(labels)):
            expected = any(
                o.kind.is_person
                and o.active_at(t)
                and region[0] <= o.center_at(t)[0] < region[2]
                and region[1] <= o.center_at(t)[1] < region[3]
                for o in objects
            )
            assert bool(labels[t]) == expected

    def test_red_task_ignores_regular_pedestrians(self, tiny_scene):
        objects = [
            o for o in tiny_scene.spawn_objects() if o.kind is not ObjectKind.RED_PEDESTRIAN
        ]
        labels = tiny_scene.labels_for_task(objects, TASK_PEOPLE_WITH_RED)
        assert labels.num_positive == 0

    def test_unknown_task_rejected(self, tiny_scene):
        with pytest.raises(ValueError, match="Unknown task"):
            tiny_scene.labels_for_task([], "find_unicorns")


class TestGenerate:
    def test_generate_produces_consistent_bundle(self, tiny_scene):
        scene = tiny_scene.generate()
        assert len(scene.stream) == tiny_scene.config.num_frames
        assert set(scene.labels) == {TASK_PEDESTRIAN, TASK_PEOPLE_WITH_RED}
        for labels in scene.labels.values():
            assert len(labels) == len(scene.stream)

    def test_rendered_frames_show_positive_frames_differ_from_background(self, tiny_scene):
        scene = tiny_scene.generate()
        labels = scene.labels[TASK_PEOPLE_WITH_RED]
        positives = np.flatnonzero(labels.labels)
        if positives.size == 0:
            pytest.skip("No red-pedestrian events in this tiny scene")
        frame = scene.stream[int(positives[0])]
        diff = np.abs(frame.pixels - scene.background.image).max()
        assert diff > 0.2

    def test_stream_is_deterministic(self, tiny_scene):
        a = tiny_scene.generate().stream
        b = tiny_scene.generate().stream
        np.testing.assert_array_equal(a[5].pixels, b[5].pixels)
