"""Tests for the H.264 rate-distortion simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.codec import H264Simulator
from repro.video.frame import Frame
from repro.video.stream import InMemoryVideoStream


@pytest.fixture
def codec() -> H264Simulator:
    return H264Simulator()


class TestRateModel:
    def test_detail_scale_saturates_at_high_bitrate(self, codec):
        assert codec.detail_scale_for_bpp(1.0) == 1.0
        assert codec.detail_scale_for_bpp(0.1) == pytest.approx(1.0)

    def test_detail_scale_decreases_with_bitrate(self, codec):
        scales = [codec.detail_scale_for_bpp(bpp) for bpp in (0.1, 0.05, 0.01, 0.001)]
        assert all(a >= b for a, b in zip(scales, scales[1:]))

    def test_detail_scale_has_floor(self, codec):
        assert codec.detail_scale_for_bpp(0.0) > 0.0
        assert codec.detail_scale_for_bpp(1e-9) > 0.0

    def test_quantization_levels_bounds(self, codec):
        assert codec.quantization_levels_for_bpp(10.0) == 256
        assert 8 <= codec.quantization_levels_for_bpp(1e-6) <= 256

    @given(bpp=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_detail_scale_always_in_unit_interval(self, bpp):
        assert 0.0 < H264Simulator().detail_scale_for_bpp(bpp) <= 1.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            H264Simulator(transparent_bpp=0.0)
        with pytest.raises(ValueError):
            H264Simulator(complexity_weight=2.0)


class TestEncoding:
    def test_total_bits_match_bitrate_budget(self, codec, tiny_stream):
        segment = codec.encode_stream(tiny_stream, target_bitrate=100_000)
        expected = 100_000 * tiny_stream.duration
        assert segment.total_bits == pytest.approx(expected, rel=0.05)

    def test_average_bandwidth_for_full_stream_is_bitrate(self, codec, tiny_stream):
        segment = codec.encode_stream(tiny_stream, target_bitrate=64_000)
        assert segment.average_bandwidth == pytest.approx(64_000, rel=0.05)

    def test_subset_upload_average_bandwidth_scales_with_selection(self, codec, tiny_stream):
        frames = [tiny_stream[i] for i in range(3)]
        segment = codec.encode(
            frames, 120_000, tiny_stream.frame_rate, tiny_stream.resolution,
            stream_duration=tiny_stream.duration,
        )
        # Only 3 of 12 frames uploaded at 120 kb/s -> average over the stream ~30 kb/s.
        assert segment.average_bandwidth == pytest.approx(120_000 * 3 / 12, rel=0.1)

    def test_busy_frames_cost_more_bits(self, codec, rng):
        static = [np.full((16, 16, 3), 0.5, dtype=np.float32) for _ in range(6)]
        busy = [rng.random((16, 16, 3)).astype(np.float32) for _ in range(6)]
        frames = static + busy
        stream = InMemoryVideoStream.from_arrays(frames, frame_rate=10.0)
        segment = codec.encode_stream(stream, target_bitrate=50_000)
        static_bits = sum(f.bits for f in segment.frames[1:5])
        busy_bits = sum(f.bits for f in segment.frames[7:11])
        assert busy_bits > static_bits

    def test_invalid_bitrate_rejected(self, codec, tiny_stream):
        with pytest.raises(ValueError):
            codec.encode_stream(tiny_stream, target_bitrate=0.0)

    def test_encoded_frame_indices_preserved(self, codec, tiny_stream):
        frames = [tiny_stream[4], tiny_stream[9]]
        segment = codec.encode(frames, 10_000, 15.0, tiny_stream.resolution)
        assert [f.index for f in segment.frames] == [4, 9]


class TestDistortion:
    def test_high_bitrate_is_nearly_lossless(self, codec, tiny_stream):
        decoded, _ = codec.transcode_stream(tiny_stream, target_bitrate=10_000_000)
        original = tiny_stream[5].pixels
        np.testing.assert_allclose(decoded[5].pixels, original, atol=0.02)

    def test_low_bitrate_destroys_small_details(self, codec):
        """A small bright object must survive high-bitrate encoding but vanish at low bitrate."""
        background = np.full((32, 48, 3), 0.4, dtype=np.float32)
        with_object = background.copy()
        with_object[10:13, 20:22] = [1.0, 0.0, 0.0]  # a 3x2-pixel red object
        frames = [with_object for _ in range(4)]
        stream = InMemoryVideoStream.from_arrays(frames, frame_rate=15.0)

        # Bitrates chosen so the high-quality encode stays above the
        # transparent bits-per-pixel threshold and the low-quality encode
        # falls far below it (0.004 bpp, the bottom of the Figure 4 sweep).
        pixels_per_second = 32 * 48 * 15
        hq, _ = codec.transcode_stream(stream, target_bitrate=0.2 * pixels_per_second)
        lq, _ = codec.transcode_stream(stream, target_bitrate=0.004 * pixels_per_second)

        def red_contrast(pixels):
            patch = pixels[10:13, 20:22]
            return float(patch[..., 0].mean() - patch[..., 1].mean())

        assert red_contrast(hq[0].pixels) > 0.5
        assert red_contrast(lq[0].pixels) < 0.25

    def test_block_average_preserves_mean(self, codec, rng):
        pixels = rng.random((17, 23, 3)).astype(np.float32)
        degraded = codec.degrade_pixels(pixels, detail_scale=0.25, levels=256)
        assert degraded.shape == pixels.shape
        assert degraded.mean() == pytest.approx(pixels.mean(), abs=0.02)

    def test_quantization_reduces_unique_levels(self, codec, rng):
        pixels = rng.random((16, 16, 3)).astype(np.float32)
        degraded = codec.degrade_pixels(pixels, detail_scale=1.0, levels=8)
        assert len(np.unique(np.round(degraded, 6))) <= 8

    def test_degraded_pixels_stay_in_range(self, codec, rng):
        pixels = rng.random((16, 16, 3)).astype(np.float32)
        degraded = codec.degrade_pixels(pixels, detail_scale=0.1, levels=16)
        assert degraded.min() >= 0.0 and degraded.max() <= 1.0

    def test_decode_keeps_frame_identity(self, codec, tiny_frame):
        segment = codec.encode([tiny_frame], 50_000, 15.0, (32, 24))
        decoded = codec.decode(tiny_frame, segment.frames[0])
        assert decoded.index == tiny_frame.index
        assert decoded.timestamp == tiny_frame.timestamp
