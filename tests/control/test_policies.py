"""Control actions, views, and config validation."""

import pytest

from repro.control import (
    MigrateCamera,
    MigrationConfig,
    MigrationCostModel,
    SetCameraQuota,
    SetCameraThreshold,
    SetDropPolicy,
    SetUplinkWeights,
    SheddingConfig,
    UplinkShareConfig,
)
from repro.fleet.queues import DropPolicy

from control_helpers import FakeRuntime, make_stats, make_view


class TestActions:
    def test_actions_are_hashable_and_comparable(self):
        a = SetCameraQuota(node_id="node0", camera_id="cam000", quota=2)
        b = SetCameraQuota(node_id="node0", camera_id="cam000", quota=2)
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_lines(self):
        assert "cam000" in SetCameraQuota("node0", "cam000", 1).describe()
        assert "default" in SetCameraQuota("node0", "cam000", None).describe()
        assert "drop_newest" in SetDropPolicy(
            "node0", "cam000", DropPolicy.DROP_NEWEST
        ).describe()
        migrate = MigrateCamera("cam000", "node0", "node1", 0.25)
        assert "node0 -> node1" in migrate.describe()
        weights = SetUplinkWeights(weights=(("node0", 0.75), ("node1", 0.25)))
        assert "node0=0.750" in weights.describe()
        assert weights.as_mapping() == {"node0": 0.75, "node1": 0.25}
        threshold = SetCameraThreshold("node0", "cam000", 0.55)
        assert "node0/cam000 -> 0.5500" in threshold.describe()

    def test_threshold_action_validates_range(self):
        with pytest.raises(ValueError, match="threshold"):
            SetCameraThreshold("node0", "cam000", 0.0)
        with pytest.raises(ValueError, match="threshold"):
            SetCameraThreshold("node0", "cam000", 1.0)


class TestClusterView:
    def test_node_lookup_and_remaining(self):
        view = make_view({"node0": FakeRuntime(), "node1": FakeRuntime()}, now=2.0, horizon=5.0)
        assert view.node("node1").node_id == "node1"
        with pytest.raises(KeyError):
            view.node("node9")
        assert view.remaining_seconds == pytest.approx(3.0)

    def test_node_view_surfaces(self):
        runtime = FakeRuntime({"cam000": make_stats("cam000", matched=3, scored=6)})
        runtime.telemetry.counter("frames.matched").inc(3)
        runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.5)
        view = make_view({"node0": runtime})
        node = view.node("node0")
        assert node.live_stats()["cam000"].match_density == pytest.approx(0.5)
        assert node.num_workers == 2
        assert node.wait_histogram().count == 1
        assert node.counter_value("frames.matched") == 3.0
        assert node.counter_value("no.such.counter") == 0.0


class TestConfigValidation:
    def test_shedding_config(self):
        with pytest.raises(ValueError, match="hysteresis"):
            SheddingConfig(high_watermark_seconds=0.1, low_watermark_seconds=0.1)
        with pytest.raises(ValueError, match="cameras_per_step"):
            SheddingConfig(cameras_per_step=0)
        with pytest.raises(ValueError, match="rung"):
            SheddingConfig(quota_ladder=())
        with pytest.raises(ValueError, match="rung"):
            SheddingConfig(quota_ladder=(2, 0))

    def test_migration_config(self):
        with pytest.raises(ValueError, match="imbalance_threshold"):
            MigrationConfig(imbalance_threshold=1.0)
        with pytest.raises(ValueError, match="sustain"):
            MigrationConfig(sustain_ticks=0)
        with pytest.raises(ValueError, match="payback"):
            MigrationConfig(payback_factor=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            MigrationCostModel(blackout_seconds=-0.1)

    def test_uplink_share_config(self):
        with pytest.raises(ValueError, match="smoothing"):
            UplinkShareConfig(smoothing=0.0)
        with pytest.raises(ValueError, match="min_share"):
            UplinkShareConfig(min_share=1.0)
        with pytest.raises(ValueError, match="rebalance_threshold"):
            UplinkShareConfig(rebalance_threshold=0.0)

    def test_cost_model_cold_start(self):
        model = MigrationCostModel(blackout_seconds=0.2, cold_start_seconds=0.3)
        assert model.blackout_for((64, 48), {(64, 48)}) == pytest.approx(0.2)
        assert model.blackout_for((64, 48), {(80, 48)}) == pytest.approx(0.5)
        assert model.frames_lost(10.0, 0.5) == pytest.approx(5.0)
