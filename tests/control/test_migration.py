"""Migration policy: sustained imbalance, cost gating, and hysteresis."""

import pytest

from repro.control import (
    MigrateCamera,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
)

from control_helpers import FakeRuntime, make_stats, make_view

CONFIG = MigrationConfig(
    imbalance_threshold=1.2,
    overload_threshold=1.0,
    headroom_threshold=0.85,
    sustain_ticks=2,
    cooldown_ticks=2,
    camera_cooldown_ticks=4,
    payback_factor=1.5,
    cost_model=MigrationCostModel(blackout_seconds=0.1, cold_start_seconds=0.1),
)

INTERVAL = 0.25


def hot_cold_cluster(tick: int) -> dict[str, FakeRuntime]:
    """node0 heavily oversubscribed, node1 nearly idle.

    Cumulative `generated` counters grow with the tick so the controller's
    windowed deltas stay constant.
    """
    arrivals_hot = 12 * (tick + 1)  # 48 fps offered per camera window
    arrivals_cold = 1 * (tick + 1)
    node0 = FakeRuntime(
        {
            "cam_a": make_stats("cam_a", frame_rate=48.0, generated=arrivals_hot,
                                service_seconds=0.03),
            "cam_b": make_stats("cam_b", frame_rate=48.0, generated=arrivals_hot,
                                service_seconds=0.03),
        },
        num_workers=2,
        horizon=10.0,
    )
    node1 = FakeRuntime(
        {
            "cam_c": make_stats("cam_c", frame_rate=2.0, generated=arrivals_cold,
                                service_seconds=0.03),
        },
        num_workers=2,
        horizon=10.0,
    )
    return {"node0": node0, "node1": node1}


def tick_view(controller_tick: int, **kwargs):
    return make_view(
        hot_cold_cluster(controller_tick),
        now=(controller_tick + 1) * INTERVAL,
        interval=INTERVAL,
        tick_index=controller_tick,
        **kwargs,
    )


class TestTrigger:
    def test_requires_sustained_imbalance(self):
        controller = MigrationController(CONFIG)
        assert controller.decide(tick_view(0)) == []  # sustained 1 < 2
        actions = controller.decide(tick_view(1))
        assert len(actions) == 1
        action = actions[0]
        assert isinstance(action, MigrateCamera)
        assert action.source == "node0"
        assert action.destination == "node1"
        assert action.camera_id in ("cam_a", "cam_b")

    def test_balanced_cluster_resets_sustain(self):
        controller = MigrationController(CONFIG)
        controller.decide(tick_view(0))
        balanced = {
            "node0": FakeRuntime({"cam_a": make_stats("cam_a", generated=2)}),
            "node1": FakeRuntime({"cam_c": make_stats("cam_c", generated=2)}),
        }
        assert controller.decide(make_view(balanced, tick_index=1)) == []
        # Imbalance must sustain again from scratch.
        assert controller.decide(tick_view(2)) == []

    def test_no_migration_without_destination_headroom(self):
        controller = MigrationController(CONFIG)
        cluster = hot_cold_cluster(0)
        # Make the cold node hot too: no headroom anywhere.
        cluster["node1"].cameras["cam_c"] = make_stats(
            "cam_c", frame_rate=48.0, generated=16, service_seconds=0.03
        )
        view = make_view(cluster, interval=INTERVAL)
        assert controller.decide(view) == []
        assert controller.decide(make_view(cluster, tick_index=1, interval=INTERVAL)) == []


class TestCostGating:
    def test_short_remaining_horizon_blocks_move(self):
        controller = MigrationController(CONFIG)
        controller.decide(tick_view(0))
        # Horizon nearly over: blackout loss cannot pay back.
        view = make_view(
            hot_cold_cluster(1),
            now=2 * INTERVAL,
            interval=INTERVAL,
            tick_index=1,
            horizon=2 * INTERVAL + 0.01,
        )
        assert controller.decide(view) == []

    def test_cold_start_added_when_destination_lacks_resolution(self):
        controller = MigrationController(CONFIG)
        controller.decide(tick_view(0))
        cluster = hot_cold_cluster(1)
        cluster["node1"].cameras["cam_c"] = make_stats(
            "cam_c", frame_rate=2.0, generated=2, resolution=(80, 48), service_seconds=0.03
        )
        view = make_view(cluster, now=2 * INTERVAL, interval=INTERVAL, tick_index=1)
        [action] = controller.decide(view)
        assert action.blackout_seconds == pytest.approx(0.2)  # blackout + cold start

    def test_warm_destination_pays_no_cold_start(self):
        controller = MigrationController(CONFIG)
        controller.decide(tick_view(0))
        [action] = controller.decide(tick_view(1))
        assert action.blackout_seconds == pytest.approx(0.1)


class TestHysteresis:
    def test_cooldown_blocks_back_to_back_moves(self):
        controller = MigrationController(CONFIG)
        controller.decide(tick_view(0))
        assert len(controller.decide(tick_view(1))) == 1
        # cooldown_ticks=2 quiet ticks, then sustain must rebuild.
        assert controller.decide(tick_view(2)) == []
        assert controller.decide(tick_view(3)) == []
        assert controller.decide(tick_view(4)) == []  # sustain 1
        assert len(controller.decide(tick_view(5))) == 1

    def test_recently_moved_camera_is_not_picked_again(self):
        from dataclasses import replace

        controller = MigrationController(replace(CONFIG, camera_cooldown_ticks=10))
        controller.decide(tick_view(0))
        [first] = controller.decide(tick_view(1))
        # Skip past the global cooldown, rebuild sustain.
        controller.decide(tick_view(2))
        controller.decide(tick_view(3))
        controller.decide(tick_view(4))
        [second] = controller.decide(tick_view(5))
        assert second.camera_id != first.camera_id

    def test_migration_history_is_recorded(self):
        controller = MigrationController(CONFIG)
        controller.decide(tick_view(0))
        controller.decide(tick_view(1))
        assert len(controller.migrations) == 1
        now, camera_id, source, destination = controller.migrations[0]
        assert source == "node0" and destination == "node1"
