"""The pinned control scenario behind the golden-trace regression test.

A compact 8-camera / 2-node cluster with a deliberate imbalance (round-robin
deals every high-rate camera to node0) that exercises the whole control
plane: adaptive shedding tightens quotas, the migration controller moves a
camera, and the work-conserving uplink re-weights.  Everything is seeded and
simulated, so the resulting decision log, telemetry snapshot, and report
counters are bit-identical across runs, machines, and processes — which is
what lets ``tests/data/golden_control_trace.jsonl`` pin them.

Regenerate the golden file (ONLY after an intentional behavior change)::

    PYTHONPATH=src python tests/control/golden_scenario.py tests/data/golden_control_trace.jsonl
"""

from __future__ import annotations

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
    SheddingConfig,
    UplinkShareController,
)
from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
)

NODE_CONFIG = FleetConfig(
    num_workers=1,
    queue_capacity=4,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=0.12,
)


def golden_cameras() -> list[CameraSpec]:
    """Round-robin deals all the 24 fps cameras to node0; node1 idles."""
    cameras = []
    for i in range(8):
        rate = 24.0 if i % 2 == 0 else 2.0
        cameras.append(
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=48,
                height=32,
                frame_rate=rate,
                num_frames=int(rate * 2.0),
                scenario="urban_day",
                seed=i,
            )
        )
    return cameras


def build_control_loop() -> ControlLoop:
    return ControlLoop(
        [
            AdaptiveSheddingController(
                SheddingConfig(
                    high_watermark_seconds=0.3,
                    low_watermark_seconds=0.1,
                    cameras_per_step=1,
                    quota_ladder=(2,),
                )
            ),
            UplinkShareController(),
            MigrationController(
                MigrationConfig(
                    imbalance_threshold=1.1,
                    sustain_ticks=2,
                    cooldown_ticks=2,
                    cost_model=MigrationCostModel(
                        blackout_seconds=0.2, cold_start_seconds=0.2
                    ),
                )
            ),
        ],
        interval_seconds=0.25,
    )


def build_report():
    """One fresh, fully controlled cluster run of the pinned scenario."""
    config = ShardingConfig(
        num_nodes=2,
        placement="round_robin",
        total_uplink_bps=100_000.0,
        uplink_sharing="work_conserving",
        node_config=NODE_CONFIG,
    )
    return ShardedFleetRuntime(
        golden_cameras(), config=config, control_loop=build_control_loop()
    ).run()


if __name__ == "__main__":
    import sys

    from repro.control.trace import write_control_trace

    if len(sys.argv) != 2:
        raise SystemExit(f"usage: {sys.argv[0]} <output.jsonl>")
    records = write_control_trace(sys.argv[1], build_report())
    print(f"wrote {len(records)} trace records to {sys.argv[1]}")
