"""Decision provenance: records, loop threading, and trace replay.

Covers the explainability contract end to end: ``DecisionRecord``
validation, the ``ControlLoop`` draining controller buffers and linking
records to decision-log indices, the v2 trace schema carrying decision
records, ``explain_action`` walking an action back to its decision, and a
mutation check that perturbing a provenance-recorded gate changes the
golden-scenario trace.
"""

import sys
from pathlib import Path

import pytest

from repro.control import (
    AdaptiveSheddingController,
    CandidateScore,
    ControlLoop,
    DecisionRecord,
    SheddingConfig,
    control_trace_records,
    diff_traces,
    explain_action,
)
from repro.control.policies import Controller
from repro.control.provenance import freeze_values

sys.path.insert(0, str(Path(__file__).resolve().parent))

from control_helpers import FakeRuntime  # noqa: E402
from golden_scenario import NODE_CONFIG, build_report, golden_cameras  # noqa: E402


# --- DecisionRecord ---------------------------------------------------------


def test_record_freezes_inputs_and_gates():
    record = DecisionRecord(
        controller="c",
        kind="tighten",
        inputs={"b": 2.0, "a": 1.0},
        gates={"hw": 0.3},
        actions=("do thing",),
    )
    assert record.inputs == (("a", 1.0), ("b", 2.0))
    assert record.to_dict()["inputs"] == {"a": 1.0, "b": 2.0}
    assert record.to_dict()["gates"] == {"hw": 0.3}


def test_noop_record_requires_reason():
    with pytest.raises(ValueError, match="no-op decision must carry a reason"):
        DecisionRecord(controller="c", kind="idle")
    record = DecisionRecord(controller="c", kind="idle", reason="nothing to do")
    assert record.is_noop
    assert not DecisionRecord(controller="c", kind="act", actions=("x",)).is_noop


def test_candidate_score_serialization():
    score = CandidateScore("cam000", 0.5, chosen=True, detail=(("rate", 24.0),))
    assert score.to_dict() == {
        "id": "cam000",
        "score": 0.5,
        "chosen": True,
        "detail": {"rate": 24.0},
    }


def test_freeze_values_sorts_and_stringifies_names():
    assert freeze_values({2: "b", 1: "a"}) == (("1", "a"), ("2", "b"))


# --- loop threading ---------------------------------------------------------


class ExplainedController(Controller):
    """Stages one provenance record per decide, claiming its actions."""

    name = "explained"

    def __init__(self, act_on_ticks=()):
        self.act_on_ticks = set(act_on_ticks)

    def decide(self, view):
        tick = view.tick_index
        if tick in self.act_on_ticks:
            actions = [FakeAction(f"act@{tick}")]
            self.record_decision(
                DecisionRecord(
                    controller=self.name,
                    kind="act",
                    inputs={"tick": float(tick)},
                    candidates=(CandidateScore("only", 1.0, chosen=True),),
                    actions=tuple(a.describe() for a in actions),
                )
            )
            return actions
        self.record_decision(
            DecisionRecord(
                controller=self.name, kind="idle", reason="not this tick"
            )
        )
        return []


class ForgetfulController(Controller):
    """Returns actions without recording any provenance."""

    name = "forgetful"

    def decide(self, view):
        return [FakeAction("mystery")]


class FakeAction:
    def __init__(self, text):
        self.text = text

    def describe(self):
        return self.text


class FakeActuator:
    uplink_weights = None
    uplink_guarantees = None

    def apply(self, action, now):
        pass


def _tick(loop, times=1):
    for i in range(times):
        loop.tick(0.25 * (loop.ticks + 1), {"node0": FakeRuntime()}, FakeActuator())


def test_loop_threads_decision_records_with_action_seqs():
    loop = ControlLoop([ExplainedController(act_on_ticks={1})], interval_seconds=0.25)
    _tick(loop, 3)
    records = loop.decision_records
    assert [r["kind"] for r in records] == ["idle", "act", "idle"]
    assert [r["tick"] for r in records] == [0, 1, 2]
    assert [r["seq"] for r in records] == [0, 1, 2]
    acting = records[1]
    assert acting["action_seqs"] == [0]
    assert loop.decision_log[0].endswith("act@1")
    assert records[0]["action_seqs"] == []
    assert records[0]["reason"] == "not this tick"
    assert loop.counter_value("control.decisions.total") == 3.0
    assert loop.counter_value("control.decisions.noop") == 2.0


def test_loop_synthesizes_records_for_unexplained_actions():
    loop = ControlLoop([ForgetfulController()], interval_seconds=0.25)
    _tick(loop)
    (record,) = loop.decision_records
    assert record["controller"] == "forgetful"
    assert record["kind"] == "action"
    assert record["actions"] == ["mystery"]
    assert record["action_seqs"] == [0]


def test_loop_interleaves_multiple_controllers():
    loop = ControlLoop(
        [ExplainedController(act_on_ticks={0}), ForgetfulController()],
        interval_seconds=0.25,
    )
    _tick(loop)
    kinds = [(r["controller"], r["action_seqs"]) for r in loop.decision_records]
    assert kinds == [("explained", [0]), ("forgetful", [1])]


# --- trace v2 + explain_action ----------------------------------------------


class FakeReport:
    control_log = ["t=0.250 explained: act@1"]
    telemetry = {"control.ticks": 1}
    frames_generated = 10
    frames_scored = 8

    def __init__(self, decisions):
        self.decision_records = decisions


def _trace_with_decisions():
    decisions = [
        {
            "controller": "explained",
            "kind": "act",
            "node": "node0",
            "inputs": {"tick": 1.0},
            "gates": {},
            "candidates": [],
            "actions": ["act@1"],
            "reason": None,
            "tick": 1,
            "t": 0.25,
            "seq": 0,
            "action_seqs": [0],
        }
    ]
    return control_trace_records(FakeReport(decisions))


def test_trace_carries_decision_records():
    records = _trace_with_decisions()
    header = records[0]
    assert header["schema"] == "repro.control.trace/v2"
    assert header["decisions"] == 1
    decision_lines = [r for r in records if r["type"] == "decision"]
    assert len(decision_lines) == 1
    assert decision_lines[0]["action_seqs"] == [0]


def test_explain_action_walks_back_to_decision():
    records = _trace_with_decisions()
    decision = explain_action(records, 0)
    assert decision["controller"] == "explained"
    assert decision["inputs"] == {"tick": 1.0}


def test_explain_action_missing_action_raises_index_error():
    with pytest.raises(IndexError):
        explain_action(_trace_with_decisions(), 99)


def test_explain_action_unclaimed_action_raises_key_error():
    records = control_trace_records(FakeReport([]))
    with pytest.raises(KeyError, match="pre-provenance"):
        explain_action(records, 0)


def test_diff_traces_describes_decision_records():
    a = _trace_with_decisions()
    b = _trace_with_decisions()
    b[1 + 1]["kind"] = "other"  # header, action, then the decision line
    problems = diff_traces(a, b)
    assert problems and "decision seq=0" in problems[0]


# --- every controller explains every action ---------------------------------


def test_golden_scenario_every_action_has_a_decision():
    report = build_report()
    records = control_trace_records(report)
    for seq in range(len(report.control_log)):
        decision = explain_action(records, seq)
        assert decision["controller"]
        assert decision["actions"]
    # ... and every decision's claimed action texts match the decision log.
    for decision in (r for r in records if r["type"] == "decision"):
        for offset, seq in enumerate(decision["action_seqs"]):
            assert report.control_log[seq].endswith(decision["actions"][offset])


def test_perturbed_gate_changes_the_trace():
    """The provenance layer records real thresholds: nudging the shedding
    watermark produces a different trace (mutation-verified explainability)."""
    from golden_scenario import build_control_loop
    from repro.fleet import ShardedFleetRuntime, ShardingConfig

    baseline = control_trace_records(build_report())
    loop = build_control_loop()
    assert isinstance(loop.controllers[0], AdaptiveSheddingController)
    perturbed_loop = ControlLoop(
        [
            AdaptiveSheddingController(
                SheddingConfig(
                    high_watermark_seconds=0.31,  # was 0.3
                    low_watermark_seconds=0.1,
                    cameras_per_step=1,
                    quota_ladder=(2,),
                )
            ),
            *loop.controllers[1:],
        ],
        interval_seconds=loop.interval_seconds,
    )
    config = ShardingConfig(
        num_nodes=2,
        placement="round_robin",
        total_uplink_bps=100_000.0,
        uplink_sharing="work_conserving",
        node_config=NODE_CONFIG,
    )
    perturbed = control_trace_records(
        ShardedFleetRuntime(
            golden_cameras(), config=config, control_loop=perturbed_loop
        ).run()
    )
    problems = diff_traces(baseline, perturbed)
    assert problems, "perturbing a recorded gate must change the trace"
    # The drifted gate itself is visible in some decision record's gates.
    gates = [
        r["gates"].get("high_watermark_seconds")
        for r in perturbed
        if r.get("type") == "decision" and r.get("controller") == "adaptive_shedding"
    ]
    assert 0.31 in gates
