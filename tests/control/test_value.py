"""Value-aware control: value-per-service-second shedding and threshold drift."""

import pytest

from repro.control import (
    ControlLoop,
    NodeActuator,
    SetCameraQuota,
    SetCameraThreshold,
    SetDropPolicy,
    ThresholdDriftConfig,
    ThresholdDriftController,
    ValueSheddingConfig,
    ValueSheddingController,
)
from repro.control.policies import Controller
from repro.fleet import CameraSpec, FleetConfig, FleetRuntime
from repro.fleet.queues import DropPolicy

from control_helpers import FakeRuntime, make_stats, make_view

CONFIG = ValueSheddingConfig(
    high_watermark_seconds=0.2,
    low_watermark_seconds=0.05,
    uplink_high_watermark_seconds=1.5,
    uplink_low_watermark_seconds=0.5,
    cameras_per_step=2,
    quota_ladder=(2, 1),
    value_signal="truth_density",
)


def overload(runtime: FakeRuntime, wait: float = 0.5, count: int = 10) -> None:
    for _ in range(count):
        runtime.telemetry.histogram("latency.queue_wait_seconds").observe(wait)


class TestValueSheddingConfig:
    def test_watermark_hysteresis_required(self):
        with pytest.raises(ValueError, match="hysteresis"):
            ValueSheddingConfig(high_watermark_seconds=0.1, low_watermark_seconds=0.1)
        with pytest.raises(ValueError, match="uplink high watermark"):
            ValueSheddingConfig(
                uplink_high_watermark_seconds=0.5, uplink_low_watermark_seconds=0.5
            )

    def test_ladder_and_signal_validation(self):
        with pytest.raises(ValueError, match="cameras_per_step"):
            ValueSheddingConfig(cameras_per_step=0)
        with pytest.raises(ValueError, match="rung"):
            ValueSheddingConfig(quota_ladder=())
        with pytest.raises(ValueError, match="rungs"):
            ValueSheddingConfig(quota_ladder=(2, 0))
        with pytest.raises(ValueError, match="value_signal"):
            ValueSheddingConfig(value_signal="vibes")


class TestComputeBoundRanking:
    def test_sheds_lowest_value_per_service_second_first(self):
        # cam_cheap and cam_dear have equal truth density, but cam_dear's
        # frames cost 4x the service time — it buys less accuracy per
        # worker-second and sheds first.  cam_rich is densest and safe.
        runtime = FakeRuntime(
            {
                "cam_rich": make_stats(
                    "cam_rich", generated=20, scored=10,
                    truth_known=True, truth_positive_generated=16,
                ),
                "cam_cheap": make_stats(
                    "cam_cheap", generated=20, scored=10, service_seconds=0.01,
                    truth_known=True, truth_positive_generated=4,
                ),
                "cam_dear": make_stats(
                    "cam_dear", generated=20, scored=10, service_seconds=0.04,
                    truth_known=True, truth_positive_generated=4,
                ),
            }
        )
        overload(runtime)
        actions = ValueSheddingController(CONFIG).decide(make_view({"node0": runtime}))
        quotas = [a for a in actions if isinstance(a, SetCameraQuota)]
        assert [a.camera_id for a in quotas] == ["cam_dear", "cam_cheap"]
        assert all(a.quota == 2 for a in quotas)
        policies = [a for a in actions if isinstance(a, SetDropPolicy)]
        assert all(a.policy is DropPolicy.DROP_NEWEST for a in policies)

    def test_idle_cameras_are_never_capped(self):
        # A feed that has not started offers no load: capping it frees
        # nothing and would pre-judge a possibly-dense future burst at 0.0.
        runtime = FakeRuntime(
            {
                "cam_future": make_stats(
                    "cam_future", frame_rate=24.0, generated=0, scored=0,
                    truth_known=True,
                ),
                "cam_live": make_stats(
                    "cam_live", generated=10, scored=10,
                    truth_known=True, truth_positive_generated=5,
                ),
            }
        )
        overload(runtime)
        actions = ValueSheddingController(CONFIG).decide(make_view({"node0": runtime}))
        quotas = [a for a in actions if isinstance(a, SetCameraQuota)]
        assert [a.camera_id for a in quotas] == ["cam_live"]

    def test_truth_density_falls_back_to_match_density(self):
        # No accuracy plane: the oracle signal degrades to the proxy.
        runtime = FakeRuntime(
            {
                "cam_matchy": make_stats("cam_matchy", generated=10, scored=10, matched=8),
                "cam_quiet": make_stats("cam_quiet", generated=10, scored=10, matched=0),
            }
        )
        overload(runtime)
        controller = ValueSheddingController(
            ValueSheddingConfig(cameras_per_step=1, value_signal="truth_density")
        )
        actions = controller.decide(make_view({"node0": runtime}))
        quota = next(a for a in actions if isinstance(a, SetCameraQuota))
        assert quota.camera_id == "cam_quiet"

    def test_second_overloaded_tick_steps_down_the_ladder(self):
        runtime = FakeRuntime(
            {
                "cam_a": make_stats("cam_a", generated=10, scored=10, matched=0),
                "cam_b": make_stats("cam_b", generated=10, scored=10, matched=9),
            }
        )
        overload(runtime)
        controller = ValueSheddingController(
            ValueSheddingConfig(cameras_per_step=1, value_signal="match_density")
        )
        controller.decide(make_view({"node0": runtime}))
        overload(runtime, count=5)
        actions = controller.decide(make_view({"node0": runtime}, tick_index=1))
        assert [(a.camera_id, a.quota) for a in actions if isinstance(a, SetCameraQuota)] == [
            ("cam_a", 1)
        ]
        # Bottom of the ladder: the next overloaded tick caps the other camera.
        overload(runtime, count=5)
        actions = controller.decide(make_view({"node0": runtime}, tick_index=2))
        assert [(a.camera_id, a.quota) for a in actions if isinstance(a, SetCameraQuota)] == [
            ("cam_b", 2)
        ]


class TestUplinkBoundShedding:
    def make_upload_node(self) -> FakeRuntime:
        return FakeRuntime(
            {
                # cam_hog uploads a lot for little truth; cam_rich uploads a
                # lot but is event-dense; cam_silent uploads nothing.
                "cam_hog": make_stats(
                    "cam_hog", generated=20, scored=10, estimated_upload_bits=5_000.0,
                    truth_known=True, truth_positive_generated=2,
                ),
                "cam_rich": make_stats(
                    "cam_rich", generated=20, scored=10, estimated_upload_bits=5_000.0,
                    truth_known=True, truth_positive_generated=16,
                ),
                "cam_silent": make_stats(
                    "cam_silent", generated=20, scored=10, estimated_upload_bits=0.0,
                    truth_known=True, truth_positive_generated=1,
                ),
            }
        )

    def test_uplink_backlog_sheds_upload_heavy_low_value_first(self):
        runtime = self.make_upload_node()
        # CPU calm, link drowning: 50 kbit estimated against a 10 kbps
        # guarantee at t=1 -> ~4s of estimated backlog.
        runtime.telemetry.counter("uplink.estimated_bits").inc(50_000.0)
        controller = ValueSheddingController(CONFIG)
        actions = controller.decide(
            make_view({"node0": runtime}, uplink_guarantees={"node0": 10_000.0})
        )
        quotas = [a for a in actions if isinstance(a, SetCameraQuota)]
        # cam_hog first (most upload per unit of value); cam_silent cannot
        # relieve the link and is never the uplink-mode victim.
        assert [a.camera_id for a in quotas] == ["cam_hog", "cam_rich"]

    def test_exhausted_ladder_never_spills_onto_zero_upload_cameras(self):
        # Once every uploading camera sits at the bottom of the ladder,
        # persistent link backlog must NOT start capping cameras that
        # upload nothing — capping them cannot relieve the link.
        runtime = self.make_upload_node()
        runtime.telemetry.counter("uplink.estimated_bits").inc(50_000.0)
        controller = ValueSheddingController(CONFIG)
        guarantees = {"node0": 10_000.0}
        first = controller.decide(
            make_view({"node0": runtime}, uplink_guarantees=guarantees)
        )
        second = controller.decide(
            make_view({"node0": runtime}, tick_index=1, uplink_guarantees=guarantees)
        )
        # Ladder (2, 1): both uploaders stepped to the bottom rung.
        assert [(a.camera_id, a.quota) for a in second if isinstance(a, SetCameraQuota)] == [
            ("cam_hog", 1),
            ("cam_rich", 1),
        ]
        third = controller.decide(
            make_view({"node0": runtime}, tick_index=2, uplink_guarantees=guarantees)
        )
        assert third == []
        touched = {
            a.camera_id for a in first + second if isinstance(a, SetCameraQuota)
        }
        assert "cam_silent" not in touched

    def test_no_guarantees_means_no_uplink_detection(self):
        runtime = self.make_upload_node()
        runtime.telemetry.counter("uplink.estimated_bits").inc(50_000.0)
        controller = ValueSheddingController(CONFIG)
        assert controller.decide(make_view({"node0": runtime})) == []
        assert (
            controller.decide(
                make_view({"node0": runtime}, uplink_guarantees={"other_node": 1.0})
            )
            == []
        )

    def test_backlog_below_watermark_is_quiet(self):
        runtime = self.make_upload_node()
        runtime.telemetry.counter("uplink.estimated_bits").inc(11_000.0)
        controller = ValueSheddingController(CONFIG)
        # ~0.1s estimated backlog at t=1: under the high watermark.
        assert (
            controller.decide(
                make_view({"node0": runtime}, uplink_guarantees={"node0": 10_000.0})
            )
            == []
        )

    def test_late_run_saturation_is_not_masked_by_an_idle_prefix(self):
        # A long idle prefix must not bank transmission credit: the backlog
        # model is windowed per tick, so uploads arriving at 2x the
        # guarantee late in the run still trip the detector.
        runtime = self.make_upload_node()
        controller = ValueSheddingController(CONFIG)
        guarantees = {"node0": 10_000.0}
        # 60 idle seconds: nothing estimated, nothing detected.
        assert (
            controller.decide(
                make_view({"node0": runtime}, now=60.0, uplink_guarantees=guarantees)
            )
            == []
        )
        # One second later, 30 kbit arrived (3x guarantee for that window,
        # ~2s of queued work net of drain): a run-average
        # (bits/guarantee - now ~= -58s) would stay blind.
        runtime.telemetry.counter("uplink.estimated_bits").inc(30_000.0)
        overloaded = controller.decide(
            make_view({"node0": runtime}, now=61.0, tick_index=1, uplink_guarantees=guarantees)
        )
        assert [a.camera_id for a in overloaded if isinstance(a, SetCameraQuota)] == [
            "cam_hog",
            "cam_rich",
        ]
        # The queued work drains at one second per second once arrivals stop.
        calm = controller.decide(
            make_view({"node0": runtime}, now=64.0, tick_index=2, uplink_guarantees=guarantees)
        )
        restored = [a for a in calm if isinstance(a, SetCameraQuota)]
        assert restored and restored[0].quota is None


class TestRelax:
    def test_restores_most_valuable_per_service_second_first(self):
        runtime = FakeRuntime(
            {
                "cam_good": make_stats(
                    "cam_good", generated=20, scored=10, service_seconds=0.01,
                    truth_known=True, truth_positive_generated=8,
                    drop_policy=DropPolicy.BLOCK,
                ),
                "cam_poor": make_stats(
                    "cam_poor", generated=20, scored=10, service_seconds=0.01,
                    truth_known=True, truth_positive_generated=0,
                ),
            }
        )
        overload(runtime)
        controller = ValueSheddingController(CONFIG)
        controller.decide(make_view({"node0": runtime}))  # caps both
        first = controller.decide(make_view({"node0": runtime}, tick_index=1))
        quota = next(a for a in first if isinstance(a, SetCameraQuota))
        policy = next(a for a in first if isinstance(a, SetDropPolicy))
        assert quota.camera_id == "cam_good"
        assert quota.quota is None
        assert policy.policy is DropPolicy.BLOCK  # the pre-tighten policy
        second = controller.decide(make_view({"node0": runtime}, tick_index=2))
        assert next(a for a in second if isinstance(a, SetCameraQuota)).camera_id == "cam_poor"
        assert controller.decide(make_view({"node0": runtime}, tick_index=3)) == []

    def test_uplink_backlog_blocks_relaxation(self):
        runtime = FakeRuntime(
            {
                "cam_a": make_stats("cam_a", generated=10, scored=10, matched=0),
                "cam_b": make_stats("cam_b", generated=10, scored=10, matched=9),
            }
        )
        overload(runtime)
        controller = ValueSheddingController(CONFIG)
        guarantees = {"node0": 10_000.0}
        controller.decide(make_view({"node0": runtime}, uplink_guarantees=guarantees))
        # CPU calm now, but the estimated link backlog sits between the
        # uplink watermarks (10 kbit arriving within one tick on a 10 kbps
        # guarantee = 1s of queued work): hold.
        runtime.telemetry.counter("uplink.estimated_bits").inc(10_000.0)
        assert (
            controller.decide(
                make_view({"node0": runtime}, tick_index=1, uplink_guarantees=guarantees)
            )
            == []
        )

    def test_capped_camera_that_migrated_away_is_forgotten(self):
        runtime = FakeRuntime(
            {
                "cam_a": make_stats("cam_a", generated=10, scored=10, matched=0),
                "cam_b": make_stats("cam_b", generated=10, scored=10, matched=9),
            }
        )
        overload(runtime)
        controller = ValueSheddingController(CONFIG)
        controller.decide(make_view({"node0": runtime}))
        runtime.cameras.pop("cam_a")
        runtime.cameras.pop("cam_b")
        assert controller.decide(make_view({"node0": runtime}, tick_index=1)) == []
        assert controller.decide(make_view({"node0": runtime}, tick_index=2)) == []

    def test_between_watermarks_holds(self):
        runtime = FakeRuntime({"cam_a": make_stats("cam_a", generated=10, scored=10)})
        overload(runtime)
        controller = ValueSheddingController(CONFIG)
        controller.decide(make_view({"node0": runtime}))
        overload(runtime, wait=0.1, count=5)  # between the watermarks
        assert controller.decide(make_view({"node0": runtime}, tick_index=1)) == []


def drift_stats(
    camera_id: str = "cam000",
    generated: int = 40,
    scored: int = 40,
    matched: int = 0,
    truth_positive: int = 8,
    threshold: float = 0.5,
):
    return make_stats(
        camera_id,
        generated=generated,
        scored=scored,
        matched=matched,
        truth_known=True,
        truth_positive_generated=truth_positive,
        truth_positive_scored=truth_positive,
        threshold=threshold,
    )


class TestThresholdDriftConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="tolerance"):
            ThresholdDriftConfig(tolerance=-0.1)
        with pytest.raises(ValueError, match="step"):
            ThresholdDriftConfig(step=0.0)
        with pytest.raises(ValueError, match="min_threshold"):
            ThresholdDriftConfig(min_threshold=0.8, max_threshold=0.2)
        with pytest.raises(ValueError, match="min_scored"):
            ThresholdDriftConfig(min_scored=0)
        with pytest.raises(ValueError, match="cooldown"):
            ThresholdDriftConfig(cooldown_ticks=-1)


class TestThresholdDrift:
    CONFIG = ThresholdDriftConfig(
        tolerance=0.5, step=0.05, min_scored=16, cooldown_ticks=2
    )

    def test_over_firing_camera_gets_threshold_raised(self):
        # Truth density 0.2, match density 0.75: the MC fires far too often.
        runtime = FakeRuntime({"cam000": drift_stats(matched=30, truth_positive=8)})
        actions = ThresholdDriftController(self.CONFIG).decide(make_view({"node0": runtime}))
        assert actions == [
            SetCameraThreshold(node_id="node0", camera_id="cam000", threshold=0.55)
        ]

    def test_under_firing_camera_gets_threshold_lowered(self):
        # Truth density 0.5, match density 0.05: the MC misses events.
        runtime = FakeRuntime({"cam000": drift_stats(matched=2, truth_positive=20)})
        actions = ThresholdDriftController(self.CONFIG).decide(make_view({"node0": runtime}))
        assert actions == [
            SetCameraThreshold(node_id="node0", camera_id="cam000", threshold=0.45)
        ]

    def test_in_band_camera_is_left_alone(self):
        runtime = FakeRuntime({"cam000": drift_stats(matched=8, truth_positive=8)})
        assert ThresholdDriftController(self.CONFIG).decide(make_view({"node0": runtime})) == []

    def test_zero_truth_density_never_lowers(self):
        # Nothing to recall: a silent scene only ever pushes the threshold up.
        runtime = FakeRuntime({"cam000": drift_stats(matched=0, truth_positive=0)})
        assert ThresholdDriftController(self.CONFIG).decide(make_view({"node0": runtime})) == []

    def test_needs_min_scored_window(self):
        runtime = FakeRuntime(
            {"cam000": drift_stats(generated=10, scored=10, matched=9, truth_positive=1)}
        )
        assert ThresholdDriftController(self.CONFIG).decide(make_view({"node0": runtime})) == []

    def test_cameras_without_truth_or_threshold_are_skipped(self):
        runtime = FakeRuntime(
            {
                "cam_no_truth": make_stats(
                    "cam_no_truth", generated=40, scored=40, matched=30, threshold=0.5
                ),
                "cam_no_threshold": drift_stats("cam_no_threshold", matched=30, threshold=0.0),
            }
        )
        assert ThresholdDriftController(self.CONFIG).decide(make_view({"node0": runtime})) == []

    def test_cooldown_then_fresh_window(self):
        controller = ThresholdDriftController(self.CONFIG)
        runtime = FakeRuntime({"cam000": drift_stats(matched=30, truth_positive=8)})
        assert len(controller.decide(make_view({"node0": runtime}))) == 1
        # Two cooldown ticks: silent even though the picture looks the same.
        assert controller.decide(make_view({"node0": runtime}, tick_index=1)) == []
        assert controller.decide(make_view({"node0": runtime}, tick_index=2)) == []
        # Post-cooldown, only post-adjustment frames count: the new window
        # (40 more scored, all matched at the raised threshold) still
        # over-fires, so it steps again from the *live* threshold.
        runtime.cameras["cam000"] = drift_stats(
            generated=80, scored=80, matched=60, truth_positive=16, threshold=0.55
        )
        actions = controller.decide(make_view({"node0": runtime}, tick_index=3))
        assert actions == [
            SetCameraThreshold(node_id="node0", camera_id="cam000", threshold=0.6)
        ]

    def test_balanced_second_window_is_quiet_despite_skewed_history(self):
        controller = ThresholdDriftController(ThresholdDriftConfig(cooldown_ticks=0))
        runtime = FakeRuntime({"cam000": drift_stats(matched=30, truth_positive=8)})
        controller.decide(make_view({"node0": runtime}))
        # The next 40 frames are perfectly calibrated; cumulative densities
        # are still skewed, but the windowed view sees no leak.
        runtime.cameras["cam000"] = drift_stats(
            generated=80, scored=80, matched=38, truth_positive=16, threshold=0.55
        )
        assert controller.decide(make_view({"node0": runtime}, tick_index=1)) == []

    def test_clamped_threshold_emits_no_noop_actions(self):
        config = ThresholdDriftConfig(step=0.2, max_threshold=0.6, cooldown_ticks=0)
        controller = ThresholdDriftController(config)
        runtime = FakeRuntime({"cam000": drift_stats(matched=30, truth_positive=8)})
        actions = controller.decide(make_view({"node0": runtime}))
        assert actions[0].threshold == 0.6  # clamped
        runtime.cameras["cam000"] = drift_stats(
            generated=80, scored=80, matched=60, truth_positive=16, threshold=0.6
        )
        # Pinned at the clamp: stepping again would be a no-op, so silence.
        assert controller.decide(make_view({"node0": runtime}, tick_index=1)) == []

    def test_stint_change_during_cooldown_does_not_corrupt_the_window(self):
        # Adjustment at tick 0 starts a cooldown; the camera migrates away
        # and returns DURING the cooldown with freshly-zeroed counters that
        # then catch up past the stale baseline.  Without stint detection,
        # the first post-cooldown window computes a negative match delta
        # ((4 - 30) / window) and spuriously lowers the threshold.
        controller = ThresholdDriftController(
            ThresholdDriftConfig(tolerance=0.5, step=0.05, min_scored=16, cooldown_ticks=2)
        )
        runtime = FakeRuntime({"cam000": drift_stats(matched=30, truth_positive=8)})
        assert len(controller.decide(make_view({"node0": runtime}))) == 1
        # New stint (attached_at moved): counters restarted and caught up
        # past the baseline on scored/generated, but not on matched.
        runtime.cameras["cam000"] = make_stats(
            "cam000", generated=36, scored=36, matched=4, truth_known=True,
            truth_positive_generated=8, truth_positive_scored=8,
            threshold=0.55, attached_at=1.25,
        )
        # The stint change rebases (and clears the stale cooldown) instead
        # of evaluating a cross-stint window.
        assert controller.decide(make_view({"node0": runtime}, tick_index=1)) == []
        # The next window is judged purely on the new stint's frames: a
        # balanced stint (matched tracks truth) stays quiet.
        runtime.cameras["cam000"] = make_stats(
            "cam000", generated=72, scored=72, matched=12, truth_known=True,
            truth_positive_generated=16, truth_positive_scored=16,
            threshold=0.55, attached_at=1.25,
        )
        assert controller.decide(make_view({"node0": runtime}, tick_index=2)) == []

    def test_shed_truth_positives_do_not_read_as_under_firing(self):
        # Half the frames (including every event frame) were shed by a
        # co-deployed quota cap: the truth positives all sit in UNSCORED
        # frames.  Judging matches against generated-frame truth would see
        # observed 0 < expected 0.25 and ratchet the threshold down; over
        # scored frames the expected rate is 0 and drift stays silent.
        controller = ThresholdDriftController(self.CONFIG)
        runtime = FakeRuntime(
            {
                "cam000": make_stats(
                    "cam000", generated=32, scored=16, matched=0, truth_known=True,
                    truth_positive_generated=8, truth_positive_scored=0,
                    threshold=0.5,
                )
            }
        )
        assert controller.decide(make_view({"node0": runtime})) == []

    def test_migrated_and_returned_camera_rebases_the_window(self):
        controller = ThresholdDriftController(ThresholdDriftConfig(cooldown_ticks=0))
        runtime = FakeRuntime({"cam000": drift_stats(generated=100, scored=100, matched=20)})
        controller.decide(make_view({"node0": runtime}))
        # Fresh stint: counts reset below the baseline -> rebase, no action.
        runtime.cameras["cam000"] = drift_stats(
            generated=30, scored=30, matched=25, truth_positive=6
        )
        assert controller.decide(make_view({"node0": runtime}, tick_index=1)) == []
        # The stint's next window is judged on its own frames.
        runtime.cameras["cam000"] = drift_stats(
            generated=70, scored=70, matched=60, truth_positive=14
        )
        actions = controller.decide(make_view({"node0": runtime}, tick_index=2))
        assert [a.camera_id for a in actions] == ["cam000"]


class _ScriptedController(Controller):
    """Emits a fixed action list once, for actuator plumbing tests."""

    name = "scripted"

    def __init__(self, actions):
        self._actions = list(actions)

    def decide(self, view):
        actions, self._actions = self._actions, []
        return actions


class TestThresholdActuation:
    def small_runtime(self) -> FleetRuntime:
        cameras = [
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=32,
                height=32,
                frame_rate=4.0,
                num_frames=8,
                scenario="urban_day",
                seed=i,
            )
            for i in range(2)
        ]
        return FleetRuntime(cameras, config=FleetConfig(num_workers=2))

    def test_set_camera_threshold_reaches_the_live_session(self):
        runtime = self.small_runtime()
        loop = ControlLoop(
            [
                _ScriptedController(
                    [SetCameraThreshold(node_id="node0", camera_id="cam001", threshold=0.9)]
                )
            ],
            interval_seconds=0.5,
        )
        loop.run_node(runtime)
        report = runtime.finalize()
        assert report.frames_scored > 0
        stats = runtime.camera_live_stats()
        assert stats["cam001"].threshold == pytest.approx(0.9)
        assert stats["cam000"].threshold == pytest.approx(0.6)  # factory default
        assert loop.counter_value("control.threshold.drifts") == 1
        assert any("set_camera_threshold" in line for line in loop.decision_log)
        gauge = runtime.telemetry.snapshot()["accuracy.threshold.cam001"]
        assert gauge["value"] == pytest.approx(0.9)

    def test_threshold_override_changes_decisions_not_the_shared_mc(self):
        runtime = self.small_runtime()
        runtime.start()
        runtime.advance_until(0.5)
        session = runtime._states[runtime._active["cam000"]].session
        mc = session.microclassifiers[0]
        before = mc.config.threshold
        runtime.set_camera_threshold("cam000", 0.95)
        assert session.current_threshold() == pytest.approx(0.95)
        assert mc.config.threshold == before  # shared model untouched
        runtime.advance_until(float("inf"))
        runtime.finalize()

    def test_multi_mc_session_drifts_only_the_primary(self):
        # A session with two differently-calibrated MCs: the unnamed
        # actuation targets the primary (first-installed, the one live
        # stats report); the secondary keeps its own threshold unless
        # named explicitly.
        import numpy as np

        from repro.core.architectures import build_microclassifier
        from repro.core.microclassifier import MicroClassifierConfig
        from repro.core.streaming import StreamingPipeline
        from repro.features.base_dnn import build_mobilenet_like
        from repro.features.extractor import FeatureExtractor

        def factory(spec):
            base = build_mobilenet_like(
                (spec.height, spec.width, 3), alpha=0.125, rng=np.random.default_rng(0)
            )
            extractor = FeatureExtractor(base, ["conv2_2/sep"], cache_size=4)
            mcs = [
                build_microclassifier(
                    "localized",
                    MicroClassifierConfig(
                        f"{spec.camera_id}/{name}",
                        "conv2_2/sep",
                        threshold=threshold,
                        upload_bitrate=12_000.0,
                    ),
                    extractor.layer_shape("conv2_2/sep"),
                    rng=np.random.default_rng(i),
                )
                for i, (name, threshold) in enumerate(
                    [("primary", 0.6), ("secondary", 0.7)]
                )
            ]
            return StreamingPipeline(
                extractor, mcs, frame_rate=spec.frame_rate, resolution=spec.resolution
            )

        spec = CameraSpec(
            camera_id="cam000", width=32, height=32, frame_rate=4.0, num_frames=4,
            scenario="urban_day", seed=0,
        )
        runtime = FleetRuntime([spec], pipeline_factory=factory, config=FleetConfig())
        runtime.start()
        runtime.set_camera_threshold("cam000", 0.9)
        session = runtime._states[runtime._active["cam000"]].session
        assert session.current_threshold("cam000/primary") == pytest.approx(0.9)
        assert session.current_threshold("cam000/secondary") == pytest.approx(0.7)
        assert runtime.camera_live_stats()["cam000"].threshold == pytest.approx(0.9)
        runtime.set_camera_threshold("cam000", 0.8, mc_name="cam000/secondary")
        assert session.current_threshold("cam000/secondary") == pytest.approx(0.8)
        assert session.current_threshold("cam000/primary") == pytest.approx(0.9)
        runtime.advance_until(float("inf"))
        runtime.finalize()

    def test_unknown_camera_is_rejected(self):
        runtime = self.small_runtime()
        runtime.start()
        with pytest.raises(ValueError, match="not active"):
            runtime.set_camera_threshold("nope", 0.5)
        runtime.advance_until(float("inf"))
        runtime.finalize()

    def test_node_actuator_exposes_its_uplink_guarantee(self):
        runtime = self.small_runtime()
        actuator = NodeActuator(runtime, "node0")
        assert actuator.uplink_guarantees == {
            "node0": runtime.uplink.capacity_bps
        }
