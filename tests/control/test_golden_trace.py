"""Golden-trace regression: the pinned control scenario must replay exactly.

``tests/data/golden_control_trace.jsonl`` pins every control action (with
its actuation time), the final merged telemetry snapshot, and the report's
aggregate counters for the scenario in ``golden_scenario.py``.  Any
nondeterminism or silent behavior change — a policy constant nudged, a tick
reordered, a counter drifting — produces a named diff and fails tier-1.

The harness was validated by mutating one policy constant locally
(``SheddingConfig.quota_ladder`` ``(2,)`` -> ``(1,)``) and confirming the
replay test fails with diffs naming the drifted decisions; that check is
kept in-tree as ``test_mutated_policy_constant_is_caught``.

If a behavior change is *intentional*, regenerate the golden file::

    PYTHONPATH=src python tests/control/golden_scenario.py tests/data/golden_control_trace.jsonl
"""

from pathlib import Path

import pytest

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
    SheddingConfig,
    UplinkShareController,
)
from repro.control.trace import control_trace_records, diff_traces, load_trace
from repro.fleet import ShardedFleetRuntime, ShardingConfig

from golden_scenario import NODE_CONFIG, build_control_loop, build_report, golden_cameras

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_control_trace.jsonl"


@pytest.fixture(scope="module")
def replayed_records():
    return control_trace_records(build_report())


@pytest.fixture(scope="module")
def golden_records():
    return load_trace(GOLDEN_PATH)


class TestGoldenTrace:
    def test_scenario_exercises_the_control_plane(self, golden_records):
        """The pinned trace is worth pinning: it contains real decisions."""
        summary = golden_records[-1]
        assert summary["migrations_performed"] > 0
        assert summary["shedding_interventions"] > 0
        assert summary["control_ticks"] > 0
        assert golden_records[0]["actions"] > 0

    def test_replay_matches_golden_exactly(self, replayed_records, golden_records):
        problems = diff_traces(golden_records, replayed_records)
        assert problems == [], (
            "Control replay drifted from the golden trace. If this change is "
            "intentional, regenerate tests/data/golden_control_trace.jsonl "
            "(see golden_scenario.py).\n" + "\n".join(problems)
        )

    def test_batched_dispatch_leaves_golden_trace_unchanged(self, golden_records):
        """Batched scoring is bit-exact: the pinned trace needs no regeneration.

        ``test_replay_matches_golden_exactly`` already replays with
        ``FleetConfig.batched_scoring`` at its default (on); this runs the
        same scenario with batching *off* and asserts the trace still matches
        the golden file — the two dispatch paths produce byte-identical
        control decisions, telemetry, and counters, so the golden file pins
        both.
        """
        from dataclasses import replace

        config = ShardingConfig(
            num_nodes=2,
            placement="round_robin",
            total_uplink_bps=100_000.0,
            uplink_sharing="work_conserving",
            node_config=replace(NODE_CONFIG, batched_scoring=False),
        )
        unbatched = ShardedFleetRuntime(
            golden_cameras(), config=config, control_loop=build_control_loop()
        ).run()
        problems = diff_traces(golden_records, control_trace_records(unbatched))
        assert problems == [], (
            "Per-camera dispatch drifted from the golden trace, so batched "
            "and per-camera scoring are no longer equivalent:\n" + "\n".join(problems)
        )

    def test_mutated_policy_constant_is_caught(self, golden_records):
        """A one-constant policy change must produce a non-empty diff.

        This is the harness's own regression test: it rebuilds the scenario
        with one shedding constant changed (quota ladder rung 2 -> 1) and
        asserts the golden diff catches it — proving the trace actually
        pins behavior, not just that two identical runs agree.
        """
        loop = ControlLoop(
            [
                AdaptiveSheddingController(
                    SheddingConfig(
                        high_watermark_seconds=0.3,
                        low_watermark_seconds=0.1,
                        cameras_per_step=1,
                        quota_ladder=(1,),  # the mutation (golden uses (2,))
                    )
                ),
                UplinkShareController(),
                MigrationController(
                    MigrationConfig(
                        imbalance_threshold=1.1,
                        sustain_ticks=2,
                        cooldown_ticks=2,
                        cost_model=MigrationCostModel(
                            blackout_seconds=0.2, cold_start_seconds=0.2
                        ),
                    )
                ),
            ],
            interval_seconds=0.25,
        )
        config = ShardingConfig(
            num_nodes=2,
            placement="round_robin",
            total_uplink_bps=100_000.0,
            uplink_sharing="work_conserving",
            node_config=NODE_CONFIG,
        )
        mutated = ShardedFleetRuntime(
            golden_cameras(), config=config, control_loop=loop
        ).run()
        problems = diff_traces(golden_records, control_trace_records(mutated))
        assert problems, "mutating a policy constant must drift the trace"
