"""Uplink re-weighting: demand tracking, floors, drift thresholds."""

import pytest

from repro.control import SetUplinkWeights, UplinkShareConfig, UplinkShareController

from control_helpers import FakeRuntime, make_stats, make_view

EQUAL = {"node0": 0.5, "node1": 0.5}


def cluster(matched0: float, matched1: float) -> dict[str, FakeRuntime]:
    node0 = FakeRuntime({"cam_a": make_stats("cam_a")})
    node0.telemetry.counter("frames.matched").inc(matched0)
    node1 = FakeRuntime({"cam_b": make_stats("cam_b")})
    node1.telemetry.counter("frames.matched").inc(matched1)
    return {"node0": node0, "node1": node1}


class TestRebalance:
    def test_static_link_never_actuated(self):
        controller = UplinkShareController()
        view = make_view(cluster(10, 0), uplink_weights=None)
        assert controller.decide(view) == []

    def test_skewed_demand_reweights_toward_the_uploader(self):
        controller = UplinkShareController(UplinkShareConfig(smoothing=1.0, min_share=0.1))
        view = make_view(cluster(30, 10), uplink_weights=EQUAL)
        [action] = controller.decide(view)
        assert isinstance(action, SetUplinkWeights)
        weights = action.as_mapping()
        # floor 0.1 each, remaining 0.8 split 3:1 by demand.
        assert weights["node0"] == pytest.approx(0.7, abs=1e-3)
        assert weights["node1"] == pytest.approx(0.3, abs=1e-3)

    def test_min_share_floor_protects_quiet_nodes(self):
        controller = UplinkShareController(UplinkShareConfig(smoothing=1.0, min_share=0.2))
        [action] = controller.decide(make_view(cluster(100, 0), uplink_weights=EQUAL))
        weights = action.as_mapping()
        assert weights["node1"] >= 0.2 - 1e-9
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_small_drift_is_held(self):
        controller = UplinkShareController(
            UplinkShareConfig(smoothing=1.0, rebalance_threshold=0.10)
        )
        view = make_view(cluster(11, 10), uplink_weights=EQUAL)
        assert controller.decide(view) == []

    def test_zero_min_share_still_emits_positive_weights(self):
        controller = UplinkShareController(UplinkShareConfig(smoothing=1.0, min_share=0.0))
        [action] = controller.decide(make_view(cluster(100, 0), uplink_weights=EQUAL))
        assert all(weight > 0 for _, weight in action.weights)

    def test_no_demand_no_action(self):
        controller = UplinkShareController()
        assert controller.decide(make_view(cluster(0, 0), uplink_weights=EQUAL)) == []

    def test_demand_is_windowed_not_cumulative(self):
        controller = UplinkShareController(UplinkShareConfig(smoothing=1.0))
        nodes = cluster(30, 10)
        controller.decide(make_view(nodes, uplink_weights=EQUAL))
        # Next window: node1 does all the uploading.
        nodes["node1"].telemetry.counter("frames.matched").inc(40)
        [action] = controller.decide(
            make_view(nodes, tick_index=1, uplink_weights={"node0": 0.75, "node1": 0.25})
        )
        weights = action.as_mapping()
        assert weights["node1"] > weights["node0"]
