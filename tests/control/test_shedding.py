"""Adaptive shedding: windowed overload detection, value ranking, hysteresis."""

import pytest

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
    SetCameraQuota,
    SetDropPolicy,
    SheddingConfig,
)
from repro.fleet import CameraSpec, FleetConfig, ShardedFleetRuntime, ShardingConfig
from repro.fleet.queues import DropPolicy

from control_helpers import FakeRuntime, make_stats, make_view

CONFIG = SheddingConfig(
    high_watermark_seconds=0.2,
    low_watermark_seconds=0.05,
    cameras_per_step=2,
    quota_ladder=(2, 1),
)


def overloaded_runtime() -> FakeRuntime:
    runtime = FakeRuntime(
        {
            # cam_rich matches often; cam_mid sometimes; cam_poor never.
            "cam_rich": make_stats("cam_rich", scored=10, matched=8),
            "cam_mid": make_stats("cam_mid", scored=10, matched=3),
            "cam_poor": make_stats("cam_poor", scored=10, matched=0),
        }
    )
    for _ in range(10):
        runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.5)
    return runtime


class TestTighten:
    def test_caps_lowest_density_cameras_first(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = overloaded_runtime()
        actions = controller.decide(make_view({"node0": runtime}))
        quotas = [a for a in actions if isinstance(a, SetCameraQuota)]
        policies = [a for a in actions if isinstance(a, SetDropPolicy)]
        assert [a.camera_id for a in quotas] == ["cam_poor", "cam_mid"]
        assert all(a.quota == 2 for a in quotas)
        assert all(a.policy is DropPolicy.DROP_NEWEST for a in policies)
        assert [a.camera_id for a in policies] == ["cam_poor", "cam_mid"]

    def test_second_overloaded_tick_steps_down_the_ladder(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = overloaded_runtime()
        controller.decide(make_view({"node0": runtime}))
        # Fresh overload observations in the new window.
        for _ in range(5):
            runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.6)
        actions = controller.decide(make_view({"node0": runtime}, tick_index=1))
        quotas = [a for a in actions if isinstance(a, SetCameraQuota)]
        # Already-capped cameras step 2 -> 1; no new DROP_NEWEST flips.
        assert [(a.camera_id, a.quota) for a in quotas] == [("cam_poor", 1), ("cam_mid", 1)]
        assert not [a for a in actions if isinstance(a, SetDropPolicy)]

    def test_bottom_of_ladder_holds(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = overloaded_runtime()
        for tick in range(3):
            for _ in range(5):
                runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.6)
            actions = controller.decide(make_view({"node0": runtime}, tick_index=tick))
        # Third overloaded tick: poor and mid are at rung 1 already; the
        # remaining candidate (cam_rich) gets capped instead.
        quotas = [a for a in actions if isinstance(a, SetCameraQuota)]
        assert [(a.camera_id, a.quota) for a in quotas] == [("cam_rich", 2)]


class TestWindowing:
    def test_old_observations_do_not_retrigger(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = overloaded_runtime()
        controller.decide(make_view({"node0": runtime}))
        # No new waits at all: the window is empty, p99 == 0 < low watermark,
        # so the controller relaxes instead of tightening again.
        actions = controller.decide(make_view({"node0": runtime}, tick_index=1))
        assert actions
        assert all(
            isinstance(a, (SetCameraQuota, SetDropPolicy)) for a in actions
        )
        quota = next(a for a in actions if isinstance(a, SetCameraQuota))
        assert quota.quota is None


class TestRelax:
    def test_restores_most_valuable_first_one_per_tick(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = overloaded_runtime()
        controller.decide(make_view({"node0": runtime}))  # caps poor + mid
        calm = make_view({"node0": runtime}, tick_index=1)
        first = controller.decide(calm)
        quota = next(a for a in first if isinstance(a, SetCameraQuota))
        policy = next(a for a in first if isinstance(a, SetDropPolicy))
        assert quota.camera_id == "cam_mid"  # higher density restored first
        assert quota.quota is None
        assert policy.policy is DropPolicy.DROP_OLDEST
        second = controller.decide(make_view({"node0": runtime}, tick_index=2))
        assert next(a for a in second if isinstance(a, SetCameraQuota)).camera_id == "cam_poor"
        # Everything restored: nothing left to do.
        assert controller.decide(make_view({"node0": runtime}, tick_index=3)) == []

    def test_relax_restores_the_pre_tighten_policy(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = FakeRuntime(
            {
                "cam_block": make_stats(
                    "cam_block", scored=10, matched=0, drop_policy=DropPolicy.BLOCK
                ),
                "cam_rich": make_stats("cam_rich", scored=10, matched=9),
            }
        )
        for _ in range(10):
            runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.5)
        controller.decide(make_view({"node0": runtime}))  # tightens both cameras
        controller.decide(make_view({"node0": runtime}, tick_index=1))  # restores cam_rich
        restored = controller.decide(make_view({"node0": runtime}, tick_index=2))
        policy = next(a for a in restored if isinstance(a, SetDropPolicy))
        assert policy.camera_id == "cam_block"
        assert policy.policy is DropPolicy.BLOCK

    def test_capped_camera_that_migrated_away_is_forgotten(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = overloaded_runtime()
        controller.decide(make_view({"node0": runtime}))
        runtime.cameras.pop("cam_poor")
        runtime.cameras.pop("cam_mid")
        actions = controller.decide(make_view({"node0": runtime}, tick_index=1))
        assert actions == []
        # Internal cap bookkeeping was cleared, so calm ticks stay silent.
        assert controller.decide(make_view({"node0": runtime}, tick_index=2)) == []


class TestQuietNode:
    def test_no_actions_between_watermarks(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = overloaded_runtime()
        controller.decide(make_view({"node0": runtime}))  # tighten once
        # Window p99 lands between the watermarks: hold, neither tighten nor relax.
        for _ in range(5):
            runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.1)
        assert controller.decide(make_view({"node0": runtime}, tick_index=1)) == []

    def test_returning_camera_can_be_capped_again(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = overloaded_runtime()
        controller.decide(make_view({"node0": runtime}))  # caps poor + mid
        # cam_poor migrates away...
        poor = runtime.cameras.pop("cam_poor")
        for _ in range(5):
            runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.6)
        controller.decide(make_view({"node0": runtime}, tick_index=1))
        # ...and comes back: its old rung was forgotten, so it is cappable
        # from the top of the ladder again.
        runtime.cameras["cam_poor"] = poor
        for _ in range(5):
            runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.6)
        actions = controller.decide(make_view({"node0": runtime}, tick_index=2))
        quotas = [a for a in actions if isinstance(a, SetCameraQuota)]
        assert ("cam_poor", 2) in [(a.camera_id, a.quota) for a in quotas]

    def test_never_capped_quiet_node_stays_silent(self):
        controller = AdaptiveSheddingController(CONFIG)
        runtime = FakeRuntime({"cam000": make_stats("cam000")})
        runtime.telemetry.histogram("latency.queue_wait_seconds").observe(0.01)
        assert controller.decide(make_view({"node0": runtime})) == []


class TestComposedWithMigration:
    """Audit regression: shedding must survive a *capped* camera migrating.

    Real runtimes, shedding + migration composed in one ControlLoop, tuned
    so the shedding controller caps cam000 to the bottom ladder rung on
    node0 *before* the migration controller hands it to node1.  A stale cap
    would make a later relax (or tighten) emit ``SetCameraQuota`` /
    ``SetDropPolicy`` for a camera no longer attached — which the actuator
    rejects with ``ValueError``, so the run completing at all is half the
    assertion; the other half is that every post-migration shedding action
    targets the camera on its *new* node, starting from the top of the
    ladder.
    """

    def run_scenario(self):
        cameras = [
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=48,
                height=32,
                frame_rate=24.0 if i % 2 == 0 else 2.0,
                num_frames=int((24.0 if i % 2 == 0 else 2.0) * 2.0),
                scenario="urban_day",
                seed=i,
            )
            for i in range(6)
        ]
        loop = ControlLoop(
            [
                AdaptiveSheddingController(
                    SheddingConfig(
                        high_watermark_seconds=0.1,
                        low_watermark_seconds=0.03,
                        cameras_per_step=2,
                        quota_ladder=(2, 1),
                    )
                ),
                MigrationController(
                    MigrationConfig(
                        imbalance_threshold=1.1,
                        sustain_ticks=3,
                        cooldown_ticks=2,
                        cost_model=MigrationCostModel(
                            blackout_seconds=0.2, cold_start_seconds=0.2
                        ),
                    )
                ),
            ],
            interval_seconds=0.25,
        )
        config = ShardingConfig(
            num_nodes=2,
            placement="round_robin",
            total_uplink_bps=100_000.0,
            node_config=FleetConfig(
                num_workers=1, queue_capacity=4, service_time_scale=0.12
            ),
        )
        return ShardedFleetRuntime(cameras, config=config, control_loop=loop).run()

    def test_capped_camera_migration_does_not_strand_shedding_state(self):
        report = self.run_scenario()
        log = report.control_log
        migrate_at = next(i for i, line in enumerate(log) if "migrate cam000" in line)
        # The scenario is only a regression test if cam000 was capped (and
        # still capped — no restore) on node0 when it migrated.
        before = [line for line in log[:migrate_at] if "node0/cam000" in line]
        assert any("set_camera_quota node0/cam000 -> 1" in line for line in before)
        assert not any("-> default" in line for line in before)
        # After the handoff, node0's controller state forgot the camera:
        # no shedding action ever targets it on node0 again...
        assert not any("node0/cam000" in line for line in log[migrate_at:])
        # ...and on node1 it is cappable from the *top* of the ladder.
        node1_quotas = [
            line for line in log[migrate_at:] if "set_camera_quota node1/cam000" in line
        ]
        assert node1_quotas and node1_quotas[0].endswith("-> 2")
        # The whole run actuated cleanly and accounts for every frame.
        assert report.migrations_performed == 1
        assert report.shedding_interventions > 0
        assert (
            report.frames_scored + report.frames_dropped + report.frames_rejected
            == report.frames_generated
        )
