"""ControlLoop driving real runtimes: ticks, actuators, accounting."""

import pytest

from repro.control import (
    ControlLoop,
    Controller,
    MigrateCamera,
    NodeActuator,
    SetCameraQuota,
    SetDropPolicy,
)
from repro.fleet import CameraSpec, DropPolicy, FleetConfig, FleetRuntime

FAST = FleetConfig(num_workers=2, queue_capacity=4, service_time_scale=0.05)


def small_cameras(n=2, frame_rate=8.0, duration=1.0):
    return [
        CameraSpec(
            camera_id=f"cam{i:03d}",
            width=48,
            height=32,
            frame_rate=frame_rate,
            num_frames=int(frame_rate * duration),
            scenario="urban_day",
            seed=i,
        )
        for i in range(n)
    ]


class RecordingController(Controller):
    name = "recorder"

    def __init__(self, actions_per_tick=None):
        self.views = []
        self.actions_per_tick = actions_per_tick or {}

    def decide(self, view):
        self.views.append(view)
        return self.actions_per_tick.get(view.tick_index, [])


class TestLoopDriving:
    def test_ticks_cover_the_run_and_views_are_consistent(self):
        controller = RecordingController()
        loop = ControlLoop([controller], interval_seconds=0.25)
        runtime = FleetRuntime(small_cameras(duration=1.0), config=FAST)
        loop.run_node(runtime)
        report = runtime.finalize()
        assert report.frames_scored > 0
        assert loop.ticks == len(controller.views)
        assert loop.ticks >= 4  # 1 second of feed at 0.25s intervals
        times = [view.now for view in controller.views]
        assert times == sorted(times)
        assert all(view.interval == 0.25 for view in controller.views)
        # Every view exposes the node and its live stats.
        assert controller.views[0].node("node0").live_stats()

    def test_actions_are_applied_logged_and_counted(self):
        actions = {
            1: [
                SetCameraQuota(node_id="node0", camera_id="cam000", quota=1),
                SetDropPolicy(node_id="node0", camera_id="cam000", policy=DropPolicy.DROP_NEWEST),
            ]
        }
        controller = RecordingController(actions)
        loop = ControlLoop([controller], interval_seconds=0.25)
        runtime = FleetRuntime(small_cameras(), config=FAST)
        loop.run_node(runtime)
        assert runtime.admission is not None
        assert runtime.admission.quota_for("cam000") == 1
        assert any("set_camera_quota" in line for line in loop.decision_log)
        assert loop.counter_value("control.actions.total") == 2.0
        assert loop.counter_value("control.actions.recorder") == 2.0
        assert loop.counter_value("control.shedding.interventions") == 1.0

    def test_duplicate_controller_names_rejected(self):
        with pytest.raises(ValueError, match="Duplicate controller names"):
            ControlLoop([RecordingController(), RecordingController()])

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval_seconds"):
            ControlLoop([], interval_seconds=0.0)


class TestClusterActuatorThreshold:
    def test_threshold_action_reaches_the_named_node(self):
        from repro.control import ClusterActuator, SetCameraThreshold
        from repro.fleet import ShardedFleetRuntime, ShardingConfig

        cluster = ShardedFleetRuntime(
            small_cameras(4),
            config=ShardingConfig(num_nodes=2, node_config=FAST),
        )
        for node in cluster.nodes.values():
            node.start()
        actuator = ClusterActuator(cluster)
        camera_id = cluster.nodes["node1"].hosted_cameras()[0]
        actuator.apply(
            SetCameraThreshold(node_id="node1", camera_id=camera_id, threshold=0.85),
            now=0.25,
        )
        assert cluster.nodes["node1"].camera_live_stats()[camera_id].threshold == 0.85
        assert actuator.uplink_guarantees == cluster.uplink_guarantees()
        for node in cluster.nodes.values():
            node.advance_until(float("inf"))
            node.finalize()


class TestNodeActuator:
    def test_rejects_cluster_only_actions(self):
        runtime = FleetRuntime(small_cameras(), config=FAST)
        actuator = NodeActuator(runtime)
        with pytest.raises(TypeError, match="cluster actuator"):
            actuator.apply(
                MigrateCamera(
                    camera_id="cam000", source="node0", destination="node1",
                    blackout_seconds=0.1,
                ),
                now=0.5,
            )

    def test_exposes_no_uplink_weights(self):
        runtime = FleetRuntime(small_cameras(), config=FAST)
        assert NodeActuator(runtime).uplink_weights is None
