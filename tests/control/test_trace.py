"""repro.control.trace: schema, round-trip, and diff behavior."""

from dataclasses import dataclass, field

import pytest

from repro.control.trace import (
    TRACE_SCHEMA,
    control_trace_records,
    diff_traces,
    load_trace,
    trace_to_jsonl,
    write_control_trace,
)


@dataclass
class FakeReport:
    """Minimal duck-typed report: just what the trace serializer reads."""

    control_log: list = field(default_factory=list)
    telemetry: dict = field(default_factory=dict)
    frames_generated: int = 100
    frames_scored: int = 80
    frames_dropped: int = 15
    frames_rejected: int = 5
    events_detected: int = 3
    control_ticks: int = 12
    migrations_performed: int = 1
    shedding_interventions: int = 2
    uplink_rebalances: int = 4
    threshold_drifts: int = 1
    total_uplink_bits: float = 1234.5
    reclaimed_uplink_bits: float = 67.0


def make_report() -> FakeReport:
    return FakeReport(
        control_log=[
            "t=0.250 adaptive_shedding: set_camera_quota node0/cam001 -> 2",
            "t=0.500 camera_migration: migrate cam000 node0 -> node1 (blackout 0.200s)",
        ],
        telemetry={
            "control.ticks": 12.0,
            "node0.frames.generated": 60.0,
            "node0.latency.queue_wait_seconds": {"count": 40, "mean": 0.01, "p99": 0.05},
        },
    )


class TestRecords:
    def test_header_action_telemetry_summary_order(self):
        records = control_trace_records(make_report())
        kinds = [r["type"] for r in records]
        assert kinds[0] == "header"
        assert kinds[-1] == "summary"
        assert kinds[1:3] == ["action", "action"]
        assert kinds[3:6] == ["telemetry"] * 3
        assert records[0]["schema"] == TRACE_SCHEMA
        assert records[0]["actions"] == 2
        assert records[0]["telemetry"] == 3

    def test_actions_keep_applied_order_and_times(self):
        records = control_trace_records(make_report())
        actions = [r for r in records if r["type"] == "action"]
        assert [a["seq"] for a in actions] == [0, 1]
        assert "t=0.250" in actions[0]["entry"]
        assert "t=0.500" in actions[1]["entry"]

    def test_telemetry_sorted_by_name(self):
        records = control_trace_records(make_report())
        names = [r["name"] for r in records if r["type"] == "telemetry"]
        assert names == sorted(names)

    def test_summary_records_missing_fields_as_none(self):
        class Sparse:
            control_log = []
            telemetry = {}
            frames_generated = 1

        summary = control_trace_records(Sparse())[-1]
        assert summary["frames_generated"] == 1
        assert summary["reclaimed_uplink_bits"] is None


class TestRoundTrip:
    def test_jsonl_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = write_control_trace(path, make_report())
        loaded = load_trace(path)
        assert loaded == written
        assert diff_traces(written, loaded) == []

    def test_jsonl_is_one_object_per_line(self):
        text = trace_to_jsonl(control_trace_records(make_report()))
        lines = text.splitlines()
        assert len(lines) == 1 + 2 + 3 + 1  # header + actions + telemetry + summary
        assert all(line.startswith("{") and line.endswith("}") for line in lines)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "header", "schema": "other/v9"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            load_trace(path)

    def test_load_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "action", "seq": 0}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="header"):
            load_trace(path)


class TestDiff:
    def test_identical_traces_have_no_diff(self):
        assert diff_traces(control_trace_records(make_report()),
                           control_trace_records(make_report())) == []

    def test_changed_action_is_located(self):
        expected = control_trace_records(make_report())
        drifted_report = make_report()
        drifted_report.control_log[1] = (
            "t=0.750 camera_migration: migrate cam000 node0 -> node1 (blackout 0.200s)"
        )
        problems = diff_traces(expected, control_trace_records(drifted_report))
        assert len(problems) == 1
        assert "record 2" in problems[0] and "t=0.750" in problems[0]

    def test_changed_telemetry_counter_is_located(self):
        expected = control_trace_records(make_report())
        drifted_report = make_report()
        drifted_report.telemetry["node0.frames.generated"] = 61.0
        problems = diff_traces(expected, control_trace_records(drifted_report))
        assert len(problems) == 1
        assert "node0.frames.generated" in problems[0]

    def test_extra_action_changes_count_and_content(self):
        expected = control_trace_records(make_report())
        drifted_report = make_report()
        drifted_report.control_log.append("t=1.000 adaptive_shedding: relax")
        problems = diff_traces(expected, control_trace_records(drifted_report))
        assert any("record count differs" in p for p in problems)


class TestSetCameraThreshold:
    """The threshold-drift action round-trips through the trace schema."""

    def make_drift_report(self, threshold: float = 0.55) -> FakeReport:
        from repro.control import SetCameraThreshold

        action = SetCameraThreshold(node_id="node1", camera_id="cam007", threshold=threshold)
        report = make_report()
        report.control_log.append(f"t=0.750 threshold_drift: {action.describe()}")
        return report

    def test_round_trips_exactly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = write_control_trace(path, self.make_drift_report())
        loaded = load_trace(path)
        assert loaded == written
        assert diff_traces(written, loaded) == []
        entry = next(
            r["entry"] for r in loaded if r["type"] == "action" and "threshold" in r["entry"]
        )
        assert entry == "t=0.750 threshold_drift: set_camera_threshold node1/cam007 -> 0.5500"
        assert loaded[-1]["threshold_drifts"] == 1

    def test_drifted_threshold_is_located_by_diff(self):
        expected = control_trace_records(self.make_drift_report(0.55))
        actual = control_trace_records(self.make_drift_report(0.6))
        problems = diff_traces(expected, actual)
        assert len(problems) == 1
        assert "0.5500" in problems[0] and "0.6000" in problems[0]
