"""The determinism contract: same seed + config => bit-identical control runs.

Covers the full adaptive stack on a real (small) cluster that actually
triggers migrations, quota shedding, and uplink re-weighting — two fresh
runs must agree on every decision, every telemetry value, and every report
number.
"""

import pytest

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
    SheddingConfig,
    UplinkShareController,
)
from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
)

NODE = FleetConfig(
    num_workers=1,
    queue_capacity=4,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=0.12,
)


def imbalanced_cameras():
    """Round-robin deals all the 24 fps cameras to node0; node1 idles."""
    cameras = []
    for i in range(8):
        rate = 24.0 if i % 2 == 0 else 2.0
        cameras.append(
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=48,
                height=32,
                frame_rate=rate,
                num_frames=int(rate * 2.5),
                scenario="urban_day",
                seed=i,
            )
        )
    return cameras


def build_runtime():
    loop = ControlLoop(
        [
            AdaptiveSheddingController(
                SheddingConfig(
                    high_watermark_seconds=0.3,
                    low_watermark_seconds=0.1,
                    cameras_per_step=1,
                    quota_ladder=(2,),
                )
            ),
            UplinkShareController(),
            MigrationController(
                MigrationConfig(
                    imbalance_threshold=1.1,
                    sustain_ticks=2,
                    cooldown_ticks=2,
                    cost_model=MigrationCostModel(
                        blackout_seconds=0.2, cold_start_seconds=0.2
                    ),
                )
            ),
        ],
        interval_seconds=0.25,
    )
    config = ShardingConfig(
        num_nodes=2,
        placement="round_robin",
        total_uplink_bps=100_000.0,
        uplink_sharing="work_conserving",
        node_config=NODE,
    )
    return ShardedFleetRuntime(imbalanced_cameras(), config=config, control_loop=loop)


@pytest.fixture(scope="module")
def two_runs():
    return build_runtime().run(), build_runtime().run()


class TestDeterminism:
    def test_scenario_exercises_the_whole_control_plane(self, two_runs):
        first, _ = two_runs
        assert first.migrations_performed > 0
        assert first.control_ticks > 0
        assert first.control_log

    def test_identical_decision_logs(self, two_runs):
        first, second = two_runs
        assert first.control_log == second.control_log

    def test_identical_telemetry_snapshots(self, two_runs):
        first, second = two_runs
        assert first.telemetry == second.telemetry
        for a, b in zip(first.nodes, second.nodes):
            assert a.report.telemetry == b.report.telemetry

    def test_identical_reports(self, two_runs):
        first, second = two_runs
        assert first.frames_generated == second.frames_generated
        assert first.frames_scored == second.frames_scored
        assert first.frames_dropped == second.frames_dropped
        assert first.frames_rejected == second.frames_rejected
        assert first.drop_rate == second.drop_rate
        assert first.total_uplink_bits == second.total_uplink_bits
        assert first.reclaimed_uplink_bits == second.reclaimed_uplink_bits
        assert first.migrations_performed == second.migrations_performed
        assert first.shedding_interventions == second.shedding_interventions
        assert [n.camera_ids for n in first.nodes] == [n.camera_ids for n in second.nodes]

    def test_frame_conservation_across_migration(self, two_runs):
        first, _ = two_runs
        assert (
            first.frames_scored + first.frames_dropped + first.frames_rejected
            == first.frames_generated
        )
        # Every offered frame is accounted for exactly once cluster-wide,
        # including the migration blackout losses.
        offered = sum(spec.num_frames for spec in imbalanced_cameras())
        assert first.frames_generated == offered

    def test_migrated_camera_hosted_once_at_end(self, two_runs):
        first, _ = two_runs
        hosted = [cid for node in first.nodes for cid in node.camera_ids]
        assert sorted(hosted) == sorted(s.camera_id for s in imbalanced_cameras())
