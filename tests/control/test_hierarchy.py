"""Hierarchical control plane: sketches, aggregates, coordinator, two levels."""

import json

import pytest

from repro.control.hierarchy import (
    ClusterCoordinator,
    HierarchicalControlPlane,
    NodeAggregate,
    NodeControlPlane,
    QuantileSketch,
    default_local_controllers,
)
from repro.control.migration import MigrationConfig
from repro.control.uplink import UplinkShareConfig
from repro.fleet.camera import generate_fleet
from repro.fleet.runtime import FleetConfig
from repro.fleet.sharding import ShardedFleetRuntime, ShardingConfig

FAST_NODE = FleetConfig(num_workers=2, queue_capacity=4, service_time_scale=0.05)


def small_fleet(num_cameras=8):
    return generate_fleet(
        num_cameras,
        seed=5,
        duration_seconds=1.5,
        resolutions=((48, 32), (64, 48)),
        frame_rates=(4.0, 10.0),
    )


def run_hierarchical(num_cameras=8, num_nodes=2, hierarchy=None, **config_kwargs):
    config_kwargs.setdefault("uplink_sharing", "work_conserving")
    config = ShardingConfig(
        num_nodes=num_nodes, node_config=FAST_NODE, **config_kwargs
    )
    hierarchy = hierarchy or HierarchicalControlPlane()
    runtime = ShardedFleetRuntime(
        small_fleet(num_cameras), config=config, hierarchy=hierarchy
    )
    return runtime.run(), hierarchy


class TestQuantileSketch:
    def test_exact_below_centroid_budget(self):
        values = [0.5, 0.1, 0.9, 0.3, 0.7]
        sketch = QuantileSketch.from_values(values)
        assert sketch.count == len(values)
        assert sketch.percentile(0) == 0.1
        assert sketch.percentile(50) == 0.5
        assert sketch.percentile(100) == 0.9

    def test_size_bounded_above_budget(self):
        sketch = QuantileSketch.from_values([i / 1000.0 for i in range(1000)])
        assert len(sketch.centroids) <= sketch.max_centroids
        assert sketch.count == pytest.approx(1000)
        # A weight-balanced compression keeps tail quantiles close.
        assert sketch.percentile(99) == pytest.approx(0.99, abs=0.05)
        assert sketch.percentile(50) == pytest.approx(0.5, abs=0.05)

    def test_merge_matches_combined_distribution(self):
        left = QuantileSketch.from_values([float(i) for i in range(100)])
        right = QuantileSketch.from_values([float(i) for i in range(100, 200)])
        merged = left.merge(right)
        assert len(merged.centroids) <= merged.max_centroids
        assert merged.count == pytest.approx(200)
        exact = QuantileSketch.from_values([float(i) for i in range(200)])
        assert merged.percentile(50) == pytest.approx(exact.percentile(50), rel=0.1)

    def test_empty_and_validation(self):
        empty = QuantileSketch()
        assert empty.percentile(99) == 0.0
        assert empty.count == 0
        with pytest.raises(ValueError):
            empty.percentile(101)
        with pytest.raises(ValueError):
            QuantileSketch.from_values([1.0], max_centroids=0)

    def test_deterministic(self):
        values = [((i * 37) % 101) / 10.0 for i in range(500)]
        assert QuantileSketch.from_values(values) == QuantileSketch.from_values(values)


class TestNodeAggregate:
    def _aggregate(self, num_cameras=100, wait_values=2000):
        return NodeAggregate(
            node_id="node0",
            now=1.0,
            num_cameras=num_cameras,
            num_workers=4,
            frames_generated=5000.0,
            frames_scored=4800.0,
            frames_rejected=100.0,
            frames_dropped=100.0,
            frames_matched=900.0,
            events_closed=40.0,
            estimated_upload_bits=2.5e6,
            offered_utilization=0.8,
            window_wait_count=wait_values,
            window_wait_sketch=QuantileSketch.from_values(
                [i / wait_values for i in range(wait_values)]
            ),
            resolutions=((48, 32), (64, 48)),
        )

    def test_payload_is_json_serializable(self):
        payload = self._aggregate().to_payload()
        json.dumps(payload)  # must not raise
        assert payload["node_id"] == "node0"
        assert payload["cameras"] == 100

    def test_payload_size_independent_of_cameras_and_observations(self):
        small = self._aggregate(num_cameras=4, wait_values=64)
        huge = self._aggregate(num_cameras=4096, wait_values=200_000)
        # The sketch saturates at max_centroids, so the two payloads differ
        # only by digit counts — the same O(1) size class.
        assert huge.payload_bytes() < small.payload_bytes() * 1.5

    def test_window_p99_from_sketch(self):
        aggregate = self._aggregate(wait_values=1000)
        assert aggregate.window_wait_p99 == pytest.approx(0.99, abs=0.05)


class TestNodeControlPlane:
    def test_tick_produces_aggregate_and_accounts(self):
        fleet = small_fleet(4)
        from repro.fleet.runtime import FleetRuntime

        runtime = FleetRuntime(fleet, config=FAST_NODE)
        plane = NodeControlPlane("node0", runtime)
        runtime.start()
        runtime.advance_until(0.25)
        aggregate = plane.tick(0.25, horizon=2.0)
        assert aggregate.node_id == "node0"
        assert aggregate.num_cameras == 4
        assert aggregate.frames_generated > 0
        assert plane.counter_value("control.ticks") == 1
        assert plane.counter_value("control.decisions.total") >= len(plane.controllers)

    def test_duplicate_controller_names_rejected(self):
        from repro.control.shedding import AdaptiveSheddingController
        from repro.fleet.runtime import FleetRuntime

        runtime = FleetRuntime(small_fleet(2), config=FAST_NODE)
        with pytest.raises(ValueError, match="Duplicate"):
            NodeControlPlane(
                "node0",
                runtime,
                controllers=[AdaptiveSheddingController(), AdaptiveSheddingController()],
            )

    def test_default_controllers_are_node_scope(self):
        controllers = default_local_controllers("node0")
        assert len(controllers) >= 1
        names = {c.name for c in controllers}
        assert "adaptive_shedding" in names or len(names) >= 1


class TestClusterCoordinator:
    def _aggregate(self, node_id, matched, utilization=0.5):
        return NodeAggregate(
            node_id=node_id,
            now=1.0,
            num_cameras=4,
            num_workers=2,
            frames_generated=100.0,
            frames_scored=90.0,
            frames_rejected=0.0,
            frames_dropped=10.0,
            frames_matched=matched,
            events_closed=2.0,
            estimated_upload_bits=1e5,
            offered_utilization=utilization,
            window_wait_count=10,
            window_wait_sketch=QuantileSketch.from_values([0.01] * 10),
            resolutions=((48, 32),),
        )

    def test_uplink_skews_toward_demand(self):
        coordinator = ClusterCoordinator(
            uplink_config=UplinkShareConfig(smoothing=1.0, rebalance_threshold=0.05)
        )
        aggregates = {
            "node0": self._aggregate("node0", matched=90.0),
            "node1": self._aggregate("node1", matched=10.0),
        }
        action = coordinator.decide_uplink(aggregates, {"node0": 1.0, "node1": 1.0})
        assert action is not None
        weights = dict(action.weights)
        assert weights["node0"] > weights["node1"]
        assert all(w > 0 for w in weights.values())

    def test_uplink_holds_inside_threshold(self):
        coordinator = ClusterCoordinator(
            uplink_config=UplinkShareConfig(smoothing=1.0, rebalance_threshold=0.5)
        )
        aggregates = {
            "node0": self._aggregate("node0", matched=55.0),
            "node1": self._aggregate("node1", matched=45.0),
        }
        action = coordinator.decide_uplink(aggregates, {"node0": 1.0, "node1": 1.0})
        assert action is None
        records = coordinator.drain_decision_records()
        assert any(r.kind == "hold" for r in records)

    def test_uplink_none_when_statically_sliced(self):
        coordinator = ClusterCoordinator()
        aggregates = {"node0": self._aggregate("node0", matched=10.0)}
        assert coordinator.decide_uplink(aggregates, None) is None

    def test_migration_gates_on_sustained_imbalance(self):
        coordinator = ClusterCoordinator(
            migration_config=MigrationConfig(sustain_ticks=2)
        )
        hot = {
            "node0": self._aggregate("node0", matched=0.0, utilization=2.0),
            "node1": self._aggregate("node1", matched=0.0, utilization=0.1),
        }
        assert coordinator.decide_migration(hot) is None  # not yet sustained
        intent = coordinator.decide_migration(hot)
        assert intent == ("node0", "node1")

    def test_migration_holds_when_balanced(self):
        coordinator = ClusterCoordinator()
        balanced = {
            "node0": self._aggregate("node0", matched=0.0, utilization=0.5),
            "node1": self._aggregate("node1", matched=0.0, utilization=0.5),
        }
        for _ in range(4):
            assert coordinator.decide_migration(balanced) is None
        records = coordinator.drain_decision_records()
        assert all(r.is_noop for r in records)


class TestHierarchicalControlPlane:
    def test_end_to_end_cluster_run(self):
        report, hierarchy = run_hierarchical()
        assert report.control_ticks == hierarchy.ticks > 0
        assert report.frames_scored > 0
        # Every tick exchanged one bounded aggregate per node.
        assert len(report.coordination_payload_bytes) == hierarchy.ticks
        assert all(p > 0 for p in report.coordination_payload_bytes)
        # The cluster telemetry is the fixed-size rollup, not a registry merge.
        assert "cluster.frames.generated" in report.telemetry
        assert not any(key.startswith("node0.") for key in report.telemetry)

    def test_rollup_matches_node_truth(self):
        report, hierarchy = run_hierarchical()
        generated = sum(n.report.frames_generated for n in report.nodes)
        rollup = report.telemetry["cluster.frames.generated"]
        assert rollup["value"] == pytest.approx(generated)

    def test_decision_records_stamped_at_both_levels(self):
        report, _ = run_hierarchical()
        levels = {record["level"] for record in report.decision_records}
        assert levels == {"node", "cluster"}
        seqs = [record["seq"] for record in report.decision_records]
        assert seqs == list(range(len(seqs)))  # one globally ordered stream

    def test_deterministic_reruns_bit_identical(self):
        first, h1 = run_hierarchical()
        second, h2 = run_hierarchical()
        assert first.control_log == second.control_log
        assert first.decision_records == second.decision_records
        assert first.telemetry == second.telemetry
        assert h1.payload_bytes == h2.payload_bytes

    def test_rejects_flat_loop_and_hierarchy_together(self):
        from repro.control.loop import ControlLoop
        from repro.control.shedding import AdaptiveSheddingController

        with pytest.raises(ValueError, match="not both"):
            ShardedFleetRuntime(
                small_fleet(4),
                config=ShardingConfig(num_nodes=2, node_config=FAST_NODE),
                control_loop=ControlLoop([AdaptiveSheddingController()]),
                hierarchy=HierarchicalControlPlane(),
            )

    def test_timeline_scraped_at_both_levels(self):
        from repro.obs.timeline import MetricsTimeline

        timeline = MetricsTimeline()
        config = ShardingConfig(
            num_nodes=2, node_config=FAST_NODE, uplink_sharing="work_conserving"
        )
        runtime = ShardedFleetRuntime(
            small_fleet(6),
            config=config,
            hierarchy=HierarchicalControlPlane(),
            timeline=timeline,
        )
        runtime.run()
        sources = {sample.source for sample in timeline.samples}
        assert "cluster" in sources
        assert "node0" in sources and "node1" in sources

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalControlPlane(interval_seconds=0.0)
