"""Shared helpers for control-plane tests.

Controller unit tests do not need a real fleet: the observation surface a
controller touches (``camera_live_stats``, ``workers.num_workers``, the
telemetry registry) is small enough to fake, which keeps policy tests fast
and lets them construct exact overload/imbalance pictures.  Loop and
integration tests use real runtimes instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.policies import ClusterView, NodeView
from repro.fleet.queues import DropPolicy
from repro.fleet.runtime import CameraLiveStats
from repro.fleet.telemetry import TelemetryRegistry


@dataclass
class FakeWorkers:
    num_workers: int = 2


class FakeRuntime:
    """Duck-typed stand-in for FleetRuntime on the controller's read path."""

    def __init__(
        self,
        cameras: dict[str, CameraLiveStats] | None = None,
        num_workers: int = 2,
        horizon: float = 10.0,
    ) -> None:
        self.cameras = dict(cameras or {})
        self.workers = FakeWorkers(num_workers)
        self.telemetry = TelemetryRegistry()
        self.horizon = horizon

    def camera_live_stats(self) -> dict[str, CameraLiveStats]:
        return dict(self.cameras)


def make_stats(
    camera_id: str,
    frame_rate: float = 10.0,
    generated: int = 0,
    scored: int = 0,
    matched: int = 0,
    service_seconds: float = 0.01,
    resolution: tuple[int, int] = (64, 48),
    drop_policy: DropPolicy = DropPolicy.DROP_OLDEST,
    truth_known: bool = False,
    truth_positive_generated: int = 0,
    truth_positive_scored: int = 0,
    estimated_upload_bits: float = 0.0,
    threshold: float = 0.0,
    attached_at: float = 0.0,
) -> CameraLiveStats:
    """A CameraLiveStats with only the interesting fields spelled out."""
    return CameraLiveStats(
        camera_id=camera_id,
        scenario="urban_day",
        resolution=resolution,
        frame_rate=frame_rate,
        generated=generated,
        scored=scored,
        matched=matched,
        rejected=0,
        dropped=0,
        queue_depth=0,
        service_seconds=service_seconds,
        drop_policy=drop_policy,
        truth_known=truth_known,
        truth_positive_generated=truth_positive_generated,
        truth_positive_scored=truth_positive_scored,
        estimated_upload_bits=estimated_upload_bits,
        threshold=threshold,
        attached_at=attached_at,
    )


def make_view(
    nodes: dict[str, FakeRuntime],
    now: float = 1.0,
    interval: float = 0.25,
    tick_index: int = 0,
    horizon: float | None = None,
    uplink_weights: dict[str, float] | None = None,
    uplink_guarantees: dict[str, float] | None = None,
) -> ClusterView:
    """Assemble a ClusterView over fake runtimes."""
    return ClusterView(
        now=now,
        interval=interval,
        tick_index=tick_index,
        nodes=tuple(NodeView(node_id, runtime) for node_id, runtime in nodes.items()),
        horizon=horizon if horizon is not None else max(r.horizon for r in nodes.values()),
        uplink_weights=uplink_weights,
        uplink_guarantees=uplink_guarantees,
    )
