"""Tests for the Table 3 (dataset details) experiment."""

import pytest

from repro.experiments.table3 import run_table3
from repro.video.datasets import make_jackson_like, make_roadway_like


@pytest.fixture(scope="module")
def rows():
    jackson = make_jackson_like(num_frames=200, width=96, height=54, seed=3)
    roadway = make_roadway_like(num_frames=200, width=96, height=40, seed=5)
    return run_table3(jackson, roadway)


class TestTable3:
    def test_one_row_per_dataset(self, rows):
        assert [row.name for row in rows] == ["jackson", "roadway"]

    def test_paper_attributes_reported(self, rows):
        jackson, roadway = rows
        assert jackson.paper_resolution == "1920 x 1080"
        assert jackson.paper_frames == 600_000
        assert jackson.paper_unique_events == 506
        assert roadway.paper_resolution == "2048 x 850"
        assert roadway.paper_event_frames == 71_296
        assert roadway.task == "People with red"

    def test_generated_attributes_consistent(self, rows):
        for row in rows:
            assert row.generated_frames == 400
            assert 0 <= row.generated_event_frames <= row.generated_frames
            assert row.generated_event_fraction == pytest.approx(
                row.generated_event_frames / row.generated_frames
            )

    def test_event_rarity_preserved(self, rows):
        """The synthetic datasets keep events rare, within 3x of the paper's fraction."""
        for row in rows:
            assert row.event_rarity_preserved

    def test_frame_rate_matches_paper(self, rows):
        assert all(row.frame_rate == 15.0 for row in rows)

    def test_runs_with_default_generation(self):
        rows = run_table3(num_frames=60)
        assert len(rows) == 2
