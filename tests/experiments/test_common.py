"""Tests for the shared experiment context (training + evaluation harness).

These tests use a deliberately small synthetic dataset and a thin base DNN so
the whole module runs in tens of seconds while still exercising real feature
extraction, training, and event-level evaluation.
"""

import numpy as np
import pytest

from repro.baselines.discrete_classifier import DiscreteClassifierConfig
from repro.core.training import TrainingConfig
from repro.experiments.common import ExperimentContext
from repro.video.datasets import make_roadway_like

FAST_TRAINING = TrainingConfig(epochs=2.0, batch_size=16, learning_rate=2e-3, seed=0)


@pytest.fixture(scope="module")
def context():
    dataset = make_roadway_like(num_frames=150, width=96, height=40, seed=9)
    return ExperimentContext(dataset, alpha=0.125, seed=0)


class TestContextSetup:
    def test_tap_selection_uses_shallow_layer_for_small_objects(self, context):
        # At 1/20th of the paper's resolution, objects are a few pixels tall,
        # so the heuristic must choose an early layer.
        assert context.localized_tap in ("conv2_1/sep", "conv2_2/sep", "conv3_2/sep")

    def test_crop_matches_dataset_spec(self, context):
        crop = context.crop()
        x0, y0, x1, y1 = context.dataset.spec.crop
        assert (crop.x0, crop.y0, crop.x1, crop.y1) == (x0, y0, x1, y1)

    def test_feature_maps_cached_per_stream_and_layer(self, context):
        first = context.feature_maps(context.dataset.train_stream, context.localized_tap)
        processed = context.extractor.frames_processed
        second = context.feature_maps(context.dataset.train_stream, context.localized_tap)
        assert context.extractor.frames_processed == processed
        assert first is second
        assert first.shape[0] == 150

    def test_cropped_feature_maps_shrink_height(self, context):
        full = context.feature_maps(context.dataset.test_stream, context.localized_tap)
        cropped = context.cropped_feature_maps(
            context.dataset.test_stream, context.localized_tap, context.crop()
        )
        assert cropped.shape[1] < full.shape[1]
        assert cropped.shape[0] == full.shape[0]

    def test_pixels_batch_shape(self, context):
        pixels = context.pixels(context.dataset.test_stream)
        assert pixels.shape == (150, 40, 96, 3)


class TestTrainingAndEvaluation:
    def test_train_microclassifier_produces_evaluation(self, context):
        result = context.train_microclassifier("localized", training=FAST_TRAINING)
        assert result.kind == "microclassifier/localized"
        assert 0.0 <= result.event_f1 <= 1.0
        assert result.probabilities.shape == (150,)
        assert result.marginal_multiply_adds > 0
        assert set(np.unique(result.smoothed)).issubset({0, 1})

    def test_train_discrete_classifier_produces_evaluation(self, context):
        result = context.train_discrete_classifier(
            DiscreteClassifierConfig(name="dc_test", kernels=(16, 16), strides=(2, 2)),
            training=FAST_TRAINING,
        )
        assert result.kind == "discrete_classifier"
        assert 0.0 <= result.event_f1 <= 1.0
        assert result.marginal_multiply_adds > 0

    def test_threshold_calibration_changes_config(self, context):
        result = context.train_microclassifier(
            "localized", training=FAST_TRAINING, calibrate_threshold=True
        )
        assert 0.0 < result.classifier.config.threshold < 1.0

    def test_evaluate_predictions_scores_against_test_labels(self, context):
        perfect = context.dataset.test_labels.labels.astype(float)
        breakdown = context.evaluate_predictions(perfect, threshold=0.5)
        assert breakdown.recall > 0.9
