"""Tests for the Figure 5 (throughput) and Figure 6 (breakdown) experiments."""

import numpy as np
import pytest

from repro.experiments.figure5 import PAPER_CLASSIFIER_COUNTS, run_figure5, summarize_figure5
from repro.experiments.figure6 import run_figure6


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5()

    def test_sweep_covers_paper_counts(self, result):
        assert result.classifier_counts == PAPER_CLASSIFIER_COUNTS

    def test_rows_expose_every_series(self, result):
        rows = result.as_rows()
        assert len(rows) == len(PAPER_CLASSIFIER_COUNTS)
        assert {"filterforward_localized", "discrete_classifiers", "multiple_mobilenets"} <= set(rows[0])

    def test_filterforward_wins_at_scale(self, result):
        rows = {int(r["num_classifiers"]): r for r in result.as_rows()}
        assert rows[50]["filterforward_localized"] > rows[50]["discrete_classifiers"]
        assert rows[1]["filterforward_localized"] < rows[1]["discrete_classifiers"]

    def test_mobilenets_oom_marked_as_nan(self, result):
        rows = {int(r["num_classifiers"]): r for r in result.as_rows()}
        assert np.isnan(rows[50]["multiple_mobilenets"])
        assert not np.isnan(rows[30]["multiple_mobilenets"])

    def test_summary_reproduces_paper_shape(self, result):
        summary = summarize_figure5(result)
        assert 3 <= summary["break_even_classifiers"] <= 6
        assert 2.0 < summary["speedup_at_20"] < 6.0
        assert 4.0 < summary["speedup_at_50"] < 9.0
        assert 0.2 < summary["single_classifier_ratio_vs_dc"] < 0.6
        assert 0.8 < summary["single_classifier_ratio_vs_mobilenet"] < 1.0
        assert summary["mobilenet_oom_classifiers"] > 30

    def test_custom_counts(self):
        result = run_figure5(classifier_counts=[1, 2, 3])
        assert result.classifier_counts == [1, 2, 3]


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure6()

    def test_all_architectures_present(self, result):
        assert set(result.breakdowns) == {"full_frame", "localized", "windowed"}

    def test_base_dnn_time_constant_across_counts(self, result):
        per_count = result.breakdowns["localized"]
        values = {b.base_dnn_seconds for b in per_count.values()}
        assert len(values) == 1

    def test_classifier_time_grows_with_count(self, result):
        assert result.classifier_seconds("localized", 50) > result.classifier_seconds("localized", 1)

    def test_base_dnn_equivalent_to_tens_of_mcs(self, result):
        """Paper: the base DNN's CPU time equals roughly 15-40 MCs."""
        for architecture in ("localized", "windowed", "full_frame"):
            equivalent = result.equivalent_mcs_to_base_dnn(architecture)
            assert 10 <= equivalent <= 55

    def test_base_dnn_dominates_at_low_classifier_counts(self, result):
        breakdown = result.breakdowns["localized"][1]
        assert breakdown.base_dnn_seconds > breakdown.classifiers_seconds
