"""Tests for the Figure 4 (bandwidth/accuracy) and Figure 7 (cost/accuracy) experiments.

These run the real experiment harness on a miniature dataset: the absolute
accuracies are not meaningful at this size, but the plumbing — training,
compression sweeps, cost accounting, summaries — is exercised end to end.
"""

import numpy as np
import pytest

from repro.baselines.discrete_classifier import DiscreteClassifierConfig
from repro.core.training import TrainingConfig
from repro.experiments.common import ExperimentContext
from repro.experiments.figure4 import (
    default_bitrate_sweep,
    filterforward_upload_bitrate,
    run_figure4,
    summarize_figure4,
)
from repro.experiments.figure7 import run_figure7, summarize_figure7
from repro.video.datasets import make_roadway_like

FAST_TRAINING = TrainingConfig(epochs=2.0, batch_size=16, learning_rate=2e-3, seed=0)


@pytest.fixture(scope="module")
def context():
    dataset = make_roadway_like(num_frames=120, width=96, height=40, seed=17)
    return ExperimentContext(dataset, alpha=0.125, seed=0)


@pytest.fixture(scope="module")
def trained_localized(context):
    return context.train_microclassifier("localized", training=FAST_TRAINING)


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, context, trained_localized):
        bitrates = default_bitrate_sweep(context, num_points=3)
        return run_figure4(
            context, architecture="localized", compress_bitrates=bitrates, trained=trained_localized
        )

    def test_produces_one_ff_point_and_a_compression_curve(self, result):
        assert len(result.filterforward) == 1
        assert len(result.compress_everything) == 3

    def test_compress_everything_bandwidth_tracks_bitrate(self, result):
        for point in result.compress_everything:
            assert point.average_bandwidth == pytest.approx(point.target_bitrate, rel=0.05)

    def test_filterforward_uses_less_bandwidth_than_full_upload(self, result):
        ff = result.filterforward[0]
        highest = max(result.compress_everything, key=lambda p: p.average_bandwidth)
        assert ff.average_bandwidth < highest.average_bandwidth

    def test_paper_equivalent_bandwidth_scales_by_area(self, result, context):
        ff = result.filterforward[0]
        spec = context.dataset.spec
        area_ratio = (spec.paper_resolution[0] * spec.paper_resolution[1]) / (
            spec.resolution[0] * spec.resolution[1]
        )
        assert ff.paper_equivalent_mbps == pytest.approx(
            ff.average_bandwidth * area_ratio / 1e6, rel=1e-6
        )

    def test_scores_are_valid(self, result):
        for point in result.filterforward + result.compress_everything:
            assert 0.0 <= point.event_f1 <= 1.0
            assert 0.0 <= point.precision <= 1.0
            assert 0.0 <= point.recall <= 1.0

    def test_summary_keys(self, result):
        summary = summarize_figure4(result)
        assert set(summary) >= {"bandwidth_reduction", "f1_improvement", "filterforward_f1"}
        assert summary["bandwidth_reduction"] > 0

    def test_bitrate_sweep_spans_paper_bpp_range(self, context):
        sweep = default_bitrate_sweep(context, num_points=5)
        spec = context.dataset.spec
        pixels_per_second = spec.resolution[0] * spec.resolution[1] * spec.frame_rate
        bpps = [b / pixels_per_second for b in sweep]
        assert min(bpps) == pytest.approx(0.004, rel=0.01)
        assert max(bpps) == pytest.approx(0.4, rel=0.01)

    def test_ff_upload_bitrate_translated_from_paper_scale(self, context):
        translated = filterforward_upload_bitrate(context, paper_bitrate=500_000)
        assert 0 < translated < 500_000


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self, context):
        dc_configs = [DiscreteClassifierConfig(name="dc_test", kernels=(16, 16), strides=(2, 2))]
        return run_figure7(context, architectures=("localized",), dc_configs=dc_configs)

    def test_points_for_each_classifier(self, result):
        assert len(result.microclassifiers) == 1
        assert len(result.discrete_classifiers) == 1
        assert result.dataset == "roadway"

    def test_costs_reported_at_both_scales(self, result):
        mc = result.microclassifiers[0]
        assert mc.paper_scale_multiply_adds > mc.measured_multiply_adds
        assert mc.measured_multiply_adds > 0

    def test_mc_paper_scale_cost_is_order_100M(self, result):
        mc = result.microclassifiers[0]
        assert 5e7 < mc.paper_scale_multiply_adds < 5e8

    def test_summary_keys_and_ranges(self, result):
        summary = summarize_figure7(result)
        assert summary["accuracy_ratio"] >= 0
        assert summary["marginal_cost_ratio_vs_best_dc"] > 0
        assert summary["marginal_cost_ratio_vs_representative_dc"] > 0
        assert 0 <= summary["best_mc_f1"] <= 1

    def test_trained_classifiers_recorded(self, result):
        assert "roadway_localized" in result.trained
        assert "dc_test" in result.trained
