"""Tests for the FilterForward feature extractor."""

import numpy as np
import pytest

from repro.features.extractor import FeatureExtractor, FeatureMapCrop
from repro.video.frame import Frame


class TestFeatureMapCrop:
    def test_rejects_empty_rectangles(self):
        with pytest.raises(ValueError):
            FeatureMapCrop(10, 10, 10, 20)
        with pytest.raises(ValueError):
            FeatureMapCrop(-1, 0, 5, 5)

    def test_rescaling_to_feature_coordinates(self):
        crop = FeatureMapCrop(0, 540, 1920, 1080)  # bottom half of a 1080p frame
        y0, y1, x0, x1 = crop.to_feature_coords((1080, 1920), (68, 120))
        assert x0 == 0 and x1 == 120
        assert y0 == 34 and y1 == 68

    def test_rescaled_crop_never_empty(self):
        crop = FeatureMapCrop(10, 10, 12, 12)  # tiny pixel crop
        y0, y1, x0, x1 = crop.to_feature_coords((1080, 1920), (4, 4))
        assert y1 > y0 and x1 > x0

    def test_rescaled_crop_clamped_to_bounds(self):
        crop = FeatureMapCrop(0, 0, 1920, 1080)
        y0, y1, x0, x1 = crop.to_feature_coords((1080, 1920), (9, 15))
        assert (y0, y1, x0, x1) == (0, 9, 0, 15)


class TestFeatureExtractor:
    def test_requires_known_tap_layers(self, tiny_base_dnn):
        with pytest.raises(KeyError):
            FeatureExtractor(tiny_base_dnn, ["not_a_layer"])
        with pytest.raises(ValueError):
            FeatureExtractor(tiny_base_dnn, [])

    def test_extract_returns_requested_layers(self, tiny_extractor, rng):
        frame = Frame(0, 0.0, rng.random((32, 48, 3)).astype(np.float32))
        activations = tiny_extractor.extract(frame)
        assert set(activations) == {"conv4_2/sep", "conv5_6/sep"}
        assert activations["conv4_2/sep"].shape == tiny_extractor.layer_shape("conv4_2/sep")

    def test_extraction_is_cached_per_frame(self, tiny_extractor, rng):
        frame = Frame(3, 0.2, rng.random((32, 48, 3)).astype(np.float32))
        before = tiny_extractor.frames_processed
        tiny_extractor.extract(frame)
        tiny_extractor.extract(frame)
        assert tiny_extractor.frames_processed == before + 1

    def test_cache_eviction(self, tiny_base_dnn, rng):
        extractor = FeatureExtractor(tiny_base_dnn, ["conv4_2/sep"], cache_size=2)
        frames = [Frame(i, i / 15, rng.random((32, 48, 3)).astype(np.float32)) for i in range(3)]
        for frame in frames:
            extractor.extract(frame)
        assert extractor.frames_processed == 3
        extractor.extract(frames[0])  # evicted, so recomputed
        assert extractor.frames_processed == 4

    def test_reset_cache(self, tiny_extractor, rng):
        frame = Frame(0, 0.0, rng.random((32, 48, 3)).astype(np.float32))
        tiny_extractor.extract(frame)
        tiny_extractor.reset_cache()
        tiny_extractor.extract(frame)
        assert tiny_extractor.frames_processed == 2

    def test_feature_map_with_crop_reduces_spatial_extent(self, tiny_extractor, rng):
        frame = Frame(0, 0.0, rng.random((32, 48, 3)).astype(np.float32))
        full = tiny_extractor.feature_map(frame, "conv4_2/sep")
        cropped = tiny_extractor.feature_map(
            frame, "conv4_2/sep", FeatureMapCrop(0, 16, 48, 32)
        )
        assert cropped.shape[0] < full.shape[0]
        assert cropped.shape[1] == full.shape[1]
        assert cropped.shape[2] == full.shape[2]

    def test_feature_map_requires_tapped_layer(self, tiny_extractor, rng):
        frame = Frame(0, 0.0, rng.random((32, 48, 3)).astype(np.float32))
        with pytest.raises(KeyError):
            tiny_extractor.feature_map(frame, "conv2_1/sep")

    def test_cropped_layer_shape_matches_actual_crop(self, tiny_extractor, rng):
        crop = FeatureMapCrop(0, 16, 48, 32)
        frame = Frame(0, 0.0, rng.random((32, 48, 3)).astype(np.float32))
        expected = tiny_extractor.cropped_layer_shape("conv4_2/sep", crop, (32, 48))
        actual = tiny_extractor.feature_map(frame, "conv4_2/sep", crop).shape
        assert tuple(actual) == expected

    def test_multiply_adds_per_frame_matches_base_dnn(self, tiny_extractor, tiny_base_dnn):
        assert tiny_extractor.multiply_adds_per_frame() == tiny_base_dnn.multiply_adds()

    def test_invalid_cache_size(self, tiny_base_dnn):
        with pytest.raises(ValueError):
            FeatureExtractor(tiny_base_dnn, ["conv4_2/sep"], cache_size=0)

    def test_same_pixels_give_same_features(self, tiny_extractor, rng):
        pixels = rng.random((32, 48, 3)).astype(np.float32)
        a = tiny_extractor.extract_pixels(pixels)
        b = tiny_extractor.extract_pixels(pixels)
        np.testing.assert_array_equal(a["conv5_6/sep"], b["conv5_6/sep"])
