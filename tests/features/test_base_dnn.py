"""Tests for the MobileNet-style base DNN."""

import numpy as np
import pytest

from repro.features.base_dnn import (
    MOBILENET_BLOCKS,
    build_mobilenet_like,
    mobilenet_layer_shapes,
    mobilenet_multiply_adds,
)


class TestArchitecture:
    def test_contains_paper_tap_layers(self, tiny_base_dnn):
        names = tiny_base_dnn.layer_names()
        assert "conv4_2/sep" in names
        assert "conv5_6/sep" in names

    def test_block_structure(self, tiny_base_dnn):
        names = tiny_base_dnn.layer_names()
        for block_name, _, _ in MOBILENET_BLOCKS:
            assert f"{block_name}/dw" in names
            assert f"{block_name}/sep/pw" in names
            assert f"{block_name}/sep" in names

    def test_spatial_reduction_factors(self, tiny_base_dnn):
        shapes = tiny_base_dnn.layer_output_shapes()
        # Input is 32x48; conv4_2 is at 1/16, conv5_6 at 1/32 (ceil rounding).
        assert shapes["conv4_2/sep"][:2] == (2, 3)
        assert shapes["conv5_6/sep"][:2] == (1, 2)

    def test_alpha_scales_channel_counts(self):
        thin = build_mobilenet_like((32, 32, 3), alpha=0.125)
        wide = build_mobilenet_like((32, 32, 3), alpha=0.5)
        thin_channels = thin.layer_output_shapes()["conv4_2/sep"][2]
        wide_channels = wide.layer_output_shapes()["conv4_2/sep"][2]
        assert wide_channels == 4 * thin_channels

    def test_forward_produces_finite_activations(self, tiny_base_dnn, rng):
        out = tiny_base_dnn.forward(rng.random((2, 32, 48, 3)))
        assert np.isfinite(out).all()

    def test_optional_classification_head(self):
        model = build_mobilenet_like((32, 32, 3), alpha=0.125, include_head=True, num_classes=10)
        out = model.forward(np.random.default_rng(0).random((2, 32, 32, 3)))
        assert out.shape == (2, 10)
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_head_requires_num_classes(self):
        with pytest.raises(ValueError):
            build_mobilenet_like((32, 32, 3), include_head=True, num_classes=0)

    def test_invalid_input_shape(self):
        with pytest.raises(ValueError):
            build_mobilenet_like((32, 32), alpha=0.25)
        with pytest.raises(ValueError):
            build_mobilenet_like((32, 32, 1), alpha=0.25)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            build_mobilenet_like((32, 32, 3), alpha=0.0)


class TestLayerShapes:
    def test_paper_scale_feature_map_dimensions(self):
        """At 1920x1080, the tap layers have the channel counts quoted in Figure 2."""
        shapes = mobilenet_layer_shapes((1920, 1080), alpha=1.0)
        h42, w42, c42 = shapes["conv4_2/sep"]
        h56, w56, c56 = shapes["conv5_6/sep"]
        assert c42 == 512 and c56 == 1024
        assert w42 == 120 and w56 == 60
        # Heights are 67/33 in the paper (floor rounding) vs 68/34 here (ceil).
        assert h42 in (67, 68) and h56 in (33, 34)

    def test_shapes_agree_with_built_model(self, tiny_base_dnn):
        analytic = mobilenet_layer_shapes((48, 32), alpha=0.125)
        built = tiny_base_dnn.layer_output_shapes()
        for layer in ("conv2_2/sep", "conv4_2/sep", "conv5_6/sep"):
            assert analytic[layer] == built[layer]


class TestCost:
    def test_full_scale_cost_is_tens_of_gigamadds(self):
        """MobileNet at 1080p is ~41x its 224x224 cost (~0.57 GMadd), i.e. >20 GMadds."""
        full = mobilenet_multiply_adds((1920, 1080), alpha=1.0)
        small = mobilenet_multiply_adds((224, 224), alpha=1.0)
        assert 15e9 < full < 40e9
        assert 0.4e9 < small < 0.8e9
        assert full / small == pytest.approx(1920 * 1080 / (224 * 224), rel=0.15)

    def test_analytic_cost_matches_built_model(self, tiny_base_dnn):
        assert mobilenet_multiply_adds((48, 32), alpha=0.125) == tiny_base_dnn.multiply_adds()

    def test_cost_scales_with_alpha(self):
        thin = mobilenet_multiply_adds((256, 144), alpha=0.25)
        full = mobilenet_multiply_adds((256, 144), alpha=1.0)
        assert full > 5 * thin
