"""Sharded cluster runtime: aggregation, determinism, shared uplink slicing."""

import pytest

from repro.fleet.camera import generate_fleet
from repro.fleet.runtime import FleetConfig
from repro.fleet.sharding import ShardedFleetRuntime, ShardingConfig

FAST_NODE = FleetConfig(num_workers=2, queue_capacity=4, service_time_scale=0.05)


def small_fleet(num_cameras=6):
    return generate_fleet(
        num_cameras,
        seed=2,
        duration_seconds=1.5,
        resolutions=((48, 32), (64, 48)),
        frame_rates=(4.0, 10.0),
    )


def run_cluster(num_cameras=6, **config_kwargs):
    config_kwargs.setdefault("num_nodes", 2)
    config_kwargs.setdefault("node_config", FAST_NODE)
    config = ShardingConfig(**config_kwargs)
    return ShardedFleetRuntime(small_fleet(num_cameras), config=config).run()


class TestShardingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardingConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ShardingConfig(total_uplink_bps=0.0)
        with pytest.raises(ValueError, match="uplink_allocation"):
            ShardingConfig(uplink_allocation="auction")
        with pytest.raises(ValueError, match="Unknown placement policy"):
            ShardedFleetRuntime(small_fleet(4), config=ShardingConfig(placement="nope"))

    def test_duplicate_camera_ids_rejected_cluster_wide(self):
        cameras = small_fleet(4)
        with pytest.raises(ValueError, match="Duplicate"):
            ShardedFleetRuntime(
                [cameras[0], cameras[0], cameras[1]],
                config=ShardingConfig(num_nodes=2, node_config=FAST_NODE),
            )


class TestShardedFleetRuntime:
    def test_cluster_aggregates_sum_of_nodes(self):
        report = run_cluster()
        assert report.num_nodes == 2
        assert report.num_cameras == 6
        assert report.frames_generated == sum(
            n.report.frames_generated for n in report.nodes
        )
        assert report.frames_scored == sum(n.report.frames_scored for n in report.nodes)
        assert report.frames_dropped == sum(n.report.frames_dropped for n in report.nodes)
        assert report.frames_rejected == sum(
            n.report.frames_rejected for n in report.nodes
        )
        assert report.events_detected == sum(
            n.report.events_detected for n in report.nodes
        )
        assert report.total_uplink_bits == pytest.approx(
            sum(n.report.total_uploaded_bits for n in report.nodes)
        )
        assert report.sim_duration == max(n.report.sim_duration for n in report.nodes)

    def test_every_camera_hosted_exactly_once(self):
        report = run_cluster()
        hosted = [cid for n in report.nodes for cid in n.camera_ids]
        assert sorted(hosted) == sorted(s.camera_id for s in small_fleet())
        for node in report.nodes:
            assert set(node.camera_ids) == set(node.report.cameras)

    def test_deterministic(self):
        first = run_cluster(placement="load_aware")
        second = run_cluster(placement="load_aware")
        assert first.frames_scored == second.frames_scored
        assert first.total_uplink_bits == second.total_uplink_bits
        assert [n.report.telemetry for n in first.nodes] == [
            n.report.telemetry for n in second.nodes
        ]

    @pytest.mark.parametrize("placement", ["round_robin", "load_aware", "resolution_aware"])
    def test_all_policies_run(self, placement):
        report = run_cluster(placement=placement)
        assert report.placement_policy == placement
        assert report.frames_scored > 0
        assert 0.0 < report.fairness_index <= 1.0
        assert report.load_imbalance >= 1.0
        assert report.worst_node_queue_wait_p99 >= 0.0

    def test_uplink_allocations_respect_total(self):
        for mode in ("equal", "by_cameras", "by_cost"):
            runtime = ShardedFleetRuntime(
                small_fleet(),
                config=ShardingConfig(
                    num_nodes=2,
                    total_uplink_bps=800_000.0,
                    uplink_allocation=mode,
                    node_config=FAST_NODE,
                ),
            )
            allocated = sum(
                link.capacity_bps for link in runtime.shared_uplink.links.values()
            )
            assert allocated == pytest.approx(800_000.0)

    def test_equal_allocation_splits_evenly(self):
        runtime = ShardedFleetRuntime(
            small_fleet(),
            config=ShardingConfig(
                num_nodes=2, total_uplink_bps=600_000.0, node_config=FAST_NODE
            ),
        )
        for link in runtime.shared_uplink.links.values():
            assert link.capacity_bps == pytest.approx(300_000.0)

    def test_by_cameras_allocation_tracks_shard_sizes(self):
        runtime = ShardedFleetRuntime(
            small_fleet(5),
            config=ShardingConfig(
                num_nodes=2,
                total_uplink_bps=500_000.0,
                uplink_allocation="by_cameras",
                node_config=FAST_NODE,
            ),
        )
        links = runtime.shared_uplink.links
        sizes = {node_id: len(shard) for node_id, shard in zip(runtime.node_ids, runtime.shards)}
        assert links["node0"].capacity_bps == pytest.approx(500_000.0 * sizes["node0"] / 5)
        assert links["node1"].capacity_bps == pytest.approx(500_000.0 * sizes["node1"] / 5)

    def test_uplink_utilization_uses_shared_capacity(self):
        report = run_cluster(total_uplink_bps=10_000.0)
        if report.total_uplink_bits > 0:
            expected = report.total_uplink_bits / (10_000.0 * report.sim_duration)
            assert report.uplink_utilization == pytest.approx(expected)

    def test_summary_mentions_cluster_shape(self):
        report = run_cluster()
        summary = report.summary()
        assert "2 nodes" in summary
        assert "6 cameras" in summary
        assert "node0" in summary and "node1" in summary

    def test_nodes_do_not_share_pipelines(self):
        runtime = ShardedFleetRuntime(
            small_fleet(),
            config=ShardingConfig(num_nodes=2, node_config=FAST_NODE),
        )
        factories = {id(node.pipeline_factory) for node in runtime.nodes.values()}
        assert len(factories) == 2

    def test_single_node_cluster_matches_fleet_runtime_shape(self):
        report = run_cluster(num_cameras=4, num_nodes=1)
        assert report.num_nodes == 1
        assert report.nodes[0].num_cameras == 4
        assert report.drop_rate == report.nodes[0].report.drop_rate

    def test_uplink_guarantees_describe_both_sharing_modes(self):
        static = ShardedFleetRuntime(
            small_fleet(),
            config=ShardingConfig(
                num_nodes=2, node_config=FAST_NODE, total_uplink_bps=10_000.0
            ),
        )
        assert static.uplink_guarantees() == {
            node_id: static.shared_uplink.links[node_id].capacity_bps
            for node_id in static.node_ids
        }
        conserving = ShardedFleetRuntime(
            small_fleet(),
            config=ShardingConfig(
                num_nodes=2,
                node_config=FAST_NODE,
                total_uplink_bps=10_000.0,
                uplink_sharing="work_conserving",
            ),
        )
        guarantees = conserving.uplink_guarantees()
        assert guarantees == {
            node_id: conserving.shared_uplink.guaranteed_bps(node_id)
            for node_id in conserving.node_ids
        }
        assert sum(guarantees.values()) == pytest.approx(10_000.0)


class TestWorkConservingSharing:
    def run_wc(self, **config_kwargs):
        config_kwargs.setdefault("num_nodes", 2)
        config_kwargs.setdefault("node_config", FAST_NODE)
        config_kwargs.setdefault("uplink_sharing", "work_conserving")
        config = ShardingConfig(**config_kwargs)
        return ShardedFleetRuntime(small_fleet(), config=config).run()

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="uplink_sharing"):
            ShardingConfig(uplink_sharing="magic")

    def test_same_bits_move_as_static_slicing(self):
        static = run_cluster(total_uplink_bps=50_000.0)
        shared = self.run_wc(total_uplink_bps=50_000.0)
        assert shared.uplink_sharing == "work_conserving"
        assert shared.total_uplink_bits == pytest.approx(static.total_uplink_bits)
        assert shared.reclaimed_uplink_bits >= 0.0

    def test_skewed_uploads_reclaim_idle_capacity(self):
        # A tight link plus an uneven placement: the busy node borrows the
        # quiet node's guaranteed share.
        report = self.run_wc(total_uplink_bps=8_000.0, placement="load_aware")
        if report.total_uplink_bits > 0:
            assert report.reclaimed_uplink_bits > 0.0
            assert report.reclaimed_uplink_bytes == pytest.approx(
                report.reclaimed_uplink_bits / 8.0
            )

    def test_node_reports_reflect_shared_drain(self):
        report = self.run_wc(total_uplink_bps=50_000.0)
        for node in report.nodes:
            assert node.uplink_allocation_bps == pytest.approx(25_000.0)
            assert node.report.uplink_backlog_seconds >= 0.0
            # Telemetry gauges agree with the patched report fields.
            gauges = node.report.telemetry["uplink.utilization"]
            assert gauges["value"] == pytest.approx(node.report.uplink_utilization)

    def test_deterministic(self):
        first = self.run_wc(total_uplink_bps=20_000.0)
        second = self.run_wc(total_uplink_bps=20_000.0)
        assert first.total_uplink_bits == second.total_uplink_bits
        assert first.reclaimed_uplink_bits == second.reclaimed_uplink_bits


class TestClusterTelemetryMerge:
    def test_cluster_snapshot_prefixes_node_metrics(self):
        report = run_cluster()
        assert report.telemetry  # merged registry snapshot
        scored = sum(
            value
            for name, value in report.telemetry.items()
            if name.endswith(".frames.scored")
        )
        assert scored == report.frames_scored
        assert any(name.startswith("node0.") for name in report.telemetry)
        assert any(name.startswith("node1.") for name in report.telemetry)


class TestUplinkUtilizationGuard:
    """Regression: a zero-capacity (or zero-duration) report must not divide
    by zero when asked for uplink utilization."""

    def _report(self, **kwargs):
        from repro.fleet.sharding import ShardedFleetReport

        defaults = dict(
            nodes=[],
            placement_policy="round_robin",
            total_uplink_bps=1e6,
            total_uplink_bits=5e5,
            sim_duration=2.0,
        )
        defaults.update(kwargs)
        return ShardedFleetReport(**defaults)

    def test_zero_bandwidth_reports_zero(self):
        assert self._report(total_uplink_bps=0.0).uplink_utilization == 0.0

    def test_zero_duration_reports_zero(self):
        assert self._report(sim_duration=0.0).uplink_utilization == 0.0

    def test_normal_case_unchanged(self):
        report = self._report()
        assert report.uplink_utilization == pytest.approx(5e5 / (1e6 * 2.0))
