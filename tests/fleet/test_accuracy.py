"""The fleet accuracy plane: seed ladder, trained-model cache, event F1.

Training is real but tiny (32x32 frames, short clips); one module-scoped
trained cache is shared across tests so each camera trains exactly once.
"""

import numpy as np
import pytest

from repro.fleet import (
    AccuracyConfig,
    CameraAccuracy,
    CameraSpec,
    DropPolicy,
    FleetAccuracy,
    FleetConfig,
    FleetRuntime,
    ShardedFleetRuntime,
    ShardingConfig,
    TrainedMicroClassifiers,
    camera_seed_ladder,
    evaluate_offline,
)
from repro.fleet.camera import CameraFeed
from repro.video.synthetic import TASK_PEDESTRIAN

SCENARIOS = ["retail_entrance", "busy_intersection", "urban_day"]

ACCURACY = AccuracyConfig(train_frames=48, epochs=2.0)


def tiny_fleet(num_cameras=3, num_frames=20, frame_rate=10.0):
    return [
        CameraSpec(
            camera_id=f"cam{i:02d}",
            width=32,
            height=32,
            frame_rate=frame_rate,
            num_frames=num_frames,
            scenario=SCENARIOS[i % len(SCENARIOS)],
            seed=100 + i,
            event_rate_scale=2.5,
        )
        for i in range(num_cameras)
    ]


@pytest.fixture(scope="module")
def models() -> TrainedMicroClassifiers:
    return TrainedMicroClassifiers(ACCURACY)


@pytest.fixture(scope="module")
def fleet():
    return tiny_fleet()


@pytest.fixture(scope="module")
def no_shed_report(fleet, models):
    config = FleetConfig(num_workers=2, service_time_scale=0.01, accuracy_task=ACCURACY.task)
    return FleetRuntime(fleet, pipeline_factory=models.pipeline_factory(), config=config).run()


@pytest.fixture(scope="module")
def shed_report(fleet, models):
    config = FleetConfig(
        num_workers=1, queue_capacity=2, service_time_scale=1.0, accuracy_task=ACCURACY.task
    )
    return FleetRuntime(fleet, pipeline_factory=models.pipeline_factory(), config=config).run()


class TestSeedLadder:
    def test_deterministic(self):
        spec = tiny_fleet(1)[0]
        assert camera_seed_ladder(spec, "weights") == camera_seed_ladder(spec, "weights")

    def test_purposes_are_independent(self):
        spec = tiny_fleet(1)[0]
        seeds = {camera_seed_ladder(spec, p) for p in ("train_scene", "weights", "training")}
        assert len(seeds) == 3

    def test_cameras_differ_even_with_equal_spec_seeds(self):
        a = CameraSpec("a", 32, 32, frame_rate=10.0, num_frames=10, seed=7)
        b = CameraSpec("b", 32, 32, frame_rate=10.0, num_frames=10, seed=7)
        assert camera_seed_ladder(a, "weights") != camera_seed_ladder(b, "weights")

    def test_base_seed_shifts_ladder(self):
        spec = tiny_fleet(1)[0]
        assert camera_seed_ladder(spec, "weights", 0) != camera_seed_ladder(spec, "weights", 1)

    def test_unknown_purpose_rejected(self):
        with pytest.raises(ValueError, match="purpose"):
            camera_seed_ladder(tiny_fleet(1)[0], "lunch")


class TestAccuracyConfig:
    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="task"):
            AccuracyConfig(task="jaywalking")

    def test_tiny_training_clip_rejected(self):
        with pytest.raises(ValueError, match="train_frames"):
            AccuracyConfig(train_frames=4)

    def test_unknown_fleet_accuracy_task_rejected(self):
        with pytest.raises(ValueError, match="accuracy_task"):
            FleetConfig(accuracy_task="jaywalking")

    def test_stateful_architecture_rejected(self):
        # The windowed MC buffers per-stream state, so it cannot be shared
        # across pipeline sessions yet; fail at construction, not mid-train.
        with pytest.raises(ValueError, match="architecture"):
            AccuracyConfig(architecture="windowed")
        with pytest.raises(ValueError, match="architecture"):
            AccuracyConfig(architecture="localised")


class TestTrainedCache:
    def test_training_is_cached_per_spec(self, models, fleet):
        first = models.trained(fleet[0])
        hits = models.cache_hits
        again = models.trained(fleet[0])
        assert again is first
        assert models.cache_hits == hits + 1

    def test_training_is_bit_identical_across_instances(self, models, fleet):
        fresh = TrainedMicroClassifiers(ACCURACY)
        a = models.trained(fleet[1])
        b = fresh.trained(fleet[1])
        assert a.threshold == b.threshold
        assert a.seeds == b.seeds
        for pa, pb in zip(a.mc.parameters(), b.mc.parameters()):
            assert np.array_equal(pa.value, pb.value)

    def test_training_clip_uses_ladder_seed_not_live_seed(self, models, fleet):
        train_spec = models._training_spec(fleet[0])
        assert train_spec.seed == camera_seed_ladder(fleet[0], "train_scene")
        assert train_spec.seed != fleet[0].seed
        assert train_spec.num_frames == ACCURACY.train_frames

    def test_base_dnn_shared_per_resolution(self, models, fleet):
        factory = models.pipeline_factory()
        first, second = factory(fleet[0]), factory(fleet[1])
        assert first.extractor.base_dnn is second.extractor.base_dnn
        assert first.extractor is not second.extractor

    def test_threshold_was_calibrated_into_the_mc(self, models, fleet):
        model = models.trained(fleet[0])
        assert model.mc.config.threshold == model.threshold
        assert 0.0 < model.threshold < 1.0


class TestCalibrationFallback:
    """An all-negative training clip must not calibrate a permissive threshold."""

    def test_zero_f1_sweep_keeps_the_configured_threshold(self, models):
        # Every candidate quantile of these probabilities fires on some
        # frames, and with all-negative labels each scores exactly F1 = 0;
        # the sweep used to return the lowest quantile (~0.61 here) purely
        # because it was evaluated first.
        probabilities = np.linspace(0.6, 0.9, 40)
        labels = np.zeros(40, dtype=np.int8)
        assert models._calibrate(probabilities, labels) == ACCURACY.threshold

    def test_all_negative_labels_short_circuit(self, models):
        # Probabilities driven near zero: high candidates would predict
        # nothing and score the degenerate empty-vs-empty F1 = 1.0, winning
        # with an arbitrary quantile.  No positives -> no signal -> keep.
        probabilities = np.full(40, 0.01)
        labels = np.zeros(40, dtype=np.int8)
        assert models._calibrate(probabilities, labels) == ACCURACY.threshold

    def test_all_negative_training_clip_end_to_end(self):
        # event_rate_scale=0 spawns no pedestrians at all: the rendered
        # training clip is all-negative and calibration must fall back.
        models = TrainedMicroClassifiers(ACCURACY)
        spec = CameraSpec(
            camera_id="cam_silent",
            width=32,
            height=32,
            frame_rate=10.0,
            num_frames=20,
            scenario="quiet_residential",
            seed=7,
            event_rate_scale=0.0,
        )
        model = models.trained(spec)
        assert model.train_positive_frames == 0
        assert model.threshold == ACCURACY.threshold
        assert model.mc.config.threshold == ACCURACY.threshold


class TestFleetAccuracyReport:
    def test_report_carries_accuracy(self, no_shed_report, fleet):
        accuracy = no_shed_report.accuracy
        assert accuracy is not None
        assert accuracy.task == TASK_PEDESTRIAN
        assert sorted(accuracy.cameras) == [spec.camera_id for spec in fleet]

    def test_accuracy_off_by_default(self, fleet, models):
        config = FleetConfig(num_workers=2, service_time_scale=0.01)
        report = FleetRuntime(
            fleet, pipeline_factory=models.pipeline_factory(), config=config
        ).run()
        assert report.accuracy is None
        assert "accuracy.truth_positive_generated" not in report.telemetry

    def test_no_shedding_reproduces_offline_exactly(self, no_shed_report, fleet, models):
        offline = evaluate_offline(fleet, models)
        assert no_shed_report.drop_rate == 0.0
        assert no_shed_report.accuracy.macro_f1 == offline.macro_f1
        for camera_id, offline_camera in offline.cameras.items():
            fleet_camera = no_shed_report.accuracy.cameras[camera_id]
            assert np.array_equal(fleet_camera.predictions, offline_camera.predictions)
            assert np.array_equal(fleet_camera.truth, offline_camera.truth)

    def test_truth_matches_feed_labels(self, no_shed_report, fleet):
        for spec in fleet:
            camera = no_shed_report.accuracy.cameras[spec.camera_id]
            expected = CameraFeed(spec).labels(TASK_PEDESTRIAN).labels
            assert np.array_equal(camera.truth, expected)
            assert camera.truth.size == spec.num_frames

    def test_truth_telemetry_counts_generated_positives(self, no_shed_report):
        accuracy = no_shed_report.accuracy
        total_positives = sum(c.truth_positive_frames for c in accuracy.cameras.values())
        assert (
            no_shed_report.telemetry["accuracy.truth_positive_generated"] == total_positives
        )
        # Nothing was shed, so every generated positive was also scored.
        assert (
            no_shed_report.telemetry["accuracy.truth_positive_scored"] == total_positives
        )

    def test_shedding_shows_up_in_accuracy_drop_rate(self, shed_report):
        accuracy = shed_report.accuracy
        assert accuracy.drop_rate == pytest.approx(shed_report.drop_rate)
        assert accuracy.drop_rate > 0.3
        for camera in accuracy.cameras.values():
            assert camera.frames_scored < camera.frames_generated

    def test_shed_run_scores_fewer_truth_positives(self, shed_report):
        scored = shed_report.telemetry["accuracy.truth_positive_scored"]
        generated = shed_report.telemetry["accuracy.truth_positive_generated"]
        assert scored < generated

    def test_live_stats_expose_truth_density(self, fleet, models):
        config = FleetConfig(num_workers=2, service_time_scale=0.01, accuracy_task=ACCURACY.task)
        runtime = FleetRuntime(fleet, pipeline_factory=models.pipeline_factory(), config=config)
        runtime.start()
        runtime.advance_until(float("inf"))
        stats = runtime.camera_live_stats()
        for spec in fleet:
            expected = int(CameraFeed(spec).labels(TASK_PEDESTRIAN).labels.sum())
            assert stats[spec.camera_id].truth_positive_generated == expected
            assert stats[spec.camera_id].truth_positive_scored == expected
            assert 0.0 <= stats[spec.camera_id].truth_density <= 1.0
        runtime.finalize()

    def test_summary_mentions_accuracy(self, no_shed_report):
        assert "macro-F1" in no_shed_report.summary()


class TestTruthDensitySignal:
    def _stats(self, truth_known, truth_positive_generated, matched):
        from repro.fleet.runtime import CameraLiveStats

        return CameraLiveStats(
            camera_id="cam",
            scenario="urban_day",
            resolution=(32, 32),
            frame_rate=10.0,
            generated=10,
            scored=10,
            matched=matched,
            rejected=0,
            dropped=0,
            queue_depth=0,
            service_seconds=0.01,
            truth_known=truth_known,
            truth_positive_generated=truth_positive_generated,
        )

    def test_shedding_uses_truth_density_when_known(self):
        from repro.control import AdaptiveSheddingController, SheddingConfig

        controller = AdaptiveSheddingController(
            SheddingConfig(value_signal="truth_density")
        )
        stats = self._stats(truth_known=True, truth_positive_generated=6, matched=1)
        assert controller._value(stats) == pytest.approx(0.6)

    def test_truth_density_falls_back_to_match_proxy_without_accuracy_plane(self):
        from repro.control import AdaptiveSheddingController, SheddingConfig

        controller = AdaptiveSheddingController(
            SheddingConfig(value_signal="truth_density")
        )
        # Accuracy plane off: every camera would report truth_density 0.0,
        # so the controller must fall back to the match-density proxy
        # instead of shedding purely by frame rate.
        stats = self._stats(truth_known=False, truth_positive_generated=0, matched=3)
        assert controller._value(stats) == pytest.approx(0.3)

    def test_unknown_value_signal_rejected(self):
        from repro.control import SheddingConfig

        with pytest.raises(ValueError, match="value_signal"):
            SheddingConfig(value_signal="vibes")


class TestCameraAccuracy:
    def _camera(self, truth, predictions, **kwargs):
        defaults = dict(camera_id="cam", scenario="urban_day", task=TASK_PEDESTRIAN)
        defaults.update(kwargs)
        return CameraAccuracy(truth=truth, predictions=predictions, **defaults)

    def test_perfect_predictions(self):
        camera = self._camera([0, 1, 1, 0], [0, 1, 1, 0], frames_generated=4, frames_scored=4)
        assert camera.f1 == 1.0
        assert camera.num_events == 1
        assert camera.drop_rate == 0.0

    def test_missed_event_scores_zero_recall(self):
        camera = self._camera([0, 1, 1, 0], [0, 0, 0, 0], frames_generated=4, frames_scored=1)
        assert camera.recall == 0.0
        assert camera.f1 == 0.0
        assert camera.drop_rate == pytest.approx(0.75)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            self._camera([0, 1], [0, 1, 0])

    def test_stint_merge_ors_predictions(self):
        first = self._camera([0, 1, 1, 0], [0, 1, 0, 0], frames_generated=2, frames_scored=1)
        second = self._camera([0, 1, 1, 0], [0, 0, 1, 0], frames_generated=2, frames_scored=1)
        merged = first.merged_with(second)
        assert merged.predictions.tolist() == [0, 1, 1, 0]
        assert merged.frames_generated == 4
        assert merged.f1 == 1.0

    def test_stint_merge_rejects_truth_mismatch(self):
        first = self._camera([0, 1], [0, 1])
        second = self._camera([1, 1], [0, 1])
        with pytest.raises(ValueError, match="truth"):
            first.merged_with(second)

    def test_fleet_merge_handles_empty_and_mixed(self):
        assert FleetAccuracy.merged([None, None]) is None
        one = FleetAccuracy(TASK_PEDESTRIAN, {"cam": self._camera([0, 1], [0, 1])})
        other = FleetAccuracy("person_with_red", {})
        with pytest.raises(ValueError, match="task"):
            FleetAccuracy.merged([one, other])


@pytest.mark.slow
class TestShardedAccuracy:
    @pytest.fixture(scope="class")
    def cluster_report(self, models):
        cameras = tiny_fleet(4)
        config = ShardingConfig(
            num_nodes=2,
            placement="round_robin",
            node_config=FleetConfig(
                num_workers=1, service_time_scale=0.01, accuracy_task=ACCURACY.task
            ),
        )
        return ShardedFleetRuntime(
            cameras, config=config, pipeline_factory=models.pipeline_factory()
        ).run()

    def test_cluster_report_merges_node_accuracy(self, cluster_report):
        accuracy = cluster_report.accuracy
        assert accuracy is not None
        assert accuracy.num_cameras == 4
        node_macro = [n.report.accuracy.macro_f1 for n in cluster_report.nodes]
        cluster_mean = float(
            np.mean([c.f1 for c in accuracy.cameras.values()])
        )
        assert accuracy.macro_f1 == cluster_mean
        assert all(0.0 <= f1 <= 1.0 for f1 in node_macro)

    def test_cluster_summary_mentions_accuracy(self, cluster_report):
        assert "macro-F1" in cluster_report.summary()
