"""Drop-policy and admission-control semantics under overload."""

import numpy as np
import pytest

from repro.fleet.queues import AdmissionController, DropPolicy, FrameQueue
from repro.video.frame import Frame


def make_frame(index: int) -> Frame:
    return Frame(index=index, timestamp=index / 10.0, pixels=np.zeros((4, 4, 3), dtype=np.float32))


class TestFrameQueueBasics:
    def test_fifo_order(self):
        queue = FrameQueue("cam", capacity=4)
        for i in range(3):
            queue.offer(make_frame(i))
        assert [queue.pop().index for _ in range(3)] == [0, 1, 2]
        assert queue.pop() is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FrameQueue("cam", capacity=0)

    def test_high_water_mark(self):
        queue = FrameQueue("cam", capacity=8)
        for i in range(5):
            queue.offer(make_frame(i))
        queue.pop()
        queue.offer(make_frame(5))
        assert queue.stats.high_water == 5

    def test_peek_does_not_remove(self):
        queue = FrameQueue("cam", capacity=2)
        queue.offer(make_frame(7))
        assert queue.peek().index == 7
        assert queue.depth == 1


class TestDropPoliciesUnderOverload:
    def test_drop_oldest_keeps_freshest(self):
        queue = FrameQueue("cam", capacity=3, policy=DropPolicy.DROP_OLDEST)
        outcomes = [queue.offer(make_frame(i)) for i in range(10)]
        assert all(o.admitted for o in outcomes)
        evicted = [o.evicted.index for o in outcomes if o.evicted is not None]
        assert evicted == [0, 1, 2, 3, 4, 5, 6]
        assert queue.stats.dropped_oldest == 7
        assert queue.stats.dropped_newest == 0
        assert [queue.pop().index for _ in range(3)] == [7, 8, 9]

    def test_drop_newest_keeps_earliest(self):
        queue = FrameQueue("cam", capacity=3, policy=DropPolicy.DROP_NEWEST)
        outcomes = [queue.offer(make_frame(i)) for i in range(10)]
        assert [o.admitted for o in outcomes] == [True] * 3 + [False] * 7
        # The rejected frame comes back as "evicted" so the caller can account it.
        assert [o.evicted.index for o in outcomes[3:]] == list(range(3, 10))
        assert queue.stats.dropped_newest == 7
        assert queue.stats.dropped_oldest == 0
        assert [queue.pop().index for _ in range(3)] == [0, 1, 2]

    def test_block_admits_nothing_and_signals(self):
        queue = FrameQueue("cam", capacity=2, policy=DropPolicy.BLOCK)
        assert queue.offer(make_frame(0)).admitted
        assert queue.offer(make_frame(1)).admitted
        outcome = queue.offer(make_frame(2))
        assert not outcome.admitted and outcome.blocked and outcome.evicted is None
        assert queue.stats.blocked == 1
        assert queue.stats.dropped == 0
        # Space frees -> offers succeed again.
        queue.pop()
        assert queue.offer(make_frame(2)).admitted

    def test_stats_conservation(self):
        for policy in DropPolicy:
            queue = FrameQueue("cam", capacity=2, policy=policy)
            for i in range(9):
                queue.offer(make_frame(i))
            stats = queue.stats
            assert stats.offered == 9
            assert stats.admitted + stats.dropped_newest + stats.blocked == 9
            assert stats.admitted - stats.dropped_oldest == queue.depth


class TestAdmissionController:
    def test_budget_enforced(self):
        controller = AdmissionController(max_in_flight=2)
        assert controller.try_admit() and controller.try_admit()
        assert not controller.try_admit()
        assert controller.rejected == 1
        controller.release()
        assert controller.try_admit()
        assert controller.in_flight == 2
        assert controller.admitted == 3

    def test_release_without_admit_raises(self):
        controller = AdmissionController(max_in_flight=1)
        with pytest.raises(RuntimeError):
            controller.release()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=4, per_camera_quota=0)

    def test_per_camera_quota_enforced(self):
        controller = AdmissionController(max_in_flight=8, per_camera_quota=2)
        assert controller.try_admit("cam0") and controller.try_admit("cam0")
        # cam0 is at quota even though the node has headroom...
        assert not controller.try_admit("cam0")
        assert controller.rejected_over_quota == 1
        # ...while other cameras are still welcome.
        assert controller.try_admit("cam1")
        controller.release("cam0")
        assert controller.try_admit("cam0")
        assert controller.camera_in_flight("cam0") == 2
        assert controller.camera_in_flight("cam1") == 1

    def test_quota_requires_camera_id(self):
        controller = AdmissionController(max_in_flight=4, per_camera_quota=1)
        with pytest.raises(ValueError, match="camera_id"):
            controller.try_admit()
        controller.try_admit("cam0")
        with pytest.raises(ValueError, match="camera_id"):
            controller.release()

    def test_failed_release_leaves_state_intact(self):
        controller = AdmissionController(max_in_flight=4, per_camera_quota=2)
        controller.try_admit("cam0")
        with pytest.raises(RuntimeError):
            controller.release("cam1")
        # The failed release must not corrupt the node-wide count.
        assert controller.in_flight == 1
        controller.release("cam0")
        assert controller.in_flight == 0

    def test_release_unknown_camera_raises(self):
        controller = AdmissionController(max_in_flight=4, per_camera_quota=1)
        controller.try_admit("cam0")
        with pytest.raises(RuntimeError):
            controller.release("cam1")

    def test_node_budget_still_binds_under_quota(self):
        controller = AdmissionController(max_in_flight=2, per_camera_quota=2)
        assert controller.try_admit("cam0") and controller.try_admit("cam1")
        assert not controller.try_admit("cam2")
        assert controller.rejected_over_quota == 0
