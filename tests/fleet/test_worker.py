"""WorkerPool: phased service times, throughput estimates, telemetry.

Regression focus: :meth:`WorkerPool.estimated_throughput` must stay the
exact reciprocal of :meth:`WorkerPool.service_seconds_for` on *both*
schedule paths — the pool default and a per-resolution override installed
mid-run — with ``service_time_scale`` applied identically to each.
Previously only the flat-default ``capacity_fps`` existed, so any capacity
estimate made while resolution-scaled schedules were active silently used
the wrong service time.
"""

import pytest

from repro.fleet.runtime import resolution_scaled_schedule
from repro.fleet.telemetry import TelemetryRegistry
from repro.fleet.worker import WorkerPool, default_schedule


@pytest.fixture
def scaled_schedule():
    """A per-resolution schedule distinct from the paper default."""
    return resolution_scaled_schedule(default_schedule(), (96, 64))


class TestServiceSeconds:
    def test_default_schedule_path(self):
        pool = WorkerPool(num_workers=2, service_time_scale=0.5)
        assert pool.service_seconds_for() == pytest.approx(
            default_schedule().total_seconds * 0.5
        )
        assert pool.service_seconds_for(None) == pool.service_seconds

    def test_per_resolution_schedule_path(self, scaled_schedule):
        pool = WorkerPool(num_workers=2, service_time_scale=0.5)
        assert scaled_schedule.total_seconds != pytest.approx(
            default_schedule().total_seconds
        )
        assert pool.service_seconds_for(scaled_schedule) == pytest.approx(
            scaled_schedule.total_seconds * 0.5
        )

    def test_scale_applies_to_both_paths(self, scaled_schedule):
        flat = WorkerPool(num_workers=1, service_time_scale=1.0)
        scaled = WorkerPool(num_workers=1, service_time_scale=0.25)
        for schedule in (None, scaled_schedule):
            assert scaled.service_seconds_for(schedule) == pytest.approx(
                flat.service_seconds_for(schedule) * 0.25
            )


class TestEstimatedThroughput:
    def test_reciprocal_of_service_seconds_default_path(self):
        pool = WorkerPool(num_workers=3, service_time_scale=0.7)
        assert pool.estimated_throughput() == pytest.approx(
            pool.num_workers / pool.service_seconds_for()
        )
        assert pool.capacity_fps == pool.estimated_throughput()

    def test_reciprocal_of_service_seconds_resolution_path(self, scaled_schedule):
        """The regression: capacity estimates follow the installed schedule."""
        pool = WorkerPool(num_workers=3, service_time_scale=0.7)
        assert pool.estimated_throughput(scaled_schedule) == pytest.approx(
            pool.num_workers / pool.service_seconds_for(scaled_schedule)
        )
        # A 96x64 camera is far cheaper than the paper's 1080p reference, so
        # throughput must rise relative to the flat default — the estimate
        # may not silently fall back to the default schedule.
        assert pool.estimated_throughput(scaled_schedule) > pool.estimated_throughput()

    def test_scale_change_moves_throughput_consistently(self, scaled_schedule):
        fast = WorkerPool(num_workers=2, service_time_scale=0.1)
        slow = WorkerPool(num_workers=2, service_time_scale=1.0)
        for schedule in (None, scaled_schedule):
            assert fast.estimated_throughput(schedule) == pytest.approx(
                10.0 * slow.estimated_throughput(schedule)
            )

    def test_simulated_rate_matches_estimate(self, scaled_schedule):
        """Frames actually dispatched back-to-back achieve the estimate."""
        pool = WorkerPool(num_workers=1, service_time_scale=2.0)
        now = 0.0
        for _ in range(5):
            now = pool.start_frame(pool.workers[0], now, scaled_schedule)
        assert 5 / now == pytest.approx(pool.estimated_throughput(scaled_schedule))


class TestStartFrame:
    def test_occupies_worker_for_schedule_duration(self, scaled_schedule):
        pool = WorkerPool(num_workers=1, service_time_scale=1.0)
        worker = pool.workers[0]
        end = pool.start_frame(worker, 1.0, scaled_schedule)
        assert end == pytest.approx(1.0 + scaled_schedule.total_seconds)
        assert not worker.is_idle(end - 1e-9)
        assert worker.is_idle(end)

    def test_busy_worker_rejected(self):
        pool = WorkerPool(num_workers=1)
        pool.start_frame(pool.workers[0], 0.0)
        with pytest.raises(RuntimeError, match="busy"):
            pool.start_frame(pool.workers[0], 0.0)

    def test_phase_telemetry_scales_with_schedule(self, scaled_schedule):
        telemetry = TelemetryRegistry()
        pool = WorkerPool(num_workers=1, service_time_scale=0.5, telemetry=telemetry)
        pool.start_frame(pool.workers[0], 0.0, scaled_schedule)
        observed = telemetry.histogram("worker.service_seconds").values
        assert observed == (pytest.approx(scaled_schedule.total_seconds * 0.5),)
        per_phase = sum(
            telemetry.histogram(f"worker.phase_seconds.{phase.name}").total
            for phase in scaled_schedule.phases
        )
        assert per_phase == pytest.approx(observed[0])

    def test_utilization_counts_scaled_busy_seconds(self, scaled_schedule):
        pool = WorkerPool(num_workers=2, service_time_scale=1.0)
        end = pool.start_frame(pool.workers[0], 0.0, scaled_schedule)
        assert pool.utilization(2 * end) == pytest.approx(0.25)
        assert pool.frames_processed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(num_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(service_time_scale=0.0)
