"""Property: the hierarchy's aggregated cluster view equals the flat full merge.

The hierarchical control plane's scale contract is that the cluster only ever
sees fixed-size per-node aggregates — so these tests pin that nothing is lost
in the summary: for the same run, every rollup metric the coordinator derives
from aggregates must equal the value a flat full-registry merge would have
produced, and the sketch-derived queue-wait tail must track the exact
histogram within sketch tolerance.
"""

import pytest

from repro.control.hierarchy import HierarchicalControlPlane, QuantileSketch
from repro.fleet.camera import generate_fleet
from repro.fleet.runtime import FleetConfig
from repro.fleet.sharding import ShardedFleetRuntime, ShardingConfig
from repro.fleet.telemetry import TelemetryRegistry

FAST_NODE = FleetConfig(num_workers=2, queue_capacity=4, service_time_scale=0.05)

# Rollup gauge -> the node-registry counters it must equal the sum of.
ROLLUP_COUNTERS = {
    "cluster.frames.generated": ("frames.generated",),
    "cluster.frames.scored": ("frames.scored",),
    "cluster.frames.rejected": ("frames.rejected",),
    "cluster.frames.dropped": ("frames.dropped_oldest", "frames.dropped_newest"),
    "cluster.frames.matched": ("frames.matched",),
    "cluster.events.closed": ("events.closed",),
    "cluster.uplink.estimated_bits": ("uplink.estimated_bits",),
}


def run_cluster(seed):
    fleet = generate_fleet(
        8,
        seed=seed,
        duration_seconds=1.5,
        resolutions=((48, 32), (64, 48)),
        frame_rates=(4.0, 10.0),
    )
    config = ShardingConfig(
        num_nodes=2, node_config=FAST_NODE, uplink_sharing="work_conserving"
    )
    hierarchy = HierarchicalControlPlane()
    runtime = ShardedFleetRuntime(fleet, config=config, hierarchy=hierarchy)
    report = runtime.run()
    return runtime, report, hierarchy


@pytest.mark.parametrize("seed", [0, 7, 21, 42])
class TestAggregateViewEqualsFullMerge:
    def test_rollup_counters_match_flat_merge(self, seed):
        runtime, report, _ = run_cluster(seed)
        # The flat view: every node registry merged in full, as the
        # single-coordinator plane (and pre-hierarchy report path) built it.
        flat = TelemetryRegistry()
        for node_id in runtime.node_ids:
            flat.merge(runtime.nodes[node_id].telemetry, prefix=f"{node_id}.")
        flat_counters = flat.counters()
        for gauge_name, counter_names in ROLLUP_COUNTERS.items():
            flat_total = sum(
                flat_counters.get(f"{node_id}.{counter}", 0.0)
                for node_id in runtime.node_ids
                for counter in counter_names
            )
            assert report.telemetry[gauge_name]["value"] == pytest.approx(
                flat_total
            ), gauge_name

    def test_camera_count_matches(self, seed):
        runtime, report, _ = run_cluster(seed)
        assert report.telemetry["cluster.cameras"]["value"] == sum(
            len(runtime.nodes[n].camera_live_stats()) for n in runtime.node_ids
        )

    def test_merged_wait_sketch_tracks_exact_histogram(self, seed):
        runtime, _, hierarchy = run_cluster(seed)
        # Merge the final-interval sketches and compare against the exact
        # percentile over the same observations, pooled across nodes.
        merged = QuantileSketch()
        pooled = []
        for node_id in sorted(hierarchy.planes):
            aggregate = hierarchy.last_aggregates[node_id]
            merged = merged.merge(aggregate.window_wait_sketch)
            pooled.extend(v for v, w in aggregate.window_wait_sketch.centroids for _ in range(round(w)))
        if not pooled:
            assert merged.percentile(99) == 0.0
            return
        exact = QuantileSketch.from_values(pooled, max_centroids=len(pooled))
        spread = max(pooled) - min(pooled)
        assert merged.percentile(99) == pytest.approx(
            exact.percentile(99), abs=max(1e-9, 0.1 * spread)
        )


@pytest.mark.slow
class TestKilocameraSmoke:
    def test_1024_cameras_16_nodes_completes_with_bounded_payload(self):
        fleet = generate_fleet(
            1024,
            seed=11,
            duration_seconds=1.0,
            resolutions=((32, 32), (48, 32)),
            frame_rates=(2.0, 4.0),
            districts=16,
        )
        config = ShardingConfig(
            num_nodes=16,
            placement="district_aware",
            node_config=FleetConfig(
                num_workers=4, queue_capacity=8, service_time_scale=0.001
            ),
            uplink_sharing="work_conserving",
        )
        hierarchy = HierarchicalControlPlane()
        report = ShardedFleetRuntime(fleet, config=config, hierarchy=hierarchy).run()
        assert report.num_cameras == 1024
        assert report.num_nodes == 16
        assert report.frames_scored > 0
        # O(nodes) coordination: every tick's payload is bounded by a
        # per-node constant, independent of the 1024 cameras.
        assert max(report.coordination_payload_bytes) <= 16 * 4096
