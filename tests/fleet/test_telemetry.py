"""Telemetry counter/gauge/histogram accuracy and registry semantics."""

import pytest

from repro.fleet.telemetry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
    sanitize_metric_name,
)


class TestCounter:
    def test_accumulates_exactly(self):
        counter = Counter("frames")
        for _ in range(250):
            counter.inc()
        counter.inc(7)
        assert counter.value == 257

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("frames").inc(-1)


class TestGauge:
    def test_tracks_value_and_watermarks(self):
        gauge = Gauge("depth")
        for value in [3, 9, 1, 4]:
            gauge.set(value)
        assert gauge.value == 4
        assert gauge.min == 1
        assert gauge.max == 9

    def test_add_is_relative(self):
        gauge = Gauge("inflight")
        gauge.add(5)
        gauge.add(-2)
        assert gauge.value == 3

    def test_unset_gauge_reads_zero(self):
        gauge = Gauge("depth")
        assert gauge.value == 0.0 and gauge.min == 0.0 and gauge.max == 0.0


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram("latency")
        for value in [4.0, 1.0, 3.0, 2.0]:
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.mean == 2.5
        assert hist.min == 1.0 and hist.max == 4.0

    def test_percentiles_nearest_rank(self):
        hist = Histogram("latency")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(0) == 1.0

    def test_empty_histogram(self):
        hist = Histogram("latency")
        assert hist.mean == 0.0 and hist.percentile(50) == 0.0
        # The extreme quantiles are just as safe on an empty histogram.
        assert hist.percentile(0) == 0.0
        assert hist.percentile(100) == 0.0
        assert hist.min == 0.0 and hist.max == 0.0 and hist.total == 0.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            Histogram("latency").percentile(101)


class TestHistogramWindow:
    """Regression: histograms must not retain every observation forever."""

    def test_bounded_memory_over_long_run(self):
        hist = Histogram("latency", window=256)
        for i in range(100_000):
            hist.observe(i * 1e-4)
        # Retention is capped at the window; lifetime accounting stays exact.
        assert len(hist.values) == 256
        assert hist.count == 100_000
        assert hist.discarded == 100_000 - 256
        assert hist.total == pytest.approx(sum(i * 1e-4 for i in range(100_000)))
        assert hist.min == 0.0
        assert hist.max == pytest.approx(99_999 * 1e-4)
        assert hist.mean == pytest.approx(hist.total / 100_000)

    def test_percentile_since_exact_within_retained_window(self):
        hist = Histogram("latency", window=128)
        for i in range(1000):
            hist.observe(float(i))
        # The control contract: a window starting inside the retained tail
        # yields the exact nearest-rank percentile over that window.
        start = hist.count - 100
        assert hist.percentile_since(100, start) == 999.0
        assert hist.percentile_since(99, start) == 998.0
        assert hist.percentile_since(50, start) == 949.0
        assert hist.percentile_since(0, start) == 900.0

    def test_window_start_before_retention_clamps_to_tail(self):
        hist = Histogram("latency", window=8)
        for i in range(100):
            hist.observe(float(i))
        # start=0 predates retention: computed over what is still held.
        assert hist.percentile_since(0, 0) == 92.0
        assert hist.percentile_since(100, 0) == 99.0

    def test_global_percentile_uses_retained_tail(self):
        hist = Histogram("latency", window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            hist.observe(value)
        assert hist.percentile(100) == 6.0
        assert hist.percentile(0) == 3.0

    def test_merge_respects_destination_window(self):
        left = Histogram("latency", window=4)
        right = Histogram("latency", window=4)
        for value in (1.0, 2.0, 3.0):
            left.observe(value)
        for value in (4.0, 5.0, 6.0):
            right.observe(value)
        left.merge_from(right)
        assert left.count == 6
        assert left.total == 21.0
        assert len(left.values) == 4  # bounded by the destination's window
        assert left.values == (3.0, 4.0, 5.0, 6.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Histogram("latency", window=0)


class TestTelemetryRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = TelemetryRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_collision_across_types(self):
        registry = TelemetryRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_contains_everything(self):
        registry = TelemetryRegistry()
        registry.counter("frames.scored").inc(5)
        registry.gauge("queue.depth").set(3)
        registry.histogram("wait").observe(0.5)
        snap = registry.snapshot()
        assert snap["frames.scored"] == 5
        assert snap["queue.depth"]["value"] == 3
        assert snap["wait"]["count"] == 1

    def test_counters_prefix_filter(self):
        registry = TelemetryRegistry()
        registry.counter("frames.scored").inc(2)
        registry.counter("frames.dropped").inc(1)
        registry.counter("events.closed").inc(9)
        assert registry.counters("frames.") == {"frames.scored": 2, "frames.dropped": 1}

    def test_format_lines(self):
        registry = TelemetryRegistry()
        registry.counter("frames.scored").inc(2)
        lines = registry.format_lines()
        assert any("frames.scored" in line for line in lines)


class TestMergeAndWindows:
    def test_merge_counters_add_under_prefix(self):
        from repro.fleet.telemetry import TelemetryRegistry

        cluster = TelemetryRegistry()
        cluster.counter("node0.frames.scored").inc(5)
        node = TelemetryRegistry()
        node.counter("frames.scored").inc(3)
        node.counter("frames.dropped_oldest").inc(2)
        result = cluster.merge(node, prefix="node0.")
        assert result is cluster
        counters = cluster.counters()
        assert counters["node0.frames.scored"] == 8.0
        assert counters["node0.frames.dropped_oldest"] == 2.0

    def test_merge_histograms_concatenate_observations(self):
        from repro.fleet.telemetry import TelemetryRegistry

        a = TelemetryRegistry()
        b = TelemetryRegistry()
        for v in (0.1, 0.2):
            a.histogram("latency").observe(v)
        for v in (0.3, 0.4):
            b.histogram("latency").observe(v)
        a.merge(b)
        merged = a.histogram("latency")
        assert merged.count == 4
        assert merged.values == (0.1, 0.2, 0.3, 0.4)
        assert merged.percentile(100) == 0.4

    def test_merge_gauges_keep_watermarks_and_last_value(self):
        from repro.fleet.telemetry import TelemetryRegistry

        node = TelemetryRegistry()
        gauge = node.gauge("queue.depth")
        gauge.set(7.0)
        gauge.set(1.0)
        gauge.set(3.0)
        cluster = TelemetryRegistry()
        cluster.merge(node, prefix="node1.")
        merged = cluster.gauge("node1.queue.depth")
        assert merged.value == 3.0
        assert merged.min == 1.0
        assert merged.max == 7.0

    def test_merge_never_set_gauge_stays_unset_looking(self):
        from repro.fleet.telemetry import TelemetryRegistry

        node = TelemetryRegistry()
        node.gauge("idle")
        cluster = TelemetryRegistry()
        cluster.merge(node)
        assert cluster.gauge("idle").value == 0.0
        assert cluster.gauge("idle").min == 0.0

    def test_percentile_since_windows(self):
        from repro.fleet.telemetry import Histogram

        hist = Histogram("wait")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.percentile_since(50, 0) == 2.0
        assert hist.percentile_since(99, 2) == 4.0
        assert hist.percentile_since(99, 4) == 0.0  # empty window
        with pytest.raises(ValueError):
            hist.percentile_since(99, -1)
        with pytest.raises(ValueError):
            hist.percentile_since(101, 0)

    def test_percentile_since_edge_windows(self):
        from repro.fleet.telemetry import Histogram

        hist = Histogram("wait")
        # Empty histogram: any start, any quantile -> 0.0.
        assert hist.percentile_since(99, 0) == 0.0
        assert hist.percentile_since(0, 5) == 0.0
        for v in (3.0, 1.0, 2.0):
            hist.observe(v)
        # start past the end is an empty window, not an error — a control
        # loop whose previous tick saw the same count lands exactly here.
        assert hist.percentile_since(99, 3) == 0.0
        assert hist.percentile_since(99, 17) == 0.0
        # q = 0 is the window minimum, q = 100 the maximum (nearest rank).
        assert hist.percentile_since(0, 0) == 1.0
        assert hist.percentile_since(100, 0) == 3.0
        assert hist.percentile_since(0, 1) == 1.0  # window (1.0, 2.0)
        assert hist.percentile_since(100, 1) == 2.0
        # Single-element window: every quantile is that element.
        assert hist.percentile_since(0, 2) == 2.0
        assert hist.percentile_since(50, 2) == 2.0
        assert hist.percentile_since(100, 2) == 2.0

    def test_merge_watermarks_survive_chained_merges(self):
        # node -> region -> cluster: min/max watermarks must carry through
        # every hop, not just the first merge.
        node = TelemetryRegistry()
        gauge = node.gauge("queue.depth")
        gauge.set(9.0)
        gauge.set(2.0)
        region = TelemetryRegistry().merge(node, prefix="node0.")
        cluster = TelemetryRegistry().merge(region)
        merged = cluster.gauge("node0.queue.depth")
        assert merged.value == 2.0
        assert merged.min == 2.0
        assert merged.max == 9.0


class TestSanitizeMetricName:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("frames.dropped.oldest") == "frames_dropped_oldest"
        assert sanitize_metric_name("queue.depth.cam-007") == "queue_depth_cam_007"

    def test_leading_digit_and_empty_get_prefixed(self):
        assert sanitize_metric_name("7zip") == "_7zip"
        assert sanitize_metric_name("") == "_"

    def test_valid_names_pass_through(self):
        assert sanitize_metric_name("frames_scored_total") == "frames_scored_total"
        assert sanitize_metric_name("node:uplink_bits") == "node:uplink_bits"


class TestPrometheusExport:
    def _registry(self) -> TelemetryRegistry:
        registry = TelemetryRegistry()
        registry.counter("frames.scored").inc(12)
        registry.gauge("queue.depth").set(3.0)
        for value in (0.1, 0.2, 0.3, 0.4):
            registry.histogram("queue.wait").observe(value)
        return registry

    def test_counter_family_format(self):
        text = self._registry().to_prometheus()
        assert "# HELP frames_scored_total Telemetry counter 'frames.scored'." in text
        assert "# TYPE frames_scored_total counter" in text
        assert "frames_scored_total 12" in text

    def test_gauge_family_format(self):
        text = self._registry().to_prometheus()
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 3" in text

    def test_histogram_becomes_summary_with_quantiles(self):
        text = self._registry().to_prometheus()
        assert "# TYPE queue_wait summary" in text
        assert 'queue_wait{quantile="0.5"} 0.2' in text
        assert 'queue_wait{quantile="0.99"} 0.4' in text
        assert "queue_wait_sum 1" in text
        assert "queue_wait_count 4" in text

    def test_labels_attach_to_every_sample_line(self):
        text = self._registry().to_prometheus(labels={"node": "node0"})
        assert 'frames_scored_total{node="node0"} 12' in text
        assert 'queue_depth{node="node0"} 3' in text
        # Extra labels merge with the quantile label, sorted by key.
        assert 'queue_wait{node="node0",quantile="0.5"} 0.2' in text
        assert 'queue_wait_count{node="node0"} 4' in text

    def test_empty_registry_exports_empty_string(self):
        assert TelemetryRegistry().to_prometheus() == ""

    def test_export_ends_with_newline_and_is_deterministic(self):
        first = self._registry().to_prometheus()
        second = self._registry().to_prometheus()
        assert first == second
        assert first.endswith("\n")
