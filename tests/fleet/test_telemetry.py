"""Telemetry counter/gauge/histogram accuracy and registry semantics."""

import pytest

from repro.fleet.telemetry import Counter, Gauge, Histogram, TelemetryRegistry


class TestCounter:
    def test_accumulates_exactly(self):
        counter = Counter("frames")
        for _ in range(250):
            counter.inc()
        counter.inc(7)
        assert counter.value == 257

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("frames").inc(-1)


class TestGauge:
    def test_tracks_value_and_watermarks(self):
        gauge = Gauge("depth")
        for value in [3, 9, 1, 4]:
            gauge.set(value)
        assert gauge.value == 4
        assert gauge.min == 1
        assert gauge.max == 9

    def test_add_is_relative(self):
        gauge = Gauge("inflight")
        gauge.add(5)
        gauge.add(-2)
        assert gauge.value == 3

    def test_unset_gauge_reads_zero(self):
        gauge = Gauge("depth")
        assert gauge.value == 0.0 and gauge.min == 0.0 and gauge.max == 0.0


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram("latency")
        for value in [4.0, 1.0, 3.0, 2.0]:
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.mean == 2.5
        assert hist.min == 1.0 and hist.max == 4.0

    def test_percentiles_nearest_rank(self):
        hist = Histogram("latency")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(0) == 1.0

    def test_empty_histogram(self):
        hist = Histogram("latency")
        assert hist.mean == 0.0 and hist.percentile(50) == 0.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            Histogram("latency").percentile(101)


class TestTelemetryRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = TelemetryRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_collision_across_types(self):
        registry = TelemetryRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_contains_everything(self):
        registry = TelemetryRegistry()
        registry.counter("frames.scored").inc(5)
        registry.gauge("queue.depth").set(3)
        registry.histogram("wait").observe(0.5)
        snap = registry.snapshot()
        assert snap["frames.scored"] == 5
        assert snap["queue.depth"]["value"] == 3
        assert snap["wait"]["count"] == 1

    def test_counters_prefix_filter(self):
        registry = TelemetryRegistry()
        registry.counter("frames.scored").inc(2)
        registry.counter("frames.dropped").inc(1)
        registry.counter("events.closed").inc(9)
        assert registry.counters("frames.") == {"frames.scored": 2, "frames.dropped": 1}

    def test_format_lines(self):
        registry = TelemetryRegistry()
        registry.counter("frames.scored").inc(2)
        lines = registry.format_lines()
        assert any("frames.scored" in line for line in lines)
