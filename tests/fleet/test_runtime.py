"""End-to-end fleet runtime: scheduling, shedding, telemetry, reporting."""

import pytest

from repro.fleet.camera import CameraSpec
from repro.fleet.queues import DropPolicy
from repro.fleet.runtime import FleetConfig, FleetRuntime, default_pipeline_factory
from repro.fleet.worker import WorkerPool, default_schedule


def tiny_fleet(num_cameras=3, num_frames=10, frame_rate=10.0, **spec_kwargs):
    scenarios = ["urban_day", "busy_intersection", "quiet_residential", "night_watch"]
    return [
        CameraSpec(
            camera_id=f"cam{i:02d}",
            width=32,
            height=32,
            frame_rate=frame_rate,
            num_frames=num_frames,
            scenario=scenarios[i % len(scenarios)],
            seed=i,
            **spec_kwargs,
        )
        for i in range(num_cameras)
    ]


def run_fleet(cameras, **config_kwargs):
    config = FleetConfig(**config_kwargs)
    runtime = FleetRuntime(cameras, config=config)
    return runtime.run()


class TestWorkerPool:
    def test_phased_schedule_service_time(self):
        pool = WorkerPool(num_workers=2, service_time_scale=0.5)
        assert pool.service_seconds == pytest.approx(default_schedule().total_seconds * 0.5)
        worker = pool.idle_worker(0.0)
        end = pool.start_frame(worker, 0.0)
        assert end == pytest.approx(pool.service_seconds)
        assert not worker.is_idle(end - 1e-6)
        assert worker.is_idle(end)

    def test_busy_worker_cannot_start(self):
        pool = WorkerPool(num_workers=1)
        worker = pool.workers[0]
        pool.start_frame(worker, 0.0)
        with pytest.raises(RuntimeError):
            pool.start_frame(worker, 0.0)

    def test_utilization(self):
        pool = WorkerPool(num_workers=2, service_time_scale=1.0)
        pool.start_frame(pool.workers[0], 0.0)
        duration = pool.service_seconds * 2
        assert pool.utilization(duration) == pytest.approx(0.25)


class TestFleetRuntime:
    def test_underload_scores_everything(self):
        report = run_fleet(
            tiny_fleet(2, num_frames=8, frame_rate=5.0),
            num_workers=2,
            service_time_scale=0.05,
        )
        assert report.frames_generated == 16
        assert report.frames_scored == 16
        assert report.frames_dropped == 0
        assert report.drop_rate == 0.0
        assert report.worker_utilization > 0

    def test_overload_sheds_load(self):
        report = run_fleet(
            tiny_fleet(4, num_frames=12, frame_rate=15.0),
            num_workers=1,
            queue_capacity=2,
            service_time_scale=1.0,
        )
        assert report.frames_dropped > 0
        assert 0.0 < report.drop_rate < 1.0
        assert report.frames_scored + report.frames_dropped == report.frames_generated
        # Every camera still made some progress (round-robin fairness).
        assert all(c.frames_scored > 0 for c in report.cameras.values())

    def test_conservation_invariant(self):
        report = run_fleet(
            tiny_fleet(3, num_frames=10),
            num_workers=2,
            queue_capacity=3,
            service_time_scale=0.4,
        )
        for camera in report.cameras.values():
            assert (
                camera.frames_scored + camera.frames_dropped + camera.frames_rejected
                == camera.frames_generated
            )

    def test_deterministic(self):
        kwargs = dict(num_workers=2, queue_capacity=2, service_time_scale=0.6)
        first = run_fleet(tiny_fleet(3, num_frames=9), **kwargs)
        second = run_fleet(tiny_fleet(3, num_frames=9), **kwargs)
        assert first.frames_scored == second.frames_scored
        assert first.frames_dropped == second.frames_dropped
        assert first.total_uploaded_bits == second.total_uploaded_bits
        assert first.telemetry == second.telemetry

    def test_block_policy_never_drops(self):
        report = run_fleet(
            tiny_fleet(2, num_frames=10, frame_rate=15.0),
            num_workers=1,
            queue_capacity=2,
            drop_policy=DropPolicy.BLOCK,
            service_time_scale=0.5,
        )
        assert report.frames_dropped == 0
        # Backpressure stalls the source instead; every frame is eventually scored.
        assert report.frames_scored == report.frames_generated
        assert any(c.frames_blocked > 0 for c in report.cameras.values())

    def test_admission_control_rejects_over_budget(self):
        report = run_fleet(
            tiny_fleet(3, num_frames=12, frame_rate=15.0),
            num_workers=1,
            queue_capacity=4,
            max_in_flight=3,
            service_time_scale=1.0,
        )
        assert report.frames_rejected > 0
        assert (
            report.frames_scored + report.frames_dropped + report.frames_rejected
            == report.frames_generated
        )

    def test_telemetry_counters_match_report(self):
        report = run_fleet(
            tiny_fleet(3, num_frames=8, frame_rate=12.0),
            num_workers=1,
            queue_capacity=2,
            service_time_scale=0.8,
        )
        assert report.telemetry["frames.generated"] == report.frames_generated
        assert report.telemetry["frames.scored"] == report.frames_scored
        dropped = report.telemetry.get("frames.dropped_oldest", 0) + report.telemetry.get(
            "frames.dropped_newest", 0
        )
        assert dropped == report.frames_dropped
        assert "worker.service_seconds" in report.telemetry
        assert report.telemetry["worker.service_seconds"]["count"] == report.frames_scored

    def test_report_structure_and_summary(self):
        report = run_fleet(tiny_fleet(2, num_frames=6), num_workers=2, service_time_scale=0.1)
        assert report.num_cameras == 2
        assert set(report.cameras) == {"cam00", "cam01"}
        assert report.sim_duration > 0
        assert report.uplink_backlog_seconds >= 0.0
        summary = report.summary()
        assert "2 cameras" in summary and "fps" in summary

    def test_uplink_accounting_consistent(self):
        report = run_fleet(
            tiny_fleet(2, num_frames=10),
            num_workers=2,
            service_time_scale=0.05,
            uplink_capacity_bps=5_000.0,
        )
        per_camera = sum(c.uploaded_bits for c in report.cameras.values())
        assert report.total_uploaded_bits == pytest.approx(per_camera)
        if report.total_uploaded_bits > 0:
            assert report.uplink_utilization > 0

    def test_block_policy_wait_clock_starts_at_arrival(self):
        """Backlogged frames count their wait from first arrival, not drain time."""
        cameras = tiny_fleet(1, num_frames=6, frame_rate=30.0)
        runtime = FleetRuntime(
            cameras,
            config=FleetConfig(
                num_workers=1,
                queue_capacity=1,
                drop_policy=DropPolicy.BLOCK,
                service_time_scale=1.0,
            ),
        )
        report = runtime.run()
        camera = report.cameras["cam00"]
        service = runtime.workers.service_seconds
        # All six frames arrive within 0.2s but are scored serially one
        # service time apart, so waits accumulate to ~service * (n-1)/2 on
        # average — well above the single service time a drain-time wait
        # clock would report.
        assert camera.mean_queue_wait_seconds > service

    def test_event_uploads_wait_for_scoring(self):
        """Under overload, events reach the uplink only after their frames are scored."""
        cameras = tiny_fleet(2, num_frames=10, frame_rate=15.0)
        runtime = FleetRuntime(
            cameras,
            pipeline_factory=default_pipeline_factory(threshold=0.01),
            config=FleetConfig(num_workers=1, queue_capacity=3, service_time_scale=1.0),
        )
        runtime.run()
        transfers = runtime.uplink.transfers
        assert transfers  # threshold 0.01 matches every scored frame
        for transfer in transfers:
            camera_id = transfer.description.split("/")[0]
            completions = runtime._states[camera_id].completion_times
            # The all-matching event closes at end of stream, long after the
            # feed itself ended; the upload cannot start before the camera's
            # last frame was scored.
            assert transfer.start_time >= completions[-1] - 1e-9

    def test_duplicate_camera_ids_rejected(self):
        cameras = tiny_fleet(2)
        with pytest.raises(ValueError, match="Duplicate"):
            FleetRuntime([cameras[0], cameras[0]])

    def test_requires_cameras(self):
        with pytest.raises(ValueError):
            FleetRuntime([])

    def test_per_camera_quota_improves_fairness(self):
        """A high-rate camera cannot monopolize the in-flight budget under quota."""
        cameras = [
            CameraSpec("hog", 32, 32, frame_rate=30.0, num_frames=30, scenario="urban_day"),
            CameraSpec("meek", 32, 32, frame_rate=5.0, num_frames=5, scenario="night_watch"),
        ]
        kwargs = dict(num_workers=1, queue_capacity=4, max_in_flight=4, service_time_scale=1.0)
        unfair = run_fleet(cameras, **kwargs)
        fair = run_fleet(cameras, per_camera_quota=2, **kwargs)
        assert fair.fairness_index >= unfair.fairness_index
        assert fair.cameras["meek"].frames_scored >= unfair.cameras["meek"].frames_scored
        assert fair.telemetry["admission.rejected_over_quota"]["value"] > 0

    def test_quota_without_node_budget(self):
        report = run_fleet(
            tiny_fleet(2, num_frames=12, frame_rate=15.0),
            num_workers=1,
            queue_capacity=2,
            per_camera_quota=3,
            service_time_scale=1.0,
        )
        assert report.frames_rejected > 0
        assert (
            report.frames_scored + report.frames_dropped + report.frames_rejected
            == report.frames_generated
        )

    def test_starvation_gauge_tracks_unscored_cameras(self):
        report = run_fleet(
            tiny_fleet(3, num_frames=8, frame_rate=12.0),
            num_workers=1,
            queue_capacity=2,
            service_time_scale=0.8,
        )
        gauge = report.telemetry["fairness.starved_cameras"]
        # Before any frame completes every arriving camera counts as starved;
        # by the end of this run each camera has scored something.
        assert gauge["max"] >= 1
        assert gauge["value"] == report.starved_cameras == 0

    def test_fairness_index_bounds(self):
        report = run_fleet(tiny_fleet(3, num_frames=6), num_workers=2, service_time_scale=0.05)
        assert report.fairness_index == pytest.approx(1.0)
        overloaded = run_fleet(
            tiny_fleet(4, num_frames=12, frame_rate=15.0),
            num_workers=1,
            queue_capacity=2,
            service_time_scale=1.0,
        )
        assert 1.0 / overloaded.num_cameras <= overloaded.fairness_index <= 1.0

    def test_injected_uplink_is_used(self):
        from repro.edge.uplink import ConstrainedUplink

        link = ConstrainedUplink(123_456.0)
        runtime = FleetRuntime(
            tiny_fleet(2, num_frames=5),
            config=FleetConfig(num_workers=2, service_time_scale=0.05),
            uplink=link,
        )
        runtime.run()
        assert runtime.uplink is link

    def test_shared_base_dnn_across_same_resolution(self):
        factory = default_pipeline_factory()
        specs = tiny_fleet(2)
        first = factory(specs[0])
        second = factory(specs[1])
        assert first.extractor.base_dnn is second.extractor.base_dnn
        assert first.extractor is not second.extractor

    def test_live_upload_estimate_tracks_matches(self):
        # Event-dense content at a generous capacity: matches happen, and
        # every match adds ~bitrate/frame_rate estimated bits, per camera
        # and node-wide, while the run is still in flight.  Snapshot the
        # live stats before finalize(): the end-of-run flush finalizes a
        # few more matches (smoothing lookahead) that no live tick ever saw.
        runtime = FleetRuntime(
            tiny_fleet(3),
            config=FleetConfig(num_workers=2, service_time_scale=0.01),
        )
        runtime.start()
        runtime.advance_until(float("inf"))
        stats = runtime.camera_live_stats()
        total = sum(s.estimated_upload_bits for s in stats.values())
        counter = runtime.telemetry.counters().get("uplink.estimated_bits", 0.0)
        assert counter == pytest.approx(total)
        assert total > 0.0  # event-dense scenarios match during the run
        for s in stats.values():
            # Per-frame estimate: matched frames * bitrate / frame_rate.
            assert s.estimated_upload_bits == pytest.approx(
                s.matched * 12_000.0 / s.frame_rate
            )
            if s.scored:
                assert s.upload_bits_per_scored_frame == pytest.approx(
                    s.estimated_upload_bits / s.scored
                )
        runtime.finalize()

    def test_live_stats_expose_session_threshold(self):
        runtime = FleetRuntime(
            tiny_fleet(2, num_frames=5),
            config=FleetConfig(num_workers=2, service_time_scale=0.05),
        )
        runtime.run()
        for stats in runtime.camera_live_stats().values():
            assert stats.threshold == pytest.approx(0.6)  # factory default
