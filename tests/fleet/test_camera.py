"""Camera specs, scenarios, and the synthetic fleet generator."""

import pytest

from repro.fleet.camera import SCENARIOS, CameraFeed, CameraSpec, generate_fleet


class TestCameraSpec:
    def test_scene_config_applies_scenario_and_scale(self):
        spec = CameraSpec("cam", 64, 48, 10.0, 40, scenario="busy_intersection", event_rate_scale=2.0)
        config = spec.scene_config()
        assert config.pedestrian_rate == pytest.approx(
            SCENARIOS["busy_intersection"]["pedestrian_rate"] * 2.0
        )
        assert (config.width, config.height) == (64, 48)
        assert config.num_frames == 40

    def test_night_flag(self):
        assert CameraSpec("n", 64, 48, 10.0, 10, scenario="night_watch").is_night
        assert not CameraSpec("d", 64, 48, 10.0, 10, scenario="urban_day").is_night

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="Unknown scenario"):
            CameraSpec("cam", 64, 48, 10.0, 40, scenario="volcano")

    def test_duration(self):
        spec = CameraSpec("cam", 64, 48, 8.0, 16)
        assert spec.duration == 2.0


class TestCameraFeed:
    def test_arrivals_are_monotonic_and_complete(self):
        spec = CameraSpec("cam", 32, 32, 10.0, 12, seed=5, start_time=0.5)
        feed = CameraFeed(spec)
        arrivals = list(feed.arrivals())
        assert len(arrivals) == 12
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        assert times[0] == pytest.approx(0.5 + 0.1)
        assert [f.index for _, f in arrivals] == list(range(12))

    def test_stream_rendered_once(self):
        feed = CameraFeed(CameraSpec("cam", 32, 32, 10.0, 4, seed=1))
        assert feed.stream is feed.stream


class TestGenerateFleet:
    def test_deterministic_for_seed(self):
        assert generate_fleet(8, seed=3) == generate_fleet(8, seed=3)
        assert generate_fleet(8, seed=3) != generate_fleet(8, seed=4)

    def test_covers_all_scenarios_and_diverse_shapes(self):
        fleet = generate_fleet(len(SCENARIOS) * 2, seed=0)
        assert {spec.scenario for spec in fleet} == set(SCENARIOS)
        assert len({spec.resolution for spec in fleet}) > 1
        assert len({spec.frame_rate for spec in fleet}) > 1
        assert len({spec.camera_id for spec in fleet}) == len(fleet)

    def test_num_frames_match_duration(self):
        for spec in generate_fleet(6, seed=2, duration_seconds=3.0):
            assert spec.num_frames == pytest.approx(3.0 * spec.frame_rate, abs=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_fleet(0)
        with pytest.raises(ValueError):
            generate_fleet(4, scenarios=["volcano"])


class TestDistricts:
    def test_district_prefixes_are_contiguous_blocks(self):
        from repro.fleet.camera import district_of

        fleet = generate_fleet(16, seed=0, districts=4)
        prefixes = [district_of(spec.camera_id) for spec in fleet]
        assert prefixes == sorted(prefixes)  # contiguous in generation order
        assert set(prefixes) == {"d00", "d01", "d02", "d03"}
        assert all(prefixes.count(d) == 4 for d in set(prefixes))

    def test_uneven_split_distributes_remainder(self):
        from collections import Counter

        from repro.fleet.camera import district_of

        fleet = generate_fleet(10, seed=0, districts=3)
        sizes = sorted(Counter(district_of(s.camera_id) for s in fleet).values())
        assert sizes == [3, 3, 4]

    def test_each_district_leans_on_a_primary_scenario(self):
        from collections import Counter

        from repro.fleet.camera import district_of

        fleet = generate_fleet(24, seed=1, districts=2)
        names = sorted(SCENARIOS)
        for d in range(2):
            scenarios = [
                s.scenario for s in fleet if district_of(s.camera_id) == f"d{d:02d}"
            ]
            primary, count = Counter(scenarios).most_common(1)[0]
            assert primary == names[d % len(names)]
            assert count > len(scenarios) // 3  # dominant, not exclusive
            assert len(set(scenarios)) > 1  # still diverse

    def test_random_draws_unchanged_by_districting(self):
        districted = generate_fleet(12, seed=5, districts=3)
        flat = generate_fleet(12, seed=5)
        key = lambda s: (s.width, s.height, s.frame_rate, s.seed, s.start_time)
        assert [key(s) for s in districted] == [key(s) for s in flat]

    def test_district_of_parses_generated_ids_only(self):
        from repro.fleet.camera import district_of

        assert district_of("d03-cam0042") == "d03"
        assert district_of("cam007") is None
        assert district_of("depot-cam1") is None

    def test_validation(self):
        with pytest.raises(ValueError, match="districts"):
            generate_fleet(4, districts=0)
        with pytest.raises(ValueError, match="districts"):
            generate_fleet(4, districts=5)
