"""Camera specs, scenarios, and the synthetic fleet generator."""

import pytest

from repro.fleet.camera import SCENARIOS, CameraFeed, CameraSpec, generate_fleet


class TestCameraSpec:
    def test_scene_config_applies_scenario_and_scale(self):
        spec = CameraSpec("cam", 64, 48, 10.0, 40, scenario="busy_intersection", event_rate_scale=2.0)
        config = spec.scene_config()
        assert config.pedestrian_rate == pytest.approx(
            SCENARIOS["busy_intersection"]["pedestrian_rate"] * 2.0
        )
        assert (config.width, config.height) == (64, 48)
        assert config.num_frames == 40

    def test_night_flag(self):
        assert CameraSpec("n", 64, 48, 10.0, 10, scenario="night_watch").is_night
        assert not CameraSpec("d", 64, 48, 10.0, 10, scenario="urban_day").is_night

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="Unknown scenario"):
            CameraSpec("cam", 64, 48, 10.0, 40, scenario="volcano")

    def test_duration(self):
        spec = CameraSpec("cam", 64, 48, 8.0, 16)
        assert spec.duration == 2.0


class TestCameraFeed:
    def test_arrivals_are_monotonic_and_complete(self):
        spec = CameraSpec("cam", 32, 32, 10.0, 12, seed=5, start_time=0.5)
        feed = CameraFeed(spec)
        arrivals = list(feed.arrivals())
        assert len(arrivals) == 12
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        assert times[0] == pytest.approx(0.5 + 0.1)
        assert [f.index for _, f in arrivals] == list(range(12))

    def test_stream_rendered_once(self):
        feed = CameraFeed(CameraSpec("cam", 32, 32, 10.0, 4, seed=1))
        assert feed.stream is feed.stream


class TestGenerateFleet:
    def test_deterministic_for_seed(self):
        assert generate_fleet(8, seed=3) == generate_fleet(8, seed=3)
        assert generate_fleet(8, seed=3) != generate_fleet(8, seed=4)

    def test_covers_all_scenarios_and_diverse_shapes(self):
        fleet = generate_fleet(len(SCENARIOS) * 2, seed=0)
        assert {spec.scenario for spec in fleet} == set(SCENARIOS)
        assert len({spec.resolution for spec in fleet}) > 1
        assert len({spec.frame_rate for spec in fleet}) > 1
        assert len({spec.camera_id for spec in fleet}) == len(fleet)

    def test_num_frames_match_duration(self):
        for spec in generate_fleet(6, seed=2, duration_seconds=3.0):
            assert spec.num_frames == pytest.approx(3.0 * spec.frame_rate, abs=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_fleet(0)
        with pytest.raises(ValueError):
            generate_fleet(4, scenarios=["volcano"])
