"""Incremental runtime execution: stepping, actuators, handoff, scaling."""

import math

import pytest

from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    FleetRuntime,
    resolution_scaled_schedule,
)
from repro.fleet.worker import default_schedule
from repro.perf.cost_model import CostModel

FAST = FleetConfig(num_workers=2, queue_capacity=4, service_time_scale=0.05)


def cameras(n=3, frame_rate=8.0, duration=1.5, width=48, height=32):
    return [
        CameraSpec(
            camera_id=f"cam{i:03d}",
            width=width,
            height=height,
            frame_rate=frame_rate,
            num_frames=int(frame_rate * duration),
            scenario="urban_day",
            seed=i,
        )
        for i in range(n)
    ]


class TestStepping:
    def test_stepped_run_matches_one_shot_run(self):
        one_shot = FleetRuntime(cameras(), config=FAST).run()
        stepped_rt = FleetRuntime(cameras(), config=FAST)
        stepped_rt.start()
        t = 0.0
        while stepped_rt.has_pending_events:
            t += 0.3
            stepped_rt.advance_until(t)
        stepped = stepped_rt.finalize()
        assert stepped.frames_scored == one_shot.frames_scored
        assert stepped.frames_dropped == one_shot.frames_dropped
        assert stepped.telemetry == one_shot.telemetry
        assert stepped.sim_duration == one_shot.sim_duration

    def test_advance_until_is_time_bounded(self):
        runtime = FleetRuntime(cameras(duration=2.0), config=FAST)
        runtime.start()
        runtime.advance_until(0.5)
        assert runtime.has_pending_events
        next_time = runtime.next_event_time()
        assert next_time is not None and next_time > 0.5

    def test_lifecycle_guards(self):
        runtime = FleetRuntime(cameras(), config=FAST)
        with pytest.raises(RuntimeError, match="start"):
            runtime.advance_until(1.0)
        with pytest.raises(RuntimeError, match="start"):
            runtime.finalize()
        runtime.start()
        with pytest.raises(RuntimeError, match="once"):
            runtime.start()
        with pytest.raises(RuntimeError, match="pending"):
            runtime.finalize()
        runtime.advance_until(math.inf)
        runtime.finalize()
        with pytest.raises(RuntimeError, match="once"):
            runtime.finalize()

    def test_horizon_covers_every_feed(self):
        runtime = FleetRuntime(cameras(duration=1.5), config=FAST)
        assert runtime.horizon == 0.0  # nothing installed before start
        runtime.start()
        assert runtime.horizon == pytest.approx(1.5)


class TestActuators:
    def test_set_drop_policy_live(self):
        runtime = FleetRuntime(cameras(), config=FAST)
        runtime.start()
        runtime.set_drop_policy("cam000", DropPolicy.DROP_NEWEST)
        assert runtime._states["cam000"].queue.policy is DropPolicy.DROP_NEWEST
        with pytest.raises(ValueError, match="not active"):
            runtime.set_drop_policy("cam999", DropPolicy.BLOCK)

    def test_quota_mid_run_without_prior_admission(self):
        """Installing admission control mid-run must not unbalance releases."""
        runtime = FleetRuntime(cameras(frame_rate=12.0, duration=2.0), config=FAST)
        runtime.start()
        runtime.advance_until(1.0)  # frames already in flight, no admission yet
        runtime.set_camera_quota("cam000", 1)
        runtime.advance_until(math.inf)
        report = runtime.finalize()
        assert runtime.admission is not None
        assert runtime.admission.quota_for("cam000") == 1
        assert (
            report.frames_scored + report.frames_dropped + report.frames_rejected
            == report.frames_generated
        )

    def test_live_stats_shape(self):
        runtime = FleetRuntime(cameras(), config=FAST)
        runtime.start()
        runtime.advance_until(0.5)
        stats = runtime.camera_live_stats()
        assert sorted(stats) == ["cam000", "cam001", "cam002"]
        assert all(s.generated >= s.scored for s in stats.values())
        assert all(s.service_seconds > 0 for s in stats.values())


class TestHandoff:
    def test_detach_then_attach_conserves_frames(self):
        source = FleetRuntime(cameras(n=2, frame_rate=10.0, duration=2.0), config=FAST)
        destination = FleetRuntime(cameras(n=1, frame_rate=2.0, duration=2.0), config=FAST)
        # Rename the destination's own camera to avoid id collision.
        destination.cameras[0] = CameraSpec(
            camera_id="dst000", width=48, height=32, frame_rate=2.0,
            num_frames=4, scenario="urban_day", seed=9,
        )
        source.start()
        destination.start()
        source.advance_until(1.0)
        destination.advance_until(1.0)
        handoff = source.detach_camera("cam001", 1.0)
        destination.attach_camera(handoff, 1.0, resume_time=1.25)
        source.advance_until(math.inf)
        destination.advance_until(math.inf)
        src_report = source.finalize()
        dst_report = destination.finalize()
        total_offered = sum(s.num_frames for s in source.cameras) + 4
        assert (
            src_report.frames_generated + dst_report.frames_generated == total_offered
        )
        # The migrated camera shows up in both reports with partial counts.
        assert "cam001" in src_report.cameras and "cam001" in dst_report.cameras
        moved = dst_report.cameras["cam001"]
        assert moved.frames_generated > 0
        # Blackout frames were charged as rejected on the destination.
        blackout = sum(
            1 for t, _ in handoff.feed.arrivals() if 1.0 < t < 1.25
        )
        assert moved.frames_rejected >= blackout
        assert (
            dst_report.frames_scored
            + dst_report.frames_dropped
            + dst_report.frames_rejected
            == dst_report.frames_generated
        )

    def test_detach_clears_quota_override(self):
        runtime = FleetRuntime(cameras(), config=FAST)
        runtime.start()
        runtime.set_camera_quota("cam000", 1)
        handoff = runtime.detach_camera("cam000", 0.5)
        assert runtime.admission.quota_for("cam000") is None
        runtime.attach_camera(handoff, 0.6, resume_time=0.6)
        assert runtime.admission.quota_for("cam000") is None

    def test_detach_requires_active_camera(self):
        runtime = FleetRuntime(cameras(), config=FAST)
        runtime.start()
        runtime.detach_camera("cam000", 0.5)
        with pytest.raises(ValueError, match="not active"):
            runtime.detach_camera("cam000", 0.6)
        assert runtime.hosted_cameras() == ["cam001", "cam002"]

    def test_attach_rejects_duplicates_and_bad_resume(self):
        runtime = FleetRuntime(cameras(), config=FAST)
        runtime.start()
        handoff = runtime.detach_camera("cam000", 0.5)
        with pytest.raises(ValueError, match="precede"):
            runtime.attach_camera(handoff, 0.6, resume_time=0.4)
        runtime.attach_camera(handoff, 0.6, resume_time=0.6)
        with pytest.raises(ValueError, match="already active"):
            runtime.attach_camera(handoff, 0.7)

    def test_zero_blackout_boundary_frame_is_not_processed_twice(self):
        """A frame arriving exactly at the detach tick stays with the source."""
        spec = CameraSpec(
            camera_id="edge000", width=48, height=32, frame_rate=4.0,
            num_frames=8, scenario="urban_day", seed=3,
        )
        source = FleetRuntime([spec], config=FAST)
        sink_spec = CameraSpec(
            camera_id="sink000", width=48, height=32, frame_rate=2.0,
            num_frames=4, scenario="urban_day", seed=4,
        )
        destination = FleetRuntime([sink_spec], config=FAST)
        source.start()
        destination.start()
        # Frame 0 arrives exactly at 0.25 (= 1/4 fps); detach at that instant
        # with a zero-blackout handoff.
        source.advance_until(0.25)
        destination.advance_until(0.25)
        handoff = source.detach_camera("edge000", 0.25)
        destination.attach_camera(handoff, 0.25, resume_time=0.25)
        source.advance_until(math.inf)
        destination.advance_until(math.inf)
        src_report = source.finalize()
        dst_report = destination.finalize()
        moved_generated = (
            src_report.cameras["edge000"].frames_generated
            + dst_report.cameras["edge000"].frames_generated
        )
        assert moved_generated == spec.num_frames

    def test_round_trip_merges_stints_into_one_camera_report(self):
        runtime = FleetRuntime(cameras(n=2, frame_rate=10.0, duration=2.0), config=FAST)
        runtime.start()
        runtime.advance_until(0.8)
        handoff = runtime.detach_camera("cam000", 0.8)
        runtime.attach_camera(handoff, 1.0, resume_time=1.0)
        runtime.advance_until(math.inf)
        report = runtime.finalize()
        assert set(report.cameras) == {"cam000", "cam001"}
        assert report.cameras["cam000"].frames_generated == 20
        assert (
            report.frames_scored + report.frames_dropped + report.frames_rejected
            == report.frames_generated
        )


class TestResolutionScaledService:
    def test_schedule_scales_with_multiply_adds(self):
        base = default_schedule(1)
        small = resolution_scaled_schedule(base, (64, 48))
        large = resolution_scaled_schedule(base, (96, 64))
        assert small.total_seconds < large.total_seconds < base.total_seconds
        small_model = CostModel(resolution=(64, 48))
        large_model = CostModel(resolution=(96, 64))
        expected = (
            large_model.base_dnn_cost() + large_model.mc_cost("localized")
        ) / (small_model.base_dnn_cost() + small_model.mc_cost("localized"))
        assert large.total_seconds / small.total_seconds == pytest.approx(expected)

    def test_runtime_uses_per_camera_service_times(self):
        config = FleetConfig(
            num_workers=2,
            queue_capacity=4,
            service_time_scale=10.0,
            resolution_scaled_service=True,
        )
        fleet = cameras(n=1, width=48, height=32) + [
            CameraSpec(
                camera_id="big000", width=96, height=64, frame_rate=8.0,
                num_frames=12, scenario="urban_day", seed=5,
            )
        ]
        runtime = FleetRuntime(fleet, config=config)
        runtime.start()
        assert runtime.camera_service_seconds("big000") > runtime.camera_service_seconds(
            "cam000"
        )

    def test_flat_service_by_default(self):
        runtime = FleetRuntime(cameras(n=2), config=FAST)
        runtime.start()
        assert runtime.camera_service_seconds("cam000") == pytest.approx(
            runtime.workers.service_seconds
        )


class TestDeferredUploads:
    def test_pending_uploads_collected_not_sent(self):
        runtime = FleetRuntime(
            cameras(n=2, frame_rate=10.0, duration=2.0), config=FAST, defer_uploads=True
        )
        report = runtime.run()
        assert runtime.uplink.total_bits == 0.0
        if report.total_uploaded_bits > 0:
            assert runtime.pending_uploads
            assert report.total_uploaded_bits == pytest.approx(
                sum(bits for _, _, bits in runtime.pending_uploads)
            )
        assert report.uplink_utilization == 0.0
