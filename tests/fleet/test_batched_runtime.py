"""Fleet-level equivalence: batched dispatch ≡ per-camera dispatch, bit for bit.

``FleetConfig.batched_scoring`` (on by default) routes completion-time
scoring through :class:`repro.core.batched.BatchedScorer` — one base-DNN
forward per resident base DNN over the frames in flight on the worker pool.
This harness pins the tentpole contract: every FleetReport counter, every
per-camera report, the full telemetry snapshot, and every per-frame
probability are bit-identical with the flag on or off, across randomized
seeds, mixed resolutions, overload shedding, live threshold drift, and
mid-run migration (composed with the real :class:`MigrationController`).
"""

import numpy as np
import pytest

from repro.control import (
    ControlLoop,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
)
from repro.control.trace import control_trace_records, diff_traces
from repro.fleet.camera import CameraSpec
from repro.fleet.runtime import FleetConfig, FleetRuntime, default_pipeline_factory
from repro.fleet.sharding import ShardedFleetRuntime, ShardingConfig

SCENARIOS = ["urban_day", "busy_intersection", "quiet_residential", "night_watch"]


def fleet(num_cameras=6, num_frames=12, frame_rate=10.0, width=32, height=32, seed=0):
    return [
        CameraSpec(
            camera_id=f"cam{i:02d}",
            width=width,
            height=height,
            frame_rate=frame_rate,
            num_frames=num_frames,
            scenario=SCENARIOS[i % len(SCENARIOS)],
            seed=seed * 100 + i,
        )
        for i in range(num_cameras)
    ]


def run_fleet(cameras, batched, drift_at=None, **config_kwargs):
    """One full run; ``drift_at`` = (time, camera_id, threshold) actuated live."""
    runtime = FleetRuntime(
        cameras,
        pipeline_factory=default_pipeline_factory(),
        config=FleetConfig(batched_scoring=batched, **config_kwargs),
    )
    if drift_at is None:
        report = runtime.run()
    else:
        when, camera_id, threshold = drift_at
        runtime.start()
        runtime.advance_until(when)
        runtime.set_camera_threshold(camera_id, threshold)
        runtime.advance_until(float("inf"))
        report = runtime.finalize()
    return runtime, report


def assert_runs_identical(rt_batched, rep_batched, rt_scalar, rep_scalar):
    """Reports, telemetry, and per-frame probabilities all bit-identical."""
    assert rep_batched.cameras.keys() == rep_scalar.cameras.keys()
    for camera_id in rep_batched.cameras:
        assert rep_batched.cameras[camera_id] == rep_scalar.cameras[camera_id], camera_id
    assert rep_batched.telemetry == rep_scalar.telemetry
    assert rep_batched.total_uploaded_bits == rep_scalar.total_uploaded_bits
    assert rep_batched.events_detected == rep_scalar.events_detected
    assert rt_batched._states.keys() == rt_scalar._states.keys()
    for key in rt_batched._states:
        result_b = rt_batched._states[key].session.finish()
        result_s = rt_scalar._states[key].session.finish()
        assert result_b.per_mc.keys() == result_s.per_mc.keys()
        for name in result_b.per_mc:
            assert np.array_equal(
                result_b.per_mc[name].probabilities, result_s.per_mc[name].probabilities
            ), (key, name)
            assert np.array_equal(
                result_b.per_mc[name].smoothed, result_s.per_mc[name].smoothed
            ), (key, name)


class TestBatchedDispatchEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_fleets_are_bit_identical(self, seed):
        cameras = fleet(num_cameras=5, num_frames=10, seed=seed)
        rt_b, rep_b = run_fleet(cameras, batched=True, num_workers=4)
        rt_s, rep_s = run_fleet(cameras, batched=False, num_workers=4)
        assert_runs_identical(rt_b, rep_b, rt_s, rep_s)
        assert rt_b.batched is not None and rt_s.batched is None
        # Batches actually formed: fewer forwards than frames scored.
        assert rt_b.batched.frames_batched == rep_b.frames_scored
        assert rt_b.batched.batches_run < rt_b.batched.frames_batched

    def test_mixed_resolution_fleet(self):
        cameras = fleet(num_cameras=3, num_frames=8, width=32, height=32) + [
            CameraSpec(
                camera_id=f"big{i}",
                width=48,
                height=32,
                frame_rate=10.0,
                num_frames=8,
                scenario=SCENARIOS[i],
                seed=50 + i,
            )
            for i in range(2)
        ]
        rt_b, rep_b = run_fleet(cameras, batched=True, num_workers=4)
        rt_s, rep_s = run_fleet(cameras, batched=False, num_workers=4)
        assert_runs_identical(rt_b, rep_b, rt_s, rep_s)

    def test_overloaded_fleet_with_shedding(self):
        cameras = fleet(num_cameras=4, num_frames=12, frame_rate=15.0)
        kwargs = dict(num_workers=1, queue_capacity=2, service_time_scale=1.0)
        rt_b, rep_b = run_fleet(cameras, batched=True, **kwargs)
        rt_s, rep_s = run_fleet(cameras, batched=False, **kwargs)
        assert rep_b.frames_dropped > 0  # shedding is actually exercised
        assert_runs_identical(rt_b, rep_b, rt_s, rep_s)

    def test_live_threshold_drift_mid_run(self):
        cameras = fleet(num_cameras=4, num_frames=10)
        drift = (0.45, "cam01", 0.35)
        rt_b, rep_b = run_fleet(cameras, batched=True, num_workers=3, drift_at=drift)
        rt_s, rep_s = run_fleet(cameras, batched=False, num_workers=3, drift_at=drift)
        assert_runs_identical(rt_b, rep_b, rt_s, rep_s)

    def test_single_camera_degenerate_batch(self):
        cameras = fleet(num_cameras=1, num_frames=8)
        rt_b, rep_b = run_fleet(cameras, batched=True, num_workers=2)
        rt_s, rep_s = run_fleet(cameras, batched=False, num_workers=2)
        assert_runs_identical(rt_b, rep_b, rt_s, rep_s)

    def test_disabled_batching_builds_no_scorer(self):
        runtime = FleetRuntime(
            fleet(num_cameras=1, num_frames=2),
            config=FleetConfig(batched_scoring=False),
        )
        assert runtime.batched is None
        runtime.run()

    @pytest.mark.slow
    def test_64_camera_shared_dnn_sweep(self):
        """The full-scale scenario the bench pins, proven bit-identical."""
        cameras = fleet(num_cameras=64, num_frames=6, frame_rate=10.0)
        kwargs = dict(num_workers=8, queue_capacity=8, service_time_scale=0.02)
        rt_b, rep_b = run_fleet(cameras, batched=True, **kwargs)
        rt_s, rep_s = run_fleet(cameras, batched=False, **kwargs)
        assert_runs_identical(rt_b, rep_b, rt_s, rep_s)
        assert rt_b.batched.frames_batched == rep_b.frames_scored
        # With 8 workers over 64 cameras, real multi-frame batches must form.
        assert rt_b.batched.batches_run * 2 <= rt_b.batched.frames_batched


def migration_cluster(batched):
    """A 2-node imbalanced cluster the migration controller must rebalance."""
    migration = MigrationController(
        MigrationConfig(
            imbalance_threshold=1.1,
            sustain_ticks=2,
            cooldown_ticks=2,
            cost_model=MigrationCostModel(blackout_seconds=0.2, cold_start_seconds=0.2),
        )
    )
    cameras = []
    for i in range(6):
        rate = 24.0 if i % 2 == 0 else 2.0
        cameras.append(
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=48,
                height=32,
                frame_rate=rate,
                num_frames=int(rate * 2.0),
                scenario="urban_day",
                seed=i,
            )
        )
    runtime = ShardedFleetRuntime(
        cameras,
        config=ShardingConfig(
            num_nodes=2,
            placement="round_robin",
            total_uplink_bps=100_000.0,
            node_config=FleetConfig(
                num_workers=1,
                queue_capacity=4,
                service_time_scale=0.12,
                batched_scoring=batched,
            ),
        ),
        control_loop=ControlLoop([migration], interval_seconds=0.25),
    )
    report = runtime.run()
    return runtime, report, migration


class TestMigrationMidTick:
    @pytest.fixture(scope="class")
    def batched_run(self):
        return migration_cluster(batched=True)

    def test_migrated_camera_scored_in_exactly_one_nodes_batch(self, batched_run):
        """No frame double-scored, none skipped, across the migration."""
        runtime, report, migration = batched_run
        assert migration.migrations, "scenario must actually migrate a camera"
        for _, camera_id, _, _ in migration.migrations:
            stint_indices: list[list[int]] = []
            for node in runtime.nodes.values():
                for state in node._states.values():
                    if state.spec.camera_id == camera_id:
                        stint_indices.append(list(state.session.source_indices))
            assert len(stint_indices) >= 2, "migrated camera must have stints on both nodes"
            combined = [i for stint in stint_indices for i in stint]
            assert len(combined) == len(set(combined)), (
                f"{camera_id} had frames scored twice across node batches"
            )
            # Every scored frame landed in exactly one stint, and both sides
            # of the move actually scored (the mid-tick handoff lost nothing
            # beyond the explicit migration blackout accounting).
            assert all(stint for stint in stint_indices)

    def test_migration_trace_identical_with_batching_off(self, batched_run):
        _, rep_batched, _ = batched_run
        _, rep_scalar, _ = migration_cluster(batched=False)
        problems = diff_traces(
            control_trace_records(rep_batched), control_trace_records(rep_scalar)
        )
        assert problems == [], "\n".join(problems)

    def test_pending_completions_drain(self, batched_run):
        runtime, _, _ = batched_run
        for node in runtime.nodes.values():
            assert node._pending_completions == {}
            assert node.batched is not None and node.batched.pending == 0
