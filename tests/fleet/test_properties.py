"""Property-style seed sweeps: fleet invariants under randomized configs.

Each seed deterministically samples a :class:`FleetConfig` and a small
camera fleet, runs the real runtime, and asserts the conservation and
bounds invariants that must hold for *every* configuration:

* frame conservation — scored + dropped + rejected == generated (nothing
  in flight after a full run), per camera and fleet-wide;
* drop rate in [0, 1] and Jain fairness in (0, 1];
* telemetry counters/histograms agree with the per-camera report sums;
* :class:`StreamingPipeline` stays bit-identical to the batch pipeline
  under randomized smoothing/batching configurations.
"""

import numpy as np
import pytest

from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.pipeline import FilterForwardPipeline, PipelineConfig
from repro.core.streaming import StreamingPipeline
from repro.features.extractor import FeatureExtractor
from repro.fleet.camera import CameraSpec
from repro.fleet.queues import DropPolicy
from repro.fleet.runtime import FleetConfig, FleetRuntime
from repro.video.stream import InMemoryVideoStream

SWEEP_SEEDS = list(range(24))

SCENARIOS = [
    "urban_day",
    "busy_intersection",
    "retail_entrance",
    "quiet_residential",
    "night_watch",
    "highway_overpass",
]


def random_config(rng: np.random.Generator) -> FleetConfig:
    """A valid random FleetConfig drawn from one seeded generator."""
    max_in_flight = int(rng.integers(2, 7)) if rng.random() < 0.5 else None
    per_camera_quota = int(rng.integers(1, 4)) if rng.random() < 0.4 else None
    return FleetConfig(
        num_workers=int(rng.integers(1, 4)),
        queue_capacity=int(rng.integers(1, 6)),
        drop_policy=[DropPolicy.DROP_OLDEST, DropPolicy.DROP_NEWEST, DropPolicy.BLOCK][
            int(rng.integers(3))
        ],
        max_in_flight=max_in_flight,
        per_camera_quota=per_camera_quota,
        service_time_scale=float(rng.uniform(0.05, 1.2)),
        uplink_capacity_bps=float(rng.uniform(5_000.0, 500_000.0)),
    )


def random_fleet(rng: np.random.Generator) -> list[CameraSpec]:
    """A small random fleet (3 cameras, mixed rates and scenarios)."""
    return [
        CameraSpec(
            camera_id=f"cam{i:02d}",
            width=32,
            height=32,
            frame_rate=float(rng.choice([5.0, 10.0, 15.0])),
            num_frames=int(rng.integers(6, 14)),
            scenario=SCENARIOS[int(rng.integers(len(SCENARIOS)))],
            seed=int(rng.integers(2**31)),
            event_rate_scale=float(rng.uniform(0.5, 2.0)),
            start_time=float(rng.uniform(0.0, 0.3)),
        )
        for i in range(3)
    ]


@pytest.mark.parametrize("seed", SWEEP_SEEDS)
def test_fleet_invariants_hold_for_random_configs(seed):
    rng = np.random.default_rng(seed)
    config = random_config(rng)
    cameras = random_fleet(rng)
    report = FleetRuntime(cameras, config=config).run()

    # Frame conservation: a completed run has nothing in flight, so every
    # generated frame was scored, dropped, or rejected — exactly once.
    assert (
        report.frames_scored + report.frames_dropped + report.frames_rejected
        == report.frames_generated
    )
    for camera in report.cameras.values():
        assert (
            camera.frames_scored + camera.frames_dropped + camera.frames_rejected
            == camera.frames_generated
        )

    # Bounds.
    assert 0.0 <= report.drop_rate <= 1.0
    assert 0.0 < report.fairness_index <= 1.0
    assert 0 <= report.starved_cameras <= report.num_cameras

    # Telemetry must agree with the per-camera report sums.
    telemetry = report.telemetry
    cameras_by_id = report.cameras.values()
    assert telemetry["frames.generated"] == sum(c.frames_generated for c in cameras_by_id)
    assert telemetry["frames.scored"] == sum(c.frames_scored for c in cameras_by_id)
    dropped = telemetry.get("frames.dropped_oldest", 0) + telemetry.get(
        "frames.dropped_newest", 0
    )
    assert dropped == sum(c.frames_dropped for c in cameras_by_id)
    assert telemetry.get("frames.rejected", 0) == sum(c.frames_rejected for c in cameras_by_id)

    # Histogram counts: one queue-wait and one service observation per
    # scored frame, across all cameras.
    assert telemetry["latency.queue_wait_seconds"]["count"] == report.frames_scored
    assert telemetry["worker.service_seconds"]["count"] == report.frames_scored


@pytest.mark.parametrize("seed", SWEEP_SEEDS[:8])
def test_block_policy_conserves_every_frame(seed):
    """BLOCK never loses frames: backpressure stalls the source instead."""
    rng = np.random.default_rng(1000 + seed)
    config = FleetConfig(
        num_workers=int(rng.integers(1, 3)),
        queue_capacity=int(rng.integers(1, 4)),
        drop_policy=DropPolicy.BLOCK,
        service_time_scale=float(rng.uniform(0.2, 1.0)),
    )
    report = FleetRuntime(random_fleet(rng), config=config).run()
    assert report.frames_dropped == 0
    assert report.frames_rejected == 0
    assert report.frames_scored == report.frames_generated


@pytest.mark.parametrize("seed", SWEEP_SEEDS)
def test_streaming_matches_batch_on_random_smoothing_configs(seed, tiny_extractor, rng):
    """StreamingPipeline ≡ batch pipeline for randomized (window, votes, batch)."""
    sweep = np.random.default_rng(2000 + seed)
    window = int(sweep.integers(1, 8))
    votes = int(sweep.integers(1, window + 1))
    batch_size = int(sweep.integers(1, 7))
    config = PipelineConfig(
        smoothing_window=window, smoothing_votes=votes, batch_size=batch_size
    )
    architecture = ["localized", "full_frame", "windowed"][int(sweep.integers(3))]
    mc_config = MicroClassifierConfig(
        name=f"sweep{seed}",
        input_layer="conv4_2/sep",
        threshold=float(sweep.uniform(0.3, 0.7)),
    )
    kwargs = {"window": 3} if architecture == "windowed" else {}
    mc = build_microclassifier(
        architecture,
        mc_config,
        tiny_extractor.layer_shape("conv4_2/sep"),
        rng=np.random.default_rng(seed),
        **kwargs,
    )
    frames = [rng.random((32, 48, 3)).astype(np.float32) for _ in range(int(sweep.integers(6, 14)))]
    stream = InMemoryVideoStream.from_arrays(frames, frame_rate=10.0)

    batch_result = FilterForwardPipeline(tiny_extractor, [mc], config=config).process_stream(
        stream
    )
    tiny_extractor.reset_cache()
    if architecture == "windowed":
        mc.reset_buffer()
    streaming_result = StreamingPipeline(
        tiny_extractor, [mc], config=config, frame_rate=stream.frame_rate
    ).process_stream(stream)

    batch_mc = batch_result.per_mc[mc.name]
    streaming_mc = streaming_result.per_mc[mc.name]
    assert np.array_equal(batch_mc.probabilities, streaming_mc.probabilities)
    assert np.array_equal(batch_mc.decisions, streaming_mc.decisions)
    assert np.array_equal(batch_mc.smoothed, streaming_mc.smoothed)
    assert batch_mc.events == streaming_mc.events
    assert batch_result.total_uploaded_bits == streaming_result.total_uploaded_bits
