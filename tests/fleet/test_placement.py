"""Placement policies: partition validity, balance invariants, determinism."""

import pytest

from repro.fleet.camera import CameraSpec, generate_fleet
from repro.fleet.placement import (
    PLACEMENT_POLICIES,
    LoadAwarePlacement,
    ResolutionAwarePlacement,
    RoundRobinPlacement,
    estimate_camera_cost,
    make_placement_policy,
)


def skewed_fleet(num_cameras=16, seed=3):
    return generate_fleet(
        num_cameras,
        seed=seed,
        duration_seconds=2.0,
        resolutions=((64, 48), (80, 48), (96, 64)),
        frame_rates=(2.0, 4.0, 24.0),
    )


def camera_ids(shards):
    return sorted(spec.camera_id for shard in shards for spec in shard)


class TestEstimateCameraCost:
    def test_monotonic_in_frame_rate(self):
        slow = CameraSpec("a", 64, 48, frame_rate=5.0, num_frames=10)
        fast = CameraSpec("b", 64, 48, frame_rate=15.0, num_frames=10)
        assert estimate_camera_cost(fast) > estimate_camera_cost(slow)

    def test_monotonic_in_resolution(self):
        small = CameraSpec("a", 64, 48, frame_rate=5.0, num_frames=10)
        large = CameraSpec("b", 128, 96, frame_rate=5.0, num_frames=10)
        assert estimate_camera_cost(large) > estimate_camera_cost(small)

    def test_event_dense_scenario_costs_more(self):
        quiet = CameraSpec("a", 64, 48, 5.0, 10, scenario="quiet_residential")
        busy = CameraSpec("b", 64, 48, 5.0, 10, scenario="busy_intersection")
        assert estimate_camera_cost(busy) > estimate_camera_cost(quiet)


class TestPolicyContracts:
    @pytest.mark.parametrize("name", sorted(PLACEMENT_POLICIES))
    def test_partition_is_exact(self, name):
        fleet = skewed_fleet(13)
        shards = make_placement_policy(name).place(fleet, 4)
        assert len(shards) == 4
        assert all(shard for shard in shards)  # no empty node
        assert camera_ids(shards) == sorted(s.camera_id for s in fleet)

    @pytest.mark.parametrize("name", sorted(PLACEMENT_POLICIES))
    def test_deterministic(self, name):
        first = make_placement_policy(name).place(skewed_fleet(12), 3)
        second = make_placement_policy(name).place(skewed_fleet(12), 3)
        assert [[s.camera_id for s in shard] for shard in first] == [
            [s.camera_id for s in shard] for shard in second
        ]

    def test_more_nodes_than_cameras_rejected(self):
        with pytest.raises(ValueError, match="at least one camera"):
            RoundRobinPlacement().place(skewed_fleet(2), 3)

    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            RoundRobinPlacement().place(skewed_fleet(2), 0)

    def test_unknown_policy_name(self):
        with pytest.raises(ValueError, match="Unknown placement policy"):
            make_placement_policy("best_effort")

    def test_policy_instance_passes_through(self):
        policy = LoadAwarePlacement()
        assert make_placement_policy(policy) is policy


class TestRoundRobin:
    def test_deals_in_index_order(self):
        fleet = skewed_fleet(7)
        shards = RoundRobinPlacement().place(fleet, 3)
        for node, shard in enumerate(shards):
            for position, spec in enumerate(shard):
                assert spec.camera_id == fleet[node + 3 * position].camera_id


class TestLoadAware:
    def test_balance_invariant(self):
        """LPT guarantee: load spread never exceeds one camera's cost."""
        fleet = skewed_fleet(24)
        policy = LoadAwarePlacement()
        shards = policy.place(fleet, 4)
        loads = policy.node_loads(shards)
        max_item = max(estimate_camera_cost(spec) for spec in fleet)
        assert max(loads) - min(loads) <= max_item + 1e-6

    def test_beats_round_robin_on_skew(self):
        fleet = skewed_fleet(32)
        policy = LoadAwarePlacement()
        balanced = policy.node_loads(policy.place(fleet, 4))
        naive = policy.node_loads(RoundRobinPlacement().place(fleet, 4))
        assert max(balanced) <= max(naive)

    def test_custom_cost_fn(self):
        fleet = skewed_fleet(8)
        policy = LoadAwarePlacement(cost_fn=lambda spec: 1.0)
        shards = policy.place(fleet, 4)
        assert sorted(len(shard) for shard in shards) == [2, 2, 2, 2]

    def test_degenerate_cost_fn_rejected(self):
        """An all-zero cost estimate would pile every camera on node 0."""
        policy = LoadAwarePlacement(cost_fn=lambda spec: 0.0)
        with pytest.raises(RuntimeError, match="without cameras"):
            policy.place(skewed_fleet(4), 3)


class TestResolutionAware:
    def test_minimizes_resident_base_dnns(self):
        """At most num_nodes + num_resolutions - 1 (node, resolution) pairs."""
        fleet = skewed_fleet(20)
        num_nodes = 4
        shards = ResolutionAwarePlacement().place(fleet, num_nodes)
        pairs = sum(len({spec.resolution for spec in shard}) for shard in shards)
        num_resolutions = len({spec.resolution for spec in fleet})
        assert pairs <= num_nodes + num_resolutions - 1

    def test_single_resolution_spreads_over_all_nodes(self):
        fleet = generate_fleet(9, seed=0, duration_seconds=1.0, resolutions=((64, 48),))
        shards = ResolutionAwarePlacement().place(fleet, 3)
        assert all(shard for shard in shards)
        assert sum(len(shard) for shard in shards) == 9

    def test_fewer_groups_than_nodes_still_fills_every_node(self):
        fleet = generate_fleet(
            12, seed=1, duration_seconds=1.0, resolutions=((64, 48), (80, 48))
        )
        shards = ResolutionAwarePlacement().place(fleet, 5)
        assert all(shard for shard in shards)


class TestDistrictAware:
    def test_keeps_districts_whole_when_they_fit(self):
        from repro.fleet.camera import district_of
        from repro.fleet.placement import DistrictAwarePlacement

        fleet = generate_fleet(24, seed=2, duration_seconds=1.0, districts=6)
        shards = DistrictAwarePlacement().place(fleet, 3)
        hosting: dict[str, set[int]] = {}
        for n, shard in enumerate(shards):
            for spec in shard:
                hosting.setdefault(district_of(spec.camera_id), set()).add(n)
        assert all(len(nodes) == 1 for nodes in hosting.values())

    def test_starved_node_fed_by_splitting_a_district(self):
        from repro.fleet.placement import DistrictAwarePlacement

        fleet = generate_fleet(8, seed=0, duration_seconds=1.0, districts=1)
        shards = DistrictAwarePlacement().place(fleet, 3)
        assert all(shard for shard in shards)
        assert sum(len(shard) for shard in shards) == 8

    def test_undistricted_fleet_still_balances(self):
        from repro.fleet.placement import DistrictAwarePlacement

        fleet = generate_fleet(12, seed=3, duration_seconds=1.0)
        shards = DistrictAwarePlacement().place(fleet, 3)
        assert all(shard for shard in shards)
        assert camera_ids(shards) == sorted(s.camera_id for s in fleet)

    def test_registered_in_policy_table(self):
        assert "district_aware" in PLACEMENT_POLICIES
        policy = make_placement_policy("district_aware")
        assert policy.name == "district_aware"
