"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.nn",
            "repro.video",
            "repro.features",
            "repro.core",
            "repro.baselines",
            "repro.metrics",
            "repro.perf",
            "repro.edge",
            "repro.experiments",
            "repro.fleet",
            "repro.control",
            "repro.obs",
            "repro.events",
        ],
    )
    def test_subpackages_importable_and_export_all(self, module):
        imported = importlib.import_module(module)
        assert hasattr(imported, "__all__")
        for name in imported.__all__:
            assert hasattr(imported, name), f"{module}.{name} missing"

    def test_key_entry_points_are_callable(self):
        assert callable(repro.build_mobilenet_like)
        assert callable(repro.make_jackson_like)
        assert callable(repro.event_f1_score)
        assert callable(repro.train_classifier)
        assert callable(repro.StreamingPipeline)
        assert callable(repro.FleetRuntime)
        assert callable(repro.generate_fleet)
