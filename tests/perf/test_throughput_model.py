"""Tests for the analytic throughput model (Figures 5 and 6 trends)."""

import numpy as np
import pytest

from repro.perf.throughput_model import ThroughputModel, ThroughputModelConfig


@pytest.fixture(scope="module")
def model():
    return ThroughputModel()


class TestConfigValidation:
    def test_defaults_valid(self):
        ThroughputModelConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_dnn_ops_per_second": 0},
            {"classifier_ops_per_second": -1},
            {"fixed_overhead_seconds": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ThroughputModelConfig(**kwargs)


class TestFilterForwardScaling:
    def test_breakdown_components(self, model):
        breakdown = model.filterforward_breakdown(10, "localized")
        assert breakdown.total_seconds == pytest.approx(
            breakdown.base_dnn_seconds + breakdown.classifiers_seconds + breakdown.overhead_seconds
        )
        assert breakdown.fps == pytest.approx(1.0 / breakdown.total_seconds)

    def test_base_dnn_time_independent_of_classifier_count(self, model):
        one = model.filterforward_breakdown(1, "localized")
        fifty = model.filterforward_breakdown(50, "localized")
        assert one.base_dnn_seconds == fifty.base_dnn_seconds

    def test_base_dnn_takes_roughly_a_third_of_a_second(self, model):
        """Figure 6: the base DNN bar sits around 0.3 s per frame on the paper's CPU."""
        assert 0.2 < model.filterforward_breakdown(1).base_dnn_seconds < 0.45

    def test_classifier_time_grows_linearly(self, model):
        t10 = model.filterforward_breakdown(10, "localized").classifiers_seconds
        t20 = model.filterforward_breakdown(20, "localized").classifiers_seconds
        assert t20 == pytest.approx(2 * t10)

    def test_throughput_decreases_with_more_classifiers(self, model):
        fps = [model.filterforward_fps(n, "localized") for n in (1, 10, 25, 50)]
        assert all(a > b for a, b in zip(fps, fps[1:]))

    def test_windowed_is_slowest_architecture(self, model):
        assert model.filterforward_fps(20, "windowed") < model.filterforward_fps(20, "localized")
        assert model.filterforward_fps(20, "localized") < model.filterforward_fps(20, "full_frame")

    def test_invalid_count(self, model):
        with pytest.raises(ValueError):
            model.filterforward_fps(0)


class TestPaperTrends:
    def test_single_classifier_dcs_are_faster(self, model):
        """Paper: with one classifier, FF runs at ~0.3x the speed of a DC."""
        ratio = model.filterforward_fps(1, "localized") / model.discrete_classifier_fps(1)
        assert 0.2 < ratio < 0.6

    def test_single_classifier_mobilenet_slightly_faster(self, model):
        ratio = model.filterforward_fps(1, "localized") / model.multiple_mobilenets_fps(1)
        assert 0.8 < ratio < 1.0

    def test_break_even_at_a_handful_of_classifiers(self, model):
        """Paper: FF overtakes the DCs at 3-4 concurrent classifiers."""
        break_even = min(
            model.break_even_classifiers(arch) for arch in ("full_frame", "localized")
        )
        assert 3 <= break_even <= 6

    def test_large_speedup_at_fifty_classifiers(self, model):
        """Paper: up to 6.1x higher throughput with 50 concurrent MCs."""
        best = max(
            model.speedup_versus_dcs(50, arch) for arch in ("full_frame", "localized", "windowed")
        )
        assert 4.0 < best < 9.0

    def test_mobilenets_never_overtake_filterforward_beyond_two(self, model):
        for n in (2, 5, 10, 20, 30):
            assert model.filterforward_fps(n, "full_frame") > model.multiple_mobilenets_fps(n)

    def test_mobilenets_out_of_memory_past_thirty(self, model):
        assert not np.isnan(model.multiple_mobilenets_fps(30))
        assert np.isnan(model.multiple_mobilenets_fps(31))

    def test_sweep_contains_all_series(self, model):
        series = model.sweep([1, 10, 50])
        assert set(series) >= {
            "num_classifiers",
            "filterforward_localized",
            "filterforward_full_frame",
            "filterforward_windowed",
            "discrete_classifiers",
            "multiple_mobilenets",
        }
        assert all(len(values) == 3 for values in series.values())

    def test_base_dnn_equivalent_to_tens_of_mcs(self, model):
        """Paper: the base DNN's CPU time equals that of roughly 15-40 MCs."""
        breakdown = model.filterforward_breakdown(1, "localized")
        equivalent = breakdown.base_dnn_seconds / breakdown.classifiers_seconds
        assert 10 <= equivalent <= 55
