"""Tests for the edge-node memory model."""

import pytest

from repro.perf.memory_model import MemoryModel


@pytest.fixture(scope="module")
def model():
    return MemoryModel()


class TestMemoryModel:
    def test_mobilenets_fit_up_to_about_thirty(self, model):
        assert model.mobilenets_fit(30)
        assert not model.mobilenets_fit(31)
        assert model.max_mobilenets() == 30

    def test_filterforward_scales_to_many_classifiers(self, model):
        assert model.filterforward_memory(50).fits
        assert model.filterforward_memory(200).fits

    def test_filterforward_memory_grows_slowly(self, model):
        one = model.filterforward_memory(1)
        fifty = model.filterforward_memory(50)
        assert fifty.bytes_used < 3 * one.bytes_used

    def test_discrete_classifiers_memory(self, model):
        estimate = model.discrete_classifiers_memory(10)
        assert estimate.fits
        assert estimate.gigabytes_used == pytest.approx(10 * 350 / 1024, rel=0.01)

    def test_estimates_carry_strategy_labels(self, model):
        assert model.mobilenets_memory(2).strategy == "multiple_mobilenets"
        assert model.filterforward_memory(2).strategy == "filterforward"

    def test_invalid_count(self, model):
        with pytest.raises(ValueError):
            model.mobilenets_memory(0)

    def test_filterforward_uses_less_memory_than_mobilenets_for_many_apps(self, model):
        assert (
            model.filterforward_memory(30).bytes_used < model.mobilenets_memory(30).bytes_used
        )
