"""Tests for the paper-scale analytic cost model."""

import pytest

from repro.baselines.discrete_classifier import DiscreteClassifierConfig
from repro.perf.cost_model import (
    CostModel,
    discrete_classifier_cost,
    full_frame_mc_cost,
    localized_mc_cost,
    windowed_mc_cost,
)


class TestMicroclassifierCosts:
    def test_full_frame_cost_at_paper_dimensions(self):
        """Figure 2a operates on a 33x60x1024 map; its cost is dominated by the first 1x1 conv."""
        cost = full_frame_mc_cost((33, 60, 1024))
        first_layer = 33 * 60 * 1024 * 32
        assert cost > first_layer
        assert cost < 1.2 * first_layer

    def test_localized_cost_at_paper_dimensions(self):
        cost = localized_mc_cost((67, 120, 512))
        assert 80e6 < cost < 200e6  # paper Figure 7 shows MCs around 10^8 multiply-adds

    def test_windowed_cost_exceeds_localized(self):
        assert windowed_mc_cost((67, 120, 512)) > localized_mc_cost((67, 120, 512))

    def test_costs_scale_with_feature_map_area(self):
        small = localized_mc_cost((16, 30, 512))
        large = localized_mc_cost((32, 60, 512))
        assert large > 2 * small


class TestCostModel:
    @pytest.fixture(scope="class")
    def model(self):
        return CostModel(resolution=(1920, 1080))

    def test_base_dnn_dwarfs_microclassifiers(self, model):
        """The base DNN costs ~2 orders of magnitude more than one MC (Figures 5-6)."""
        base = model.base_dnn_cost()
        for architecture in ("full_frame", "localized", "windowed"):
            assert base > 20 * model.mc_cost(architecture)

    def test_mc_costs_much_lower_than_representative_dc(self, model):
        dc = DiscreteClassifierConfig(
            name="rep", kernels=(32, 64, 64), strides=(2, 2, 1), pooling_layers=1
        )
        assert model.marginal_cost_ratio("localized", dc) > 5
        assert model.marginal_cost_ratio("full_frame", dc) > 10

    def test_unknown_architecture_rejected(self, model):
        with pytest.raises(ValueError):
            model.mc_cost("resnet")

    def test_crop_fraction_reduces_mc_cost(self):
        full = CostModel(resolution=(2048, 850), crop_fraction=1.0)
        cropped = CostModel(resolution=(2048, 850), crop_fraction=0.59)
        assert cropped.mc_cost("localized") < full.mc_cost("localized")
        # The base DNN always processes the full frame; cropping is MC-local.
        assert cropped.base_dnn_cost() == full.base_dnn_cost()

    def test_layer_shapes_exposed(self, model):
        shapes = model.layer_shapes()
        assert shapes["conv4_2/sep"][2] == 512
        assert shapes["conv5_6/sep"][2] == 1024

    def test_dc_cost_matches_function(self, model):
        config = DiscreteClassifierConfig()
        assert model.dc_cost(config) == discrete_classifier_cost(config, (1920, 1080))

    def test_roadway_resolution_supported(self):
        model = CostModel(resolution=(2048, 850))
        assert model.base_dnn_cost() > 0
        assert model.mc_cost("localized") > 0
