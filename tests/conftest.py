"""Shared fixtures for the test suite.

Fixtures keep test inputs tiny (a few dozen pixels, thin networks, short
streams) so the whole suite runs quickly while still exercising the real
code paths end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.base_dnn import build_mobilenet_like
from repro.features.extractor import FeatureExtractor
from repro.video.frame import Frame
from repro.video.stream import InMemoryVideoStream
from repro.video.synthetic import SceneConfig, SurveillanceSceneGenerator


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_frame(rng: np.random.Generator) -> Frame:
    """A single small random frame (24x32 RGB)."""
    return Frame(index=0, timestamp=0.0, pixels=rng.random((24, 32, 3)).astype(np.float32))


@pytest.fixture
def tiny_stream(rng: np.random.Generator) -> InMemoryVideoStream:
    """A short random stream of 12 frames at 24x32, 15 fps."""
    arrays = [rng.random((24, 32, 3)).astype(np.float32) for _ in range(12)]
    return InMemoryVideoStream.from_arrays(arrays, frame_rate=15.0)


@pytest.fixture
def tiny_pipeline_stream(rng: np.random.Generator) -> InMemoryVideoStream:
    """A short random stream whose frames match the tiny base DNN's input (32x48)."""
    arrays = [rng.random((32, 48, 3)).astype(np.float32) for _ in range(12)]
    return InMemoryVideoStream.from_arrays(arrays, frame_rate=15.0)


@pytest.fixture(scope="session")
def tiny_base_dnn():
    """A very thin MobileNet-like base DNN for 32x48 frames (shared across tests)."""
    return build_mobilenet_like((32, 48, 3), alpha=0.125, rng=np.random.default_rng(0))


@pytest.fixture
def tiny_extractor(tiny_base_dnn) -> FeatureExtractor:
    """A feature extractor tapping the paper's two layers on the tiny base DNN."""
    return FeatureExtractor(tiny_base_dnn, ["conv4_2/sep", "conv5_6/sep"], cache_size=4)


@pytest.fixture
def tiny_scene() -> SurveillanceSceneGenerator:
    """A small, busy synthetic scene generator (64x48, 40 frames)."""
    config = SceneConfig(
        width=64,
        height=48,
        num_frames=40,
        seed=3,
        pedestrian_rate=0.08,
        red_pedestrian_rate=0.05,
        car_rate=0.05,
        cyclist_rate=0.02,
        person_speed_range=(1.0, 2.0),
        max_person_duration=15,
    )
    return SurveillanceSceneGenerator(config)


def numerical_gradient(func, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``func`` with respect to ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad
