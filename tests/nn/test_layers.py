"""Tests for neural-network layers: shapes, forward values, gradients, and costs.

Every layer's backward pass is checked against a central-difference numerical
gradient on small tensors — both the gradient with respect to the input and
(where applicable) with respect to the weights.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAveragePool,
    GlobalMaxPool,
    MaxPool2D,
    ReLU,
    ReLU6,
    SeparableConv2D,
    Sigmoid,
    Softmax,
)

RNG = np.random.default_rng(0)


def _loss_and_grad(layer, x, target_shape=None):
    """Scalar loss = sum(out * w) for a fixed random weighting; returns (loss_fn, weighting)."""
    out = layer.forward(x, training=True)
    weighting = np.random.default_rng(99).random(out.shape)
    return out, weighting


def check_input_gradient(layer, x, rtol=1e-5, atol=1e-6):
    """Compare analytic dL/dx against central differences for L = sum(w * layer(x))."""
    x = np.asarray(x, dtype=np.float64)
    out = layer.forward(x, training=True)
    weighting = np.random.default_rng(99).random(out.shape)
    analytic = layer.backward(weighting)

    def loss():
        return float((layer.forward(x, training=False) * weighting).sum())

    eps = 1e-5
    numeric = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_num = numeric.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        plus = loss()
        flat_x[i] = orig - eps
        minus = loss()
        flat_x[i] = orig
        flat_num[i] = (plus - minus) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_parameter_gradients(layer, x, rtol=1e-4, atol=1e-6):
    """Compare analytic parameter gradients against central differences."""
    x = np.asarray(x, dtype=np.float64)
    out = layer.forward(x, training=True)
    weighting = np.random.default_rng(99).random(out.shape)
    for p in layer.parameters():
        p.zero_grad()
    layer.backward(weighting)

    def loss():
        return float((layer.forward(x, training=False) * weighting).sum())

    eps = 1e-5
    for p in layer.parameters():
        numeric = np.zeros_like(p.value)
        flat_v = p.value.reshape(-1)
        flat_n = numeric.reshape(-1)
        for i in range(flat_v.size):
            orig = flat_v[i]
            flat_v[i] = orig + eps
            plus = loss()
            flat_v[i] = orig - eps
            minus = loss()
            flat_v[i] = orig
            flat_n[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(p.grad, numeric, rtol=rtol, atol=atol)


class TestConv2D:
    def _build(self, **kwargs):
        layer = Conv2D(4, 3, **kwargs)
        layer.build((5, 6, 2), np.random.default_rng(1))
        return layer

    def test_output_shape_same_padding(self):
        layer = self._build()
        x = RNG.random((2, 5, 6, 2))
        assert layer.forward(x).shape == (2, 5, 6, 4)
        assert layer.output_shape((5, 6, 2)) == (5, 6, 4)

    def test_output_shape_stride_two(self):
        layer = Conv2D(3, 3, stride=2)
        layer.build((7, 9, 2), np.random.default_rng(1))
        assert layer.output_shape((7, 9, 2)) == (4, 5, 3)
        assert layer.forward(RNG.random((1, 7, 9, 2))).shape == (1, 4, 5, 3)

    def test_matches_manual_convolution_1x1(self):
        layer = Conv2D(2, 1, use_bias=False)
        layer.build((3, 3, 2), np.random.default_rng(2))
        x = RNG.random((1, 3, 3, 2))
        expected = x @ layer.kernel.value[0, 0]
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_bias_added_per_filter(self):
        layer = self._build()
        layer.bias.value[:] = [1.0, 2.0, 3.0, 4.0]
        zero = np.zeros((1, 5, 6, 2))
        out = layer.forward(zero)
        np.testing.assert_allclose(out[0, 0, 0], [1.0, 2.0, 3.0, 4.0])

    def test_input_gradient(self):
        check_input_gradient(self._build(), RNG.random((2, 5, 6, 2)))

    def test_parameter_gradients(self):
        check_parameter_gradients(self._build(), RNG.random((2, 5, 6, 2)))

    def test_gradients_with_stride_and_valid_padding(self):
        layer = Conv2D(2, 3, stride=2, padding="valid")
        layer.build((7, 7, 2), np.random.default_rng(3))
        check_input_gradient(layer, RNG.random((1, 7, 7, 2)))

    def test_multiply_adds_formula(self):
        layer = self._build()
        # H * W * C_in * K^2 * F for same padding and stride 1.
        assert layer.multiply_adds((5, 6, 2)) == 5 * 6 * 2 * 9 * 4

    def test_forward_before_build_raises(self):
        with pytest.raises(RuntimeError):
            Conv2D(2, 3).forward(np.zeros((1, 4, 4, 1)))

    def test_invalid_filters_raises(self):
        with pytest.raises(ValueError):
            Conv2D(0, 3)

    def test_invalid_padding_raises(self):
        with pytest.raises(ValueError):
            Conv2D(2, 3, padding="full")


class TestDepthwiseConv2D:
    def _build(self, **kwargs):
        layer = DepthwiseConv2D(3, **kwargs)
        layer.build((5, 6, 3), np.random.default_rng(1))
        return layer

    def test_preserves_channel_count(self):
        layer = self._build()
        assert layer.forward(RNG.random((2, 5, 6, 3))).shape == (2, 5, 6, 3)

    def test_channels_do_not_mix(self):
        layer = self._build()
        layer.bias.value[:] = 0.0
        x = np.zeros((1, 5, 6, 3))
        x[0, :, :, 1] = 1.0  # only channel 1 carries signal
        out = layer.forward(x)
        assert np.allclose(out[..., 0], 0.0)
        assert np.allclose(out[..., 2], 0.0)

    def test_input_gradient(self):
        check_input_gradient(self._build(), RNG.random((1, 5, 6, 3)))

    def test_parameter_gradients(self):
        check_parameter_gradients(self._build(), RNG.random((1, 5, 6, 3)))

    def test_stride_two_output_shape(self):
        layer = DepthwiseConv2D(3, stride=2)
        layer.build((9, 11, 2), np.random.default_rng(0))
        assert layer.output_shape((9, 11, 2)) == (5, 6, 2)

    def test_multiply_adds_formula(self):
        layer = self._build()
        assert layer.multiply_adds((5, 6, 3)) == 5 * 6 * 3 * 9


class TestSeparableConv2D:
    def _build(self, stride=1):
        layer = SeparableConv2D(4, 3, stride=stride)
        layer.build((5, 6, 3), np.random.default_rng(1))
        return layer

    def test_output_shape(self):
        layer = self._build()
        assert layer.forward(RNG.random((2, 5, 6, 3))).shape == (2, 5, 6, 4)

    def test_equals_depthwise_then_pointwise(self):
        layer = self._build()
        x = RNG.random((1, 5, 6, 3))
        manual = layer.pointwise.forward(layer.depthwise.forward(x))
        np.testing.assert_allclose(layer.forward(x), manual)

    def test_input_gradient(self):
        check_input_gradient(self._build(), RNG.random((1, 5, 6, 3)))

    def test_parameter_gradients(self):
        check_parameter_gradients(self._build(), RNG.random((1, 5, 6, 3)))

    def test_multiply_adds_uses_factored_formula(self):
        layer = self._build()
        # H * W * M * (K^2 + F), the paper's separable-conv formula.
        assert layer.multiply_adds((5, 6, 3)) == 5 * 6 * 3 * (9 + 4)

    def test_parameter_count_smaller_than_standard_conv(self):
        sep = self._build()
        std = Conv2D(4, 3)
        std.build((5, 6, 3), np.random.default_rng(1))
        sep_params = sum(p.size for p in sep.parameters())
        std_params = sum(p.size for p in std.parameters())
        assert sep_params < std_params


class TestDense:
    def _build(self, units=3, input_shape=(4, 5, 2)):
        layer = Dense(units)
        layer.build(input_shape, np.random.default_rng(1))
        return layer

    def test_flattens_spatial_input(self):
        layer = self._build()
        assert layer.forward(RNG.random((2, 4, 5, 2))).shape == (2, 3)

    def test_matches_matmul(self):
        layer = self._build(units=2, input_shape=(6,))
        x = RNG.random((3, 6))
        expected = x @ layer.kernel.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_input_gradient(self):
        check_input_gradient(self._build(), RNG.random((2, 4, 5, 2)))

    def test_parameter_gradients(self):
        check_parameter_gradients(self._build(units=2, input_shape=(3, 2, 2)), RNG.random((2, 3, 2, 2)))

    def test_multiply_adds_formula(self):
        layer = self._build(units=7, input_shape=(4, 5, 2))
        assert layer.multiply_adds((4, 5, 2)) == 4 * 5 * 2 * 7

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            Dense(0)


class TestPooling:
    def test_maxpool_shape_and_values(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        assert out.shape == (1, 2, 2, 1)
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_max_only(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 2, 2, 1)))
        assert grad.sum() == 4.0
        assert grad[0, 1, 1, 0] == 1.0
        assert grad[0, 0, 0, 0] == 0.0

    def test_maxpool_input_gradient_numerical(self):
        layer = MaxPool2D(2)
        check_input_gradient(layer, RNG.random((1, 4, 6, 2)))

    def test_global_maxpool(self):
        layer = GlobalMaxPool()
        x = RNG.random((2, 3, 4, 5))
        out = layer.forward(x)
        np.testing.assert_allclose(out, x.reshape(2, 12, 5).max(axis=1))
        assert layer.output_shape((3, 4, 5)) == (5,)

    def test_global_maxpool_gradient(self):
        check_input_gradient(GlobalMaxPool(), RNG.random((2, 3, 4, 2)))

    def test_global_average_pool(self):
        layer = GlobalAveragePool()
        x = RNG.random((2, 3, 4, 5))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(1, 2)))

    def test_global_average_pool_gradient(self):
        check_input_gradient(GlobalAveragePool(), RNG.random((2, 3, 4, 2)))


class TestActivations:
    def test_relu_values(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_array_equal(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_relu_gradient(self):
        check_input_gradient(ReLU(), RNG.random((3, 4)) - 0.5)

    def test_relu6_clips_at_six(self):
        layer = ReLU6()
        x = np.array([[-1.0, 3.0, 8.0]])
        np.testing.assert_array_equal(layer.forward(x), [[0.0, 3.0, 6.0]])

    def test_relu6_gradient(self):
        check_input_gradient(ReLU6(), 8 * (RNG.random((3, 4)) - 0.5))

    def test_sigmoid_range_and_symmetry(self):
        layer = Sigmoid()
        x = np.array([[-50.0, 0.0, 50.0]])
        out = layer.forward(x)
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-12)

    def test_sigmoid_gradient(self):
        check_input_gradient(Sigmoid(), RNG.random((2, 5)) - 0.5)

    def test_softmax_sums_to_one(self):
        layer = Softmax()
        out = layer.forward(RNG.random((4, 7)) * 10)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4))

    def test_softmax_gradient(self):
        check_input_gradient(Softmax(), RNG.random((2, 5)))

    def test_softmax_invariant_to_shift(self):
        layer = Softmax()
        x = RNG.random((2, 4))
        np.testing.assert_allclose(layer.forward(x), layer.forward(x + 100.0))


class TestFlattenDropoutConcat:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = RNG.random((2, 3, 4, 5))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 60)
        assert layer.backward(out).shape == x.shape

    def test_dropout_inactive_at_inference(self):
        layer = Dropout(0.5)
        x = RNG.random((4, 8))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_scales_surviving_units(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((1, 10000))
        out = layer.forward(x, training=True)
        # Inverted dropout: surviving activations are scaled by 1/keep.
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}
        assert out.mean() == pytest.approx(1.0, rel=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_concat_forward_and_backward(self):
        layer = Concat()
        a = RNG.random((1, 2, 3, 4))
        b = RNG.random((1, 2, 3, 2))
        out = layer.forward([a, b], training=True)
        assert out.shape == (1, 2, 3, 6)
        grads = layer.backward(np.ones_like(out))
        assert grads[0].shape == a.shape and grads[1].shape == b.shape

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            Concat().forward([])

    def test_concat_output_shape(self):
        layer = Concat()
        assert layer.output_shape([(2, 3, 4), (2, 3, 6)]) == (2, 3, 10)
