"""Batch-vs-loop equivalence of the batched inference path (exact, not allclose).

The cross-camera batched scorer is only admissible because
:mod:`repro.nn.batched` produces *exactly* the bits the per-sample ``N=1``
forward produces — BLAS is free to pick different kernels by matrix size, so
this property is enforced by construction (per-sample-chunked GEMM) and
pinned here with ``np.array_equal`` over a 24-seed randomized sweep across
every layer family the base DNN and microclassifiers use.
"""

import numpy as np
import pytest

from repro.features.base_dnn import build_mobilenet_like
from repro.nn.batched import (
    batched_conv2d_forward,
    batched_dense_forward,
    batched_forward,
    batched_forward_with_taps,
    batched_layer_forward,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAveragePool,
    GlobalMaxPool,
    MaxPool2D,
    SeparableConv2D,
)

SEEDS = range(24)


def random_input(rng, max_batch=9):
    n = int(rng.integers(2, max_batch + 1))
    h = int(rng.integers(6, 13))
    w = int(rng.integers(6, 13))
    c = int(rng.integers(1, 5))
    return rng.standard_normal((n, h, w, c))


def per_sample_forward(layer, x):
    """The reference: one N=1 forward per sample, concatenated."""
    return np.concatenate(
        [layer.forward(x[i : i + 1], training=False) for i in range(x.shape[0])], axis=0
    )


def random_layers(rng, channels):
    """One instance of every layer family, with randomized hyperparameters."""
    kernel = int(rng.choice([1, 3]))
    stride = int(rng.choice([1, 2]))
    padding = str(rng.choice(["same", "valid"]))
    filters = int(rng.integers(1, 7))
    return [
        Conv2D(filters, kernel, stride=stride, padding=padding),
        Conv2D(filters, 1, stride=1, padding="same"),  # the pointwise fast path
        DepthwiseConv2D(3, stride=stride, padding=padding),
        SeparableConv2D(filters, 3, stride=stride, padding="same"),
        MaxPool2D(2),
        GlobalMaxPool(),
        GlobalAveragePool(),
        Dense(int(rng.integers(1, 5))),
    ]


class TestLayerSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_layer_family_is_batch_exact(self, seed):
        rng = np.random.default_rng(seed)
        x = random_input(rng)
        for layer in random_layers(rng, x.shape[3]):
            layer.build(x.shape[1:], rng)
            batched = batched_layer_forward(layer, x)
            looped = per_sample_forward(layer, x)
            assert batched.shape == looped.shape, layer.name
            assert np.array_equal(batched, looped), (
                f"{layer.name} batched forward is not bit-identical to the "
                f"per-sample loop at seed {seed}"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conv_and_dense_direct_entrypoints(self, seed):
        rng = np.random.default_rng(1000 + seed)
        x = random_input(rng, max_batch=5)
        conv = Conv2D(int(rng.integers(1, 5)), 3, stride=1, padding="same")
        conv.build(x.shape[1:], rng)
        assert np.array_equal(batched_conv2d_forward(conv, x), per_sample_forward(conv, x))
        dense = Dense(3)
        dense.build(x.shape[1:], rng)
        assert np.array_equal(batched_dense_forward(dense, x), per_sample_forward(dense, x))


class TestModelEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_base_dnn_taps_are_batch_exact(self, seed):
        rng = np.random.default_rng(seed)
        model = build_mobilenet_like((32, 32, 3), alpha=0.125, rng=rng)
        taps = ["conv2_2/sep", "conv3_2/sep"]
        x = rng.random((6, 32, 32, 3))
        batched = batched_forward_with_taps(model, x, taps)
        for i in range(x.shape[0]):
            _, reference = model.forward_with_taps(x[i : i + 1], taps)
            for name in taps:
                assert np.array_equal(batched[name][i], reference[name][0]), name

    def test_full_forward_matches_per_sample(self):
        rng = np.random.default_rng(7)
        model = build_mobilenet_like((16, 16, 3), alpha=0.25, rng=rng)
        x = rng.random((4, 16, 16, 3))
        batched = batched_forward(model, x)
        looped = np.concatenate([model.forward(x[i : i + 1]) for i in range(4)], axis=0)
        assert np.array_equal(batched, looped)

    def test_stop_at_last_tap_skips_nothing_observable(self):
        rng = np.random.default_rng(11)
        model = build_mobilenet_like((16, 16, 3), alpha=0.25, rng=rng)
        x = rng.random((3, 16, 16, 3))
        early = batched_forward_with_taps(model, x, ["conv2_2/sep"])
        full = batched_forward_with_taps(model, x, ["conv2_2/sep"], stop_at_last_tap=False)
        assert np.array_equal(early["conv2_2/sep"], full["conv2_2/sep"])


class TestErrors:
    def test_unbuilt_conv_raises(self):
        with pytest.raises(RuntimeError, match="before build"):
            batched_conv2d_forward(Conv2D(2, 3), np.zeros((2, 8, 8, 3)))

    def test_unbuilt_dense_raises(self):
        with pytest.raises(RuntimeError, match="before build"):
            batched_dense_forward(Dense(2), np.zeros((2, 8)))

    def test_empty_taps_raises(self):
        model = build_mobilenet_like((16, 16, 3), alpha=0.25)
        with pytest.raises(ValueError, match="at least one tap"):
            batched_forward_with_taps(model, np.zeros((1, 16, 16, 3)), [])

    def test_unknown_tap_raises(self):
        model = build_mobilenet_like((16, 16, 3), alpha=0.25)
        with pytest.raises(KeyError, match="nope"):
            batched_forward_with_taps(model, np.zeros((1, 16, 16, 3)), ["nope"])
