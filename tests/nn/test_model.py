"""Tests for the Sequential model container."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, ReLU, Sigmoid
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.model import Sequential, count_parameters
from repro.nn.optimizers import Adam


def small_model(rng=None):
    return Sequential(
        [
            Conv2D(4, 3, name="conv_a"),
            ReLU(name="relu_a"),
            Conv2D(8, 3, stride=2, name="conv_b"),
            ReLU(name="relu_b"),
            Flatten(name="flatten"),
            Dense(1, name="head"),
        ],
        input_shape=(8, 8, 3),
        rng=rng or np.random.default_rng(0),
        name="small",
    )


class TestConstruction:
    def test_builds_all_layers(self):
        model = small_model()
        assert model.built
        assert model.output_shape_ == (1,)

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ValueError, match="Duplicate layer names"):
            Sequential([ReLU(name="x"), ReLU(name="x")], input_shape=(4,))

    def test_unbuilt_model_raises_on_forward(self):
        model = Sequential([Dense(2, name="d")])
        with pytest.raises(RuntimeError):
            model.forward(np.zeros((1, 3)))

    def test_layer_lookup(self):
        model = small_model()
        assert model.layer("conv_b").filters == 8
        with pytest.raises(KeyError):
            model.layer("missing")

    def test_layer_output_shapes(self):
        shapes = small_model().layer_output_shapes()
        assert shapes["conv_a"] == (8, 8, 4)
        assert shapes["conv_b"] == (4, 4, 8)
        assert shapes["head"] == (1,)


class TestForwardBackward:
    def test_forward_shape(self):
        model = small_model()
        out = model.forward(np.random.default_rng(1).random((5, 8, 8, 3)))
        assert out.shape == (5, 1)

    def test_predict_equals_forward_inference(self):
        model = small_model()
        x = np.random.default_rng(2).random((3, 8, 8, 3))
        np.testing.assert_array_equal(model.predict(x), model.forward(x, training=False))

    def test_forward_with_taps_returns_requested_layers(self):
        model = small_model()
        x = np.random.default_rng(3).random((2, 8, 8, 3))
        out, taps = model.forward_with_taps(x, ["relu_a", "conv_b"])
        assert set(taps) == {"relu_a", "conv_b"}
        assert taps["relu_a"].shape == (2, 8, 8, 4)
        assert taps["conv_b"].shape == (2, 4, 4, 8)
        np.testing.assert_array_equal(out, model.forward(x))

    def test_forward_with_taps_unknown_layer_raises(self):
        with pytest.raises(KeyError):
            small_model().forward_with_taps(np.zeros((1, 8, 8, 3)), ["nope"])

    def test_training_reduces_loss(self):
        """A small model must be able to fit a simple separable problem."""
        rng = np.random.default_rng(4)
        model = small_model(rng)
        x = rng.random((32, 8, 8, 3))
        y = (x[:, :, :, 0].mean(axis=(1, 2)) > 0.5).astype(float).reshape(-1, 1)
        loss_fn = SigmoidBinaryCrossEntropy()
        optimizer = Adam(learning_rate=5e-3)
        params = model.parameters()
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad(params)
            logits = model.forward(x, training=True)
            loss = loss_fn.forward(logits, y)
            if first_loss is None:
                first_loss = loss
            model.backward(loss_fn.backward(logits, y))
            optimizer.step(params)
        assert loss < 0.5 * first_loss


class TestIntrospection:
    def test_parameter_count(self):
        model = small_model()
        total = count_parameters(model.parameters())
        assert total == model.num_parameters()
        # conv_a: 3*3*3*4 + 4; conv_b: 3*3*4*8 + 8; head: 4*4*8*1 + 1
        assert total == (108 + 4) + (288 + 8) + (128 + 1)

    def test_multiply_adds_is_sum_of_layers(self):
        model = small_model()
        assert model.multiply_adds() == sum(model.per_layer_multiply_adds().values())

    def test_multiply_adds_with_alternate_input_shape(self):
        model = small_model()
        assert model.multiply_adds((16, 16, 3)) > model.multiply_adds((8, 8, 3))

    def test_summary_mentions_every_layer(self):
        summary = small_model().summary()
        for name in ("conv_a", "conv_b", "head", "Total params"):
            assert name in summary


class TestStateDict:
    def test_roundtrip(self):
        model_a = small_model(np.random.default_rng(5))
        model_b = small_model(np.random.default_rng(6))
        x = np.random.default_rng(7).random((2, 8, 8, 3))
        assert not np.allclose(model_a.predict(x), model_b.predict(x))
        model_b.load_state_dict(model_a.state_dict())
        np.testing.assert_allclose(model_a.predict(x), model_b.predict(x))

    def test_missing_key_raises(self):
        model = small_model()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = small_model()
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)
