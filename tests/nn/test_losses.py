"""Tests for loss functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.losses import BinaryCrossEntropy, MeanSquaredError, SigmoidBinaryCrossEntropy


def numerical_grad(loss, predictions, targets, eps=1e-6):
    grad = np.zeros_like(predictions)
    flat = predictions.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = loss.forward(predictions, targets)
        flat[i] = orig - eps
        minus = loss.forward(predictions, targets)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


class TestMeanSquaredError:
    def test_zero_for_perfect_prediction(self):
        loss = MeanSquaredError()
        x = np.array([[1.0], [2.0]])
        assert loss.forward(x, x) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([[1.0], [3.0]]), np.array([[0.0], [0.0]])) == pytest.approx(5.0)

    def test_gradient_matches_numerical(self):
        loss = MeanSquaredError()
        rng = np.random.default_rng(0)
        predictions = rng.random((4, 2))
        targets = rng.random((4, 2))
        np.testing.assert_allclose(
            loss.backward(predictions, targets),
            numerical_grad(loss, predictions, targets),
            rtol=1e-5,
            atol=1e-7,
        )


class TestBinaryCrossEntropy:
    def test_confident_correct_prediction_has_low_loss(self):
        loss = BinaryCrossEntropy()
        assert loss.forward(np.array([0.999]), np.array([1.0])) < 0.01

    def test_confident_wrong_prediction_has_high_loss(self):
        loss = BinaryCrossEntropy()
        assert loss.forward(np.array([0.999]), np.array([0.0])) > 5.0

    def test_positive_weight_amplifies_positive_loss(self):
        unweighted = BinaryCrossEntropy()
        weighted = BinaryCrossEntropy(positive_weight=5.0)
        p = np.array([0.2])
        y = np.array([1.0])
        assert weighted.forward(p, y) == pytest.approx(5.0 * unweighted.forward(p, y))

    def test_gradient_matches_numerical(self):
        loss = BinaryCrossEntropy(positive_weight=2.0)
        rng = np.random.default_rng(1)
        predictions = rng.uniform(0.05, 0.95, size=(6, 1))
        targets = rng.integers(0, 2, size=(6, 1)).astype(float)
        np.testing.assert_allclose(
            loss.backward(predictions, targets),
            numerical_grad(loss, predictions, targets),
            rtol=1e-4,
            atol=1e-6,
        )

    def test_invalid_positive_weight(self):
        with pytest.raises(ValueError):
            BinaryCrossEntropy(positive_weight=0.0)


class TestSigmoidBinaryCrossEntropy:
    def test_agrees_with_probability_bce(self):
        logits = np.array([[-2.0], [0.5], [3.0]])
        targets = np.array([[0.0], [1.0], [1.0]])
        stable = SigmoidBinaryCrossEntropy().forward(logits, targets)
        probs = 1.0 / (1.0 + np.exp(-logits))
        reference = BinaryCrossEntropy().forward(probs, targets)
        assert stable == pytest.approx(reference, rel=1e-9)

    def test_stable_for_extreme_logits(self):
        loss = SigmoidBinaryCrossEntropy()
        value = loss.forward(np.array([[1000.0], [-1000.0]]), np.array([[1.0], [0.0]]))
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_gradient_is_sigmoid_minus_target_over_n(self):
        loss = SigmoidBinaryCrossEntropy()
        logits = np.array([[0.7], [-1.2]])
        targets = np.array([[1.0], [0.0]])
        grad = loss.backward(logits, targets)
        expected = (1.0 / (1.0 + np.exp(-logits)) - targets) / logits.size
        np.testing.assert_allclose(grad, expected)

    def test_gradient_matches_numerical(self):
        loss = SigmoidBinaryCrossEntropy(positive_weight=3.0)
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(5, 1))
        targets = rng.integers(0, 2, size=(5, 1)).astype(float)
        np.testing.assert_allclose(
            loss.backward(logits, targets),
            numerical_grad(loss, logits, targets),
            rtol=1e-5,
            atol=1e-7,
        )

    @given(
        logits=hnp.arrays(
            np.float64, (8, 1), elements=st.floats(-30, 30, allow_nan=False)
        ),
        targets=hnp.arrays(np.float64, (8, 1), elements=st.sampled_from([0.0, 1.0])),
    )
    @settings(max_examples=50, deadline=None)
    def test_loss_is_non_negative(self, logits, targets):
        assert SigmoidBinaryCrossEntropy().forward(logits, targets) >= 0.0
