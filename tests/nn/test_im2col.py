"""Tests for the im2col / col2im lowering used by all convolutions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_output_size, im2col, pad_same


class TestConvOutputSize:
    def test_same_padding_stride_one_preserves_size(self):
        assert conv_output_size(17, 3, 1, "same") == 17

    def test_same_padding_stride_two_rounds_up(self):
        assert conv_output_size(17, 3, 2, "same") == 9

    def test_valid_padding_shrinks_by_kernel(self):
        assert conv_output_size(17, 3, 1, "valid") == 15

    def test_valid_padding_with_stride(self):
        assert conv_output_size(16, 4, 4, "valid") == 4

    def test_unknown_padding_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(8, 3, 1, "reflect")

    @given(
        size=st.integers(min_value=1, max_value=64),
        kernel=st.integers(min_value=1, max_value=5),
        stride=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_same_output_matches_ceil_division(self, size, kernel, stride):
        assert conv_output_size(size, kernel, stride, "same") == -(-size // stride)


class TestPadSame:
    def test_no_padding_needed_returns_same_array(self):
        x = np.ones((1, 4, 4, 1))
        assert pad_same(x, (1, 1), (1, 1)) is x

    def test_3x3_stride1_pads_one_on_each_side(self):
        x = np.ones((1, 4, 5, 2))
        padded = pad_same(x, (3, 3), (1, 1))
        assert padded.shape == (1, 6, 7, 2)
        assert padded[:, 0, :, :].sum() == 0
        assert padded[:, -1, :, :].sum() == 0

    def test_padding_preserves_interior_values(self):
        rng = np.random.default_rng(0)
        x = rng.random((2, 5, 5, 3))
        padded = pad_same(x, (3, 3), (1, 1))
        np.testing.assert_array_equal(padded[:, 1:-1, 1:-1, :], x)


class TestIm2Col:
    def test_columns_shape(self):
        x = np.arange(2 * 6 * 8 * 3, dtype=float).reshape(2, 6, 8, 3)
        cols, (oh, ow), padded = im2col(x, (3, 3), (1, 1), "same")
        assert (oh, ow) == (6, 8)
        assert cols.shape == (2 * 6 * 8, 3 * 3 * 3)
        assert padded == (2, 8, 10, 3)

    def test_1x1_kernel_is_reshape(self):
        rng = np.random.default_rng(1)
        x = rng.random((1, 4, 5, 2))
        cols, (oh, ow), _ = im2col(x, (1, 1), (1, 1), "same")
        assert (oh, ow) == (4, 5)
        np.testing.assert_allclose(cols, x.reshape(-1, 2))

    def test_valid_window_contents(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        cols, (oh, ow), _ = im2col(x, (2, 2), (2, 2), "valid")
        assert (oh, ow) == (2, 2)
        np.testing.assert_array_equal(cols[0].ravel(), [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[3].ravel(), [10, 11, 14, 15])

    def test_kernel_too_large_for_valid_raises(self):
        x = np.zeros((1, 2, 2, 1))
        with pytest.raises(ValueError):
            im2col(x, (3, 3), (1, 1), "valid")

    def test_channels_kept_contiguous_per_position(self):
        x = np.zeros((1, 3, 3, 2))
        x[0, 1, 1, 0] = 7.0
        x[0, 1, 1, 1] = 9.0
        cols, _, _ = im2col(x, (1, 1), (1, 1), "same")
        center = cols[4]
        np.testing.assert_array_equal(center, [7.0, 9.0])


class TestCol2Im:
    def test_adjoint_property(self):
        """col2im must be the exact adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(2)
        x = rng.random((2, 5, 6, 3))
        for padding in ("same", "valid"):
            for stride in ((1, 1), (2, 2)):
                cols, out_size, padded_shape = im2col(x, (3, 3), stride, padding)
                y = rng.random(cols.shape)
                lhs = float((cols * y).sum())
                back = col2im(y, padded_shape, (3, 3), stride, out_size, (5, 6), padding)
                rhs = float((x * back).sum())
                assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_gradient_shape_matches_input(self):
        x = np.ones((1, 7, 9, 2))
        cols, out_size, padded_shape = im2col(x, (3, 3), (2, 2), "same")
        grad = col2im(np.ones_like(cols), padded_shape, (3, 3), (2, 2), out_size, (7, 9), "same")
        assert grad.shape == x.shape

    def test_overlapping_windows_accumulate(self):
        x = np.zeros((1, 3, 3, 1))
        cols, out_size, padded_shape = im2col(x, (3, 3), (1, 1), "same")
        grad = col2im(np.ones_like(cols), padded_shape, (3, 3), (1, 1), out_size, (3, 3), "same")
        # The centre pixel is covered by all 9 windows.
        assert grad[0, 1, 1, 0] == pytest.approx(9.0)
        # A corner pixel is covered by only 4 windows.
        assert grad[0, 0, 0, 0] == pytest.approx(4.0)
