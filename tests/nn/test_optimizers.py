"""Tests for optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optimizers import SGD, Adam, Momentum


def quadratic_grad(p: Parameter, target: np.ndarray) -> None:
    """Gradient of 0.5 * ||value - target||^2."""
    p.grad[...] = p.value - target


class TestSGD:
    def test_single_step_moves_against_gradient(self):
        p = Parameter("w", np.array([1.0, -2.0]))
        p.grad[...] = np.array([0.5, -0.5])
        SGD(learning_rate=0.1).step([p])
        np.testing.assert_allclose(p.value, [0.95, -1.95])

    def test_converges_on_quadratic(self):
        p = Parameter("w", np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        opt = SGD(learning_rate=0.2)
        for _ in range(100):
            quadratic_grad(p, target)
            opt.step([p])
        np.testing.assert_allclose(p.value, target, atol=1e-6)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_zero_grad_clears_gradients(self):
        p = Parameter("w", np.zeros(3))
        p.grad[...] = 1.0
        SGD(0.1).zero_grad([p])
        assert np.all(p.grad == 0.0)


class TestMomentum:
    def test_accumulates_velocity(self):
        p = Parameter("w", np.array([0.0]))
        opt = Momentum(learning_rate=0.1, momentum=0.9)
        p.grad[...] = np.array([1.0])
        opt.step([p])
        first_step = p.value.copy()
        p.grad[...] = np.array([1.0])
        opt.step([p])
        # Second update is larger because velocity accumulates.
        assert abs(p.value[0] - first_step[0]) > abs(first_step[0])

    def test_converges_on_quadratic(self):
        p = Parameter("w", np.array([4.0]))
        opt = Momentum(learning_rate=0.05, momentum=0.8)
        for _ in range(200):
            quadratic_grad(p, np.array([1.5]))
            opt.step([p])
        np.testing.assert_allclose(p.value, [1.5], atol=1e-5)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_first_step_size_close_to_learning_rate(self):
        p = Parameter("w", np.array([0.0]))
        opt = Adam(learning_rate=0.01)
        p.grad[...] = np.array([3.0])
        opt.step([p])
        assert p.value[0] == pytest.approx(-0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        p = Parameter("w", np.array([10.0, -10.0]))
        opt = Adam(learning_rate=0.3)
        target = np.array([2.0, -1.0])
        for _ in range(300):
            quadratic_grad(p, target)
            opt.step([p])
        np.testing.assert_allclose(p.value, target, atol=1e-3)

    def test_state_is_per_parameter(self):
        a = Parameter("a", np.array([0.0]))
        b = Parameter("b", np.array([0.0]))
        opt = Adam(learning_rate=0.1)
        a.grad[...] = np.array([1.0])
        b.grad[...] = np.array([-1.0])
        opt.step([a, b])
        assert a.value[0] < 0 < b.value[0]

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)
