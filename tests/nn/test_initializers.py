"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import (
    Constant,
    GlorotUniform,
    HeNormal,
    Orthogonal,
    initializer_from_name,
)


class TestConstant:
    def test_fills_with_value(self):
        out = Constant(3.5)((2, 3), np.random.default_rng(0))
        assert out.shape == (2, 3)
        assert np.all(out == 3.5)

    def test_default_is_zero(self):
        assert np.all(Constant()((4,), np.random.default_rng(0)) == 0.0)


class TestGlorotUniform:
    def test_respects_limit(self):
        shape = (50, 80)
        out = GlorotUniform()(shape, np.random.default_rng(0))
        limit = np.sqrt(6.0 / (50 + 80))
        assert out.shape == shape
        assert np.all(np.abs(out) <= limit)

    def test_conv_kernel_fan_includes_receptive_field(self):
        out = GlorotUniform()((3, 3, 8, 16), np.random.default_rng(0))
        limit = np.sqrt(6.0 / (9 * 8 + 9 * 16))
        assert np.all(np.abs(out) <= limit)

    def test_deterministic_given_seed(self):
        a = GlorotUniform()((10, 10), np.random.default_rng(7))
        b = GlorotUniform()((10, 10), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestHeNormal:
    def test_std_scales_with_fan_in(self):
        rng = np.random.default_rng(0)
        out = HeNormal()((2000, 50), rng)
        expected_std = np.sqrt(2.0 / 2000)
        assert out.std() == pytest.approx(expected_std, rel=0.1)

    def test_mean_near_zero(self):
        out = HeNormal()((100, 100), np.random.default_rng(1))
        assert abs(out.mean()) < 0.01


class TestOrthogonal:
    def test_columns_are_orthonormal(self):
        out = Orthogonal()((16, 8), np.random.default_rng(0))
        gram = out.T @ out
        np.testing.assert_allclose(gram, np.eye(8), atol=1e-8)

    def test_gain_scales_output(self):
        base = Orthogonal(gain=1.0)((8, 8), np.random.default_rng(3))
        scaled = Orthogonal(gain=2.0)((8, 8), np.random.default_rng(3))
        np.testing.assert_allclose(scaled, 2.0 * base)


class TestRegistry:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("constant", Constant),
            ("glorot_uniform", GlorotUniform),
            ("he_normal", HeNormal),
            ("orthogonal", Orthogonal),
        ],
    )
    def test_lookup_by_name(self, name, cls):
        assert isinstance(initializer_from_name(name), cls)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(initializer_from_name("He_Normal"), HeNormal)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="Unknown initializer"):
            initializer_from_name("uniform_magic")

    def test_kwargs_forwarded(self):
        init = initializer_from_name("constant", value=2.0)
        assert np.all(init((3,), np.random.default_rng(0)) == 2.0)
