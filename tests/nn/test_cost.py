"""Tests for the analytic multiply-add formulas (paper Section 4.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.cost import (
    conv_multiply_adds,
    dense_multiply_adds,
    model_multiply_adds,
    separable_conv_multiply_adds,
)
from repro.nn.layers import Conv2D, Dense, ReLU, SeparableConv2D
from repro.nn.model import Sequential


class TestPaperFormulas:
    def test_dense_formula(self):
        # N * H * W * M
        assert dense_multiply_adds(7, 120, 512, 200) == 200 * 7 * 120 * 512

    def test_conv_formula(self):
        # H/S * W/S * M * K^2 * F
        assert conv_multiply_adds(33, 60, 1024, kernel=1, filters=32) == 33 * 60 * 1024 * 1 * 32

    def test_conv_formula_with_stride(self):
        assert conv_multiply_adds(66, 120, 16, kernel=3, filters=8, stride=2) == 33 * 60 * 16 * 9 * 8

    def test_separable_formula(self):
        # H/S * W/S * M * (K^2 + F)
        assert separable_conv_multiply_adds(67, 120, 512, kernel=3, filters=16) == 67 * 120 * 512 * (9 + 16)

    def test_separable_cheaper_than_standard(self):
        standard = conv_multiply_adds(32, 32, 64, kernel=3, filters=64)
        separable = separable_conv_multiply_adds(32, 32, 64, kernel=3, filters=64)
        assert separable < standard / 7  # roughly K^2*F / (K^2+F) ~ 7.9x here

    @pytest.mark.parametrize("func", [dense_multiply_adds])
    def test_rejects_non_positive_dense(self, func):
        with pytest.raises(ValueError):
            func(0, 10, 10, 10)

    def test_rejects_non_positive_conv(self):
        with pytest.raises(ValueError):
            conv_multiply_adds(10, 10, 10, kernel=0, filters=4)

    @given(
        h=st.integers(1, 64),
        w=st.integers(1, 64),
        m=st.integers(1, 64),
        k=st.integers(1, 5),
        f=st.integers(1, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_formulas_are_positive_and_monotone_in_filters(self, h, w, m, k, f):
        base = conv_multiply_adds(h, w, m, kernel=k, filters=f)
        more = conv_multiply_adds(h, w, m, kernel=k, filters=f + 1)
        assert base > 0
        assert more > base


class TestLayerAgreement:
    """Layer.multiply_adds must agree with the standalone formulas."""

    def test_conv_layer_agrees(self):
        layer = Conv2D(8, 3, stride=2)
        layer.build((20, 30, 4), np.random.default_rng(0))
        assert layer.multiply_adds((20, 30, 4)) == conv_multiply_adds(20, 30, 4, 3, 8, stride=2)

    def test_separable_layer_agrees(self):
        layer = SeparableConv2D(8, 3)
        layer.build((20, 30, 4), np.random.default_rng(0))
        assert layer.multiply_adds((20, 30, 4)) == separable_conv_multiply_adds(20, 30, 4, 3, 8)

    def test_dense_layer_agrees(self):
        layer = Dense(16)
        layer.build((5, 6, 7), np.random.default_rng(0))
        assert layer.multiply_adds((5, 6, 7)) == dense_multiply_adds(5, 6, 7, 16)

    def test_model_multiply_adds_helper(self):
        model = Sequential(
            [Conv2D(4, 3, name="c"), ReLU(name="r"), Dense(2, name="d")],
            input_shape=(6, 6, 3),
        )
        assert model_multiply_adds(model) == model.multiply_adds()
