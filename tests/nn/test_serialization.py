"""Tests for weight serialization (microclassifier deployment)."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, ReLU
from repro.nn.model import Sequential
from repro.nn.serialization import load_weights, save_weights


def make_model(seed: int, name: str = "mc") -> Sequential:
    return Sequential(
        [Conv2D(4, 3, name="conv"), ReLU(name="relu"), Flatten(name="flat"), Dense(1, name="fc")],
        input_shape=(6, 6, 3),
        rng=np.random.default_rng(seed),
        name=name,
    )


class TestSaveLoad:
    def test_roundtrip_restores_predictions(self, tmp_path):
        source = make_model(0)
        target = make_model(1)
        x = np.random.default_rng(2).random((3, 6, 6, 3))
        assert not np.allclose(source.predict(x), target.predict(x))
        path = save_weights(source, tmp_path / "weights")
        metadata = load_weights(target, path)
        np.testing.assert_allclose(source.predict(x), target.predict(x))
        assert metadata["model_name"] == "mc"
        assert metadata["input_shape"] == [6, 6, 3]

    def test_npz_suffix_appended(self, tmp_path):
        path = save_weights(make_model(0), tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_strict_name_check(self, tmp_path):
        source = make_model(0, name="a")
        path = save_weights(source, tmp_path / "w")
        other = make_model(1, name="b")
        with pytest.raises(ValueError, match="saved from model"):
            load_weights(other, path)
        # Non-strict loading ignores the model name; parameter names (which
        # are layer-scoped) still line up, so the weights transfer.
        load_weights(other, path, strict=False)
        x = np.random.default_rng(9).random((2, 6, 6, 3))
        np.testing.assert_allclose(source.predict(x), other.predict(x))

    def test_creates_missing_directories(self, tmp_path):
        path = save_weights(make_model(0), tmp_path / "nested" / "dir" / "weights")
        assert path.exists()

    def test_load_accepts_path_without_suffix(self, tmp_path):
        source = make_model(0)
        save_weights(source, tmp_path / "weights")
        target = make_model(3)
        load_weights(target, tmp_path / "weights")
        x = np.random.default_rng(4).random((2, 6, 6, 3))
        np.testing.assert_allclose(source.predict(x), target.predict(x))
