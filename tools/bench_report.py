#!/usr/bin/env python3
"""Aggregate BENCH_*.json perf records into a per-revision trajectory.

The bench suite (``pytest benchmarks/ --json bench-records``) drops one
``BENCH_<NAME>.json`` per bench — a flat dict of that bench's headline
numbers (wall seconds, drop rates, overhead fractions, ...).  Those files
are per-run snapshots; this tool folds them into ``BENCH_TRAJECTORY.json``,
one entry per git revision, so performance drift across commits is a
single artifact instead of an archaeology project:

    python tools/bench_report.py --records bench-records
    python tools/bench_report.py --records bench-records --rev abc1234

Only numeric scalars (and booleans) are kept — the trajectory tracks
*numbers over time*, not nested structures.  Re-running on the same
revision replaces that revision's entry, so a CI re-run cannot duplicate
rows.  The tool prints a short drift table against the previous entry.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

TRAJECTORY_SCHEMA = "repro.bench.trajectory/v1"
DEFAULT_OUT = "BENCH_TRAJECTORY.json"


def current_revision() -> str:
    """The short git revision, or ``unknown`` outside a checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return result.stdout.strip() or "unknown"


def scalar_metrics(record: dict) -> dict:
    """The numeric (or boolean) top-level fields of one bench record."""
    return {
        key: value
        for key, value in sorted(record.items())
        if isinstance(value, (int, float, bool)) and not isinstance(value, complex)
    }


def collect_records(records_dir: Path) -> dict[str, dict]:
    """``{bench_name: metrics}`` from every BENCH_*.json in the directory."""
    benches: dict[str, dict] = {}
    for path in sorted(records_dir.glob("BENCH_*.json")):
        if path.name == DEFAULT_OUT:
            continue
        name = path.stem[len("BENCH_"):]
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"warning: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        if isinstance(record, dict):
            benches[name] = scalar_metrics(record)
    return benches


def load_trajectory(path: Path) -> list[dict]:
    """Existing trajectory entries (empty when absent or unreadable)."""
    if not path.is_file():
        return []
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        print(f"warning: {path.name} is corrupt, starting fresh", file=sys.stderr)
        return []
    if not isinstance(doc, dict) or doc.get("schema") != TRAJECTORY_SCHEMA:
        print(f"warning: {path.name} has an unknown schema, starting fresh", file=sys.stderr)
        return []
    entries = doc.get("entries", [])
    return entries if isinstance(entries, list) else []


def append_entry(entries: list[dict], rev: str, benches: dict[str, dict]) -> list[dict]:
    """Entries with ``rev`` replaced-or-appended (same rev = same row)."""
    kept = [entry for entry in entries if entry.get("rev") != rev]
    kept.append({"rev": rev, "benches": benches})
    return kept


def drift_lines(entries: list[dict]) -> list[str]:
    """Human-readable metric drift between the last two entries."""
    if len(entries) < 2:
        return []
    previous, latest = entries[-2], entries[-1]
    lines = [f"drift {previous.get('rev')} -> {latest.get('rev')}:"]
    for bench, metrics in sorted(latest.get("benches", {}).items()):
        old = previous.get("benches", {}).get(bench, {})
        for key, value in sorted(metrics.items()):
            before = old.get(key)
            if before is None or before == value:
                continue
            if isinstance(value, bool) or isinstance(before, bool):
                lines.append(f"  {bench}.{key}: {before} -> {value}")
            else:
                lines.append(f"  {bench}.{key}: {before:g} -> {value:g}")
    if len(lines) == 1:
        lines.append("  (no metric changed)")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_report",
        description="Fold BENCH_*.json perf records into BENCH_TRAJECTORY.json.",
    )
    parser.add_argument(
        "--records",
        type=Path,
        required=True,
        help="directory holding the BENCH_*.json files",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"trajectory file (default <records>/{DEFAULT_OUT})",
    )
    parser.add_argument(
        "--rev",
        default=None,
        help="revision label for this run (default: git rev-parse --short HEAD)",
    )
    args = parser.parse_args(argv)
    if not args.records.is_dir():
        print(f"error: {args.records} is not a directory", file=sys.stderr)
        return 1
    benches = collect_records(args.records)
    if not benches:
        print(f"error: no BENCH_*.json records in {args.records}", file=sys.stderr)
        return 1
    out = args.out or args.records / DEFAULT_OUT
    rev = args.rev or current_revision()
    entries = append_entry(load_trajectory(out), rev, benches)
    out.write_text(
        json.dumps(
            {"schema": TRAJECTORY_SCHEMA, "entries": entries},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    metric_count = sum(len(m) for m in benches.values())
    print(
        f"{out}: {len(entries)} revision(s), latest {rev} with "
        f"{len(benches)} bench(es) / {metric_count} metrics"
    )
    for line in drift_lines(entries):
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
