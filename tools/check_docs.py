#!/usr/bin/env python3
"""Docs-consistency checks, run by CI and by ``tests/test_docs.py``.

Five guarantees:

1. **Coverage** — every package under ``src/repro/`` is mentioned in
   ``docs/ARCHITECTURE.md`` (as ``repro.<name>``), so the architecture page
   cannot silently fall behind the code.
2. **Required pages** — the subsystem reference pages in ``REQUIRED_DOCS``
   exist (a rename or deletion fails CI rather than leaving dead links).
3. **Subsystem depth** — every module of the control plane is mentioned in
   ``docs/CONTROL.md`` (as ``repro.control.<name>``), mirroring the
   package-level guarantee at module granularity for the policy catalog.
4. **Accuracy plane** — ``docs/ACCURACY.md`` documents the trained-MC
   methodology and must reference every module that implements it
   (``repro.fleet.accuracy``, ``repro.control.trace``, and the
   accuracy-aware control policies in ``repro.control.value``).
5. **Observability plane** — every module of ``repro.obs`` is mentioned in
   ``docs/OBSERVABILITY.md`` (as ``repro.obs.<name>``), the same
   module-granularity guarantee the control plane gets.
6. **Batched dispatch** — ``docs/FLEET.md`` documents the batched
   cross-camera hot path and must reference every module that implements it
   (``repro.nn.batched``, ``repro.core.batched``, and the dispatch hook in
   ``repro.fleet.runtime``).
7. **Hierarchical scale-out** — ``docs/CONTROL.md`` documents the two-level
   control plane and must reference every module that implements it
   (``repro.control.hierarchy``, the district-partitioned fleet generator in
   ``repro.fleet.camera``, and the O(nodes) report path in
   ``repro.fleet.sharding``).
8. **Event delivery plane** — every module of ``repro.events`` is
   mentioned in ``docs/EVENTS.md`` (as ``repro.events.<name>``), plus the
   cross-package modules the delivery story depends on (the record schema
   in ``repro.core.events``, the transport integration in
   ``repro.fleet.sharding``).
9. **Snippet validity** — every fenced ``python`` code block in
   ``README.md`` and ``docs/*.md`` parses (``compile()``), so documented
   examples cannot rot into syntax errors.

Exit status 0 when everything holds; 1 with a problem list otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARCHITECTURE_DOC = REPO_ROOT / "docs" / "ARCHITECTURE.md"
CONTROL_DOC = REPO_ROOT / "docs" / "CONTROL.md"
ACCURACY_DOC = REPO_ROOT / "docs" / "ACCURACY.md"
OBSERVABILITY_DOC = REPO_ROOT / "docs" / "OBSERVABILITY.md"
EVENTS_DOC = REPO_ROOT / "docs" / "EVENTS.md"
REQUIRED_DOCS = (
    "ARCHITECTURE.md",
    "FLEET.md",
    "CONTROL.md",
    "ACCURACY.md",
    "OBSERVABILITY.md",
    "EVENTS.md",
)

# The accuracy plane spans two packages; its methodology page must point at
# every implementing module so none can be renamed out from under it.
# repro.control.value is the accuracy-aware control half (value shedding +
# threshold drift), documented alongside the signals it consumes.
ACCURACY_MODULES = ("repro.fleet.accuracy", "repro.control.trace", "repro.control.value")

# The batched cross-camera hot path spans three packages: the N>1 kernels,
# the per-tick scorer, and the runtime dispatch hook.  FLEET.md owns the
# data-flow story and must point at every implementing module.
BATCHED_MODULES = ("repro.nn.batched", "repro.core.batched", "repro.fleet.runtime")
FLEET_DOC = REPO_ROOT / "docs" / "FLEET.md"

# The explainability layer must stay documented even if obs-module
# auto-discovery ever changes: alerting and incident correlation are pinned
# by name, on top of the every-module check below.
OBS_REQUIRED_MODULES = ("repro.obs.alerts", "repro.obs.incident")

# The hierarchical control plane spans two packages: the node/cluster
# planes themselves, the district-partitioned fleet generator, and the
# O(nodes) cluster report path.  CONTROL.md owns the scale-out story and
# must point at every implementing module (the control-module
# auto-discovery below only covers repro.control.*).
HIERARCHY_MODULES = (
    "repro.control.hierarchy",
    "repro.fleet.camera",
    "repro.fleet.sharding",
)

# The event delivery plane spans three packages: the repro.events pipeline
# (covered module-by-module below), the record/identity schema, and the
# shared-uplink transport integration.  EVENTS.md owns the delivery story
# and must point at every implementing module.
EVENTS_REQUIRED_MODULES = ("repro.core.events", "repro.fleet.sharding")

_FENCE_RE = re.compile(r"^```")


def repro_packages(src_root: Path | None = None) -> list[str]:
    """Package names under ``src/repro/`` (directories with an __init__.py)."""
    root = (src_root or REPO_ROOT / "src") / "repro"
    return sorted(
        p.name for p in root.iterdir() if p.is_dir() and (p / "__init__.py").is_file()
    )


def check_architecture_coverage(doc_path: Path | None = None) -> list[str]:
    """Packages missing from the architecture doc (empty list = all covered)."""
    doc_path = doc_path or ARCHITECTURE_DOC
    if not doc_path.is_file():
        return [f"{doc_path} does not exist"]
    text = doc_path.read_text(encoding="utf-8")
    return [
        f"package repro.{name} is not mentioned in {doc_path.name}"
        for name in repro_packages()
        if f"repro.{name}" not in text
    ]


def check_required_docs() -> list[str]:
    """Missing subsystem reference pages (empty list = all present)."""
    return [
        f"docs/{name} is required but does not exist"
        for name in REQUIRED_DOCS
        if not (REPO_ROOT / "docs" / name).is_file()
    ]


def control_modules(src_root: Path | None = None) -> list[str]:
    """Module names under ``src/repro/control/`` (excluding __init__)."""
    root = (src_root or REPO_ROOT / "src") / "repro" / "control"
    if not root.is_dir():
        return []
    return sorted(p.stem for p in root.glob("*.py") if p.stem != "__init__")


def check_control_coverage(doc_path: Path | None = None) -> list[str]:
    """Control modules missing from the control doc (empty list = covered)."""
    doc_path = doc_path or CONTROL_DOC
    if not doc_path.is_file():
        return []  # existence is check_required_docs' problem
    text = doc_path.read_text(encoding="utf-8")
    return [
        f"module repro.control.{name} is not mentioned in {doc_path.name}"
        for name in control_modules()
        if f"repro.control.{name}" not in text
    ]


def check_accuracy_coverage(doc_path: Path | None = None) -> list[str]:
    """Accuracy modules missing from the accuracy doc (empty list = covered)."""
    doc_path = doc_path or ACCURACY_DOC
    if not doc_path.is_file():
        return []  # existence is check_required_docs' problem
    text = doc_path.read_text(encoding="utf-8")
    return [
        f"module {name} is not mentioned in {doc_path.name}"
        for name in ACCURACY_MODULES
        if name not in text
    ]


def check_hierarchy_coverage(doc_path: Path | None = None) -> list[str]:
    """Hierarchy modules missing from the control doc (empty list = covered)."""
    doc_path = doc_path or CONTROL_DOC
    if not doc_path.is_file():
        return []  # existence is check_required_docs' problem
    text = doc_path.read_text(encoding="utf-8")
    return [
        f"module {name} is not mentioned in {doc_path.name}"
        for name in HIERARCHY_MODULES
        if name not in text
    ]


def check_batched_coverage(doc_path: Path | None = None) -> list[str]:
    """Batching modules missing from the fleet doc (empty list = covered)."""
    doc_path = doc_path or FLEET_DOC
    if not doc_path.is_file():
        return []  # existence is check_required_docs' problem
    text = doc_path.read_text(encoding="utf-8")
    return [
        f"module {name} is not mentioned in {doc_path.name}"
        for name in BATCHED_MODULES
        if name not in text
    ]


def obs_modules(src_root: Path | None = None) -> list[str]:
    """Module names under ``src/repro/obs/`` (excluding __init__)."""
    root = (src_root or REPO_ROOT / "src") / "repro" / "obs"
    if not root.is_dir():
        return []
    return sorted(p.stem for p in root.glob("*.py") if p.stem != "__init__")


def check_obs_coverage(doc_path: Path | None = None) -> list[str]:
    """Observability modules missing from the obs doc (empty list = covered)."""
    doc_path = doc_path or OBSERVABILITY_DOC
    if not doc_path.is_file():
        return []  # existence is check_required_docs' problem
    text = doc_path.read_text(encoding="utf-8")
    problems = [
        f"module repro.obs.{name} is not mentioned in {doc_path.name}"
        for name in obs_modules()
        if f"repro.obs.{name}" not in text
    ]
    problems.extend(
        f"required module {name} is not mentioned in {doc_path.name}"
        for name in OBS_REQUIRED_MODULES
        if name not in text and not any(name in p for p in problems)
    )
    return problems


def events_modules(src_root: Path | None = None) -> list[str]:
    """Module names under ``src/repro/events/`` (excluding __init__)."""
    root = (src_root or REPO_ROOT / "src") / "repro" / "events"
    if not root.is_dir():
        return []
    return sorted(p.stem for p in root.glob("*.py") if p.stem != "__init__")


def check_events_coverage(doc_path: Path | None = None) -> list[str]:
    """Delivery-plane modules missing from the events doc (empty = covered)."""
    doc_path = doc_path or EVENTS_DOC
    if not doc_path.is_file():
        return []  # existence is check_required_docs' problem
    text = doc_path.read_text(encoding="utf-8")
    problems = [
        f"module repro.events.{name} is not mentioned in {doc_path.name}"
        for name in events_modules()
        if f"repro.events.{name}" not in text
    ]
    problems.extend(
        f"required module {name} is not mentioned in {doc_path.name}"
        for name in EVENTS_REQUIRED_MODULES
        if name not in text
    )
    return problems


def extract_python_snippets(markdown_path: Path) -> list[tuple[int, str]]:
    """``(start_line, source)`` for each fenced python block in the file."""
    snippets: list[tuple[int, str]] = []
    fence_lang: str | None = None
    start = 0
    lines: list[str] = []
    for lineno, line in enumerate(markdown_path.read_text(encoding="utf-8").splitlines(), 1):
        stripped = line.strip()
        if _FENCE_RE.match(stripped):
            if fence_lang is None:
                # Opening fence; the first word of the info string is the
                # language (```python title="x" still counts as python).
                info = stripped.lstrip("`").strip()
                fence_lang = info.split()[0].lower() if info else ""
                start = lineno + 1
                lines = []
            else:
                if fence_lang == "python":
                    snippets.append((start, "\n".join(lines)))
                fence_lang = None
        elif fence_lang is not None:
            lines.append(line)
    return snippets


def documentation_files() -> list[Path]:
    """Markdown files whose python snippets must parse."""
    files = [REPO_ROOT / "README.md"]
    docs_dir = REPO_ROOT / "docs"
    if docs_dir.is_dir():
        files.extend(sorted(docs_dir.glob("*.md")))
    return [f for f in files if f.is_file()]


def check_snippets() -> list[str]:
    """Syntax errors across all documented python snippets (empty = clean)."""
    problems = []
    for path in documentation_files():
        for start_line, source in extract_python_snippets(path):
            try:
                compile(source, str(path), "exec")
            except SyntaxError as exc:
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{start_line}: "
                    f"python snippet does not parse: {exc.msg} (line {exc.lineno})"
                )
    return problems


def main() -> int:
    problems = (
        check_architecture_coverage()
        + check_required_docs()
        + check_control_coverage()
        + check_accuracy_coverage()
        + check_obs_coverage()
        + check_batched_coverage()
        + check_hierarchy_coverage()
        + check_events_coverage()
        + check_snippets()
    )
    if problems:
        print("Docs consistency check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    packages = repro_packages()
    snippet_count = sum(len(extract_python_snippets(p)) for p in documentation_files())
    print(
        f"Docs consistency check passed: {len(packages)} packages covered, "
        f"{snippet_count} python snippets parsed."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
