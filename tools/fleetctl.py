#!/usr/bin/env python3
"""fleetctl: inspect a fleet run from its exported artifacts.

Operates on the files a run (e.g. ``examples/incident_demo.py``) writes to
its output directory — no live runtime needed:

* ``control_trace.jsonl`` — the replayable control trace
  (``repro.control.trace``): header, actions, decision provenance records,
  telemetry, summary;
* ``alerts.jsonl``        — fire/resolve events (``AlertLog.write_jsonl``);
* ``timeline.jsonl``      — metric timeline samples
  (``MetricsTimeline.write_jsonl``);
* ``delivery_log.jsonl``  — one line per event record carried by the
  delivery plane (``EventDeliveryPlane.delivery_log_jsonl``).

Four subcommands::

    fleetctl.py summarize --dir out/   # run overview + incidents
    fleetctl.py alerts    --dir out/   # every fire/resolve transition
    fleetctl.py explain 7 --dir out/   # the decision record behind action 7
    fleetctl.py events    --dir out/   # event-delivery outcomes + latency

``explain`` is the provenance contract made interactive: any action in the
trace replays back to the inputs its controller read, the gates it applied,
and the candidate ranking it chose from.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.control.trace import explain_action, load_trace  # noqa: E402
from repro.events import nearest_rank_percentile  # noqa: E402
from repro.obs.alerts import AlertEvent, AlertLog  # noqa: E402
from repro.obs.incident import incident_reports  # noqa: E402

TRACE_FILE = "control_trace.jsonl"
ALERTS_FILE = "alerts.jsonl"
TIMELINE_FILE = "timeline.jsonl"
DELIVERY_LOG_FILE = "delivery_log.jsonl"


def load_alert_log(path: Path) -> AlertLog:
    """Rebuild an :class:`AlertLog` from its JSONL export."""
    events = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        entry = json.loads(line)
        events.append(
            AlertEvent(
                time=entry["t"],
                rule=entry["rule"],
                source=entry["source"],
                state=entry["state"],
                severity=entry["severity"],
                value=entry["value"],
                threshold=entry["threshold"],
            )
        )
    return AlertLog(events=tuple(events))


def _split_trace(records: list[dict]) -> tuple[list[str], list[dict], dict]:
    """``(control_log, decision_records, summary)`` from loaded trace records."""
    control_log = [r["entry"] for r in records if r.get("type") == "action"]
    decisions = [r for r in records if r.get("type") == "decision"]
    summary = next((r for r in records if r.get("type") == "summary"), {})
    return control_log, decisions, summary


def _timeline_span(path: Path) -> tuple[int, float | None]:
    """``(sample_count, last_time)`` of a timeline JSONL export."""
    count = 0
    last: float | None = None
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        count += 1
        last = json.loads(line).get("t", last)
    return count, last


def cmd_summarize(out_dir: Path, slack_seconds: float) -> int:
    trace_path = out_dir / TRACE_FILE
    if not trace_path.is_file():
        print(f"error: {trace_path} not found", file=sys.stderr)
        return 1
    records = load_trace(trace_path)
    header = records[0]
    control_log, decisions, summary = _split_trace(records)
    print(f"run artifacts in {out_dir}/ (schema {header.get('schema')})")
    print(
        f"  {header.get('actions', 0)} actions, "
        f"{header.get('decisions', 0)} decisions, "
        f"{header.get('telemetry', 0)} telemetry series"
    )
    for field in ("frames_generated", "frames_scored", "frames_dropped", "control_ticks"):
        if summary.get(field) is not None:
            print(f"  {field}: {summary[field]}")

    timeline_path = out_dir / TIMELINE_FILE
    horizon: float | None = None
    if timeline_path.is_file():
        count, horizon = _timeline_span(timeline_path)
        print(f"  timeline: {count} samples, horizon t={horizon:g}")

    alerts_path = out_dir / ALERTS_FILE
    if not alerts_path.is_file():
        print("  alerts: no alerts.jsonl exported")
        return 0
    log = load_alert_log(alerts_path)
    print(f"  {log.summary()}")
    reports = incident_reports(
        log,
        decision_records=decisions,
        control_log=control_log,
        horizon=horizon,
        slack_seconds=slack_seconds,
    )
    if not reports:
        print("  incidents: none")
        return 0
    print(f"  incidents: {len(reports)}")
    print()
    for report in reports:
        sys.stdout.write(report.to_markdown())
        print()
    return 0


def cmd_alerts(out_dir: Path) -> int:
    alerts_path = out_dir / ALERTS_FILE
    if not alerts_path.is_file():
        print(f"error: {alerts_path} not found", file=sys.stderr)
        return 1
    log = load_alert_log(alerts_path)
    print(log.summary())
    for event in log.events:
        print(
            f"  t={event.time:8.3f} {event.state:<8} {event.rule} "
            f"on {event.source} [{event.severity}] "
            f"value={event.value:.4g} threshold={event.threshold:g}"
        )
    return 0


def cmd_explain(out_dir: Path, action_seq: int) -> int:
    trace_path = out_dir / TRACE_FILE
    if not trace_path.is_file():
        print(f"error: {trace_path} not found", file=sys.stderr)
        return 1
    records = load_trace(trace_path)
    action = next(
        (r for r in records if r.get("type") == "action" and r.get("seq") == action_seq),
        None,
    )
    try:
        decision = explain_action(records, action_seq)
    except IndexError:
        total = sum(1 for r in records if r.get("type") == "action")
        print(
            f"error: no action with seq={action_seq} (trace has {total})",
            file=sys.stderr,
        )
        return 1
    except KeyError:
        print(f"action {action_seq}: {action['entry']}")
        print("no decision record claims this action (pre-provenance v1 trace)")
        return 1
    print(f"action {action_seq}: {action['entry']}")
    where = decision.get("node") or "cluster"
    print(
        f"decided by {decision.get('controller')}/{decision.get('kind')} "
        f"on {where} at tick {decision.get('tick')} (t={decision.get('t'):g})"
    )
    inputs = decision.get("inputs") or {}
    if inputs:
        print("inputs:")
        for name, value in sorted(inputs.items()):
            print(f"  {name} = {value:g}")
    gates = decision.get("gates") or {}
    if gates:
        print("gates:")
        for name, value in sorted(gates.items()):
            print(f"  {name} = {value}")
    candidates = decision.get("candidates") or []
    if candidates:
        print("candidates (ranked, * = chosen):")
        for candidate in candidates:
            mark = "*" if candidate.get("chosen") else " "
            detail = candidate.get("detail") or {}
            extra = (
                " (" + ", ".join(f"{k}={v:.4g}" for k, v in sorted(detail.items())) + ")"
                if detail
                else ""
            )
            print(f" {mark} {candidate.get('id')}: score={candidate.get('score'):.6g}{extra}")
    siblings = [s for s in decision.get("action_seqs", []) if s != action_seq]
    if siblings:
        print(f"sibling actions from the same decision: {siblings}")
    if decision.get("reason"):
        print(f"reason: {decision['reason']}")
    return 0


def cmd_events(out_dir: Path, worst: int) -> int:
    log_path = out_dir / DELIVERY_LOG_FILE
    if not log_path.is_file():
        print(f"error: {log_path} not found", file=sys.stderr)
        return 1
    entries = [
        json.loads(line)
        for line in log_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not entries:
        print(f"error: {log_path} is empty", file=sys.stderr)
        return 1

    by_state: dict[str, int] = {}
    for entry in entries:
        by_state[entry["state"]] = by_state.get(entry["state"], 0) + 1
    retries = sum(max(0, entry["attempts"] - 1) for entry in entries)
    duped = sum(entry["dup_suppressed"] for entry in entries)
    latencies = [
        entry["latency"] for entry in entries if entry["delivered_at"] is not None
    ]

    states = ", ".join(f"{state}={count}" for state, count in sorted(by_state.items()))
    print(f"{len(entries)} event records: {states}")
    print(f"retries {retries} | duplicate deliveries suppressed {duped}")
    if latencies:
        p50 = nearest_rank_percentile(latencies, 0.50)
        p95 = nearest_rank_percentile(latencies, 0.95)
        p99 = nearest_rank_percentile(latencies, 0.99)
        print(
            f"delivery latency over {len(latencies)} delivered: "
            f"p50 {p50 * 1e3:.1f} ms | p95 {p95 * 1e3:.1f} ms | p99 {p99 * 1e3:.1f} ms"
        )
    else:
        print("no record was delivered")

    # Worst cameras: rank by slowest delivery, with undelivered records
    # (dead letters, overflow drops) sorting above any finite latency.
    per_camera: dict[str, dict] = {}
    for entry in entries:
        stats = per_camera.setdefault(
            entry["camera"],
            {"records": 0, "retries": 0, "undelivered": 0, "worst": 0.0},
        )
        stats["records"] += 1
        stats["retries"] += max(0, entry["attempts"] - 1)
        if entry["delivered_at"] is None:
            stats["undelivered"] += 1
        else:
            stats["worst"] = max(stats["worst"], entry["latency"])
    ranked = sorted(
        per_camera.items(),
        key=lambda item: (-item[1]["undelivered"], -item[1]["worst"], item[0]),
    )
    print(f"worst cameras (top {min(worst, len(ranked))} of {len(ranked)}):")
    for camera, stats in ranked[:worst]:
        print(
            f"  {camera}: {stats['records']} records, "
            f"{stats['retries']} retries, {stats['undelivered']} undelivered, "
            f"worst latency {stats['worst'] * 1e3:.1f} ms"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fleetctl", description="Inspect a fleet run's exported artifacts."
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path("."),
        help="directory holding control_trace.jsonl / alerts.jsonl / timeline.jsonl",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="run overview + incident reports")
    p_sum.add_argument(
        "--slack-seconds",
        type=float,
        default=0.5,
        help="widen incident windows when joining decisions/actions (default 0.5)",
    )
    sub.add_parser("alerts", help="list every fire/resolve alert transition")
    p_explain = sub.add_parser(
        "explain", help="show the decision record behind one action"
    )
    p_explain.add_argument("action_seq", type=int, help="action sequence number")
    p_events = sub.add_parser(
        "events", help="summarize an exported event-delivery log"
    )
    p_events.add_argument(
        "--worst",
        type=int,
        default=5,
        help="how many worst-delivery cameras to list (default 5)",
    )
    args = parser.parse_args(argv)
    if args.command == "summarize":
        return cmd_summarize(args.dir, args.slack_seconds)
    if args.command == "alerts":
        return cmd_alerts(args.dir)
    if args.command == "events":
        return cmd_events(args.dir, args.worst)
    return cmd_explain(args.dir, args.action_seq)


if __name__ == "__main__":
    raise SystemExit(main())
