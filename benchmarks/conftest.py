"""Shared fixtures for the benchmark suite.

The accuracy benchmarks (Figures 4 and 7) train real classifiers, which is
too slow to repeat many times under ``pytest-benchmark``; they therefore use
compact datasets (roughly 1/20th of the paper's spatial scale, a few hundred
frames) and run a single benchmark round.  The headline numbers recorded in
``EXPERIMENTS.md`` come from the larger ``python -m repro.experiments.runner``
presets; these benchmarks regenerate the same series at a size that finishes
in minutes.
"""

from __future__ import annotations

import pytest

from repro.core.training import TrainingConfig
from repro.experiments.common import ExperimentContext
from repro.video.datasets import make_jackson_like, make_roadway_like

BENCH_FRAMES = 240
BENCH_TRAINING = TrainingConfig(epochs=4.0, batch_size=16, learning_rate=2e-3, seed=0)


@pytest.fixture(scope="session")
def roadway_context() -> ExperimentContext:
    """A Roadway-like (People with red) experiment context shared across benches."""
    dataset = make_roadway_like(num_frames=BENCH_FRAMES, width=128, height=54, seed=23)
    return ExperimentContext(dataset, alpha=0.25, seed=0)


@pytest.fixture(scope="session")
def jackson_context() -> ExperimentContext:
    """A Jackson-like (Pedestrian) experiment context shared across benches."""
    dataset = make_jackson_like(num_frames=BENCH_FRAMES, width=128, height=72, seed=7)
    return ExperimentContext(dataset, alpha=0.25, seed=0)
