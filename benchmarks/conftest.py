"""Shared fixtures for the benchmark suite.

The accuracy benchmarks (Figures 4 and 7) train real classifiers, which is
too slow to repeat many times under ``pytest-benchmark``; they therefore use
compact datasets (roughly 1/20th of the paper's spatial scale, a few hundred
frames) and run a single benchmark round.  The headline numbers recorded in
``EXPERIMENTS.md`` come from the larger ``python -m repro.experiments.runner``
presets; these benchmarks regenerate the same series at a size that finishes
in minutes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.training import TrainingConfig
from repro.experiments.common import ExperimentContext
from repro.video.datasets import make_jackson_like, make_roadway_like

BENCH_FRAMES = 240
BENCH_TRAINING = TrainingConfig(epochs=4.0, batch_size=16, learning_rate=2e-3, seed=0)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--json",
        action="store",
        default=None,
        help=(
            "Write BENCH_*.json perf records (drop rate, p99 wait, wall time). "
            "PATH is a directory (one BENCH_<NAME>.json per bench) or a .json "
            "file when a single bench runs.  Env fallback: BENCH_JSON."
        ),
    )


@pytest.fixture(scope="session")
def perf_records(request: pytest.FixtureRequest) -> dict:
    """Session-wide collector the fleet benches fill with perf records.

    Each bench stores ``perf_records["NAME"] = {...}``; at session end the
    records are written as JSON next to the path given by ``--json`` (or the
    ``BENCH_JSON`` environment variable).  Without either, collection is a
    no-op — the benches still run and assert.
    """
    records: dict[str, dict] = {}
    yield records
    target = request.config.getoption("--json") or os.environ.get("BENCH_JSON")
    if not target or not records:
        return
    path = Path(target)
    if path.suffix == ".json":
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = next(iter(records.values())) if len(records) == 1 else records
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    path.mkdir(parents=True, exist_ok=True)
    for name, record in records.items():
        out = path / f"BENCH_{name}.json"
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def roadway_context() -> ExperimentContext:
    """A Roadway-like (People with red) experiment context shared across benches."""
    dataset = make_roadway_like(num_frames=BENCH_FRAMES, width=128, height=54, seed=23)
    return ExperimentContext(dataset, alpha=0.25, seed=0)


@pytest.fixture(scope="session")
def jackson_context() -> ExperimentContext:
    """A Jackson-like (Pedestrian) experiment context shared across benches."""
    dataset = make_jackson_like(num_frames=BENCH_FRAMES, width=128, height=72, seed=7)
    return ExperimentContext(dataset, alpha=0.25, seed=0)
