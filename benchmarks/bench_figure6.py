"""Benchmark + reproduction of Figure 6: execution-time breakdown per frame.

For each microclassifier architecture, prints how the per-frame processing
time splits between the (constant) base DNN and the growing microclassifier
population, at the paper's 1920x1080 scale.
"""

from __future__ import annotations

from repro.experiments.figure6 import PAPER_BREAKDOWN_COUNTS, run_figure6


def _print_breakdowns(result) -> None:
    for architecture, per_count in result.breakdowns.items():
        print(f"\nFigure 6 — execution time per frame ({architecture} MC)")
        print(f"{'classifiers':>12s} {'base DNN (s)':>14s} {'MCs (s)':>10s} {'total (s)':>10s}")
        for count in sorted(per_count):
            b = per_count[count]
            print(
                f"{count:>12d} {b.base_dnn_seconds:>14.3f} {b.classifiers_seconds:>10.3f} "
                f"{b.total_seconds:>10.3f}"
            )
        print(
            f"base DNN is equivalent to ~{result.equivalent_mcs_to_base_dnn(architecture):.0f} "
            f"{architecture} MCs"
        )


def test_figure6_execution_breakdown(benchmark):
    """Regenerate the three Figure 6 subplots from the throughput model."""
    result = benchmark(run_figure6)
    _print_breakdowns(result)
    assert set(result.breakdowns) == {"full_frame", "localized", "windowed"}
    for architecture, per_count in result.breakdowns.items():
        assert sorted(per_count) == sorted(PAPER_BREAKDOWN_COUNTS)
        # The paper's observation: total time grows only modestly as dozens of
        # MCs are added, because the base DNN dominates.
        one = per_count[1]
        fifty = per_count[50]
        assert one.base_dnn_seconds == fifty.base_dnn_seconds
        assert 10 <= result.equivalent_mcs_to_base_dnn(architecture) <= 55
