"""Benchmark of the adaptive control plane against the best static cluster.

The scenario is built to defeat *static* resource management: a 64-camera /
4-node cluster whose load moves mid-run.  Sixteen "hot" 24 fps cameras run
at half duty — eight are live only in the first half of the run, eight only
in the second — while 48 steady low-rate cameras fill every node.  Placement
policies cost cameras by frame rate, resolution, and scenario, but *not* by
duty cycle, so every static placement parks whole temporal hotspots on a few
nodes: the cluster is simultaneously overloaded (the nodes whose hot cameras
are live) and underutilized (the nodes whose hot cameras are silent), and a
static configuration can never move the work.

The adaptive run starts from the same best-effort placement (load-aware LPT)
and adds the `repro.control` plane: migration chases the hotspot (early
cameras move toward the idle late nodes, then the late wave is rebalanced
back), gentle adaptive shedding trims the queue-wait tail, and the
work-conserving uplink lets the uploading nodes borrow the idle nodes'
headroom.  Asserted headlines:

* adaptive cluster drop rate beats the *best* static placement at the same
  uplink budget (with margin);
* the work-conserving uplink reclaims idle bytes that static slicing would
  have wasted;
* the whole control loop is deterministic — two identical runs produce
  identical decision logs and reports.
"""

from __future__ import annotations

import time

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
    SheddingConfig,
    UplinkShareController,
)
from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
)

NUM_NODES = 4
DURATION_SECONDS = 3.0
HALF_SECONDS = 1.5
TOTAL_UPLINK_BPS = 400_000.0
STATIC_POLICIES = ("round_robin", "load_aware", "resolution_aware")

# Near-capacity provisioning with resolution-scaled service times: a node
# sustains ~75 fps of 64x48 frames — far below a live hotspot's ~130 fps
# offered, far above the ~35 fps its quiet half offers.
NODE_CONFIG = FleetConfig(
    num_workers=2,
    queue_capacity=8,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=40.0,
    resolution_scaled_service=True,
)

_RESULTS: dict[str, tuple[object, float]] = {}


def make_hotspot_fleet() -> list[CameraSpec]:
    """64 cameras with a mid-run hotspot no static placement can track.

    The 16 hot cameras share one resolution, rate, and scenario, so every
    placement policy sees identical costs and deals them cyclically in id
    order — ids are chosen so the early-half cameras land on nodes 0/1 and
    the late-half cameras on nodes 2/3 under both round-robin (list order)
    and load-aware (cost-then-id order) placement.
    """
    cameras: list[CameraSpec] = []
    for i in range(16):
        late = i % 4 >= 2
        cameras.append(
            CameraSpec(
                camera_id=f"hot{i:02d}",
                width=64,
                height=48,
                frame_rate=24.0,
                num_frames=int(24.0 * HALF_SECONDS),
                scenario="busy_intersection",
                seed=100 + i,
                event_rate_scale=1.0,
                start_time=HALF_SECONDS if late else 0.0,
            )
        )
    scenarios = ("quiet_residential", "urban_day", "retail_entrance", "night_watch")
    for i in range(48):
        rate = 4.0 if i % 2 == 0 else 2.0
        cameras.append(
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=80,
                height=48,
                frame_rate=rate,
                num_frames=int(rate * DURATION_SECONDS),
                scenario=scenarios[i % 4],
                seed=i,
                event_rate_scale=1.0,
            )
        )
    return cameras


def build_control_loop() -> ControlLoop:
    """The composed adaptive control plane under benchmark."""
    return ControlLoop(
        [
            AdaptiveSheddingController(
                SheddingConfig(
                    high_watermark_seconds=0.6,
                    low_watermark_seconds=0.2,
                    cameras_per_step=1,
                    quota_ladder=(2,),
                )
            ),
            UplinkShareController(),
            MigrationController(
                MigrationConfig(
                    imbalance_threshold=1.10,
                    sustain_ticks=1,
                    cooldown_ticks=1,
                    camera_cooldown_ticks=12,
                    payback_factor=1.2,
                    cost_model=MigrationCostModel(
                        blackout_seconds=0.10, cold_start_seconds=0.15
                    ),
                )
            ),
        ],
        interval_seconds=0.25,
    )


def run_static(policy: str):
    """One statically sliced cluster run under ``policy`` (cached)."""
    key = f"static:{policy}"
    if key not in _RESULTS:
        config = ShardingConfig(
            num_nodes=NUM_NODES,
            placement=policy,
            total_uplink_bps=TOTAL_UPLINK_BPS,
            uplink_allocation="equal",
            node_config=NODE_CONFIG,
        )
        started = time.perf_counter()
        report = ShardedFleetRuntime(make_hotspot_fleet(), config=config).run()
        _RESULTS[key] = (report, time.perf_counter() - started)
    return _RESULTS[key][0]


def run_adaptive(key: str = "adaptive"):
    """One adaptive run: load-aware start + control plane (cached by key)."""
    if key not in _RESULTS:
        config = ShardingConfig(
            num_nodes=NUM_NODES,
            placement="load_aware",
            total_uplink_bps=TOTAL_UPLINK_BPS,
            uplink_allocation="equal",
            uplink_sharing="work_conserving",
            node_config=NODE_CONFIG,
        )
        started = time.perf_counter()
        report = ShardedFleetRuntime(
            make_hotspot_fleet(), config=config, control_loop=build_control_loop()
        ).run()
        _RESULTS[key] = (report, time.perf_counter() - started)
    return _RESULTS[key][0]


def best_static():
    """The static configuration with the lowest cluster drop rate."""
    return min(
        (run_static(policy) for policy in STATIC_POLICIES), key=lambda r: r.drop_rate
    )


def _print_report(title: str, report) -> None:
    print(f"\n=== control bench: {title} ===")
    print(report.summary())


def test_static_policies_leave_hotspots():
    """Every static placement strands a temporal hotspot on some node."""
    for policy in STATIC_POLICIES:
        report = run_static(policy)
        _print_report(policy, report)
        assert report.num_cameras == 64
        assert (
            report.frames_scored + report.frames_dropped + report.frames_rejected
            == report.frames_generated
        )
        # Near-capacity on the hot halves: every static config sheds.
        assert report.drop_rate > 0.10


def test_adaptive_beats_best_static_drop_rate():
    """The headline claim: closed-loop control beats the best static config."""
    adaptive = run_adaptive()
    static = best_static()
    _print_report("adaptive (load_aware + control plane)", adaptive)
    print(
        f"\ncluster drop rate: best static {static.drop_rate:.1%} "
        f"({static.placement_policy}) vs adaptive {adaptive.drop_rate:.1%}"
    )
    assert adaptive.migrations_performed > 0
    assert (
        adaptive.frames_scored + adaptive.frames_dropped + adaptive.frames_rejected
        == adaptive.frames_generated
    )
    # Same fleet is fully accounted for in both regimes.
    assert adaptive.frames_generated == static.frames_generated
    # The margin claim: measurably lower, not a float hair.
    assert adaptive.drop_rate < 0.95 * static.drop_rate


def test_work_conserving_uplink_reclaims_idle_bytes():
    """Idle uplink capacity flows to backlogged nodes instead of being wasted."""
    adaptive = run_adaptive()
    assert adaptive.uplink_sharing == "work_conserving"
    assert adaptive.reclaimed_uplink_bytes > 0
    print(
        f"\nwork-conserving uplink reclaimed "
        f"{adaptive.reclaimed_uplink_bytes / 1024:.1f} KiB at the same "
        f"{TOTAL_UPLINK_BPS / 1e6:.2f} Mbps budget"
    )


def test_adaptive_control_is_deterministic():
    """Same seed, same config: identical decisions, telemetry, and report."""
    first = run_adaptive("adaptive")
    second = run_adaptive("adaptive-repeat")
    assert first.control_log == second.control_log
    assert first.telemetry == second.telemetry
    assert first.frames_scored == second.frames_scored
    assert first.drop_rate == second.drop_rate
    assert first.reclaimed_uplink_bits == second.reclaimed_uplink_bits


def test_control_perf_record(perf_records):
    """Publish the adaptive run's headline numbers as a perf record."""
    adaptive = run_adaptive()
    static = best_static()
    perf_records["CONTROL"] = {
        "bench": "control",
        "num_cameras": 64,
        "num_nodes": NUM_NODES,
        "drop_rate": adaptive.drop_rate,
        "best_static_drop_rate": static.drop_rate,
        "queue_wait_p99_seconds": adaptive.worst_node_queue_wait_p99,
        "wall_time_seconds": _RESULTS["adaptive"][1],
        "migrations_performed": adaptive.migrations_performed,
        "shedding_interventions": adaptive.shedding_interventions,
        "reclaimed_uplink_bytes": adaptive.reclaimed_uplink_bytes,
    }
