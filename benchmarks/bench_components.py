"""Component micro-benchmarks and ablations.

These are not tied to a single paper figure; they quantify the building
blocks whose ratios drive Figures 5-7 on this repository's NumPy substrate:

* one base-DNN pass per frame (the shared cost),
* the marginal inference cost of each microclassifier architecture,
* a discrete classifier's full pixels-to-decision pass,
* the codec's encode+degrade path, and
* K-voting smoothing over long decision sequences.

The spatial-crop ablation measures how much of an MC's marginal cost the
optional feature-map crop removes (Section 3.2 claims the reduction is
proportional to the input-size reduction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.discrete_classifier import DiscreteClassifier, DiscreteClassifierConfig
from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.smoothing import KVotingSmoother
from repro.features.base_dnn import build_mobilenet_like
from repro.features.extractor import FeatureExtractor, FeatureMapCrop
from repro.video.codec import H264Simulator
from repro.video.stream import InMemoryVideoStream

_FRAME_SHAPE = (72, 128, 3)
_LAYER = "conv3_2/sep"
_RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def extractor() -> FeatureExtractor:
    base = build_mobilenet_like(_FRAME_SHAPE, alpha=0.25, rng=np.random.default_rng(0))
    return FeatureExtractor(base, [_LAYER], cache_size=2)


@pytest.fixture(scope="module")
def frame_pixels() -> np.ndarray:
    return _RNG.random(_FRAME_SHAPE).astype(np.float32)


def test_base_dnn_forward_per_frame(benchmark, extractor, frame_pixels):
    """One shared base-DNN pass — the upfront cost every frame pays once."""
    result = benchmark(lambda: extractor.extract_pixels(frame_pixels))
    assert _LAYER in result


@pytest.mark.parametrize("architecture", ["full_frame", "localized", "windowed"])
def test_microclassifier_marginal_inference(benchmark, extractor, frame_pixels, architecture):
    """Marginal per-frame cost of one additional microclassifier."""
    feature_map = extractor.extract_pixels(frame_pixels)[_LAYER]
    mc = build_microclassifier(
        architecture, MicroClassifierConfig("mc", _LAYER), feature_map.shape
    )
    probability = benchmark(lambda: mc.predict_proba(feature_map))
    assert 0.0 <= probability <= 1.0


def test_microclassifier_crop_ablation(benchmark, extractor, frame_pixels):
    """Ablation: cropping the feature map cuts the localized MC's marginal cost."""
    full_map = extractor.extract_pixels(frame_pixels)[_LAYER]
    crop = FeatureMapCrop(0, _FRAME_SHAPE[0] // 2, _FRAME_SHAPE[1], _FRAME_SHAPE[0])
    y0, y1, x0, x1 = crop.to_feature_coords(_FRAME_SHAPE[:2], full_map.shape[:2])
    cropped_map = full_map[y0:y1, x0:x1, :]

    full_mc = build_microclassifier("localized", MicroClassifierConfig("full", _LAYER), full_map.shape)
    cropped_mc = build_microclassifier(
        "localized", MicroClassifierConfig("cropped", _LAYER, crop=crop), cropped_map.shape
    )
    benchmark(lambda: cropped_mc.predict_proba(cropped_map))
    ratio = full_mc.multiply_adds() / cropped_mc.multiply_adds()
    print(f"\ncrop ablation: full/cropped multiply-add ratio = {ratio:.2f}x")
    assert ratio > 1.5


def test_discrete_classifier_full_pass(benchmark, frame_pixels):
    """A NoScope-style DC repeats the whole pixels-to-decision translation."""
    dc = DiscreteClassifier(DiscreteClassifierConfig(kernels=(32, 64, 64), strides=(2, 2, 1)))
    dc.build(_FRAME_SHAPE, rng=np.random.default_rng(0))
    probability = benchmark(lambda: dc.predict_proba(frame_pixels))
    assert 0.0 <= probability <= 1.0


def test_codec_transcode_throughput(benchmark):
    """Encode + degrade a short stream at a heavily constrained bitrate."""
    frames = [_RNG.random((54, 96, 3)).astype(np.float32) for _ in range(30)]
    stream = InMemoryVideoStream.from_arrays(frames, frame_rate=15.0)
    codec = H264Simulator()
    decoded, segment = benchmark(lambda: codec.transcode_stream(stream, target_bitrate=20_000))
    assert len(decoded) == 30
    assert segment.total_bits > 0


def test_kvoting_smoothing_throughput(benchmark):
    """Smooth one hour of 15 fps per-frame decisions (54k frames)."""
    decisions = _RNG.integers(0, 2, size=54_000)
    smoother = KVotingSmoother(window=5, votes=2)
    smoothed = benchmark(lambda: smoother.smooth(decisions))
    assert smoothed.size == decisions.size
