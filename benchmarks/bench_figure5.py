"""Benchmark + reproduction of Figure 5: throughput vs. number of classifiers.

Two complementary measurements:

* the calibrated analytic throughput model evaluated at the paper's full
  1920x1080 scale (this is what reproduces the figure's absolute shape:
  break-even at a handful of classifiers, several-fold speedup at 50,
  MobileNets running out of memory past 30), and
* a wall-clock micro-measurement of the actual NumPy implementation at a
  reduced scale, confirming that measured FilterForward throughput degrades
  far more slowly with classifier count than the discrete-classifier
  baseline.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.discrete_classifier import DiscreteClassifier, DiscreteClassifierConfig
from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifierConfig
from repro.experiments.figure5 import run_figure5, summarize_figure5
from repro.features.base_dnn import build_mobilenet_like
from repro.features.extractor import FeatureExtractor
from repro.metrics.throughput import measure_throughput

_FRAME_SHAPE = (72, 128, 3)
_LAYER = "conv3_2/sep"


def _print_series(result) -> None:
    print("\nFigure 5 — throughput (fps) vs number of classifiers (analytic, 1080p)")
    names = [n for n in result.series if n != "num_classifiers"]
    print(f"{'classifiers':>12s} " + " ".join(f"{n:>26s}" for n in names))
    for row in result.as_rows():
        cells = " ".join(f"{row[n]:>26.2f}" for n in names)
        print(f"{int(row['num_classifiers']):>12d} {cells}")


def test_figure5_analytic_throughput_sweep(benchmark):
    """Evaluate the paper-scale throughput model over 1-50 classifiers."""
    result = benchmark(run_figure5)
    summary = summarize_figure5(result)
    _print_series(result)
    print(f"summary: {summary}")
    assert 3 <= summary["break_even_classifiers"] <= 6
    assert summary["speedup_at_50"] > 4.0


def test_figure5_measured_scaling_trend(benchmark):
    """Measure real NumPy throughput of FF vs DCs at 1 and 8 classifiers.

    The absolute frame rates are not comparable to the paper's optimized
    C++ stacks; the *relative* degradation with classifier count is what the
    assertion checks (FilterForward's marginal cost per extra classifier is
    far smaller than a discrete classifier's).
    """
    rng = np.random.default_rng(0)
    base = build_mobilenet_like(_FRAME_SHAPE, alpha=0.25, rng=rng)
    extractor = FeatureExtractor(base, [_LAYER], cache_size=2)
    layer_shape = extractor.layer_shape(_LAYER)
    mcs = [
        build_microclassifier(
            "localized", MicroClassifierConfig(f"mc{i}", _LAYER), layer_shape, rng=rng
        )
        for i in range(8)
    ]
    dc = DiscreteClassifier(DiscreteClassifierConfig(kernels=(32, 64, 64), strides=(2, 2, 1)))
    dc.build(_FRAME_SHAPE, rng=rng)
    frames = [rng.random(_FRAME_SHAPE).astype(np.float32) for _ in range(4)]

    def filterforward_pass(num_mcs: int):
        def run(i: int) -> None:
            maps = extractor.extract_pixels(frames[i % len(frames)])[_LAYER]
            for mc in mcs[:num_mcs]:
                mc.predict_proba(maps)

        return run

    def discrete_pass(num_dcs: int):
        def run(i: int) -> None:
            pixels = frames[i % len(frames)][None, ...]
            for _ in range(num_dcs):
                dc.predict_proba_batch(pixels)

        return run

    def measure_all():
        return {
            "ff_1": measure_throughput(filterforward_pass(1), num_frames=4).fps,
            "ff_8": measure_throughput(filterforward_pass(8), num_frames=4).fps,
            "dc_1": measure_throughput(discrete_pass(1), num_frames=4).fps,
            "dc_8": measure_throughput(discrete_pass(8), num_frames=4).fps,
        }

    fps = benchmark.pedantic(measure_all, rounds=1, iterations=1, warmup_rounds=1)
    print("\nFigure 5 (measured, reduced scale) fps:", {k: round(v, 2) for k, v in fps.items()})
    ff_degradation = fps["ff_1"] / fps["ff_8"]
    dc_degradation = fps["dc_1"] / fps["dc_8"]
    print(f"throughput degradation 1->8 classifiers: FF {ff_degradation:.2f}x, DC {dc_degradation:.2f}x")
    assert ff_degradation < dc_degradation
