"""Benchmark of accuracy-aware control against the drop-rate-optimizing baseline.

The PR-3 adaptive control plane provably lowers *drop rate*; the accuracy
plane (PR 4) then showed that drop rate is a proxy — what shedding costs is
event F1, and who sheds decides how much.  This bench pins the next claim:
**shedding by predicted event value per service-second improves cluster
macro-F1 at an equal-or-better drop rate**, on a scenario built to make the
proxy fail.

The fleet (64 cameras / 4 nodes, every camera a real trained
microclassifier, resolution-scaled service times):

* 32 **sparse, heavy** cameras — highway / night scenes at 8-10 fps and the
  largest resolution: most of the compute load, almost no pedestrian events;
* 16 **dense, steady** cameras — busy intersections at 6 fps, small frames;
* 16 **dense, hot** cameras — retail entrances at 12 fps that come online
  only at mid-run (the hotspot): the second half pushes every node past
  capacity and someone must shed.

The trap is the hotspot's cold start: when the hot cameras appear, they have
scored nothing, so their *match density* is exactly 0.0 and the PR-3
baseline (`AdaptiveSheddingController`) caps the event-densest cameras in
the fleet first.  `ValueSheddingController` ranking by live `truth_density`
per service-second instead caps the sparse heavy cameras — each cap frees
more worker time per unit of accuracy given up.  Asserted headlines:

* value-aware shedding achieves **strictly higher cluster macro-F1** than
  the adaptive baseline at an **equal-or-better cluster drop rate**;
* ranking by `truth_density` is at least as good as the `match_density`
  proxy head-to-head (same controller, same watermarks, only the signal
  differs);
* composing `ThresholdDriftController` issues real `SetCameraThreshold`
  drift without costing the headline macro-F1;
* the whole value plane is deterministic — bit-identical reruns.

Emits a ``BENCH_VALUE_CONTROL.json`` perf record (``--json`` / ``BENCH_JSON``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    SheddingConfig,
    ThresholdDriftConfig,
    ThresholdDriftController,
    ValueSheddingConfig,
    ValueSheddingController,
)
from repro.fleet import (
    AccuracyConfig,
    CameraSpec,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
    TrainedMicroClassifiers,
)

NUM_NODES = 4
DURATION_SECONDS = 3.0
HALF_SECONDS = 1.5
TOTAL_UPLINK_BPS = 400_000.0

ACCURACY = AccuracyConfig(train_frames=64, epochs=2.0)

# Near-capacity in the first half; the mid-run hotspot pushes every node
# over.  Resolution-scaled service times make the sparse large-frame
# cameras the expensive ones — the contrast value-per-service-second
# ranking exploits and raw-value ranking ignores.
NODE_CONFIG = FleetConfig(
    num_workers=2,
    queue_capacity=4,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=40.0,
    resolution_scaled_service=True,
    accuracy_task=ACCURACY.task,
)

# Identical watermarks and ladder for every controller under comparison:
# the only experimental variable is the ranking.
WATERMARKS = dict(
    high_watermark_seconds=0.3,
    low_watermark_seconds=0.1,
    cameras_per_step=2,
    quota_ladder=(1,),
)

_MODELS: TrainedMicroClassifiers | None = None
_RESULTS: dict[str, tuple[object, float]] = {}


def make_hotspot_fleet() -> list[CameraSpec]:
    """64 cameras whose event value and compute cost deliberately diverge."""
    cameras: list[CameraSpec] = []
    # Dense hot cameras: online only in the second half (the hotspot).
    for i in range(16):
        cameras.append(
            CameraSpec(
                camera_id=f"hot{i:02d}",
                width=48,
                height=32,
                frame_rate=12.0,
                num_frames=int(12.0 * HALF_SECONDS),
                scenario="retail_entrance",
                seed=900 + i,
                event_rate_scale=2.0,
                start_time=HALF_SECONDS,
            )
        )
    # Dense steady cameras.
    for i in range(16):
        cameras.append(
            CameraSpec(
                camera_id=f"den{i:03d}",
                width=48,
                height=32,
                frame_rate=6.0,
                num_frames=int(6.0 * DURATION_SECONDS),
                scenario="busy_intersection",
                seed=300 + i,
                event_rate_scale=2.0,
            )
        )
    # Sparse heavy cameras: most of the offered compute, few true events.
    scenarios = ("highway_overpass", "night_watch")
    for i in range(32):
        rate = 10.0 if i % 2 == 0 else 8.0
        cameras.append(
            CameraSpec(
                camera_id=f"spr{i:03d}",
                width=64,
                height=48,
                frame_rate=rate,
                num_frames=int(rate * DURATION_SECONDS),
                scenario=scenarios[i % 2],
                seed=i,
                event_rate_scale=1.0,
            )
        )
    return cameras


def trained_models() -> TrainedMicroClassifiers:
    """The shared trained-model cache: each camera trains exactly once."""
    global _MODELS
    if _MODELS is None:
        _MODELS = TrainedMicroClassifiers(ACCURACY)
    return _MODELS


def baseline_loop() -> ControlLoop:
    """The PR-3 adaptive baseline: raw match-density ranking."""
    return ControlLoop(
        [AdaptiveSheddingController(SheddingConfig(**WATERMARKS))],
        interval_seconds=0.25,
    )


def value_loop(signal: str) -> ControlLoop:
    """Value-per-service-second shedding under the same watermarks."""
    return ControlLoop(
        [ValueSheddingController(ValueSheddingConfig(value_signal=signal, **WATERMARKS))],
        interval_seconds=0.25,
    )


def drift_loop() -> ControlLoop:
    """Value shedding composed with runtime threshold drift."""
    return ControlLoop(
        [
            ValueSheddingController(
                ValueSheddingConfig(value_signal="truth_density", **WATERMARKS)
            ),
            ThresholdDriftController(
                ThresholdDriftConfig(
                    tolerance=0.5, step=0.05, min_scored=12, cooldown_ticks=2
                )
            ),
        ],
        interval_seconds=0.25,
    )


def run_controlled(key: str, loop_builder):
    """One controlled hotspot run (cached per key)."""
    if key not in _RESULTS:
        config = ShardingConfig(
            num_nodes=NUM_NODES,
            placement="load_aware",
            total_uplink_bps=TOTAL_UPLINK_BPS,
            uplink_allocation="equal",
            uplink_sharing="work_conserving",
            node_config=NODE_CONFIG,
        )
        started = time.perf_counter()
        report = ShardedFleetRuntime(
            make_hotspot_fleet(),
            config=config,
            pipeline_factory=trained_models().pipeline_factory(),
            control_loop=loop_builder(),
        ).run()
        _RESULTS[key] = (report, time.perf_counter() - started)
    return _RESULTS[key][0]


def run_baseline():
    return run_controlled("baseline", baseline_loop)


def run_value(signal: str = "truth_density", key: str | None = None):
    return run_controlled(key or f"value:{signal}", lambda: value_loop(signal))


def _print_point(title: str, report) -> None:
    print(
        f"{title}: drop rate {report.drop_rate:.1%}, "
        f"{report.shedding_interventions} interventions, "
        f"{report.accuracy.summary()}"
    )


def test_hotspot_forces_shedding():
    """The scenario bites: the hot half overloads and someone sheds."""
    baseline = run_baseline()
    print("\n=== value control bench: baseline (adaptive, match_density) ===")
    _print_point("baseline", baseline)
    assert baseline.num_cameras == 64
    assert baseline.shedding_interventions > 0
    assert baseline.drop_rate > 0.05
    assert (
        baseline.frames_scored + baseline.frames_dropped + baseline.frames_rejected
        == baseline.frames_generated
    )


def test_value_beats_adaptive_baseline_on_macro_f1():
    """The headline: same watermarks, better objective, strictly better F1."""
    baseline = run_baseline()
    value = run_value("truth_density")
    _print_point("\nvalue (truth_density / service-second)", value)
    print(
        f"\ncluster macro-F1: baseline {baseline.accuracy.macro_f1:.4f} vs "
        f"value {value.accuracy.macro_f1:.4f} | drop rate: baseline "
        f"{baseline.drop_rate:.2%} vs value {value.drop_rate:.2%}"
    )
    assert value.shedding_interventions > 0
    # Same fleet fully accounted for under both control planes.
    assert value.frames_generated == baseline.frames_generated
    # Strictly higher accuracy at equal-or-better drop rate.
    assert value.accuracy.macro_f1 > baseline.accuracy.macro_f1
    assert value.drop_rate <= baseline.drop_rate


def test_truth_density_ranking_beats_match_density_head_to_head():
    """The oracle signal is worth at least as much as the proxy."""
    truth = run_value("truth_density")
    match = run_value("match_density")
    _print_point("\nvalue (match_density / service-second)", match)
    assert truth.accuracy.macro_f1 >= match.accuracy.macro_f1
    # The cold-started hotspot is exactly where the proxy mis-ranks: the
    # truth run must not pay for its accuracy with extra shedding.
    assert truth.drop_rate <= match.drop_rate + 1e-9


def test_threshold_drift_composes_without_costing_the_headline():
    """Drift actions fire and land in the log without hurting macro-F1."""
    drifted = run_controlled("drift", drift_loop)
    value = run_value("truth_density")
    _print_point("\nvalue + threshold drift", drifted)
    assert drifted.threshold_drifts > 0
    drift_lines = [
        line for line in drifted.control_log if "set_camera_threshold" in line
    ]
    assert len(drift_lines) == drifted.threshold_drifts
    # Over-firing cameras drift up from their calibrated threshold,
    # under-firing ones down — both directions must be exercised.
    calibrated = {
        spec.camera_id: trained_models().trained(spec).threshold
        for spec in make_hotspot_fleet()
    }
    raised = lowered = 0
    for line in drift_lines:
        # "... set_camera_threshold node1/spr011 -> 0.4500"
        target_part, target = line.rsplit(" -> ", 1)
        camera_id = target_part.rsplit(" ", 1)[-1].split("/")[1]
        if float(target) > calibrated[camera_id]:
            raised += 1
        else:
            lowered += 1
    assert raised > 0 and lowered > 0
    assert drifted.accuracy.macro_f1 >= 0.95 * value.accuracy.macro_f1


def test_value_control_is_bit_identical():
    """Same seed, same config: identical decisions, telemetry, and F1."""
    first = run_value("truth_density")
    second = run_value("truth_density", key="value:truth_density:rerun")
    assert first.control_log == second.control_log
    assert first.telemetry == second.telemetry
    assert first.drop_rate == second.drop_rate
    assert first.accuracy.macro_f1 == second.accuracy.macro_f1
    for camera_id, camera in first.accuracy.cameras.items():
        twin = second.accuracy.cameras[camera_id]
        assert np.array_equal(camera.predictions, twin.predictions)
        assert np.array_equal(camera.truth, twin.truth)


def test_value_control_perf_record(perf_records):
    """Publish the value-control headline numbers as a perf record."""
    baseline = run_baseline()
    truth = run_value("truth_density")
    match = run_value("match_density")
    drifted = run_controlled("drift", drift_loop)
    models = trained_models()
    perf_records["VALUE_CONTROL"] = {
        "bench": "value_control",
        "num_cameras": 64,
        "num_nodes": NUM_NODES,
        "task": ACCURACY.task,
        "baseline_macro_f1": baseline.accuracy.macro_f1,
        "baseline_drop_rate": baseline.drop_rate,
        "value_truth_macro_f1": truth.accuracy.macro_f1,
        "value_truth_drop_rate": truth.drop_rate,
        "value_match_macro_f1": match.accuracy.macro_f1,
        "value_match_drop_rate": match.drop_rate,
        "drift_macro_f1": drifted.accuracy.macro_f1,
        "threshold_drifts": drifted.threshold_drifts,
        "shedding_interventions": truth.shedding_interventions,
        "cameras_trained": models.cache_misses,
        "trained_cache_hits": models.cache_hits,
        "wall_time_seconds_value": _RESULTS["value:truth_density"][1],
    }
