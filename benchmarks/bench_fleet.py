"""Benchmark of the multi-camera fleet runtime.

Runs a 32-camera synthetic fleet (all six content scenarios, mixed
resolutions and frame rates) through :class:`~repro.fleet.runtime.FleetRuntime`
in two regimes:

* **overloaded** — paper-calibrated per-frame service times, so the offered
  aggregate frame rate far exceeds the worker pool's capacity and the
  bounded queues shed load (the regime the fleet layer exists for);
* **provisioned** — a faster node (scaled service times) that keeps up, to
  confirm zero shedding when capacity suffices.

Reported per run: aggregate scored throughput, drop rate, worker
utilization, and uplink backlog.
"""

from __future__ import annotations

import time

from repro.fleet import DropPolicy, FleetConfig, FleetRuntime, generate_fleet

NUM_CAMERAS = 32
DURATION_SECONDS = 4.0

_RESULTS: dict[tuple[float, int], tuple[object, float]] = {}


def _run_fleet(service_time_scale: float, queue_capacity: int = 8):
    key = (service_time_scale, queue_capacity)
    if key not in _RESULTS:
        fleet = generate_fleet(NUM_CAMERAS, seed=0, duration_seconds=DURATION_SECONDS)
        config = FleetConfig(
            num_workers=4,
            queue_capacity=queue_capacity,
            drop_policy=DropPolicy.DROP_OLDEST,
            service_time_scale=service_time_scale,
            uplink_capacity_bps=500_000.0,
        )
        started = time.perf_counter()
        report = FleetRuntime(fleet, config=config).run()
        _RESULTS[key] = (report, time.perf_counter() - started)
    return _RESULTS[key][0]


def _print_report(title: str, report) -> None:
    print(f"\n=== fleet bench: {title} ===")
    print(report.summary())
    worst = max(report.cameras.values(), key=lambda c: c.drop_rate)
    print(
        f"worst camera: {worst.camera_id} ({worst.scenario}) "
        f"drop_rate={worst.drop_rate:.1%}, high_water={worst.queue_high_water}"
    )


def test_fleet_overloaded_sheds_load(benchmark):
    """32 cameras vs paper-grade service times: queues must shed, fairly."""
    report = benchmark.pedantic(
        lambda: _run_fleet(service_time_scale=1.0), rounds=1, iterations=1, warmup_rounds=0
    )
    _print_report("overloaded (paper-calibrated service times)", report)
    assert report.num_cameras == NUM_CAMERAS
    assert report.frames_generated > 0
    assert report.drop_rate > 0.5  # heavily oversubscribed on purpose
    assert report.frames_scored + report.frames_dropped + report.frames_rejected == (
        report.frames_generated
    )
    assert report.achieved_fps > 0
    assert report.uplink_backlog_seconds >= 0.0
    # Round-robin dispatch keeps every camera alive even under overload.
    assert all(c.frames_scored > 0 for c in report.cameras.values())


def test_fleet_provisioned_keeps_up(benchmark):
    """The same fleet on a node fast enough to score every frame."""
    report = benchmark.pedantic(
        lambda: _run_fleet(service_time_scale=0.01), rounds=1, iterations=1, warmup_rounds=0
    )
    _print_report("provisioned (100x faster node)", report)
    assert report.drop_rate == 0.0
    assert report.frames_scored == report.frames_generated
    assert report.worker_utilization < 1.0


def test_fleet_perf_record(perf_records):
    """Publish the overloaded regime's headline numbers as a perf record."""
    report = _run_fleet(service_time_scale=1.0)
    waits = report.telemetry.get("latency.queue_wait_seconds")
    perf_records["FLEET"] = {
        "bench": "fleet",
        "num_cameras": NUM_CAMERAS,
        "drop_rate": report.drop_rate,
        "queue_wait_p99_seconds": (
            float(waits["p99"]) if isinstance(waits, dict) else 0.0
        ),
        "wall_time_seconds": _RESULTS[(1.0, 8)][1],
        "achieved_fps": report.achieved_fps,
        "fairness_index": report.fairness_index,
    }
