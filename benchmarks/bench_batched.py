"""Benchmark: cross-camera batched inference vs per-camera scoring.

The 64-camera / shared-base-DNN scenario is the one the tentpole targets:
every camera sits at the same resolution, so the co-location premise puts
them all on one resident base DNN, and per-camera scoring pays 64 small
``N=1`` NumPy forwards per tick.  The batched path
(:class:`repro.core.batched.BatchedScorer`, ``FleetConfig.batched_scoring``)
must be **at least 2x faster wall-clock** while producing a bit-identical
:class:`FleetReport` — both are asserted here, and the numbers land in
``BENCH_BATCHED.json`` through the ``perf_records`` fixture.

Also recorded: the per-push pipeline overhead (scoring excluded), guarding
the bind-time state-lookup hoist in ``StreamingPipeline`` against
per-push rescans creeping back in.
"""

from __future__ import annotations

import time

import numpy as np

from repro.fleet.camera import CameraSpec
from repro.fleet.runtime import FleetConfig, FleetRuntime, default_pipeline_factory
from repro.video.frame import Frame

NUM_CAMERAS = 64
NUM_FRAMES = 6
MIN_SPEEDUP = 2.0

SCENARIOS = [
    "urban_day",
    "busy_intersection",
    "quiet_residential",
    "night_watch",
    "highway_overpass",
    "retail_entrance",
]

_RESULTS: dict[bool, tuple[object, object, float]] = {}


def shared_dnn_fleet() -> list[CameraSpec]:
    """64 cameras, one resolution: all share a single resident base DNN."""
    return [
        CameraSpec(
            camera_id=f"cam{i:02d}",
            width=48,
            height=32,
            frame_rate=10.0,
            num_frames=NUM_FRAMES,
            scenario=SCENARIOS[i % len(SCENARIOS)],
            seed=i,
        )
        for i in range(NUM_CAMERAS)
    ]


def _run(batched: bool):
    if batched not in _RESULTS:
        runtime = FleetRuntime(
            shared_dnn_fleet(),
            pipeline_factory=default_pipeline_factory(),
            config=FleetConfig(
                num_workers=8,
                queue_capacity=8,
                service_time_scale=0.02,
                batched_scoring=batched,
            ),
        )
        started = time.perf_counter()
        report = runtime.run()
        _RESULTS[batched] = (runtime, report, time.perf_counter() - started)
    return _RESULTS[batched]


def _measure_push_overhead() -> float:
    """Mean seconds per push with the base-DNN forward removed.

    Every frame's activations are primed into the extractor cache first, so
    ``push`` pays the microclassifier forward plus bookkeeping (chunking,
    smoothing, eviction, threshold lookups) but never a base-DNN pass — the
    per-push cost the bind-time state-lookup hoist keeps flat.  The
    structural guard (zero ``_states_for`` rescans per push) lives in
    ``tests/core/test_batched_equivalence.py``; this records the wall-clock
    side of the same contract.
    """
    factory = default_pipeline_factory()
    spec = shared_dnn_fleet()[0]
    session = factory(spec)
    rng = np.random.default_rng(0)
    frames = [Frame(i, i / 10.0, rng.random((32, 48, 3))) for i in range(200)]
    for frame in frames:
        session.extractor.prime(frame.index, session.extractor.extract_pixels(frame.pixels))
    started = time.perf_counter()
    for frame in frames:
        session.push(frame)
    return (time.perf_counter() - started) / len(frames)


def test_batched_dispatch_is_2x_faster_and_bit_identical(perf_records):
    """The tentpole pin: >= 2x wall-clock, outputs bit-identical."""
    rt_batched, rep_batched, secs_batched = _run(batched=True)
    rt_scalar, rep_scalar, secs_scalar = _run(batched=False)

    # Bit-identical outputs first — a fast wrong answer is worthless.
    assert rep_batched.cameras.keys() == rep_scalar.cameras.keys()
    for camera_id in rep_batched.cameras:
        assert rep_batched.cameras[camera_id] == rep_scalar.cameras[camera_id], camera_id
    assert rep_batched.telemetry == rep_scalar.telemetry
    assert rep_batched.total_uploaded_bits == rep_scalar.total_uploaded_bits
    for key in rt_batched._states:
        per_mc_b = rt_batched._states[key].session.finish().per_mc
        per_mc_s = rt_scalar._states[key].session.finish().per_mc
        for name in per_mc_b:
            assert np.array_equal(
                per_mc_b[name].probabilities, per_mc_s[name].probabilities
            ), (key, name)

    # Real cross-camera batches formed on the shared base DNN.
    scorer = rt_batched.batched
    assert scorer.frames_batched == rep_batched.frames_scored
    assert scorer.batches_run < scorer.frames_batched

    speedup = secs_scalar / secs_batched
    push_overhead = _measure_push_overhead()
    print(
        f"\n=== batched bench: {NUM_CAMERAS} cameras, one resident base DNN ===\n"
        f"per-camera: {secs_scalar:.2f}s | batched: {secs_batched:.2f}s | "
        f"speedup {speedup:.2f}x\n"
        f"{scorer.frames_batched} frames in {scorer.batches_run} batches "
        f"(mean {scorer.frames_batched / scorer.batches_run:.1f}/batch) | "
        f"push overhead {push_overhead * 1e6:.0f}us/frame"
    )
    perf_records["BATCHED"] = {
        "bench": "batched",
        "num_cameras": NUM_CAMERAS,
        "frames_scored": rep_batched.frames_scored,
        "wall_seconds_batched": secs_batched,
        "wall_seconds_per_camera": secs_scalar,
        "speedup": speedup,
        "batches_run": scorer.batches_run,
        "mean_batch_size": scorer.frames_batched / scorer.batches_run,
        "push_overhead_seconds": push_overhead,
        "bit_identical": True,
    }
    assert speedup >= MIN_SPEEDUP, (
        f"batched dispatch only {speedup:.2f}x faster; the pin is {MIN_SPEEDUP}x"
    )
    # The per-push overhead guard: one push without a base-DNN forward stays
    # far below one frame's full scoring cost (a rescan-per-push regression
    # shows up here long before it shows up in the end-to-end wall clock).
    assert push_overhead < 10e-3, f"push overhead {push_overhead * 1e3:.2f}ms/frame"
