"""Benchmark of multi-node fleet sharding under the three placement policies.

Runs a 64-camera / 4-node cluster on a deterministic simulated clock.  The
fleet is deliberately *skewed*: frame rates are drawn from {2, 4, 24} fps, so
a placement that ignores load (round-robin deals cameras in index order) can
land several 24 fps cameras on one node while another idles.  The cluster is
provisioned near its aggregate capacity — the regime where placement
matters: a balanced assignment keeps every node just under capacity, an
imbalanced one pushes its heaviest node into queueing and shed load.

Reported per policy: cluster drop rate, shared-uplink utilization,
per-camera fairness (Jain), worst-node queue-wait p99, and resident base-DNN
count.  The final test asserts the headline claim: load-aware bin-packing
yields a measurably lower worst-node queue-wait p99 than round-robin.
"""

from __future__ import annotations

import time

from repro.fleet import (
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
    generate_fleet,
)

NUM_CAMERAS = 64
NUM_NODES = 4
DURATION_SECONDS = 3.0
POLICIES = ("round_robin", "load_aware", "resolution_aware")

# Near-capacity provisioning: each node has 2 workers; with the paper
# schedule scaled by 0.029 a node sustains ~176 fps, just above the mean
# per-node offered rate (~160 fps) and below a skewed node's.
# Note: no uplink_capacity_bps here — each node gets its slice of the
# cluster's shared link instead.
NODE_CONFIG = FleetConfig(
    num_workers=2,
    queue_capacity=8,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=0.029,
)

_REPORTS: dict[str, object] = {}
_WALL_TIMES: dict[str, float] = {}


def make_skewed_fleet():
    """64 cameras with heavy frame-rate skew (2 / 4 / 24 fps) in arrival order."""
    return generate_fleet(
        NUM_CAMERAS,
        seed=7,
        duration_seconds=DURATION_SECONDS,
        resolutions=((64, 48), (80, 48)),
        frame_rates=(2.0, 4.0, 24.0),
    )


def run_policy(policy: str):
    """One full cluster run under ``policy`` (cached across tests)."""
    if policy not in _REPORTS:
        config = ShardingConfig(
            num_nodes=NUM_NODES,
            placement=policy,
            total_uplink_bps=1_000_000.0,
            uplink_allocation="equal",
            node_config=NODE_CONFIG,
        )
        started = time.perf_counter()
        _REPORTS[policy] = ShardedFleetRuntime(make_skewed_fleet(), config=config).run()
        _WALL_TIMES[policy] = time.perf_counter() - started
    return _REPORTS[policy]


def _print_report(policy: str, report) -> None:
    print(f"\n=== sharding bench: {policy} ===")
    print(report.summary())


def _check_cluster(report) -> None:
    assert report.num_nodes == NUM_NODES
    assert report.num_cameras == NUM_CAMERAS
    assert report.frames_generated > 0
    assert (
        report.frames_scored + report.frames_dropped + report.frames_rejected
        == report.frames_generated
    )
    assert 0.0 <= report.drop_rate < 1.0
    assert report.uplink_utilization >= 0.0
    assert 0.0 < report.fairness_index <= 1.0


def test_sharding_round_robin(benchmark):
    """Round-robin baseline: deals cameras in index order, load lands unevenly."""
    report = benchmark.pedantic(
        lambda: run_policy("round_robin"), rounds=1, iterations=1, warmup_rounds=0
    )
    _print_report("round_robin", report)
    _check_cluster(report)


def test_sharding_load_aware(benchmark):
    """Load-aware LPT bin-packing on the analytic cost estimate."""
    report = benchmark.pedantic(
        lambda: run_policy("load_aware"), rounds=1, iterations=1, warmup_rounds=0
    )
    _print_report("load_aware", report)
    _check_cluster(report)
    # Bin-packing evens out offered load across nodes.
    assert report.load_imbalance < run_policy("round_robin").load_imbalance


def test_sharding_resolution_aware(benchmark):
    """Resolution-aware co-location minimizes resident base DNNs."""
    report = benchmark.pedantic(
        lambda: run_policy("resolution_aware"), rounds=1, iterations=1, warmup_rounds=0
    )
    _print_report("resolution_aware", report)
    _check_cluster(report)
    # Nearly every node hosts a single shared base DNN.
    assert report.resident_base_dnns <= NUM_NODES + 1
    assert report.resident_base_dnns <= run_policy("round_robin").resident_base_dnns


def test_load_aware_beats_round_robin_tail_latency():
    """The headline claim: balanced placement cuts the worst node's wait tail."""
    round_robin = run_policy("round_robin")
    load_aware = run_policy("load_aware")
    print(
        f"\nworst-node queue-wait p99: round_robin "
        f"{round_robin.worst_node_queue_wait_p99 * 1e3:.1f} ms vs load_aware "
        f"{load_aware.worst_node_queue_wait_p99 * 1e3:.1f} ms"
    )
    assert (
        load_aware.worst_node_queue_wait_p99 < 0.8 * round_robin.worst_node_queue_wait_p99
    )
    assert load_aware.drop_rate <= round_robin.drop_rate


def test_sharding_perf_record(perf_records):
    """Publish the load-aware cluster's headline numbers as a perf record."""
    report = run_policy("load_aware")
    perf_records["SHARDING"] = {
        "bench": "sharding",
        "num_cameras": NUM_CAMERAS,
        "num_nodes": NUM_NODES,
        "placement": "load_aware",
        "drop_rate": report.drop_rate,
        "queue_wait_p99_seconds": report.worst_node_queue_wait_p99,
        "wall_time_seconds": _WALL_TIMES["load_aware"],
        "uplink_utilization": report.uplink_utilization,
        "fairness_index": report.fairness_index,
    }
