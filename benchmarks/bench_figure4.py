"""Benchmark + reproduction of Figure 4: bandwidth use vs. event F1.

Trains the two microclassifier architectures the paper plots (full-frame
object detector and localized binary classifier) on the Roadway-like *People
with red* task, then compares FilterForward's edge filtering against the
"compress everything" baseline across a bitrate sweep spanning the paper's
bits-per-pixel range.  Prints the two curves and the Section 4.3 headline
ratios (paper: 6.3x / 13x bandwidth reduction, 1.5x / 1.9x F1 improvement).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_TRAINING
from repro.experiments.figure4 import default_bitrate_sweep, run_figure4, summarize_figure4


def _print_result(result, summary) -> None:
    print(f"\nFigure 4 ({result.architecture} MC) — Roadway, People with red")
    print(f"{'strategy':<22s} {'paper-equivalent Mb/s':>22s} {'event F1':>10s}")
    for point in result.filterforward + result.compress_everything:
        print(
            f"{point.strategy:<22s} {point.paper_equivalent_mbps:>22.3f} {point.event_f1:>10.3f}"
        )
    print(
        f"summary: bandwidth reduction {summary['bandwidth_reduction']:.1f}x, "
        f"F1 improvement at matched bandwidth {summary['f1_improvement']:.2f}x"
    )


@pytest.mark.parametrize("architecture", ["full_frame", "localized"])
def test_figure4_bandwidth_vs_accuracy(benchmark, roadway_context, architecture):
    """Regenerate one Figure 4 subplot (4a = full-frame, 4b = localized)."""
    trained = roadway_context.train_microclassifier(architecture, training=BENCH_TRAINING)
    bitrates = default_bitrate_sweep(roadway_context, num_points=5)

    result = benchmark.pedantic(
        lambda: run_figure4(
            roadway_context,
            architecture=architecture,
            compress_bitrates=bitrates,
            trained=trained,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    summary = summarize_figure4(result)
    _print_result(result, summary)

    # Shape checks mirroring the paper's qualitative claims: FilterForward
    # uses far less bandwidth than uploading the full stream at good quality,
    # and is at least as accurate as the most heavily compressed upload.
    ff = result.filterforward[0]
    full_upload = max(result.compress_everything, key=lambda p: p.average_bandwidth)
    cheapest_compress = min(result.compress_everything, key=lambda p: p.average_bandwidth)
    assert ff.average_bandwidth < full_upload.average_bandwidth
    assert ff.event_f1 >= cheapest_compress.event_f1
