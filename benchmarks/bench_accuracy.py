"""Benchmark of the fleet accuracy plane: event F1 vs drop rate, 32 cameras.

Every camera gets a *real* trained microclassifier (localized architecture,
per-camera seed ladder, threshold calibrated on its own labelled training
clip) and the whole fleet is scored against ground truth with the paper's
event F1 (Section 4.2).  The questions this bench answers:

* **How much accuracy does the fleet layer itself cost?**  Nothing: with
  capacity to score every frame, the fleet's cluster macro-F1 reproduces
  the offline (no-fleet) trained-pipeline F1 on the same cameras exactly
  (asserted at >= 0.9x, observed 1.0x).
* **What does shedding cost?**  Macro-F1 degrades monotonically as the
  drop rate rises across >= 3 increasing overload regimes — the
  F1-vs-drop-rate curve every scheduling/control PR is judged against.
* **Which drop policy is cheaper in F1?**  At equal drop rate (same
  overload, same shed fraction) DROP_OLDEST beats DROP_NEWEST on this
  pinned fleet: freshness-biased sampling keeps smoothing runs alive where
  stale-head sampling fragments them.
* **Determinism** — two runs of the same regime are bit-identical, down to
  every per-camera prediction vector and telemetry value.

Emits a ``BENCH_ACCURACY.json`` perf record (``--json PATH`` / ``BENCH_JSON``)
with the full curve, the offline anchor, and an adaptive-shedding point.
"""

from __future__ import annotations

import time

import numpy as np

from repro.control import AdaptiveSheddingController, ControlLoop, SheddingConfig
from repro.fleet import (
    AccuracyConfig,
    CameraSpec,
    DropPolicy,
    FleetConfig,
    FleetRuntime,
    TrainedMicroClassifiers,
    evaluate_offline,
)

NUM_CAMERAS = 32
DURATION_SECONDS = 4.0
QUEUE_CAPACITY = 2
NUM_WORKERS = 4
# Increasing overload: one provisioned regime + three shedding regimes.
SERVICE_SCALES = (0.004, 0.045, 0.09, 0.18)
SCENARIOS = ("retail_entrance", "busy_intersection", "urban_day", "quiet_residential")

ACCURACY = AccuracyConfig(train_frames=96, epochs=3.0)

_FLEET: list[CameraSpec] | None = None
_MODELS: TrainedMicroClassifiers | None = None
_RESULTS: dict[str, tuple[object, float]] = {}


def make_fleet() -> list[CameraSpec]:
    """32 cameras over the four event-bearing scenarios, mixed frame rates."""
    global _FLEET
    if _FLEET is None:
        rates = (8.0, 10.0, 12.0)
        _FLEET = [
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=48,
                height=32,
                frame_rate=rates[i % 3],
                num_frames=int(rates[i % 3] * DURATION_SECONDS),
                scenario=SCENARIOS[i % 4],
                seed=500 + i,
                event_rate_scale=2.0,
            )
            for i in range(NUM_CAMERAS)
        ]
    return _FLEET


def trained_models() -> TrainedMicroClassifiers:
    """The shared trained-model cache: each camera trains exactly once."""
    global _MODELS
    if _MODELS is None:
        _MODELS = TrainedMicroClassifiers(ACCURACY)
    return _MODELS


def run_fleet(service_time_scale: float, policy: DropPolicy, key: str | None = None):
    """One accuracy-mode fleet run (cached per key)."""
    key = key or f"{policy.value}:{service_time_scale}"
    if key not in _RESULTS:
        models = trained_models()
        config = FleetConfig(
            num_workers=NUM_WORKERS,
            queue_capacity=QUEUE_CAPACITY,
            drop_policy=policy,
            service_time_scale=service_time_scale,
            accuracy_task=ACCURACY.task,
        )
        started = time.perf_counter()
        report = FleetRuntime(
            make_fleet(), pipeline_factory=models.pipeline_factory(), config=config
        ).run()
        _RESULTS[key] = (report, time.perf_counter() - started)
    return _RESULTS[key][0]


def run_offline():
    """The no-fleet anchor: every frame scored by the same trained pipelines."""
    if "offline" not in _RESULTS:
        started = time.perf_counter()
        accuracy = evaluate_offline(make_fleet(), trained_models())
        _RESULTS["offline"] = (accuracy, time.perf_counter() - started)
    return _RESULTS["offline"][0]


def run_adaptive():
    """A single node under AdaptiveSheddingController ranking by truth density."""
    if "adaptive" not in _RESULTS:
        models = trained_models()
        config = FleetConfig(
            num_workers=NUM_WORKERS,
            queue_capacity=QUEUE_CAPACITY,
            drop_policy=DropPolicy.DROP_OLDEST,
            service_time_scale=SERVICE_SCALES[2],
            accuracy_task=ACCURACY.task,
        )
        runtime = FleetRuntime(
            make_fleet(), pipeline_factory=models.pipeline_factory(), config=config
        )
        loop = ControlLoop(
            [
                AdaptiveSheddingController(
                    SheddingConfig(
                        high_watermark_seconds=0.15,
                        low_watermark_seconds=0.05,
                        cameras_per_step=2,
                        quota_ladder=(2, 1),
                        value_signal="truth_density",
                    )
                )
            ],
            interval_seconds=0.25,
        )
        started = time.perf_counter()
        loop.run_node(runtime)
        report = runtime.finalize()
        _RESULTS["adaptive"] = ((report, loop), time.perf_counter() - started)
    return _RESULTS["adaptive"][0]


def shedding_curve() -> list[tuple[float, float]]:
    """(drop_rate, macro_f1) per regime, in increasing-overload order."""
    curve = []
    for scale in SERVICE_SCALES:
        report = run_fleet(scale, DropPolicy.DROP_OLDEST)
        curve.append((report.drop_rate, report.accuracy.macro_f1))
    return curve


def _print_point(title: str, report) -> None:
    print(
        f"{title}: drop rate {report.drop_rate:.1%}, "
        f"{report.accuracy.summary()}"
    )


def test_no_shedding_matches_offline_pipelines():
    """Fleet plumbing must not cost accuracy when capacity suffices."""
    offline = run_offline()
    report = run_fleet(SERVICE_SCALES[0], DropPolicy.DROP_OLDEST)
    print(f"\n=== accuracy bench: offline anchor ===\noffline {offline.summary()}")
    _print_point("fleet (provisioned)", report)
    assert report.num_cameras == NUM_CAMERAS
    assert report.drop_rate == 0.0
    assert offline.num_events > 0
    # Acceptance floor is 0.9x; the streaming fleet reproduces it exactly.
    assert report.accuracy.macro_f1 >= 0.9 * offline.macro_f1
    for camera_id, offline_camera in offline.cameras.items():
        assert np.array_equal(
            report.accuracy.cameras[camera_id].predictions, offline_camera.predictions
        )


def test_macro_f1_degrades_monotonically_with_drop_rate():
    """The headline curve: more shedding can only hurt event F1."""
    curve = shedding_curve()
    print("\n=== accuracy bench: F1 vs drop rate (drop_oldest) ===")
    for drop_rate, macro_f1 in curve:
        print(f"  drop {drop_rate:6.1%} -> macro-F1 {macro_f1:.4f}")
    drop_rates = [point[0] for point in curve]
    f1s = [point[1] for point in curve]
    # >= 3 strictly increasing shedding regimes beyond the provisioned one.
    assert len(curve) >= 4
    assert all(b > a for a, b in zip(drop_rates, drop_rates[1:]))
    assert all(b <= a for a, b in zip(f1s, f1s[1:]))
    # And the overall degradation is real, not a chain of exact ties.
    assert f1s[-1] < f1s[0]


def test_drop_oldest_beats_drop_newest_at_equal_drop_rate():
    """Freshness-biased shedding is cheaper in F1 than stale-head shedding."""
    print("\n=== accuracy bench: drop policy comparison ===")
    for scale in (SERVICE_SCALES[1], SERVICE_SCALES[2]):
        oldest = run_fleet(scale, DropPolicy.DROP_OLDEST)
        newest = run_fleet(scale, DropPolicy.DROP_NEWEST)
        print(
            f"  scale {scale}: drop_oldest F1 {oldest.accuracy.macro_f1:.4f} vs "
            f"drop_newest F1 {newest.accuracy.macro_f1:.4f} "
            f"(drop rates {oldest.drop_rate:.1%} / {newest.drop_rate:.1%})"
        )
        # Same overload sheds the same fraction under either policy...
        assert oldest.drop_rate == newest.drop_rate
        # ...but drop-oldest keeps more event F1 on this pinned fleet.
        assert oldest.accuracy.macro_f1 > newest.accuracy.macro_f1


def test_adaptive_shedding_reports_accuracy():
    """The control plane's shedding decisions land in the accuracy report."""
    report, loop = run_adaptive()
    static = run_fleet(SERVICE_SCALES[2], DropPolicy.DROP_OLDEST)
    _print_point("\nadaptive shedding (truth_density)", report)
    _print_point("static (same overload)", static)
    assert report.accuracy is not None
    assert loop.counter_value("control.shedding.interventions") > 0
    assert report.accuracy.num_cameras == NUM_CAMERAS


def test_accuracy_runs_are_bit_identical():
    """Same seed, same regime: identical predictions, F1, and telemetry."""
    scale = SERVICE_SCALES[2]
    first = run_fleet(scale, DropPolicy.DROP_OLDEST)
    second = run_fleet(scale, DropPolicy.DROP_OLDEST, key="rerun")
    assert first.accuracy.macro_f1 == second.accuracy.macro_f1
    assert first.telemetry == second.telemetry
    assert first.frames_scored == second.frames_scored
    for camera_id, camera in first.accuracy.cameras.items():
        twin = second.accuracy.cameras[camera_id]
        assert np.array_equal(camera.predictions, twin.predictions)
        assert np.array_equal(camera.truth, twin.truth)
        assert camera.f1 == twin.f1


def test_accuracy_perf_record(perf_records):
    """Publish the accuracy headline numbers as a perf record."""
    offline = run_offline()
    curve = shedding_curve()
    adaptive_report, _ = run_adaptive()
    models = trained_models()
    perf_records["ACCURACY"] = {
        "bench": "accuracy",
        "num_cameras": NUM_CAMERAS,
        "task": ACCURACY.task,
        "offline_macro_f1": offline.macro_f1,
        "no_shed_macro_f1": curve[0][1],
        "f1_vs_drop_rate": [
            {"drop_rate": drop_rate, "macro_f1": macro_f1} for drop_rate, macro_f1 in curve
        ],
        "adaptive_drop_rate": adaptive_report.drop_rate,
        "adaptive_macro_f1": adaptive_report.accuracy.macro_f1,
        "cameras_trained": models.cache_misses,
        "trained_cache_hits": models.cache_hits,
        "wall_time_seconds_no_shed": _RESULTS[f"drop_oldest:{SERVICE_SCALES[0]}"][1],
    }
