"""Benchmark of the event-delivery plane at a million-event scale.

Streams >= 1M synthetic event records from a 64-camera cluster (4 edge
nodes, 16 cameras each) through the real delivery components — seeded
lossy broker, bounded retry outbox, serial per-node uplink, idempotent
datacenter ingest with a lagging consumer — with >= 5% injected broker
loss plus ack loss.  Records are streamed as compact keys; nothing
per-event is retained beyond the delivery-latency array, so the bench
holds at 1M what the fleet tests pin at hundreds.  Pinned claims:

* **zero duplicate ingests** — every delivered key is ingested exactly
  once; retransmits of ack-lost payloads are all suppressed as
  duplicates (``unique_ingests == delivered``);
* **100% eventual delivery for non-dropped events** — every published
  record that is not a dead letter reaches the datacenter, and the sized
  outbox never overflows at this offered load;
* **delivery-latency p50/p99 reported** — exact nearest-rank percentiles
  over all delivered records, close time to ingest completion, with the
  consumer's queueing lag included;
* **bit-identical reruns** — two fresh end-to-end runs produce the same
  counters and a byte-identical latency array (SHA-256 digest compare).

Emits a ``BENCH_EVENTS.json`` perf record (``--json`` / ``BENCH_JSON``).
"""

from __future__ import annotations

import gc
import hashlib
import json
import math
import time

import numpy as np

from repro.edge.uplink import ConstrainedUplink
from repro.events import (
    BrokerConfig,
    DatacenterIngest,
    NodeOutbox,
    OutboxConfig,
    SimulatedBroker,
)

NUM_NODES = 4
CAMERAS_PER_NODE = 16
NUM_CAMERAS = NUM_NODES * CAMERAS_PER_NODE  # 64
EVENTS_PER_CAMERA = 15_625
TOTAL_EVENTS = NUM_CAMERAS * EVENTS_PER_CAMERA  # exactly 1,000,000

# Each camera closes one event every EVENT_INTERVAL seconds; per-camera
# phase offsets spread the 64 closes inside the interval so offers stay
# strictly ordered and the consumer sees a steady arrival stream.
EVENT_INTERVAL = 0.08
CAMERA_PHASE = 0.001  # 64 * 0.001 < EVENT_INTERVAL

# >= 5% payload loss (the ISSUE floor) plus ack loss, which is the outcome
# that manufactures duplicates for the dedupe pin.
BROKER = BrokerConfig(loss_rate=0.06, ack_loss_rate=0.02, seed=29)
OUTBOX = OutboxConfig(
    max_queue=8192,
    max_retries=4,
    backoff_base_seconds=0.05,
    backoff_cap_seconds=0.8,
)
RECORD_BITS = 2048.0
# Per-node event uplink slice: 2 Mbps against ~410 kbps of offered event
# bytes — transport adds ~1 ms per attempt without building a backlog.
UPLINK_BPS = 2_000_000.0
# Cluster close rate is NUM_CAMERAS / EVENT_INTERVAL = 800 events/s; a
# 1000 events/s consumer runs at ~0.8 utilization, so queueing lag is
# real and lands in the latency percentiles.
CONSUMER_RATE_EPS = 1000.0

_RUNS: dict[str, dict] = {}


def close_time(camera: int, index: int) -> float:
    """When event ``index`` of camera ``camera`` closes (same floats both
    at offer time and at latency time — one expression, one rounding)."""
    return index * EVENT_INTERVAL + camera * CAMERA_PHASE


def event_key(camera: int, index: int) -> str:
    """Global event key: epoch 0, per-detector ids starting at 1."""
    return f"cam{camera:03d}/e0/{index + 1}"


def nearest_rank(sorted_latencies: np.ndarray, q: float) -> float:
    """Nearest-rank percentile over an already-sorted array — the same
    rank rule as :func:`repro.events.nearest_rank_percentile`."""
    rank = max(1, math.ceil(q * sorted_latencies.size))
    return float(sorted_latencies[rank - 1])


def run_node(node_index: int) -> dict:
    """Generate and deliver one node's 16-camera event stream.

    Returns the node's counters plus the (arrival time, global event id)
    arrays of every attempt that reached the datacenter — the only
    per-event state kept.
    """
    broker = SimulatedBroker(BROKER)
    outbox = NodeOutbox(f"node{node_index}", OUTBOX)
    uplink = ConstrainedUplink(UPLINK_BPS, keep_transfers=False)
    cameras = range(
        node_index * CAMERAS_PER_NODE, (node_index + 1) * CAMERAS_PER_NODE
    )

    published = acked = dead_letter = overflow = retried = 0
    send_times: list[float] = []
    send_gids: list[int] = []
    send_reach: list[bool] = []
    # Closes interleave phase-ordered cameras inside each interval, so
    # offers arrive in the non-decreasing order the outbox requires.
    for index in range(EVENTS_PER_CAMERA):
        for camera in cameras:
            gid = camera * EVENTS_PER_CAMERA + index
            key = event_key(camera, index)
            plan = broker.plan(key, OUTBOX.max_attempts)
            entry = outbox.offer(
                key, close_time(camera, index), RECORD_BITS, len(plan)
            )
            outbox.entries.clear()  # the plan below is all we keep
            if entry is None:
                overflow += 1
                continue
            published += 1
            retried += len(plan) - 1
            if plan[-1].acked:
                acked += 1
            elif not any(outcome.reaches_datacenter for outcome in plan):
                dead_letter += 1
            for send_at, outcome in zip(entry.send_times, plan):
                send_times.append(send_at)
                send_gids.append(gid)
                send_reach.append(outcome.reaches_datacenter)

    # Retransmits of earlier events overlap later events' first sends;
    # the serial uplink carries attempts in send order (FIFO).
    send = np.asarray(send_times)
    gids = np.asarray(send_gids, dtype=np.int64)
    reach = np.asarray(send_reach, dtype=bool)
    order = np.argsort(send, kind="stable")
    arrival_times: list[float] = []
    arrival_gids: list[int] = []
    for i in order:
        transfer = uplink.upload(RECORD_BITS, send[i], "evt")
        if reach[i]:
            arrival_times.append(transfer.end_time)
            arrival_gids.append(gids[i])
    return {
        "published": published,
        "acked": acked,
        "dead_letter": dead_letter,
        "dropped_overflow": overflow,
        "retried": retried,
        "attempts": int(send.size),
        "outbox_dropped": outbox.dropped,
        "uplink_bits": uplink.total_bits,
        "arrival_times": np.asarray(arrival_times),
        "arrival_gids": np.asarray(arrival_gids, dtype=np.int64),
    }


def execute() -> dict:
    """One full end-to-end run: 4 nodes, merged ingest, exact latencies."""
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    try:
        nodes = [run_node(node_index) for node_index in range(NUM_NODES)]

        # Merge the nodes' arrival streams into one time-ordered feed for
        # the single datacenter ingest (gid breaks exact-time ties
        # deterministically).
        times = np.concatenate([node["arrival_times"] for node in nodes])
        gids = np.concatenate([node["arrival_gids"] for node in nodes])
        order = np.lexsort((gids, times))
        times = times[order]
        gids = gids[order]

        ingest = DatacenterIngest(consumer_rate_eps=CONSUMER_RATE_EPS)
        latencies = np.empty(gids.size)
        delivered = 0
        for arrived_at, gid in zip(times, gids):
            camera, index = divmod(int(gid), EVENTS_PER_CAMERA)
            result = ingest.ingest(event_key(camera, index), float(arrived_at))
            if result.accepted:
                latencies[delivered] = result.completed_at - close_time(
                    camera, index
                )
                delivered += 1
        latencies = np.sort(latencies[:delivered])
        wall = time.perf_counter() - started
    finally:
        gc.enable()

    counters = {
        "published": sum(node["published"] for node in nodes),
        "acked": sum(node["acked"] for node in nodes),
        "dead_letter": sum(node["dead_letter"] for node in nodes),
        "dropped_overflow": sum(node["dropped_overflow"] for node in nodes),
        "retried": sum(node["retried"] for node in nodes),
        "attempts": sum(node["attempts"] for node in nodes),
        "arrivals": int(gids.size),
        "delivered": delivered,
        "unique_ingests": ingest.unique_ingests,
        "duplicates": ingest.duplicates,
        "latency_p50": nearest_rank(latencies, 0.50),
        "latency_p99": nearest_rank(latencies, 0.99),
        "max_consumer_lag": ingest.max_consumer_lag,
        "uplink_bits": sum(node["uplink_bits"] for node in nodes),
    }
    counters["delivered_unacked"] = (
        counters["delivered"] - counters["acked"]
    )
    digest = hashlib.sha256()
    digest.update(json.dumps(counters, sort_keys=True).encode())
    digest.update(latencies.tobytes())
    return {
        "counters": counters,
        "latencies": latencies,
        "digest": digest.hexdigest(),
        "wall_s": wall,
        "consumer_service_s": ingest.service_seconds,
    }


def run_pipeline(tag: str) -> dict:
    if tag not in _RUNS:
        _RUNS[tag] = execute()
    return _RUNS[tag]


def test_million_event_delivery(benchmark):
    """1M events, 64 cameras, 8% broker loss: the full plane end to end."""
    result = benchmark.pedantic(
        lambda: run_pipeline("first"), rounds=1, iterations=1, warmup_rounds=0
    )
    counters = result["counters"]
    print("\n=== event delivery at 1M events ===")
    print(
        f"published={counters['published']} acked={counters['acked']} "
        f"delivered_unacked={counters['delivered_unacked']} "
        f"dead_letter={counters['dead_letter']} retried={counters['retried']} "
        f"duped={counters['duplicates']}"
    )
    print(
        f"p50={counters['latency_p50'] * 1e3:.2f}ms "
        f"p99={counters['latency_p99'] * 1e3:.2f}ms "
        f"max_lag={counters['max_consumer_lag'] * 1e3:.2f}ms "
        f"wall={result['wall_s']:.1f}s"
    )
    assert counters["published"] + counters["dropped_overflow"] == TOTAL_EVENTS
    # The sized outbox absorbs this offered load without overflowing.
    assert counters["dropped_overflow"] == 0
    # Every published record resolves to exactly one final state.
    assert counters["published"] == (
        counters["acked"]
        + counters["delivered_unacked"]
        + counters["dead_letter"]
    )
    # The loss model really bit: a visible share of records retried.
    assert counters["retried"] > 0.05 * TOTAL_EVENTS


def test_zero_duplicate_ingests():
    """Idempotence at scale: each delivered key ingested exactly once."""
    counters = run_pipeline("first")["counters"]
    assert counters["unique_ingests"] == counters["delivered"]
    assert (
        counters["duplicates"] == counters["arrivals"] - counters["delivered"]
    )
    # Ack loss manufactured real retransmits of already-delivered payloads;
    # all of them were suppressed.
    assert counters["duplicates"] > 0


def test_every_non_dropped_event_delivered():
    """Eventual delivery: published minus dead letters all reach ingest."""
    result = run_pipeline("first")
    counters = result["counters"]
    assert counters["delivered"] == (
        counters["published"] - counters["dead_letter"]
    )
    assert result["latencies"].size == counters["delivered"]
    assert float(result["latencies"][0]) > 0.0


def test_latency_percentiles_include_retries_and_lag():
    result = run_pipeline("first")
    counters = result["counters"]
    assert 0.0 < counters["latency_p50"] <= counters["latency_p99"]
    # Retried records (>= 5% of the stream, > the 1% tail) wait out at
    # least one backoff window before their payload can land.
    assert counters["latency_p99"] >= OUTBOX.backoff_base_seconds
    # The ~0.8-utilized consumer queued arrivals beyond its service time.
    assert counters["max_consumer_lag"] > result["consumer_service_s"]


def test_reruns_are_bit_identical():
    """A fresh end-to-end run reproduces every counter and latency bit."""
    first = run_pipeline("first")
    second = run_pipeline("second")
    assert second["counters"] == first["counters"]
    assert second["digest"] == first["digest"]


def test_events_perf_record(perf_records):
    """Publish the million-event delivery numbers as a perf record."""
    result = run_pipeline("first")
    counters = result["counters"]
    perf_records["EVENTS"] = {
        "bench": "events",
        "cameras": NUM_CAMERAS,
        "nodes": NUM_NODES,
        "events": TOTAL_EVENTS,
        "broker_loss_rate": BROKER.loss_rate,
        "broker_ack_loss_rate": BROKER.ack_loss_rate,
        "published": counters["published"],
        "acked": counters["acked"],
        "delivered_unacked": counters["delivered_unacked"],
        "dead_letter": counters["dead_letter"],
        "dropped_overflow": counters["dropped_overflow"],
        "retried": counters["retried"],
        "duplicates_suppressed": counters["duplicates"],
        "unique_ingests": counters["unique_ingests"],
        "latency_p50_s": counters["latency_p50"],
        "latency_p99_s": counters["latency_p99"],
        "max_consumer_lag_s": counters["max_consumer_lag"],
        "uplink_bits": counters["uplink_bits"],
        "wall_seconds": result["wall_s"],
        "events_per_second": TOTAL_EVENTS / result["wall_s"],
        "digest": result["digest"],
    }
