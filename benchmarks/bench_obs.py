"""Benchmark pinning the observability plane's overhead and determinism.

The observability plane (``repro.obs``) promises two things the rest of the
repo can build on:

* **Cheapness** — frame-lifecycle tracing at the default 1-in-64 sampling
  plus control-interval metric scraping must cost under 5% wall clock on
  the standard 64-camera overload scenario, so it can stay on in every
  experiment;
* **Determinism** — the exported Chrome trace JSON, the metrics-timeline
  JSONL, and the SLO report must be bit-identical across reruns of the
  same seeded scenario (the whole simulation is deterministic; the
  observability plane must not break that).

A third assertion checks the tracer's core accounting invariant: every
sampled frame's top-level spans (queue, service, upload wait, upload)
partition the root span exactly, so queue + service + upload time sums to
the end-to-end latency with no unaccounted gaps.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.control import AdaptiveSheddingController, ControlLoop, SheddingConfig
from repro.fleet import (
    DropPolicy,
    FleetConfig,
    FleetRuntime,
    ShardedFleetRuntime,
    ShardingConfig,
    generate_fleet,
)
from repro.obs import AlertRule, MetricsTimeline, SLOConfig, Tracer, profile_from_tracer

NUM_CAMERAS = 64
DURATION_SECONDS = 3.0
SCRAPE_INTERVAL = 0.25
SAMPLE_EVERY = 64
TIMING_ROUNDS = 3
MAX_OVERHEAD = 0.05

_CACHE: dict[str, dict] = {}


def _build_runtime(observed: bool):
    fleet = generate_fleet(NUM_CAMERAS, seed=0, duration_seconds=DURATION_SECONDS)
    config = FleetConfig(
        num_workers=4,
        queue_capacity=8,
        drop_policy=DropPolicy.DROP_OLDEST,
        service_time_scale=1.0,
        uplink_capacity_bps=500_000.0,
        slo=SLOConfig() if observed else None,
    )
    tracer = Tracer(sample_every=SAMPLE_EVERY) if observed else None
    timeline = MetricsTimeline() if observed else None
    runtime = FleetRuntime(fleet, config=config, tracer=tracer)
    return runtime, tracer, timeline


def _run_once(observed: bool):
    """One incremental fleet run; both regimes step the identical loop.

    The baseline pays the same advance_until cadence as the observed run so
    the measured delta is purely tracing + SLO accounting + scraping.
    """
    runtime, tracer, timeline = _build_runtime(observed)
    started = time.perf_counter()
    runtime.start()
    tick = SCRAPE_INTERVAL
    while runtime.has_pending_events:
        runtime.advance_until(tick)
        if timeline is not None:
            timeline.scrape(tick, "node0", runtime.telemetry)
        tick += SCRAPE_INTERVAL
    report = runtime.finalize()
    elapsed = time.perf_counter() - started
    return report, tracer, timeline, elapsed


def _measured(observed: bool) -> dict:
    """Best-of-N with interleaved regimes (and a warmup pair), so machine
    drift hits baseline and observed symmetrically."""
    key = "observed" if observed else "baseline"
    if key not in _CACHE:
        _run_once(False)
        _run_once(True)
        results = {False: None, True: None}
        for _ in range(TIMING_ROUNDS):
            for regime in (False, True):
                report, tracer, timeline, elapsed = _run_once(regime)
                if results[regime] is None or elapsed < results[regime]["seconds"]:
                    results[regime] = {
                        "report": report,
                        "tracer": tracer,
                        "timeline": timeline,
                        "seconds": elapsed,
                    }
        _CACHE["baseline"] = results[False]
        _CACHE["observed"] = results[True]
    return _CACHE[key]


def test_obs_overhead_under_budget(benchmark, perf_records):
    """1/64 tracing + scraping must stay under 5% of baseline wall clock."""
    observed = benchmark.pedantic(
        lambda: _measured(True), rounds=1, iterations=1, warmup_rounds=0
    )
    baseline = _measured(False)
    overhead = observed["seconds"] / baseline["seconds"] - 1.0
    print(
        f"\n=== obs bench: baseline {baseline['seconds'] * 1e3:.0f} ms, "
        f"observed {observed['seconds'] * 1e3:.0f} ms "
        f"({overhead:+.1%} overhead, budget {MAX_OVERHEAD:.0%}) ==="
    )
    report = observed["report"]
    print(report.summary())
    perf_records["OBS"] = {
        "num_cameras": NUM_CAMERAS,
        "sample_every": SAMPLE_EVERY,
        "baseline_seconds": round(baseline["seconds"], 4),
        "observed_seconds": round(observed["seconds"], 4),
        "overhead_fraction": round(overhead, 4),
        "sampled_traces": len(observed["tracer"].frame_traces()),
        "timeline_samples": len(observed["timeline"]),
        "slo_fresh_fraction": round(report.slo.fresh_fraction, 4),
        "cameras_burning": report.slo.cameras_burning,
    }
    # The observed and baseline runs must shed/score identically: the
    # observability plane watches the simulation, it must not steer it.
    assert report.frames_scored == baseline["report"].frames_scored
    assert report.frames_generated == baseline["report"].frames_generated
    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead:.1%} exceeds the {MAX_OVERHEAD:.0%} budget"
    )


def test_obs_outputs_bit_identical_across_reruns():
    """Two observed runs of the same scenario export identical bytes."""
    first_report, first_tracer, first_timeline, _ = _run_once(True)
    second_report, second_tracer, second_timeline, _ = _run_once(True)
    assert first_tracer.chrome_trace_json() == second_tracer.chrome_trace_json()
    assert first_timeline.to_jsonl() == second_timeline.to_jsonl()
    assert first_timeline.to_prometheus() == second_timeline.to_prometheus()
    assert first_report.slo.summary() == second_report.slo.summary()
    assert (
        profile_from_tracer(first_tracer).format_table()
        == profile_from_tracer(second_tracer).format_table()
    )


def test_obs_trace_accounts_for_full_latency():
    """Sampled span trees partition end-to-end latency with no gaps."""
    observed = _measured(True)
    traces = observed["tracer"].frame_traces()
    assert traces, "1/64 sampling over ~3k frames must sample something"
    for trace in traces:
        assert abs(trace.unaccounted_seconds()) < 1e-9, (
            f"{trace.camera_id}/frame{trace.frame_index} has "
            f"{trace.unaccounted_seconds():.3e}s unaccounted"
        )
    doc = json.loads(observed["tracer"].chrome_trace_json())
    events = doc["traceEvents"]
    assert all({"ph", "pid", "tid", "ts"} <= set(e) for e in events)
    assert any(e["ph"] == "X" for e in events)
    # Ship a sample trace with the bench artifacts so CI uploads one a
    # human can drop into Perfetto.
    target = os.environ.get("BENCH_JSON")
    if target:
        out = Path(target)
        out.mkdir(parents=True, exist_ok=True)
        (out / "trace_sample.json").write_text(
            observed["tracer"].chrome_trace_json() + "\n", encoding="utf-8"
        )


# --- alerting + decision provenance overhead --------------------------------
#
# The explainability layer (decision provenance records on every controller
# tick, alert-rule evaluation over the timeline) must fit the same <5%
# budget.  Both regimes drive an identical control loop with a watching
# controller (sky-high watermarks, so it only ever records idle decisions
# and never steers the run); the observed one adds timeline scraping and
# alert evaluation on top — the frames_scored guard proves the simulation
# itself was untouched.

ALERT_RULES = (
    AlertRule(
        name="queue_wait_p99",
        metric="latency.queue_wait_seconds.p99",
        threshold=0.5,
        for_seconds=0.5,
    ),
    AlertRule(
        name="uplink_demand",
        metric="uplink.estimated_bits",
        threshold=50_000.0,
        mode="rate",
        severity="page",
    ),
)


def _run_control_once(observed: bool):
    controllers = [
        AdaptiveSheddingController(
            SheddingConfig(
                high_watermark_seconds=1e9,  # watch, never act
                low_watermark_seconds=1e8,
                quota_ladder=(2,),
            )
        )
    ]
    loop = ControlLoop(controllers, interval_seconds=SCRAPE_INTERVAL)
    timeline = MetricsTimeline() if observed else None
    runtime = ShardedFleetRuntime(
        generate_fleet(NUM_CAMERAS, seed=0, duration_seconds=DURATION_SECONDS),
        config=ShardingConfig(
            num_nodes=2,
            placement="load_aware",
            total_uplink_bps=500_000.0,
            uplink_allocation="equal",
            node_config=FleetConfig(
                num_workers=4,
                queue_capacity=8,
                drop_policy=DropPolicy.DROP_OLDEST,
                service_time_scale=1.0,
            ),
        ),
        control_loop=loop,
        timeline=timeline,
        alert_rules=list(ALERT_RULES) if observed else (),
    )
    started = time.perf_counter()
    report = runtime.run()
    elapsed = time.perf_counter() - started
    return report, timeline, elapsed


def _measured_control(observed: bool) -> dict:
    """Best-of-N with interleaved regimes (and a warmup pair), so slow
    machine drift hits baseline and observed symmetrically."""
    key = "control_observed" if observed else "control_baseline"
    if key not in _CACHE:
        _run_control_once(False)
        _run_control_once(True)
        results = {False: None, True: None}
        for _ in range(TIMING_ROUNDS):
            for regime in (False, True):
                report, timeline, elapsed = _run_control_once(regime)
                if results[regime] is None or elapsed < results[regime]["seconds"]:
                    results[regime] = {
                        "report": report,
                        "timeline": timeline,
                        "seconds": elapsed,
                    }
        _CACHE["control_baseline"] = results[False]
        _CACHE["control_observed"] = results[True]
    return _CACHE[key]


def test_alerting_and_provenance_overhead_under_budget(perf_records):
    """Provenance records + alert evaluation must fit the <5% budget."""
    observed = _measured_control(True)
    baseline = _measured_control(False)
    overhead = observed["seconds"] / baseline["seconds"] - 1.0
    report = observed["report"]
    print(
        f"\n=== alerting bench: baseline {baseline['seconds'] * 1e3:.0f} ms, "
        f"observed {observed['seconds'] * 1e3:.0f} ms "
        f"({overhead:+.1%} overhead, budget {MAX_OVERHEAD:.0%}) | "
        f"{len(report.decision_records)} decision records, "
        f"{len(report.alerts)} alert transitions ==="
    )
    # The watching controller records a decision per node per tick but never
    # acts; both regimes must therefore shed/score identically.
    assert report.frames_scored == baseline["report"].frames_scored
    assert report.frames_generated == baseline["report"].frames_generated
    assert not report.control_log
    assert report.decision_records, "watching controller must leave provenance"
    assert all(not record["actions"] for record in report.decision_records)
    perf_records["OBS_ALERTS"] = {
        "baseline_seconds": round(baseline["seconds"], 4),
        "observed_seconds": round(observed["seconds"], 4),
        "overhead_fraction": round(overhead, 4),
        "decision_records": len(report.decision_records),
        "alert_transitions": len(report.alerts),
    }
    assert overhead < MAX_OVERHEAD, (
        f"alerting + provenance overhead {overhead:.1%} exceeds "
        f"the {MAX_OVERHEAD:.0%} budget"
    )


def test_alerting_and_provenance_bit_identical_across_reruns():
    """Two observed runs export identical alert JSONL and decision records."""
    first_report, first_timeline, _ = _run_control_once(True)
    second_report, second_timeline, _ = _run_control_once(True)
    assert first_report.alerts.to_jsonl() == second_report.alerts.to_jsonl()
    assert first_report.decision_records == second_report.decision_records
    assert first_timeline.to_jsonl() == second_timeline.to_jsonl()
