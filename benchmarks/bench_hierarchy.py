"""Benchmark of the hierarchical control plane at kilocamera scale.

The flat :class:`~repro.control.loop.ControlLoop` gives every controller
every node's full runtime each tick and the cluster report merges every
node's full telemetry registry — O(cameras x metrics) of cluster-side work
that tops out around tens of cameras.  The hierarchical plane
(:mod:`repro.control.hierarchy`) keeps local policies on their nodes and
exchanges only one fixed-size aggregate per node per tick.  This bench pins
the four scale-out claims on a 16-node cluster:

* **near-linear wall-clock in cameras** — the 1024-camera run costs at most
  ``(1024/64) x slack`` of the 64-camera run on the same 16 nodes;
* **O(nodes) coordination** — every tick's total aggregate payload is under
  a per-node constant, and growing the fleet 16x leaves the payload within
  digits of the 64-camera run's;
* **accuracy parity** — on the 64-camera scenario, the hierarchy's cluster
  macro-F1 lands within tolerance of the flat single-coordinator plane
  running the same policy surface (shedding + drift locally, uplink +
  migration at cluster scope);
* **determinism** — two fresh hierarchical runs produce bit-identical
  decision logs, provenance, telemetry, and payload series.

Emits a ``BENCH_HIERARCHY.json`` perf record (``--json`` / ``BENCH_JSON``).
"""

from __future__ import annotations

import gc
import time

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    HierarchicalControlPlane,
    MigrationController,
    ThresholdDriftController,
    UplinkShareController,
)
from repro.fleet import (
    AccuracyConfig,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
    TrainedMicroClassifiers,
    generate_fleet,
)

NUM_NODES = 16
NUM_DISTRICTS = 16
SMALL_CAMERAS = 64
LARGE_CAMERAS = 1024
SCALE = LARGE_CAMERAS // SMALL_CAMERAS  # 16x cameras on the same 16 nodes
DURATION_SECONDS = 1.0
# Near-linear tolerance: per-run fixed costs (16 idle-ish nodes at 64
# cameras) make the small run comparatively expensive, so the large run
# must land under SCALE x this slack, not under SCALE exactly.
WALL_CLOCK_SLACK = 2.0
# Per-node aggregate budget in bytes: ~32 sketch centroids plus a dozen
# scalars serializes to well under this, independent of camera count.
PER_NODE_PAYLOAD_BYTES = 2600
# The 64-camera run's wait sketches are under-filled (a handful of
# observations per node per tick), so saturating them at max_centroids can
# roughly double the payload; 16x cameras must still stay far below 16x.
CROSS_SCALE_PAYLOAD_SLACK = 3.0
MACRO_F1_TOLERANCE = 0.15

# Light per-frame cost for the scaling pair: the claim under test is the
# control/telemetry plane's cost in cameras, not worker saturation.
SCALING_NODE = FleetConfig(
    num_workers=4,
    queue_capacity=8,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=0.001,
)

# Moderately loaded accuracy pair: trained microclassifiers, paper-ish
# service times — the regime where shedding and drift decisions actually
# move macro-F1.
ACCURACY = AccuracyConfig(train_frames=48, epochs=1.0)
ACCURACY_NODE = FleetConfig(
    num_workers=2,
    queue_capacity=8,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=0.029,
    accuracy_task=ACCURACY.task,
)

_RUNS: dict[str, tuple[object, float, HierarchicalControlPlane | None]] = {}
_MODELS: TrainedMicroClassifiers | None = None


def make_fleet(num_cameras: int) -> list:
    """A districted citywide fleet at the requested scale."""
    return generate_fleet(
        num_cameras,
        seed=11,
        duration_seconds=DURATION_SECONDS,
        resolutions=((32, 32), (48, 32)),
        frame_rates=(2.0, 4.0),
        districts=NUM_DISTRICTS,
    )


def trained_models() -> TrainedMicroClassifiers:
    """Shared trained-model cache: each 64-fleet camera trains exactly once."""
    global _MODELS
    if _MODELS is None:
        _MODELS = TrainedMicroClassifiers(ACCURACY)
    return _MODELS


def flat_loop() -> ControlLoop:
    """The single-coordinator baseline running the same policy surface."""
    return ControlLoop(
        [
            AdaptiveSheddingController(),
            ThresholdDriftController(),
            UplinkShareController(),
            MigrationController(),
        ],
        interval_seconds=0.25,
    )


def run_cluster(
    key: str,
    num_cameras: int,
    node_config,
    hierarchical: bool,
    accuracy: bool,
    warmup: bool = False,
):
    """One cluster run (cached per key); returns (report, wall_s, hierarchy)."""
    if key not in _RUNS:
        config = ShardingConfig(
            num_nodes=NUM_NODES,
            placement="district_aware",
            total_uplink_bps=2_000_000.0,
            uplink_allocation="equal",
            uplink_sharing="work_conserving",
            node_config=node_config,
        )

        def build():
            hierarchy = HierarchicalControlPlane() if hierarchical else None
            runtime = ShardedFleetRuntime(
                make_fleet(num_cameras),
                config=config,
                pipeline_factory=(
                    trained_models().pipeline_factory() if accuracy else None
                ),
                control_loop=None if hierarchical else flat_loop(),
                hierarchy=hierarchy,
            )
            return runtime, hierarchy

        if warmup:
            # The first run at a new scale pays one-off allocator growth
            # (arena expansion, page faults) worth 2-3x the steady-state
            # cost; discard it so the timed run measures the simulator.
            build()[0].run()
        runtime, hierarchy = build()
        # Pause the cyclic GC for the timed region: the first kilocamera
        # allocation ramp otherwise triggers heap-growth collections that
        # dwarf the simulator cost actually under test (pytest-benchmark's
        # own --benchmark-disable-gc draws the same line).
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            report = runtime.run()
            wall = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
        _RUNS[key] = (report, wall, hierarchy)
    return _RUNS[key]


def run_small_scaling():
    return run_cluster(
        "scaling:64", SMALL_CAMERAS, SCALING_NODE, True, False, warmup=True
    )


def run_large_scaling():
    return run_cluster(
        "scaling:1024", LARGE_CAMERAS, SCALING_NODE, True, False, warmup=True
    )


def _check_cluster(report, num_cameras: int) -> None:
    assert report.num_nodes == NUM_NODES
    assert report.num_cameras == num_cameras
    assert report.frames_generated > 0
    assert report.control_ticks > 0


def test_hierarchy_64_cameras(benchmark):
    """The 64-camera reference run on 16 nodes under the hierarchy."""
    report, wall, _ = benchmark.pedantic(
        run_small_scaling, rounds=1, iterations=1, warmup_rounds=0
    )
    print(f"\n=== hierarchy bench: 64 cameras / 16 nodes ({wall:.2f}s wall) ===")
    print(report.summary())
    _check_cluster(report, SMALL_CAMERAS)


def test_hierarchy_1024_cameras(benchmark):
    """The kilocamera run: 1024 cameras / 16 nodes under the hierarchy."""
    report, wall, _ = benchmark.pedantic(
        run_large_scaling, rounds=1, iterations=1, warmup_rounds=0
    )
    print(f"\n=== hierarchy bench: 1024 cameras / 16 nodes ({wall:.2f}s wall) ===")
    print(report.summary())
    _check_cluster(report, LARGE_CAMERAS)


def test_wall_clock_near_linear_in_cameras():
    """16x the cameras costs at most 16x (x slack) the wall-clock."""
    _, wall_small, _ = run_small_scaling()
    _, wall_large, _ = run_large_scaling()
    ratio = wall_large / wall_small
    print(
        f"\nwall-clock: 64 cams {wall_small:.2f}s, 1024 cams {wall_large:.2f}s "
        f"({ratio:.1f}x for {SCALE}x cameras)"
    )
    assert wall_large <= SCALE * WALL_CLOCK_SLACK * wall_small


def test_coordination_payload_is_o_nodes():
    """Per-tick aggregate payload is bounded per node and flat in cameras."""
    small, _, _ = run_small_scaling()
    large, _, _ = run_large_scaling()
    peak_small = max(small.coordination_payload_bytes)
    peak_large = max(large.coordination_payload_bytes)
    print(
        f"\npeak coordination payload: 64 cams {peak_small} B, "
        f"1024 cams {peak_large} B ({NUM_NODES} nodes)"
    )
    assert peak_small <= NUM_NODES * PER_NODE_PAYLOAD_BYTES
    assert peak_large <= NUM_NODES * PER_NODE_PAYLOAD_BYTES
    # 16x cameras must not grow the payload class — only digits may move.
    assert peak_large <= CROSS_SCALE_PAYLOAD_SLACK * peak_small
    # The cluster report's telemetry is the fixed rollup, not a full merge:
    # its size is a fixed metric set, not cameras x metrics.
    assert len(large.telemetry) == len(small.telemetry)


def test_macro_f1_within_tolerance_of_flat_plane():
    """Aggregates lose no accuracy: hierarchy tracks the flat plane's F1."""
    hier, _, _ = run_cluster("acc:hier", SMALL_CAMERAS, ACCURACY_NODE, True, True)
    flat, _, _ = run_cluster("acc:flat", SMALL_CAMERAS, ACCURACY_NODE, False, True)
    print(
        f"\ncluster macro-F1: hierarchical {hier.accuracy.macro_f1:.4f} vs "
        f"flat {flat.accuracy.macro_f1:.4f} | drop rate "
        f"{hier.drop_rate:.2%} vs {flat.drop_rate:.2%}"
    )
    assert flat.accuracy.macro_f1 > 0.0
    assert abs(hier.accuracy.macro_f1 - flat.accuracy.macro_f1) <= MACRO_F1_TOLERANCE


def test_deterministic_bit_identical_reruns():
    """Two fresh hierarchical runs agree decision-for-decision."""
    first, _, h1 = run_small_scaling()
    config = ShardingConfig(
        num_nodes=NUM_NODES,
        placement="district_aware",
        total_uplink_bps=2_000_000.0,
        uplink_allocation="equal",
        uplink_sharing="work_conserving",
        node_config=SCALING_NODE,
    )
    h2 = HierarchicalControlPlane()
    second = ShardedFleetRuntime(
        make_fleet(SMALL_CAMERAS), config=config, hierarchy=h2
    ).run()
    assert first.control_log == second.control_log
    assert first.decision_records == second.decision_records
    assert first.telemetry == second.telemetry
    assert h1.payload_bytes == h2.payload_bytes


def test_hierarchy_perf_record(perf_records):
    """Publish the kilocamera scale-out numbers as a perf record."""
    small, wall_small, _ = run_small_scaling()
    large, wall_large, _ = run_large_scaling()
    perf_records["HIERARCHY"] = {
        "bench": "hierarchy",
        "num_nodes": NUM_NODES,
        "small_cameras": SMALL_CAMERAS,
        "large_cameras": LARGE_CAMERAS,
        "wall_time_seconds_64": wall_small,
        "wall_time_seconds_1024": wall_large,
        "wall_clock_ratio": wall_large / wall_small,
        "peak_payload_bytes_64": max(small.coordination_payload_bytes),
        "peak_payload_bytes_1024": max(large.coordination_payload_bytes),
        "control_ticks_1024": large.control_ticks,
        "drop_rate_1024": large.drop_rate,
        "uplink_rebalances_1024": large.uplink_rebalances,
        "migrations_1024": large.migrations_performed,
    }
