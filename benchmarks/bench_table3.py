"""Benchmark + reproduction of Figure/Table 3: dataset details.

Regenerates the synthetic Jackson-like and Roadway-like datasets and prints
the paper-vs-generated attribute table (resolution, frames, event frames,
unique events, crop regions).
"""

from __future__ import annotations

from repro.experiments.table3 import run_table3


def _print_rows(rows) -> None:
    print("\nTable 3 — dataset details (paper -> generated)")
    header = (
        f"{'dataset':<10s} {'resolution':<22s} {'frames':<18s} "
        f"{'event frames':<18s} {'events':<12s} {'event fraction':<18s}"
    )
    print(header)
    for row in rows:
        print(
            f"{row.name:<10s} "
            f"{row.paper_resolution + ' -> ' + row.generated_resolution:<22s} "
            f"{f'{row.paper_frames} -> {row.generated_frames}':<18s} "
            f"{f'{row.paper_event_frames} -> {row.generated_event_frames}':<18s} "
            f"{f'{row.paper_unique_events} -> {row.generated_unique_events}':<12s} "
            f"{f'{row.paper_event_fraction:.3f} -> {row.generated_event_fraction:.3f}':<18s}"
        )


def test_table3_dataset_generation(benchmark):
    """Time dataset generation and report the Table 3 comparison."""
    rows = benchmark.pedantic(
        lambda: run_table3(num_frames=240), rounds=1, iterations=1, warmup_rounds=0
    )
    _print_rows(rows)
    assert len(rows) == 2
    for row in rows:
        assert row.generated_unique_events >= 2
        assert row.event_rarity_preserved
