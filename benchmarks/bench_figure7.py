"""Benchmark + reproduction of Figure 7: multiply-adds vs. event F1.

Trains the full-frame and localized microclassifiers plus a sweep of
NoScope-style discrete classifiers on both tasks (Jackson-like Pedestrian and
Roadway-like People with red), then prints each classifier's accuracy against
its marginal multiply-add cost at the paper's full resolution.  The paper's
claim: MCs are an order of magnitude cheaper marginally at comparable or
better accuracy (up to 1.3x / 23x on Jackson, 1.1x / 11x on Roadway).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_TRAINING
from repro.baselines.discrete_classifier import discrete_classifier_pareto_configs
from repro.experiments.figure7 import run_figure7, summarize_figure7


def _print_result(result, summary) -> None:
    print(f"\nFigure 7 — cost vs accuracy ({result.dataset})")
    print(f"{'classifier':<26s} {'madds (paper scale)':>20s} {'event F1':>10s}")
    for point in result.microclassifiers + result.discrete_classifiers:
        print(f"{point.name:<26s} {point.paper_scale_multiply_adds / 1e6:>18.0f}M {point.event_f1:>10.3f}")
    print(
        f"summary: accuracy ratio {summary['accuracy_ratio']:.2f}x, marginal cost ratio vs "
        f"representative DC {summary['marginal_cost_ratio_vs_representative_dc']:.1f}x"
    )


@pytest.mark.parametrize("dataset", ["jackson", "roadway"])
def test_figure7_cost_vs_accuracy(benchmark, dataset, jackson_context, roadway_context):
    """Regenerate one Figure 7 subplot (7a = Jackson, 7b = Roadway)."""
    context = jackson_context if dataset == "jackson" else roadway_context
    sweep = discrete_classifier_pareto_configs()
    dc_configs = [sweep[0], sweep[4]]

    def run():
        return run_figure7(
            context, architectures=("full_frame", "localized"), dc_configs=dc_configs
        )

    # Training must not be repeated under the timer many times; one round.
    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    summary = summarize_figure7(result)
    _print_result(result, summary)

    assert len(result.microclassifiers) == 2
    assert len(result.discrete_classifiers) == 2
    # MCs must be an order of magnitude cheaper (marginally, at paper scale)
    # than the representative discrete classifier.
    assert summary["marginal_cost_ratio_vs_representative_dc"] > 5.0
    # And at least one MC must reach a usable accuracy on the task.
    assert summary["best_mc_f1"] > 0.2
