"""The three microclassifier architectures from Figure 2 of the paper.

* :class:`FullFrameObjectDetectorMC` (Figure 2a) — a sliding-window-style
  detector: a stack of 1x1 convolutions applied at every feature-map
  location, aggregated with a max over the grid of logits ("looking for
  >= 1 objects"), then a sigmoid.
* :class:`LocalizedBinaryClassifierMC` (Figure 2b) — two separable
  convolutions and a fully-connected layer over a spatially cropped feature
  map; suited to prominent objects within a localized region.
* :class:`WindowedLocalizedBinaryClassifierMC` (Figure 2c) — extends the
  localized classifier with temporal context: a shared 1x1 convolution
  reduces each frame's feature map, a window of ``W`` reduced maps is
  depthwise-concatenated, and a small CNN predicts whether the centre frame
  is interesting.  The 1x1 reductions are computed once per frame and
  buffered, so the marginal per-frame cost stays low.

The exact channel widths of the figure correspond to full-scale MobileNet
feature maps; the constructors accept the actual (possibly width-scaled)
input shape and keep the figure's filter counts by default.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.microclassifier import MicroClassifier, MicroClassifierConfig
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalMaxPool,
    Parameter,
    ReLU,
    ReLU6,
    SeparableConv2D,
)
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.model import Sequential

__all__ = [
    "FullFrameObjectDetectorMC",
    "LocalizedBinaryClassifierMC",
    "WindowedLocalizedBinaryClassifierMC",
    "build_microclassifier",
]

_SIGMOID = SigmoidBinaryCrossEntropy._sigmoid


class FullFrameObjectDetectorMC(MicroClassifier):
    """Figure 2a: 1x1-convolution template matcher + max over logits.

    The figure applies a ReLU after the final single-filter convolution; we
    keep that layer linear so the frame logit can take both signs, which the
    sigmoid needs for calibrated training.  This does not change the
    architecture's cost.
    """

    def __init__(
        self,
        config: MicroClassifierConfig,
        hidden_filters: int = 32,
        num_hidden_layers: int = 2,
    ) -> None:
        super().__init__(config)
        if hidden_filters <= 0 or num_hidden_layers < 1:
            raise ValueError("hidden_filters and num_hidden_layers must be positive")
        self.hidden_filters = int(hidden_filters)
        self.num_hidden_layers = int(num_hidden_layers)
        self.model: Sequential | None = None

    def build(self, input_shape: tuple[int, int, int], rng: np.random.Generator) -> None:
        layers = []
        for i in range(self.num_hidden_layers):
            layers.append(Conv2D(self.hidden_filters, 1, name=f"{self.name}/conv1x1_{i}"))
            layers.append(ReLU(name=f"{self.name}/relu_{i}"))
        layers.append(Conv2D(1, 1, name=f"{self.name}/logit_conv"))
        layers.append(GlobalMaxPool(name=f"{self.name}/max"))
        self.model = Sequential(layers, input_shape=input_shape, rng=rng, name=self.name)
        self.input_shape = tuple(input_shape)
        self.built = True

    def forward_logits(self, feature_maps: np.ndarray, training: bool) -> np.ndarray:
        self._require_built()
        return self.model.forward(feature_maps, training=training)

    def predict_proba_batch(self, feature_maps: np.ndarray) -> np.ndarray:
        logits = self.forward_logits(np.asarray(feature_maps, dtype=np.float64), training=False)
        return _SIGMOID(logits[:, 0])

    def backward(self, grad_logits: np.ndarray) -> None:
        self._require_built()
        self.model.backward(grad_logits)

    def parameters(self) -> list[Parameter]:
        return self.model.parameters() if self.model is not None else []

    def multiply_adds(self, input_shape: tuple[int, int, int] | None = None) -> int:
        self._require_built()
        return self.model.multiply_adds(input_shape)


class LocalizedBinaryClassifierMC(MicroClassifier):
    """Figure 2b: two separable convolutions + a 200-unit FC head."""

    def __init__(
        self,
        config: MicroClassifierConfig,
        first_depth: int = 16,
        second_depth: int = 32,
        fc_units: int = 200,
    ) -> None:
        super().__init__(config)
        if min(first_depth, second_depth, fc_units) <= 0:
            raise ValueError("layer sizes must be positive")
        self.first_depth = int(first_depth)
        self.second_depth = int(second_depth)
        self.fc_units = int(fc_units)
        self.model: Sequential | None = None

    def build(self, input_shape: tuple[int, int, int], rng: np.random.Generator) -> None:
        layers = [
            SeparableConv2D(self.first_depth, 3, stride=1, name=f"{self.name}/sepconv1"),
            ReLU(name=f"{self.name}/relu1"),
            SeparableConv2D(self.second_depth, 3, stride=2, name=f"{self.name}/sepconv2"),
            ReLU(name=f"{self.name}/relu2"),
            Flatten(name=f"{self.name}/flatten"),
            Dense(self.fc_units, name=f"{self.name}/fc1"),
            ReLU6(name=f"{self.name}/relu6"),
            Dense(1, name=f"{self.name}/fc2"),
        ]
        self.model = Sequential(layers, input_shape=input_shape, rng=rng, name=self.name)
        self.input_shape = tuple(input_shape)
        self.built = True

    def forward_logits(self, feature_maps: np.ndarray, training: bool) -> np.ndarray:
        self._require_built()
        return self.model.forward(feature_maps, training=training)

    def predict_proba_batch(self, feature_maps: np.ndarray) -> np.ndarray:
        logits = self.forward_logits(np.asarray(feature_maps, dtype=np.float64), training=False)
        return _SIGMOID(logits[:, 0])

    def backward(self, grad_logits: np.ndarray) -> None:
        self._require_built()
        self.model.backward(grad_logits)

    def parameters(self) -> list[Parameter]:
        return self.model.parameters() if self.model is not None else []

    def multiply_adds(self, input_shape: tuple[int, int, int] | None = None) -> int:
        self._require_built()
        return self.model.multiply_adds(input_shape)


class WindowedLocalizedBinaryClassifierMC(MicroClassifier):
    """Figure 2c: temporal-window classifier with buffered 1x1 reductions.

    Per frame, a shared 1x1 convolution reduces the feature map to
    ``reduce_filters`` channels; the reductions for a symmetric window of
    ``window`` frames centred on frame *F* are concatenated depthwise and a
    small CNN + FC head classifies *F*.  The per-frame reductions are
    buffered and reused across overlapping windows (the paper's
    optimization), so the marginal per-frame cost is one reduction plus one
    head evaluation.
    """

    def __init__(
        self,
        config: MicroClassifierConfig,
        window: int = 5,
        reduce_filters: int = 32,
        conv_filters: int = 32,
        fc_units: int = 200,
    ) -> None:
        super().__init__(config)
        if window < 1 or window % 2 == 0:
            raise ValueError("window must be a positive odd integer")
        if min(reduce_filters, conv_filters, fc_units) <= 0:
            raise ValueError("layer sizes must be positive")
        self.window = int(window)
        self.reduce_filters = int(reduce_filters)
        self.conv_filters = int(conv_filters)
        self.fc_units = int(fc_units)
        self.reduce: Conv2D | None = None
        self.reduce_relu: ReLU | None = None
        self.head: Sequential | None = None
        # Streaming buffer of reduced maps keyed by frame index.
        self._reduction_buffer: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._buffer_capacity = 4 * self.window

    def build(self, input_shape: tuple[int, int, int], rng: np.random.Generator) -> None:
        h, w, c = input_shape
        self.reduce = Conv2D(self.reduce_filters, 1, name=f"{self.name}/reduce1x1")
        self.reduce.build((h, w, c), rng)
        self.reduce_relu = ReLU(name=f"{self.name}/reduce_relu")
        head_input = (h, w, self.reduce_filters * self.window)
        self.head = Sequential(
            [
                Conv2D(self.conv_filters, 3, stride=1, name=f"{self.name}/conv1"),
                ReLU(name=f"{self.name}/relu1"),
                Conv2D(self.conv_filters, 3, stride=2, name=f"{self.name}/conv2"),
                ReLU(name=f"{self.name}/relu2"),
                Flatten(name=f"{self.name}/flatten"),
                Dense(self.fc_units, name=f"{self.name}/fc1"),
                ReLU(name=f"{self.name}/fc_relu"),
                Dense(1, name=f"{self.name}/fc2"),
            ],
            input_shape=head_input,
            rng=rng,
            name=f"{self.name}/head",
        )
        self.input_shape = tuple(input_shape)
        self.built = True

    # -- reductions and windows ---------------------------------------------
    def reduce_map(self, feature_map: np.ndarray, training: bool = False) -> np.ndarray:
        """Apply the shared 1x1 reduction to one frame's feature map ``(H, W, C)``."""
        self._require_built()
        out = self.reduce.forward(np.asarray(feature_map, dtype=np.float64)[None, ...], training)
        return self.reduce_relu.forward(out, training)[0]

    def buffer_reduction(self, frame_index: int, feature_map: np.ndarray) -> np.ndarray:
        """Compute (or reuse) the buffered reduction for ``frame_index``."""
        cached = self._reduction_buffer.get(frame_index)
        if cached is not None:
            return cached
        reduced = self.reduce_map(feature_map)
        self._reduction_buffer[frame_index] = reduced
        while len(self._reduction_buffer) > self._buffer_capacity:
            self._reduction_buffer.popitem(last=False)
        return reduced

    def _window_tensor(self, reduced_maps: list[np.ndarray]) -> np.ndarray:
        """Depthwise-concatenate a window of reduced maps into ``(1, H, W, W*R)``."""
        if len(reduced_maps) != self.window:
            raise ValueError(
                f"Expected {self.window} reduced maps, got {len(reduced_maps)}"
            )
        return np.concatenate(reduced_maps, axis=-1)[None, ...]

    def predict_window(self, reduced_maps: list[np.ndarray]) -> float:
        """Probability that the window's centre frame is relevant."""
        logits = self.head.forward(self._window_tensor(reduced_maps), training=False)
        return float(_SIGMOID(logits[0, 0]))

    def predict_proba_stream(self, feature_maps: np.ndarray) -> np.ndarray:
        """Probabilities for every frame of a *consecutive* sequence.

        ``feature_maps`` is ``(N, H, W, C)`` in stream order.  Edge frames use
        a clamped (edge-replicated) window, mirroring a real-time deployment
        where the first/last frames lack full context.
        """
        self._require_built()
        feature_maps = np.asarray(feature_maps, dtype=np.float64)
        n = feature_maps.shape[0]
        # One batched reduction for all frames (the buffered computation).
        reduced = self.reduce_relu.forward(self.reduce.forward(feature_maps, False), False)
        half = self.window // 2
        probs = np.empty(n)
        for i in range(n):
            idx = np.clip(np.arange(i - half, i + half + 1), 0, n - 1)
            window = [reduced[j] for j in idx]
            probs[i] = self.predict_window(window)
        return probs

    # -- MicroClassifier interface -------------------------------------------
    def predict_proba_batch(self, feature_maps: np.ndarray) -> np.ndarray:
        """Treat each batch entry as an independent frame with a static window.

        Without temporal context (e.g. when frames are shuffled for
        training), the window is the same frame repeated ``W`` times; the
        temporal path is exercised via :meth:`predict_proba_stream`.
        """
        self._require_built()
        feature_maps = np.asarray(feature_maps, dtype=np.float64)
        logits = self.forward_logits(feature_maps, training=False)
        return _SIGMOID(logits[:, 0])

    def forward_logits(self, feature_maps: np.ndarray, training: bool) -> np.ndarray:
        self._require_built()
        feature_maps = np.asarray(feature_maps, dtype=np.float64)
        reduced = self.reduce_relu.forward(self.reduce.forward(feature_maps, training), training)
        window_input = np.tile(reduced, (1, 1, 1, self.window))
        return self.head.forward(window_input, training=training)

    def backward(self, grad_logits: np.ndarray) -> None:
        self._require_built()
        grad_window = self.head.backward(grad_logits)
        # The same-frame window replicates the reduction W times; gradients sum.
        n, h, w, _ = grad_window.shape
        grad_reduced = grad_window.reshape(n, h, w, self.window, self.reduce_filters).sum(axis=3)
        grad_reduced = self.reduce_relu.backward(grad_reduced)
        self.reduce.backward(grad_reduced)

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        if self.reduce is not None:
            params.extend(self.reduce.parameters())
        if self.head is not None:
            params.extend(self.head.parameters())
        return params

    def multiply_adds(self, input_shape: tuple[int, int, int] | None = None) -> int:
        """Marginal per-frame multiply-adds: one 1x1 reduction + one head pass."""
        self._require_built()
        shape = tuple(input_shape) if input_shape is not None else self.input_shape
        reduce_cost = self.reduce.multiply_adds(shape)
        head_cost = self.head.multiply_adds()
        return int(reduce_cost + head_cost)

    def reset_buffer(self) -> None:
        """Drop all buffered per-frame reductions."""
        self._reduction_buffer.clear()


_ARCHITECTURES = {
    "full_frame": FullFrameObjectDetectorMC,
    "localized": LocalizedBinaryClassifierMC,
    "windowed": WindowedLocalizedBinaryClassifierMC,
}


def build_microclassifier(
    architecture: str,
    config: MicroClassifierConfig,
    input_shape: tuple[int, int, int],
    rng: np.random.Generator | None = None,
    **kwargs,
) -> MicroClassifier:
    """Construct and build a microclassifier by architecture name.

    Parameters
    ----------
    architecture:
        ``"full_frame"``, ``"localized"``, or ``"windowed"``.
    config:
        Deployment configuration.
    input_shape:
        Shape of the (cropped) feature map the MC will consume.
    kwargs:
        Architecture-specific options (e.g. ``window=5``).
    """
    key = architecture.lower()
    if key not in _ARCHITECTURES:
        raise ValueError(
            f"Unknown architecture {architecture!r}; expected one of {sorted(_ARCHITECTURES)}"
        )
    mc = _ARCHITECTURES[key](config, **kwargs)
    mc.build(tuple(input_shape), rng or np.random.default_rng(0))
    return mc
