"""Events and the per-microclassifier event detector.

An event is a contiguous run of positively classified frames for one
microclassifier, after K-voting smoothing.  Applications use the event ID
stored in each frame's metadata to determine event boundaries and to
demand-fetch surrounding context from the edge node's archive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.smoothing import KVotingSmoother, TransitionDetector
from repro.video.annotations import EventAnnotation
from repro.video.frame import Frame

__all__ = ["Event", "EventDetector"]


@dataclass(frozen=True)
class Event:
    """A detected event for one microclassifier.

    ``end`` is exclusive: frames ``start .. end-1`` belong to the event.
    """

    event_id: int
    mc_name: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("Event end must be greater than start")

    @property
    def length(self) -> int:
        """Number of frames in the event."""
        return self.end - self.start

    def frames(self) -> range:
        """Frame indices covered by the event."""
        return range(self.start, self.end)

    def to_annotation(self) -> EventAnnotation:
        """Convert to a ground-truth-style annotation (for metric computation)."""
        return EventAnnotation(self.start, self.end, label=self.mc_name)


class EventDetector:
    """Smooths one microclassifier's decisions and assembles events.

    Combines :class:`~repro.core.smoothing.KVotingSmoother` (N=5, K=2 by
    default, per the paper) with a :class:`TransitionDetector` that assigns
    monotonically increasing event IDs.
    """

    def __init__(self, mc_name: str, window: int = 5, votes: int = 2) -> None:
        self.mc_name = mc_name
        self.smoother = KVotingSmoother(window=window, votes=votes)
        self.transition_detector = TransitionDetector()

    def detect(self, decisions: np.ndarray, frame_offset: int = 0) -> tuple[np.ndarray, list[Event]]:
        """Smooth raw per-frame decisions and return (smoothed, events)."""
        smoothed = self.smoother.smooth(decisions)
        raw_events = self.transition_detector.detect(smoothed, frame_offset=frame_offset)
        events = [Event(eid, self.mc_name, start, end) for eid, start, end in raw_events]
        return smoothed, events

    @staticmethod
    def annotate_frames(frames: list[Frame], events: list[Event]) -> None:
        """Record event membership into each frame's metadata.

        A frame that belongs to events from multiple microclassifiers ends up
        with one entry per MC, e.g. ``{"mc_a": 3, "mc_b": 7}`` (Section 3.5).
        """
        by_index = {frame.index: frame for frame in frames}
        for event in events:
            for idx in event.frames():
                frame = by_index.get(idx)
                if frame is not None:
                    frame.record_event(event.mc_name, event.event_id)
