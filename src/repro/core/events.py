"""Events and the per-microclassifier event detector.

An event is a contiguous run of positively classified frames for one
microclassifier, after K-voting smoothing.  Applications use the event ID
stored in each frame's metadata to determine event boundaries and to
demand-fetch surrounding context from the edge node's archive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.smoothing import KVotingSmoother, StreamingKVotingSmoother, TransitionDetector
from repro.video.annotations import EventAnnotation
from repro.video.frame import Frame

__all__ = ["Event", "EventDetector", "EventKey", "EventRecord", "SmoothedDecision"]


@dataclass(frozen=True)
class Event:
    """A detected event for one microclassifier.

    ``end`` is exclusive: frames ``start .. end-1`` belong to the event.
    """

    event_id: int
    mc_name: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("Event end must be greater than start")

    @property
    def length(self) -> int:
        """Number of frames in the event."""
        return self.end - self.start

    def frames(self) -> range:
        """Frame indices covered by the event."""
        return range(self.start, self.end)

    def to_annotation(self) -> EventAnnotation:
        """Convert to a ground-truth-style annotation (for metric computation)."""
        return EventAnnotation(self.start, self.end, label=self.mc_name)


@dataclass(frozen=True)
class EventKey:
    """Globally unique identity of one detected event.

    ``Event.event_id`` alone is only unique within one detector instance:
    when a camera migrates, its pipeline is rebuilt on the destination node
    and the per-detector counter restarts from 0, so two distinct physical
    events could alias downstream.  ``session_epoch`` — bumped on every
    migration reattach — disambiguates them: the triple is stable across the
    whole fleet and across restarts.
    """

    camera_id: str
    session_epoch: int
    event_id: int

    def __post_init__(self) -> None:
        if self.session_epoch < 0:
            raise ValueError("session_epoch must be non-negative")
        if self.event_id < 0:
            raise ValueError("event_id must be non-negative")

    def __str__(self) -> str:
        return f"{self.camera_id}/e{self.session_epoch}/{self.event_id}"


@dataclass(frozen=True)
class EventRecord:
    """A closed event as a first-class, globally identified record.

    This is what an edge node ships to the datacenter — the product of the
    whole filtering pipeline.  Spans are half-open: stream positions
    ``start .. end-1`` (dense pushed order) and source frame indices
    ``source_start .. source_end-1`` (gappy under shedding) belong to the
    event.  ``closed_at`` is the simulated wall-clock time the run closed
    (i.e. when the record became available to publish); ``-1.0`` means the
    owning runtime has not stamped it yet.
    """

    key: EventKey
    mc_name: str
    start: int
    end: int
    source_start: int
    source_end: int
    peak_score: float
    closed_at: float = -1.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("EventRecord end must be greater than start")
        if self.source_end <= self.source_start:
            raise ValueError("EventRecord source_end must be greater than source_start")

    @property
    def length(self) -> int:
        """Number of frames in the event (stream positions)."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-friendly form for delivery logs and reports."""
        return {
            "key": str(self.key),
            "camera": self.key.camera_id,
            "epoch": self.key.session_epoch,
            "event_id": self.key.event_id,
            "mc": self.mc_name,
            "start": self.start,
            "end": self.end,
            "source_start": self.source_start,
            "source_end": self.source_end,
            "peak_score": round(self.peak_score, 6),
            "closed_at": round(self.closed_at, 6),
        }


@dataclass(frozen=True)
class SmoothedDecision:
    """One finalized smoothed decision emitted by the online detector.

    ``event_id`` is the ID of the (possibly still open) event the frame
    belongs to, or ``None`` for negative frames.
    """

    frame_index: int
    smoothed: int
    event_id: int | None


class EventDetector:
    """Smooths one microclassifier's decisions and assembles events.

    Combines :class:`~repro.core.smoothing.KVotingSmoother` (N=5, K=2 by
    default, per the paper) with a :class:`TransitionDetector` that assigns
    monotonically increasing event IDs.

    Two modes share the same ID counter and produce identical results:

    * **batch** — :meth:`detect` smooths a whole decision array at once;
    * **online** — :meth:`push` ingests one decision per frame, emitting
      smoothed decisions as their (clamped) voting window completes and
      closing events as runs end; :meth:`flush` finalizes the stream tail.
    """

    def __init__(self, mc_name: str, window: int = 5, votes: int = 2) -> None:
        self.mc_name = mc_name
        self.smoother = KVotingSmoother(window=window, votes=votes)
        self.transition_detector = TransitionDetector()
        self._online_smoother = StreamingKVotingSmoother(window=window, votes=votes)
        self._position = 0
        self._open_start: int | None = None
        self._open_id: int | None = None
        self._flushed = False

    def detect(self, decisions: np.ndarray, frame_offset: int = 0) -> tuple[np.ndarray, list[Event]]:
        """Smooth raw per-frame decisions and return (smoothed, events)."""
        smoothed = self.smoother.smooth(decisions)
        raw_events = self.transition_detector.detect(smoothed, frame_offset=frame_offset)
        events = [Event(eid, self.mc_name, start, end) for eid, start, end in raw_events]
        return smoothed, events

    # -- online mode ---------------------------------------------------------
    def push(self, decision: int) -> tuple[list[SmoothedDecision], list[Event]]:
        """Ingest one raw per-frame decision.

        Returns ``(finalized, closed_events)``: the smoothed decisions this
        push finalized (possibly none — the voting window introduces a small
        lookahead) and any events whose runs ended.
        """
        if self._flushed:
            raise RuntimeError("EventDetector already flushed; push is no longer valid")
        return self._ingest(self._online_smoother.push(decision), final=False)

    def flush(self) -> tuple[list[SmoothedDecision], list[Event]]:
        """Finalize the stream: emit the smoothed tail and close any open event."""
        if self._flushed:
            raise RuntimeError("EventDetector already flushed")
        self._flushed = True
        return self._ingest(self._online_smoother.flush(), final=True)

    def _ingest(
        self, smoothed_values: list[int], final: bool
    ) -> tuple[list[SmoothedDecision], list[Event]]:
        finalized: list[SmoothedDecision] = []
        closed: list[Event] = []
        for value in smoothed_values:
            if value:
                if self._open_start is None:
                    self._open_start = self._position
                    self._open_id = self.transition_detector.allocate_event_id()
                event_id: int | None = self._open_id
            else:
                if self._open_start is not None:
                    closed.append(
                        Event(self._open_id, self.mc_name, self._open_start, self._position)
                    )
                    self._open_start = None
                    self._open_id = None
                event_id = None
            finalized.append(
                SmoothedDecision(frame_index=self._position, smoothed=int(value), event_id=event_id)
            )
            self._position += 1
        if final and self._open_start is not None:
            closed.append(Event(self._open_id, self.mc_name, self._open_start, self._position))
            self._open_start = None
            self._open_id = None
        return finalized, closed

    @staticmethod
    def annotate_frames(frames: list[Frame], events: list[Event]) -> None:
        """Record event membership into each frame's metadata.

        A frame that belongs to events from multiple microclassifiers ends up
        with one entry per MC, e.g. ``{"mc_a": 3, "mc_b": 7}`` (Section 3.5).
        """
        by_index = {frame.index: frame for frame in frames}
        for event in events:
            for idx in event.frames():
                frame = by_index.get(idx)
                if frame is not None:
                    frame.record_event(event.mc_name, event.event_id)
