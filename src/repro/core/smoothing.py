"""Per-frame classification smoothing (paper Section 3.5).

A microclassifier emits one binary decision per frame.  FilterForward
smooths these with **K-voting**: each frame's decision is replaced by
whether at least ``K`` of the ``N`` frames in a window centred on it are
positive.  The paper uses ``N = 5`` and ``K = 2``, chosen to aggressively
mask false negatives at the cost of some false positives.  A transition
detector then turns each contiguous positive run into a unique event.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["KVotingSmoother", "StreamingKVotingSmoother", "TransitionDetector"]


class KVotingSmoother:
    """K-of-N vote over a sliding window of per-frame decisions."""

    def __init__(self, window: int = 5, votes: int = 2) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if not 1 <= votes <= window:
            raise ValueError("votes must be in [1, window]")
        self.window = int(window)
        self.votes = int(votes)

    def smooth(self, decisions: np.ndarray) -> np.ndarray:
        """Smooth a binary decision sequence.

        Each output frame is positive iff at least ``votes`` of the
        ``window`` frames centred on it (clamped at stream boundaries) are
        positive.
        """
        arr = np.asarray(decisions).astype(np.int64)
        if arr.ndim != 1:
            raise ValueError("decisions must be one-dimensional")
        n = arr.size
        if n == 0:
            return np.zeros(0, dtype=np.int8)
        half = self.window // 2
        # Prefix sums give each window's positive count in O(n).
        prefix = np.concatenate(([0], np.cumsum(arr)))
        starts = np.clip(np.arange(n) - half, 0, n)
        ends = np.clip(np.arange(n) + self.window - half, 0, n)
        counts = prefix[ends] - prefix[starts]
        return (counts >= self.votes).astype(np.int8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KVotingSmoother(window={self.window}, votes={self.votes})"


class StreamingKVotingSmoother:
    """Online K-of-N smoother: identical output to :class:`KVotingSmoother`.

    Decisions arrive one at a time via :meth:`push`; each smoothed value is
    emitted as soon as its full (clamped) window is available, which is
    ``window - window // 2 - 1`` decisions after the frame itself.  At end of
    stream, :meth:`flush` emits the remaining tail with the window clamped at
    the stream boundary, exactly as the batch smoother clamps at ``n``.  Only
    the last ``window`` decisions are buffered, so memory is O(window)
    regardless of stream length.
    """

    def __init__(self, window: int = 5, votes: int = 2) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if not 1 <= votes <= window:
            raise ValueError("votes must be in [1, window]")
        self.window = int(window)
        self.votes = int(votes)
        self._half = self.window // 2
        # smoothed[i] needs decisions [i - half, i + window - half); the
        # exclusive right edge relative to i:
        self._ahead = self.window - self._half
        self._buffer: deque[int] = deque()
        self._buffer_start = 0  # absolute index of _buffer[0]
        self._received = 0
        self._emitted = 0

    def push(self, decision: int) -> list[int]:
        """Ingest one decision; return the smoothed values it finalizes."""
        self._buffer.append(int(decision))
        self._received += 1
        return self._drain(final=False)

    def flush(self) -> list[int]:
        """Emit the smoothed values for the remaining tail of the stream."""
        return self._drain(final=True)

    def _drain(self, final: bool) -> list[int]:
        out: list[int] = []
        while self._emitted < self._received:
            i = self._emitted
            end = i + self._ahead
            if not final and end > self._received:
                break
            end = min(end, self._received)
            start = max(0, i - self._half)
            lo = start - self._buffer_start
            hi = end - self._buffer_start
            count = sum(list(self._buffer)[lo:hi])
            out.append(1 if count >= self.votes else 0)
            self._emitted += 1
            # Decisions earlier than emitted - half can never be needed again.
            while self._buffer_start < self._emitted - self._half:
                self._buffer.popleft()
                self._buffer_start += 1
        return out

    @property
    def pending(self) -> int:
        """Decisions received whose smoothed value has not been emitted yet."""
        return self._received - self._emitted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamingKVotingSmoother(window={self.window}, votes={self.votes})"


class TransitionDetector:
    """Turns smoothed per-frame labels into events with unique, increasing IDs.

    Event IDs are monotonically increasing *per microclassifier* and persist
    across calls, matching the paper's "MC-specific, monotonically
    increasing, unique ID" semantics for streaming operation.
    """

    def __init__(self, first_event_id: int = 1) -> None:
        if first_event_id < 0:
            raise ValueError("first_event_id must be non-negative")
        self._next_id = int(first_event_id)

    @property
    def next_event_id(self) -> int:
        """The ID that will be assigned to the next detected event."""
        return self._next_id

    def allocate_event_id(self) -> int:
        """Consume and return the next event ID (for online event assembly)."""
        allocated = self._next_id
        self._next_id += 1
        return allocated

    def detect(self, smoothed: np.ndarray, frame_offset: int = 0) -> list[tuple[int, int, int]]:
        """Detect events in a smoothed label sequence.

        Returns a list of ``(event_id, start_frame, end_frame)`` tuples with
        ``end_frame`` exclusive; ``frame_offset`` shifts indices so streaming
        chunks can be processed incrementally.
        """
        arr = np.asarray(smoothed).astype(bool)
        if arr.ndim != 1:
            raise ValueError("smoothed labels must be one-dimensional")
        if arr.size == 0:
            return []
        padded = np.concatenate(([False], arr, [False]))
        diffs = np.diff(padded.astype(np.int8))
        starts = np.flatnonzero(diffs == 1)
        ends = np.flatnonzero(diffs == -1)
        events = []
        for start, end in zip(starts, ends):
            events.append((self._next_id, int(start) + frame_offset, int(end) + frame_offset))
            self._next_id += 1
        return events
