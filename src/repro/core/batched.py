"""Cross-camera batched inference over a shared resident base DNN.

A FilterForward edge node hosts many cameras whose pipelines share one base
DNN per resolution (the co-location placement policy groups cameras for
exactly this).  The per-camera streaming path still pays one ``N=1`` NumPy
forward pass per camera per tick; :class:`BatchedScorer` collects all frames
bound for the same resident base DNN, runs **one** bit-exact batched forward
over the union of the subscribers' tapped layers
(:func:`repro.nn.batched.batched_forward_with_taps`), and fans each camera's
activation slice back out into that camera's
:class:`~repro.features.extractor.FeatureExtractor` cache — as views into
the batch tensor, so feature maps are never copied between the shared
forward pass and the microclassifiers.

The scorer never touches smoothing, events, thresholds, telemetry, or
tracing: those remain per-camera inside each
:class:`~repro.core.streaming.StreamingPipeline`, which simply finds its
activations already cached when :meth:`~repro.core.streaming.StreamingPipeline.push`
runs.  Because the batched forward is bit-exact against the ``N=1`` path,
every downstream output — probabilities, decisions, events, upload bits,
control traces — is bit-identical to per-camera scoring.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.streaming import StreamingPipeline, StreamUpdate
from repro.nn.batched import batched_forward_with_taps
from repro.video.frame import Frame

__all__ = ["BatchedScorer"]

# One (camera session, frame) pair awaiting scoring.
Entry = tuple[StreamingPipeline, Frame]


class BatchedScorer:
    """Batches frames that hit the same resident base DNN into one forward.

    Usage inside a node tick::

        scorer.prefetch(entries)          # one forward pass per base DNN
        for session, frame in entries:    # any order, any interleaving
            scorer.prime(session, frame)  # hand the slice to the camera
            session.push(frame)           # cache hit; no per-camera forward

    or, when the caller controls the whole tick, :meth:`score_tick` does all
    three steps.  ``prefetch`` may be called with frames whose activations
    are already cached or already prefetched; those are skipped.  Ragged
    tails are fine: a group of one camera degenerates to the bit-exact
    ``N=1`` batched forward.
    """

    def __init__(self) -> None:
        # (id(extractor), frame_index) -> that extractor's tapped activations.
        self._ready: dict[tuple[int, int], dict[str, np.ndarray]] = {}
        self.batches_run = 0
        self.frames_batched = 0

    # -- introspection -----------------------------------------------------
    @property
    def pending(self) -> int:
        """Prefetched activation sets not yet primed into an extractor."""
        return len(self._ready)

    def has(self, session: StreamingPipeline, frame: Frame) -> bool:
        """Whether ``frame``'s activations are ready (prefetched or cached)."""
        extractor = session.extractor
        return (
            (id(extractor), frame.index) in self._ready
            or frame.index in extractor._cache
        )

    # -- the batched forward -----------------------------------------------
    def prefetch(self, entries: Iterable[Entry]) -> int:
        """Run one batched base-DNN forward per resident base DNN.

        Groups ``entries`` by the identity of each session extractor's
        ``base_dnn`` (cameras at one resolution share the model object, the
        FilterForward computation-sharing premise), stacks each group's
        pixels, and computes the union of the group's tapped layers in one
        bit-exact batched pass.  Frames already cached or already prefetched
        are skipped.  Returns the number of frames actually computed.
        """
        groups: dict[int, list[Entry]] = {}
        for session, frame in entries:
            if self.has(session, frame):
                continue
            groups.setdefault(id(session.extractor.base_dnn), []).append((session, frame))
        computed = 0
        for group in groups.values():
            self._run_group(group)
            computed += len(group)
        return computed

    def _run_group(self, group: Sequence[Entry]) -> None:
        """One batched forward for frames sharing a resident base DNN."""
        base_dnn = group[0][0].extractor.base_dnn
        expected = base_dnn.input_shape
        taps: list[str] = []
        for session, _ in group:
            taps.extend(session.extractor.tap_layers)
        taps = list(dict.fromkeys(taps))
        pixels = []
        for session, frame in group:
            sample = np.asarray(frame.pixels, dtype=np.float64)
            if expected is not None and tuple(sample.shape) != tuple(expected):
                raise ValueError(
                    f"Frame pixels have shape {sample.shape}, but the resident base DNN "
                    f"was built for {tuple(expected)}"
                )
            pixels.append(sample)
        batch = np.stack(pixels, axis=0)
        activations = batched_forward_with_taps(base_dnn, batch, taps)
        for k, (session, frame) in enumerate(group):
            extractor = session.extractor
            self._ready[(id(extractor), frame.index)] = {
                name: activations[name][k] for name in extractor.tap_layers
            }
        self.batches_run += 1
        self.frames_batched += len(group)

    # -- fan-out -----------------------------------------------------------
    def prime(self, session: StreamingPipeline, frame: Frame) -> bool:
        """Hand a prefetched activation slice to the camera's extractor.

        Returns True when a prefetched slice was installed; False when the
        frame was never prefetched (the subsequent ``push`` then scores it
        through the per-camera path — correct, just unbatched).
        """
        activations = self._ready.pop((id(session.extractor), frame.index), None)
        if activations is None:
            return False
        session.extractor.prime(frame.index, activations)
        return True

    def score_tick(self, entries: Sequence[Entry]) -> list[StreamUpdate]:
        """Prefetch, prime, and push every entry of one node tick, in order."""
        self.prefetch(entries)
        updates = []
        for session, frame in entries:
            self.prime(session, frame)
            updates.append(session.push(frame))
        return updates

    def clear(self) -> None:
        """Drop prefetched activations (e.g. after a camera detaches)."""
        self._ready.clear()
