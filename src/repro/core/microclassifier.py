"""The microclassifier API.

A microclassifier (MC) is a lightweight binary classification network that
takes base-DNN feature maps as input and outputs the probability that a
frame is relevant to one application (paper Section 3.2).  To deploy an MC,
the application developer supplies:

* the network weights and architecture,
* the name of the base-DNN layer to use as input, and
* optionally a rectangular crop of that layer's feature map.

This module defines the configuration and the abstract base class; the three
concrete architectures from Figure 2 live in :mod:`repro.core.architectures`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.features.extractor import FeatureExtractor, FeatureMapCrop
from repro.nn.layers import Parameter
from repro.video.frame import Frame

__all__ = ["MicroClassifierConfig", "MicroClassifier"]


@dataclass(frozen=True)
class MicroClassifierConfig:
    """Deployment configuration of one microclassifier.

    Attributes
    ----------
    name:
        Unique name; used as the event namespace in frame metadata.
    input_layer:
        Base-DNN layer whose activations this MC consumes
        (e.g. ``"conv4_2/sep"``).
    crop:
        Optional rectangular crop of the feature map, expressed in pixel
        coordinates of the original frame (rescaled per feature map).
    threshold:
        Probability above which a frame is declared relevant.
    upload_bitrate:
        Target H.264 bitrate (bits/second) for re-encoding this MC's matched
        frames before upload.
    """

    name: str
    input_layer: str
    crop: FeatureMapCrop | None = None
    threshold: float = 0.5
    upload_bitrate: float = 500_000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("MicroClassifier name must be non-empty")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if self.upload_bitrate <= 0:
            raise ValueError("upload_bitrate must be positive")


class MicroClassifier(ABC):
    """Base class for microclassifiers.

    Subclasses build an internal model over the (cropped) feature-map shape
    and implement batched probability prediction.  A microclassifier's
    *marginal* cost — the multiply-adds it adds on top of the shared base
    DNN — is exposed via :meth:`multiply_adds`, which is what Figures 5-7
    compare.
    """

    def __init__(self, config: MicroClassifierConfig) -> None:
        self.config = config
        self.built = False
        self.input_shape: tuple[int, int, int] | None = None

    @property
    def name(self) -> str:
        """The microclassifier's deployment name."""
        return self.config.name

    @property
    def input_layer(self) -> str:
        """Base-DNN layer this MC consumes."""
        return self.config.input_layer

    @property
    def crop(self) -> FeatureMapCrop | None:
        """Optional feature-map crop."""
        return self.config.crop

    # -- construction ------------------------------------------------------
    @abstractmethod
    def build(self, input_shape: tuple[int, int, int], rng: np.random.Generator) -> None:
        """Build the internal model for a (cropped) feature map of ``input_shape``."""

    def build_for_extractor(
        self,
        extractor: FeatureExtractor,
        frame_size: tuple[int, int],
        rng: np.random.Generator | None = None,
    ) -> None:
        """Convenience: build against an extractor's (cropped) layer shape."""
        shape = extractor.cropped_layer_shape(self.input_layer, self.crop, frame_size)
        self.build(shape, rng or np.random.default_rng(0))

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError(f"MicroClassifier {self.name!r} used before build()")

    # -- inference ---------------------------------------------------------
    @abstractmethod
    def predict_proba_batch(self, feature_maps: np.ndarray) -> np.ndarray:
        """Relevance probabilities for a batch of feature maps ``(N, H, W, C)``."""

    def predict_proba(self, feature_map: np.ndarray) -> float:
        """Relevance probability for a single feature map ``(H, W, C)``."""
        return float(self.predict_proba_batch(feature_map[None, ...])[0])

    def score_frame(self, extractor: FeatureExtractor, frame: Frame) -> float:
        """Extract this MC's input for ``frame`` and return its probability."""
        feature_map = extractor.feature_map(frame, self.input_layer, self.crop)
        return self.predict_proba(feature_map)

    def classify(self, probability: float) -> bool:
        """Apply the decision threshold."""
        return bool(probability >= self.config.threshold)

    # -- training support --------------------------------------------------
    @abstractmethod
    def forward_logits(self, feature_maps: np.ndarray, training: bool) -> np.ndarray:
        """Raw logits ``(N, 1)`` for a batch (training-mode caches gradients)."""

    @abstractmethod
    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate a gradient with respect to the logits."""

    @abstractmethod
    def parameters(self) -> list[Parameter]:
        """All trainable parameters."""

    # -- cost accounting ---------------------------------------------------
    @abstractmethod
    def multiply_adds(self, input_shape: tuple[int, int, int] | None = None) -> int:
        """Marginal multiply-adds this MC spends per frame (excludes base DNN)."""

    def num_parameters(self) -> int:
        """Total scalar weights in this MC."""
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, layer={self.input_layer!r}, "
            f"crop={self.crop is not None})"
        )


def stack_feature_maps(feature_maps: Sequence[np.ndarray]) -> np.ndarray:
    """Stack per-frame feature maps into a single ``(N, H, W, C)`` batch."""
    if not feature_maps:
        raise ValueError("feature_maps must be non-empty")
    return np.stack([np.asarray(m, dtype=np.float64) for m in feature_maps], axis=0)
