"""FilterForward core: microclassifiers, event smoothing, and the edge pipeline.

This package implements the paper's primary contribution:

* :class:`~repro.core.microclassifier.MicroClassifier` — the per-application
  lightweight binary classifier API, operating on base-DNN feature maps;
* the three proposed architectures (Figure 2) in
  :mod:`repro.core.architectures`;
* per-frame-to-event smoothing (K-voting + transition detection,
  Section 3.5) in :mod:`repro.core.smoothing` and :mod:`repro.core.events`;
* offline microclassifier training (:mod:`repro.core.training`);
* the layer-selection heuristic (Section 3.4) in
  :mod:`repro.core.layer_selection`;
* :class:`~repro.core.pipeline.FilterForwardPipeline`, which ties the feature
  extractor, many concurrent MCs, smoothing, re-encoding and upload
  accounting together.
"""

from repro.core.batched import BatchedScorer
from repro.core.architectures import (
    FullFrameObjectDetectorMC,
    LocalizedBinaryClassifierMC,
    WindowedLocalizedBinaryClassifierMC,
    build_microclassifier,
)
from repro.core.events import Event, EventDetector, EventKey, EventRecord, SmoothedDecision
from repro.core.layer_selection import LayerSelection, select_input_layer
from repro.core.microclassifier import MicroClassifier, MicroClassifierConfig
from repro.core.pipeline import FilterForwardPipeline, PipelineConfig, PipelineResult
from repro.core.smoothing import KVotingSmoother, StreamingKVotingSmoother, TransitionDetector
from repro.core.streaming import StreamingPipeline, StreamUpdate
from repro.core.training import TrainingConfig, TrainingHistory, train_classifier

__all__ = [
    "BatchedScorer",
    "Event",
    "EventDetector",
    "EventKey",
    "EventRecord",
    "FilterForwardPipeline",
    "FullFrameObjectDetectorMC",
    "KVotingSmoother",
    "LayerSelection",
    "LocalizedBinaryClassifierMC",
    "MicroClassifier",
    "MicroClassifierConfig",
    "PipelineConfig",
    "PipelineResult",
    "SmoothedDecision",
    "StreamUpdate",
    "StreamingKVotingSmoother",
    "StreamingPipeline",
    "TrainingConfig",
    "TrainingHistory",
    "TransitionDetector",
    "WindowedLocalizedBinaryClassifierMC",
    "build_microclassifier",
    "select_input_layer",
    "train_classifier",
]
