"""Base-DNN layer selection heuristic (paper Section 3.4).

Choosing which base-DNN layer feeds a microclassifier trades spatial
localization against semantic depth.  The paper's hand-tuned heuristic is to
match the layer's cumulative spatial reduction to the typical pixel size of
the target object class: for 40-pixel pedestrians in a 1080p frame, they
pick "the first layer at which a roughly 20:1-50:1 spatial reduction has
occurred" — i.e. a reduction between half and ~1.25x the object height, so
an object maps to roughly one to two feature-map cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["LayerSelection", "select_input_layer"]


@dataclass(frozen=True)
class LayerSelection:
    """The outcome of the layer-selection heuristic."""

    layer: str
    reduction: float
    object_cells: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.layer} (reduction {self.reduction:.1f}:1, "
            f"object spans ~{self.object_cells:.2f} cells)"
        )


def select_input_layer(
    frame_height: int,
    object_height: int,
    layer_shapes: Mapping[str, tuple[int, int, int]],
    lower_factor: float = 0.5,
    upper_factor: float = 1.25,
) -> LayerSelection:
    """Pick the base-DNN layer whose spatial reduction suits an object size.

    Parameters
    ----------
    frame_height:
        Input frame height in pixels.
    object_height:
        Typical height of the target object class in pixels (e.g. 40 for
        pedestrians at 1080p).
    layer_shapes:
        Mapping from candidate layer name to its ``(H, W, C)`` output shape,
        e.g. from :func:`repro.features.base_dnn.mobilenet_layer_shapes` or
        ``Sequential.layer_output_shapes()``.  Iteration order should be
        network order (dicts preserve insertion order).
    lower_factor, upper_factor:
        The acceptable reduction window expressed as multiples of
        ``object_height``; the defaults reproduce the paper's 20:1-50:1 rule
        for a 40-pixel object.

    Returns
    -------
    LayerSelection
        The first layer whose reduction falls inside the window; if none
        does, the layer whose reduction is closest to ``object_height``.
    """
    if frame_height <= 0 or object_height <= 0:
        raise ValueError("frame_height and object_height must be positive")
    if not layer_shapes:
        raise ValueError("layer_shapes must be non-empty")
    lower = lower_factor * object_height
    upper = upper_factor * object_height

    best: LayerSelection | None = None
    best_distance = float("inf")
    for layer, shape in layer_shapes.items():
        feat_height = shape[0]
        if feat_height <= 0:
            continue
        reduction = frame_height / feat_height
        cells = object_height / reduction
        candidate = LayerSelection(layer=layer, reduction=reduction, object_cells=cells)
        if lower <= reduction <= upper:
            return candidate
        distance = abs(reduction - object_height)
        if distance < best_distance:
            best, best_distance = candidate, distance
    assert best is not None  # layer_shapes is non-empty
    return best
