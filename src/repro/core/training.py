"""Offline training of microclassifiers and discrete classifiers.

Microclassifiers are trained offline by the application developer on labelled
feature maps; discrete classifiers (the NoScope-style baseline) are trained
the same way but on raw pixels.  Both expose the same minimal training
interface — logits forward, gradient backward, parameter list — so a single
trainer covers them.

Class imbalance matters: relevant events are rare, so the trainer supports
positive-class weighting and balanced mini-batch sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.nn.layers import Parameter
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.optimizers import Adam, Optimizer

__all__ = ["TrainableClassifier", "TrainingConfig", "TrainingHistory", "train_classifier"]


class TrainableClassifier(Protocol):
    """Anything the trainer can optimize (microclassifiers, discrete classifiers)."""

    def forward_logits(self, inputs: np.ndarray, training: bool) -> np.ndarray: ...

    def backward(self, grad_logits: np.ndarray) -> None: ...

    def parameters(self) -> list[Parameter]: ...


@dataclass
class TrainingConfig:
    """Hyper-parameters for offline classifier training.

    ``epochs`` may be fractional: the paper trains on "0.5 epochs of data"
    (Section 4.5), i.e. half of the training frames, once.
    """

    epochs: float = 2.0
    batch_size: int = 16
    learning_rate: float = 1e-3
    positive_weight: float | None = None
    balanced_sampling: bool = True
    shuffle: bool = True
    seed: int = 0
    log_every: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.positive_weight is not None and self.positive_weight <= 0:
            raise ValueError("positive_weight must be positive")


@dataclass
class TrainingHistory:
    """Per-step loss values and summary statistics from a training run."""

    losses: list[float] = field(default_factory=list)
    steps: int = 0
    samples_seen: int = 0

    @property
    def final_loss(self) -> float:
        """Loss of the final training step (NaN if no steps ran)."""
        return self.losses[-1] if self.losses else float("nan")

    @property
    def mean_loss(self) -> float:
        """Mean loss over all steps (NaN if no steps ran)."""
        return float(np.mean(self.losses)) if self.losses else float("nan")


def _auto_positive_weight(labels: np.ndarray) -> float:
    """Weight positives by the negative:positive ratio (capped for stability)."""
    positives = float(labels.sum())
    negatives = float(labels.size - positives)
    if positives <= 0:
        return 1.0
    return float(np.clip(negatives / positives, 1.0, 20.0))


def _balanced_order(labels: np.ndarray, total: int, rng: np.random.Generator) -> np.ndarray:
    """Sample indices so positives and negatives appear in near-equal numbers."""
    pos = np.flatnonzero(labels > 0.5)
    neg = np.flatnonzero(labels <= 0.5)
    if pos.size == 0 or neg.size == 0:
        order = rng.permutation(labels.size)
        return np.resize(order, total)
    half = total // 2
    pos_draw = rng.choice(pos, size=half, replace=pos.size < half)
    neg_draw = rng.choice(neg, size=total - half, replace=neg.size < (total - half))
    order = np.concatenate([pos_draw, neg_draw])
    rng.shuffle(order)
    return order


def train_classifier(
    classifier: TrainableClassifier,
    inputs: np.ndarray | Sequence[np.ndarray],
    labels: np.ndarray | Sequence[int],
    config: TrainingConfig | None = None,
    optimizer: Optimizer | None = None,
) -> TrainingHistory:
    """Train a classifier on labelled inputs with sigmoid BCE.

    Parameters
    ----------
    classifier:
        A built microclassifier or discrete classifier.
    inputs:
        ``(N, H, W, C)`` feature maps (for MCs) or pixels (for DCs).
    labels:
        Length-``N`` binary labels.
    config:
        Training hyper-parameters (defaults to :class:`TrainingConfig`).
    optimizer:
        Optimizer to use; defaults to Adam at ``config.learning_rate``.

    Returns
    -------
    TrainingHistory
        Per-step loss trace.
    """
    config = config or TrainingConfig()
    inputs = np.asarray(inputs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if inputs.shape[0] != labels.shape[0]:
        raise ValueError(
            f"inputs and labels disagree on sample count: {inputs.shape[0]} vs {labels.shape[0]}"
        )
    if inputs.shape[0] == 0:
        raise ValueError("Cannot train on an empty dataset")

    rng = np.random.default_rng(config.seed)
    positive_weight = (
        config.positive_weight
        if config.positive_weight is not None
        else (1.0 if config.balanced_sampling else _auto_positive_weight(labels))
    )
    loss_fn = SigmoidBinaryCrossEntropy(positive_weight=positive_weight)
    optimizer = optimizer or Adam(learning_rate=config.learning_rate)
    params = classifier.parameters()
    if not params:
        raise ValueError("Classifier has no trainable parameters (was it built?)")

    total_samples = int(round(config.epochs * inputs.shape[0]))
    total_samples = max(total_samples, config.batch_size)
    if config.balanced_sampling:
        order = _balanced_order(labels, total_samples, rng)
    else:
        reps = int(np.ceil(total_samples / inputs.shape[0]))
        order = np.concatenate([rng.permutation(inputs.shape[0]) for _ in range(reps)])[
            :total_samples
        ]
        if not config.shuffle:
            order = np.resize(np.arange(inputs.shape[0]), total_samples)

    history = TrainingHistory()
    for start in range(0, total_samples, config.batch_size):
        batch_idx = order[start : start + config.batch_size]
        if batch_idx.size == 0:
            break
        x = inputs[batch_idx]
        y = labels[batch_idx].reshape(-1, 1)
        optimizer.zero_grad(params)
        logits = classifier.forward_logits(x, training=True)
        loss = loss_fn.forward(logits, y)
        grad = loss_fn.backward(logits, y)
        classifier.backward(grad)
        optimizer.step(params)
        history.losses.append(float(loss))
        history.steps += 1
        history.samples_seen += int(batch_idx.size)
        if config.log_every and history.steps % config.log_every == 0:
            print(f"step {history.steps}: loss={loss:.4f}")
    return history
