"""The end-to-end FilterForward edge pipeline.

The pipeline mirrors Figure 1 of the paper: decoded frames flow through the
shared feature extractor; every installed microclassifier consumes the
feature maps it subscribed to; per-frame decisions are smoothed into events;
matched frames are re-encoded with H.264 at the application's chosen bitrate
and "uploaded" (accounted against the uplink); and the original stream is
archived on local disk for demand-fetch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.architectures import WindowedLocalizedBinaryClassifierMC
from repro.core.events import Event, EventDetector
from repro.core.microclassifier import MicroClassifier
from repro.features.extractor import FeatureExtractor
from repro.video.codec import EncodedSegment, H264Simulator
from repro.video.frame import Frame
from repro.video.stream import VideoStream

__all__ = ["PipelineConfig", "MicroClassifierResult", "PipelineResult", "FilterForwardPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline-wide knobs.

    ``smoothing_window``/``smoothing_votes`` are the paper's N=5, K=2
    K-voting defaults; ``batch_size`` bounds how many frames are scored per
    microclassifier inference call.
    """

    smoothing_window: int = 5
    smoothing_votes: int = 2
    batch_size: int = 32

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


@dataclass
class MicroClassifierResult:
    """Everything one microclassifier produced for one stream."""

    mc_name: str
    probabilities: np.ndarray
    decisions: np.ndarray
    smoothed: np.ndarray
    events: list[Event]
    matched_frame_indices: np.ndarray
    encoded: EncodedSegment | None = None

    @property
    def num_matched_frames(self) -> int:
        """Number of frames this MC selected for upload (after smoothing)."""
        return int(self.matched_frame_indices.size)

    @property
    def average_bandwidth(self) -> float:
        """Average uplink bandwidth (bits/s) this MC's uploads consumed."""
        return self.encoded.average_bandwidth if self.encoded is not None else 0.0


@dataclass
class PipelineResult:
    """The outcome of running the pipeline over one stream."""

    per_mc: dict[str, MicroClassifierResult]
    num_frames: int
    stream_duration: float
    uploaded_frame_indices: np.ndarray
    total_uploaded_bits: float
    base_dnn_multiply_adds_per_frame: int
    mc_multiply_adds_per_frame: dict[str, int] = field(default_factory=dict)

    @property
    def average_uplink_bandwidth(self) -> float:
        """Average bandwidth (bits/s) across all MC uploads, over the stream duration."""
        if self.stream_duration <= 0:
            return 0.0
        return self.total_uploaded_bits / self.stream_duration

    @property
    def upload_fraction(self) -> float:
        """Fraction of stream frames that were uploaded by at least one MC."""
        if self.num_frames == 0:
            return 0.0
        return self.uploaded_frame_indices.size / self.num_frames

    def bandwidth_savings_versus(self, baseline_bandwidth: float) -> float:
        """How many times less bandwidth the pipeline used than ``baseline_bandwidth``."""
        own = self.average_uplink_bandwidth
        if own <= 0:
            return float("inf")
        return baseline_bandwidth / own


class FilterForwardPipeline:
    """Runs many microclassifiers against one camera stream on the edge node.

    Parameters
    ----------
    extractor:
        The shared feature extractor (one base-DNN pass per frame).
    microclassifiers:
        Installed microclassifiers; each declares the base-DNN layer (and
        optional crop) it consumes via its config.
    config:
        Pipeline knobs.
    codec:
        H.264 simulator used to re-encode matched frames for upload.
    """

    def __init__(
        self,
        extractor: FeatureExtractor,
        microclassifiers: list[MicroClassifier],
        config: PipelineConfig | None = None,
        codec: H264Simulator | None = None,
    ) -> None:
        if not microclassifiers:
            raise ValueError("FilterForwardPipeline requires at least one microclassifier")
        names = [mc.name for mc in microclassifiers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"Duplicate microclassifier names: {sorted(duplicates)}")
        missing_taps = {mc.input_layer for mc in microclassifiers} - set(extractor.tap_layers)
        if missing_taps:
            raise ValueError(
                f"Extractor does not tap layer(s) {sorted(missing_taps)} required by "
                "installed microclassifiers"
            )
        self.extractor = extractor
        self.microclassifiers = list(microclassifiers)
        self.config = config or PipelineConfig()
        self.codec = codec or H264Simulator()

    # -- feature collection --------------------------------------------------
    def collect_feature_maps(self, stream: VideoStream) -> dict[str, np.ndarray]:
        """Run the base DNN over the stream and gather each MC's input batch.

        Returns a mapping from MC name to an ``(N, H, W, C)`` array of that
        MC's (cropped) feature maps, in frame order.  The base DNN runs once
        per frame regardless of how many MCs are installed — this is the
        computation sharing at the heart of FilterForward.
        """
        per_mc: dict[str, list[np.ndarray]] = {mc.name: [] for mc in self.microclassifiers}
        for frame in stream:
            activations = self.extractor.extract(frame)
            for mc in self.microclassifiers:
                feature_map = activations[mc.input_layer]
                if mc.crop is not None:
                    y0, y1, x0, x1 = mc.crop.to_feature_coords(
                        (frame.height, frame.width), feature_map.shape[:2]
                    )
                    feature_map = feature_map[y0:y1, x0:x1, :]
                per_mc[mc.name].append(feature_map)
        return {name: np.stack(maps, axis=0) for name, maps in per_mc.items()}

    # -- scoring --------------------------------------------------------------
    def _score(self, mc: MicroClassifier, feature_maps: np.ndarray) -> np.ndarray:
        """Per-frame probabilities for one MC over a consecutive frame batch."""
        if isinstance(mc, WindowedLocalizedBinaryClassifierMC):
            return mc.predict_proba_stream(feature_maps)
        probabilities = np.empty(feature_maps.shape[0])
        step = self.config.batch_size
        for start in range(0, feature_maps.shape[0], step):
            chunk = feature_maps[start : start + step]
            probabilities[start : start + chunk.shape[0]] = mc.predict_proba_batch(chunk)
        return probabilities

    # -- end-to-end -----------------------------------------------------------
    def process_stream(self, stream: VideoStream, annotate_frames: bool = True) -> PipelineResult:
        """Filter one stream: score, smooth, detect events, and account uploads."""
        feature_maps = self.collect_feature_maps(stream)
        frames = list(stream)
        per_mc: dict[str, MicroClassifierResult] = {}
        uploaded: set[int] = set()
        total_bits = 0.0

        for mc in self.microclassifiers:
            maps = feature_maps[mc.name]
            probabilities = self._score(mc, maps)
            decisions = (probabilities >= mc.config.threshold).astype(np.int8)
            detector = EventDetector(
                mc.name,
                window=self.config.smoothing_window,
                votes=self.config.smoothing_votes,
            )
            smoothed, events = detector.detect(decisions)
            matched = np.flatnonzero(smoothed)
            encoded = None
            if matched.size:
                matched_frames = [frames[i] for i in matched]
                encoded = self.codec.encode(
                    matched_frames,
                    mc.config.upload_bitrate,
                    stream.frame_rate,
                    stream.resolution,
                    stream_duration=stream.duration,
                )
                total_bits += encoded.total_bits
                uploaded.update(int(i) for i in matched)
            if annotate_frames:
                EventDetector.annotate_frames(frames, events)
            per_mc[mc.name] = MicroClassifierResult(
                mc_name=mc.name,
                probabilities=probabilities,
                decisions=decisions,
                smoothed=smoothed,
                events=events,
                matched_frame_indices=matched,
                encoded=encoded,
            )

        return PipelineResult(
            per_mc=per_mc,
            num_frames=len(frames),
            stream_duration=stream.duration,
            uploaded_frame_indices=np.array(sorted(uploaded), dtype=np.int64),
            total_uploaded_bits=total_bits,
            base_dnn_multiply_adds_per_frame=self.extractor.multiply_adds_per_frame(),
            mc_multiply_adds_per_frame={
                mc.name: mc.multiply_adds() for mc in self.microclassifiers
            },
        )

    # -- cost accounting -------------------------------------------------------
    def multiply_adds_per_frame(self) -> dict[str, int]:
        """Per-frame multiply-adds: the shared base DNN plus each MC's marginal cost."""
        costs = {"base_dnn": self.extractor.multiply_adds_per_frame()}
        for mc in self.microclassifiers:
            costs[mc.name] = mc.multiply_adds()
        return costs
