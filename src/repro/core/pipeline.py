"""The end-to-end FilterForward edge pipeline.

The pipeline mirrors Figure 1 of the paper: decoded frames flow through the
shared feature extractor; every installed microclassifier consumes the
feature maps it subscribed to; per-frame decisions are smoothed into events;
matched frames are re-encoded with H.264 at the application's chosen bitrate
and "uploaded" (accounted against the uplink); and the original stream is
archived on local disk for demand-fetch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.architectures import WindowedLocalizedBinaryClassifierMC
from repro.core.events import Event
from repro.core.microclassifier import MicroClassifier
from repro.features.extractor import FeatureExtractor
from repro.video.codec import EncodedSegment, H264Simulator
from repro.video.frame import Frame
from repro.video.stream import VideoStream

__all__ = [
    "PipelineConfig",
    "MicroClassifierResult",
    "PipelineResult",
    "FilterForwardPipeline",
    "validate_microclassifiers",
    "mc_input_feature_map",
]


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline-wide knobs.

    ``smoothing_window``/``smoothing_votes`` are the paper's N=5, K=2
    K-voting defaults; ``batch_size`` bounds how many frames are scored per
    microclassifier inference call.
    """

    smoothing_window: int = 5
    smoothing_votes: int = 2
    batch_size: int = 32

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.smoothing_window < 1:
            raise ValueError("smoothing_window must be at least 1")
        if not 1 <= self.smoothing_votes <= self.smoothing_window:
            raise ValueError("smoothing_votes must be in [1, smoothing_window]")


def validate_microclassifiers(
    extractor: FeatureExtractor, microclassifiers: list[MicroClassifier]
) -> None:
    """Shared install-time checks for the batch and streaming pipelines."""
    if not microclassifiers:
        raise ValueError("FilterForwardPipeline requires at least one microclassifier")
    names = [mc.name for mc in microclassifiers]
    duplicates = {n for n in names if names.count(n) > 1}
    if duplicates:
        raise ValueError(f"Duplicate microclassifier names: {sorted(duplicates)}")
    missing_taps = {mc.input_layer for mc in microclassifiers} - set(extractor.tap_layers)
    if missing_taps:
        raise ValueError(
            f"Extractor does not tap layer(s) {sorted(missing_taps)} required by "
            "installed microclassifiers"
        )


def mc_input_feature_map(
    mc: MicroClassifier, frame: Frame, activations: dict[str, np.ndarray]
) -> np.ndarray:
    """One MC's (optionally cropped) input feature map for one frame."""
    feature_map = activations[mc.input_layer]
    if mc.crop is not None:
        y0, y1, x0, x1 = mc.crop.to_feature_coords(
            (frame.height, frame.width), feature_map.shape[:2]
        )
        feature_map = feature_map[y0:y1, x0:x1, :]
    return feature_map


@dataclass
class MicroClassifierResult:
    """Everything one microclassifier produced for one stream."""

    mc_name: str
    probabilities: np.ndarray
    decisions: np.ndarray
    smoothed: np.ndarray
    events: list[Event]
    matched_frame_indices: np.ndarray
    encoded: EncodedSegment | None = None

    @property
    def num_matched_frames(self) -> int:
        """Number of frames this MC selected for upload (after smoothing)."""
        return int(self.matched_frame_indices.size)

    @property
    def average_bandwidth(self) -> float:
        """Average uplink bandwidth (bits/s) this MC's uploads consumed."""
        return self.encoded.average_bandwidth if self.encoded is not None else 0.0


@dataclass
class PipelineResult:
    """The outcome of running the pipeline over one stream."""

    per_mc: dict[str, MicroClassifierResult]
    num_frames: int
    stream_duration: float
    uploaded_frame_indices: np.ndarray
    total_uploaded_bits: float
    base_dnn_multiply_adds_per_frame: int
    mc_multiply_adds_per_frame: dict[str, int] = field(default_factory=dict)

    @property
    def average_uplink_bandwidth(self) -> float:
        """Average bandwidth (bits/s) across all MC uploads, over the stream duration."""
        if self.stream_duration <= 0:
            return 0.0
        return self.total_uploaded_bits / self.stream_duration

    @property
    def upload_fraction(self) -> float:
        """Fraction of stream frames that were uploaded by at least one MC."""
        if self.num_frames == 0:
            return 0.0
        return self.uploaded_frame_indices.size / self.num_frames

    def bandwidth_savings_versus(self, baseline_bandwidth: float) -> float:
        """How many times less bandwidth the pipeline used than ``baseline_bandwidth``."""
        own = self.average_uplink_bandwidth
        if own <= 0:
            return float("inf")
        return baseline_bandwidth / own


class FilterForwardPipeline:
    """Runs many microclassifiers against one camera stream on the edge node.

    Parameters
    ----------
    extractor:
        The shared feature extractor (one base-DNN pass per frame).
    microclassifiers:
        Installed microclassifiers; each declares the base-DNN layer (and
        optional crop) it consumes via its config.
    config:
        Pipeline knobs.
    codec:
        H.264 simulator used to re-encode matched frames for upload.
    """

    def __init__(
        self,
        extractor: FeatureExtractor,
        microclassifiers: list[MicroClassifier],
        config: PipelineConfig | None = None,
        codec: H264Simulator | None = None,
    ) -> None:
        validate_microclassifiers(extractor, microclassifiers)
        self.extractor = extractor
        self.microclassifiers = list(microclassifiers)
        self.config = config or PipelineConfig()
        self.codec = codec or H264Simulator()

    # -- feature collection --------------------------------------------------
    def collect_feature_maps(self, stream: VideoStream) -> dict[str, np.ndarray]:
        """Run the base DNN over the stream and gather each MC's input batch.

        Returns a mapping from MC name to an ``(N, H, W, C)`` array of that
        MC's (cropped) feature maps, in frame order.  The base DNN runs once
        per frame regardless of how many MCs are installed — this is the
        computation sharing at the heart of FilterForward.
        """
        per_mc: dict[str, list[np.ndarray]] = {mc.name: [] for mc in self.microclassifiers}
        for frame in stream:
            activations = self.extractor.extract(frame)
            for mc in self.microclassifiers:
                per_mc[mc.name].append(mc_input_feature_map(mc, frame, activations))
        return {name: np.stack(maps, axis=0) for name, maps in per_mc.items()}

    # -- scoring --------------------------------------------------------------
    def _score(self, mc: MicroClassifier, feature_maps: np.ndarray) -> np.ndarray:
        """Per-frame probabilities for one MC over a consecutive frame batch."""
        if isinstance(mc, WindowedLocalizedBinaryClassifierMC):
            return mc.predict_proba_stream(feature_maps)
        probabilities = np.empty(feature_maps.shape[0])
        step = self.config.batch_size
        for start in range(0, feature_maps.shape[0], step):
            chunk = feature_maps[start : start + step]
            probabilities[start : start + chunk.shape[0]] = mc.predict_proba_batch(chunk)
        return probabilities

    # -- end-to-end -----------------------------------------------------------
    def streaming_session(
        self,
        frame_rate: float,
        resolution: tuple[int, int] | None = None,
        annotate_frames: bool = True,
    ):
        """Open a :class:`~repro.core.streaming.StreamingPipeline` session.

        The session shares this pipeline's extractor, microclassifiers,
        config, and codec, and produces identical results frame by frame in
        O(1) memory.
        """
        from repro.core.streaming import StreamingPipeline

        return StreamingPipeline(
            self.extractor,
            self.microclassifiers,
            config=self.config,
            codec=self.codec,
            frame_rate=frame_rate,
            resolution=resolution,
            annotate_frames=annotate_frames,
        )

    def process_stream(self, stream: VideoStream, annotate_frames: bool = True) -> PipelineResult:
        """Filter one stream: score, smooth, detect events, and account uploads.

        Frames are decoded exactly once: the stream is fed through the
        incremental :class:`~repro.core.streaming.StreamingPipeline`, which
        scores, smooths, and accounts uploads frame by frame instead of
        materializing per-MC feature-map batches.
        """
        session = self.streaming_session(
            stream.frame_rate, stream.resolution, annotate_frames=annotate_frames
        )
        for frame in stream:
            session.push(frame)
        return session.finish(stream_duration=stream.duration)

    # -- cost accounting -------------------------------------------------------
    def multiply_adds_per_frame(self) -> dict[str, int]:
        """Per-frame multiply-adds: the shared base DNN plus each MC's marginal cost."""
        costs = {"base_dnn": self.extractor.multiply_adds_per_frame()}
        for mc in self.microclassifiers:
            costs[mc.name] = mc.multiply_adds()
        return costs
