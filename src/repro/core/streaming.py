"""Incremental execution of the FilterForward pipeline in O(1) heavy state.

:class:`StreamingPipeline` consumes one decoded frame at a time and produces
results identical to :meth:`repro.core.pipeline.FilterForwardPipeline.process_stream`
on the same stream — per-frame probabilities, thresholded decisions, K-voting
smoothed outputs, events, and upload accounting — without ever materializing
per-microclassifier feature-map batches.  Memory is O(1) in the *heavyweight*
sense: the frames and feature maps held at any moment are bounded by the
configuration, not the stream length (per-frame scalars — probabilities,
decisions, timestamps — still accumulate, since they are the result).  The
bounded heavy state is:

* one chunk of up to ``batch_size`` feature maps per MC (scored as soon as
  the chunk fills, with the same chunk boundaries the batch path uses, so
  probabilities are bit-identical);
* a ring of reduced maps for windowed MCs (``window + batch_size`` entries);
* the frames still inside the smoothing lookahead (``batch_size`` plus a few
  window widths), needed for event annotation and codec rate accounting;
* O(1) scalars per matched frame for the deferred H.264 bit accounting
  (the codec's content-adaptive rate model normalizes over the whole matched
  sequence, so encoded segments are assembled at :meth:`finish`).

This is the execution substrate of the multi-camera fleet runtime
(:mod:`repro.fleet`): a camera pushes frames as they arrive and learns about
matches and closed events with bounded latency, instead of replaying the
whole stream three times as the original offline flow did.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.architectures import WindowedLocalizedBinaryClassifierMC
from repro.core.events import Event, EventDetector, EventKey, EventRecord
from repro.core.microclassifier import MicroClassifier
from repro.core.pipeline import (
    MicroClassifierResult,
    PipelineConfig,
    PipelineResult,
    mc_input_feature_map,
    validate_microclassifiers,
)
from repro.features.extractor import FeatureExtractor
from repro.video.codec import H264Simulator
from repro.video.frame import Frame
from repro.video.stream import VideoStream

__all__ = ["StreamUpdate", "StreamingPipeline"]


@dataclass(frozen=True)
class StreamUpdate:
    """What one :meth:`StreamingPipeline.push` (or :meth:`finish`) resolved.

    ``position`` is the 0-based index of the frame in *pushed order* (equal
    to ``Frame.index`` when an intact stream is pushed; under load shedding
    positions stay dense while source indices gap).  Smoothing lookahead and
    chunked scoring mean a push typically finalizes frames a few positions
    behind the one just pushed.
    """

    position: int
    finalized_through: int
    new_matches: tuple[tuple[str, int], ...] = ()
    closed_events: tuple[Event, ...] = ()
    closed_records: tuple[EventRecord, ...] = ()


@dataclass
class _McState:
    """Per-microclassifier incremental state."""

    mc: MicroClassifier
    detector: EventDetector
    # Live decision-threshold override (None = the MC's trained/configured
    # threshold).  Kept on the session, not on the MC, so a trained model
    # shared by many sessions is never mutated by one camera's control loop.
    threshold_override: float | None = None
    chunk: list[np.ndarray] = field(default_factory=list)
    probabilities: list[float] = field(default_factory=list)
    decisions: list[int] = field(default_factory=list)
    smoothed: list[int] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)
    decisions_fed: int = 0
    # Windowed-architecture extras: buffered 1x1 reductions by position.
    is_windowed: bool = False
    reduced: "OrderedDict[int, np.ndarray]" = field(default_factory=OrderedDict)
    reduced_count: int = 0
    # Deferred codec accounting for matched frames.
    matched_source_indices: list[int] = field(default_factory=list)
    matched_diffs: list[float] = field(default_factory=list)
    prev_matched_pixels: np.ndarray | None = None

    @property
    def finalized(self) -> int:
        return len(self.smoothed)

    @property
    def threshold(self) -> float:
        """The decision threshold currently in effect for this MC."""
        if self.threshold_override is not None:
            return self.threshold_override
        return self.mc.config.threshold


class StreamingPipeline:
    """Frame-by-frame FilterForward execution with bounded memory.

    Parameters
    ----------
    extractor:
        The shared feature extractor (one base-DNN pass per pushed frame).
    microclassifiers:
        Installed microclassifiers (same contract as the batch pipeline).
    config:
        Pipeline knobs; ``batch_size`` bounds both scoring latency and the
        feature-map memory held per MC.
    codec:
        H.264 simulator for upload rate accounting.
    frame_rate:
        Nominal frame rate of the pushed sequence (used for upload
        accounting at :meth:`finish`).
    resolution:
        ``(width, height)``; inferred from the first pushed frame if omitted.
    annotate_frames:
        Record event memberships into frame metadata as runs are detected.
    """

    def __init__(
        self,
        extractor: FeatureExtractor,
        microclassifiers: list[MicroClassifier],
        config: PipelineConfig | None = None,
        codec: H264Simulator | None = None,
        frame_rate: float = 30.0,
        resolution: tuple[int, int] | None = None,
        annotate_frames: bool = True,
    ) -> None:
        validate_microclassifiers(extractor, microclassifiers)
        if frame_rate <= 0:
            raise ValueError("frame_rate must be positive")
        self.extractor = extractor
        self.microclassifiers = list(microclassifiers)
        self.config = config or PipelineConfig()
        self.codec = codec or H264Simulator()
        self.frame_rate = float(frame_rate)
        self.resolution = resolution
        self.annotate_frames = bool(annotate_frames)
        self._states = [
            _McState(
                mc=mc,
                detector=EventDetector(
                    mc.name,
                    window=self.config.smoothing_window,
                    votes=self.config.smoothing_votes,
                ),
                is_windowed=isinstance(mc, WindowedLocalizedBinaryClassifierMC),
            )
            for mc in self.microclassifiers
        ]
        # Name -> states resolved once at bind time, so the actuation hot
        # path (threshold reads during decision draining, control-plane
        # SetCameraThreshold) never rescans the state list per call.
        self._states_by_name: dict[str, list[_McState]] = {}
        for state in self._states:
            self._states_by_name.setdefault(state.mc.name, []).append(state)
        self._pending: "OrderedDict[int, Frame]" = OrderedDict()
        self._num_pushed = 0
        self._finished = False
        self._result: PipelineResult | None = None
        # Optional frame-lifecycle tracer (repro.obs.trace.NodeTracer); set
        # by bind_tracer() so pipeline-level outcomes (stream position,
        # which MC matched a frame) annotate the sampled frames' spans.
        self._tracer = None
        self._tracer_camera: str | None = None
        # Global event identity: (camera_id, session_epoch) prefix for the
        # EventRecords this session emits.  Defaults suit a standalone
        # pipeline; the fleet runtime rebinds via bind_identity() so keys
        # survive camera migration (epoch bumps on reattach).
        self._camera_id = "stream"
        self._session_epoch = 0
        # Every EventRecord this session has closed, in close order.  O(1)
        # per event (events are rare by construction), and the fleet runtime
        # tracks a consumed count so flush-closed tail records are collected
        # at finish() too.
        self.closed_records: list[EventRecord] = []
        # Scalar per-frame records kept for downstream consumers (fleet
        # telemetry, upload scheduling); O(1) per frame.
        self.source_indices: list[int] = []
        self.timestamps: list[float] = []

    def bind_tracer(self, tracer, camera_id: str) -> None:
        """Attach a node tracer so this session annotates sampled frames.

        ``tracer`` duck-types :class:`repro.obs.trace.NodeTracer` (only its
        ``annotate`` method is used); annotations are keyed by the frame's
        *source index*, matching how the fleet runtime opened the traces.
        """
        self._tracer = tracer
        self._tracer_camera = str(camera_id)

    def bind_identity(self, camera_id: str, session_epoch: int = 0) -> None:
        """Set the ``(camera_id, session_epoch)`` prefix of emitted event keys.

        The fleet runtime calls this at install time; ``session_epoch``
        increments on every migration reattach so the per-detector
        ``event_id`` counter restarting from 0 never aliases two physical
        events under one global key.
        """
        if session_epoch < 0:
            raise ValueError("session_epoch must be non-negative")
        self._camera_id = str(camera_id)
        self._session_epoch = int(session_epoch)

    # -- streaming interface -------------------------------------------------
    @property
    def num_pushed(self) -> int:
        """Frames pushed so far."""
        return self._num_pushed

    @property
    def finalized_through(self) -> int:
        """Number of frames whose smoothed decisions are final for all MCs."""
        return min(state.finalized for state in self._states)

    @property
    def pending_frames(self) -> int:
        """Frames buffered awaiting scoring or smoothing lookahead."""
        return len(self._pending)

    def push(self, frame: Frame) -> StreamUpdate:
        """Ingest one decoded frame; returns what this push finalized."""
        if self._finished:
            raise RuntimeError("StreamingPipeline already finished")
        if self.resolution is None:
            self.resolution = (frame.width, frame.height)
        position = self._num_pushed
        self._num_pushed += 1
        self._pending[position] = frame
        self.source_indices.append(int(frame.index))
        self.timestamps.append(float(frame.timestamp))

        activations = self.extractor.extract(frame)
        for state in self._states:
            state.chunk.append(mc_input_feature_map(state.mc, frame, activations))

        new_matches: list[tuple[str, int]] = []
        closed: list[Event] = []
        records: list[EventRecord] = []
        if len(self._states[0].chunk) >= self.config.batch_size:
            self._score_chunks(final=False)
            self._drain_decisions(new_matches, closed, records)
        if self._tracer is not None:
            self._tracer.annotate(
                self._tracer_camera, int(frame.index), "stream_position", position
            )
            for mc_name, pos in new_matches:
                self._tracer.annotate(
                    self._tracer_camera,
                    self.source_indices[pos],
                    f"matched.{mc_name}",
                    pos,
                )
        return StreamUpdate(
            position=position,
            finalized_through=self.finalized_through,
            new_matches=tuple(new_matches),
            closed_events=tuple(closed),
            closed_records=tuple(records),
        )

    def finish(self, stream_duration: float | None = None) -> PipelineResult:
        """Flush all buffered state and assemble the final result.

        ``stream_duration`` defaults to ``num_pushed / frame_rate``.
        """
        if self._finished:
            assert self._result is not None
            return self._result
        self._finished = True
        new_matches: list[tuple[str, int]] = []
        closed: list[Event] = []
        records: list[EventRecord] = []
        self._score_chunks(final=True)
        self._drain_decisions(new_matches, closed, records, final=True)
        self._pending.clear()

        duration = (
            float(stream_duration)
            if stream_duration is not None
            else self._num_pushed / self.frame_rate
        )
        per_mc: dict[str, MicroClassifierResult] = {}
        uploaded: set[int] = set()
        total_bits = 0.0
        for state in self._states:
            probabilities = np.array(state.probabilities, dtype=np.float64)
            decisions = np.array(state.decisions, dtype=np.int8)
            smoothed = np.array(state.smoothed, dtype=np.int8)
            matched = np.flatnonzero(smoothed)
            encoded = None
            if matched.size:
                complexities = self.codec.complexities_from_diffs(
                    np.array(state.matched_diffs, dtype=np.float64)
                )
                encoded = self.codec.encode_precomputed(
                    state.matched_source_indices,
                    complexities,
                    state.mc.config.upload_bitrate,
                    self.frame_rate,
                    self.resolution,
                    stream_duration=duration,
                )
                total_bits += encoded.total_bits
                uploaded.update(int(i) for i in matched)
            per_mc[state.mc.name] = MicroClassifierResult(
                mc_name=state.mc.name,
                probabilities=probabilities,
                decisions=decisions,
                smoothed=smoothed,
                events=state.events,
                matched_frame_indices=matched,
                encoded=encoded,
            )
        self._result = PipelineResult(
            per_mc=per_mc,
            num_frames=self._num_pushed,
            stream_duration=duration,
            uploaded_frame_indices=np.array(sorted(uploaded), dtype=np.int64),
            total_uploaded_bits=total_bits,
            base_dnn_multiply_adds_per_frame=self.extractor.multiply_adds_per_frame(),
            mc_multiply_adds_per_frame={
                mc.name: mc.multiply_adds() for mc in self.microclassifiers
            },
        )
        return self._result

    def process_stream(self, stream: VideoStream) -> PipelineResult:
        """Convenience: push every frame of ``stream`` and finish."""
        for frame in stream:
            self.push(frame)
        return self.finish(stream_duration=stream.duration)

    # -- live threshold actuation ---------------------------------------------
    def _states_for(self, mc_name: str | None) -> list[_McState]:
        if mc_name is None:
            return self._states
        states = self._states_by_name.get(mc_name)
        if not states:
            known = sorted(self._states_by_name)
            raise KeyError(f"No microclassifier {mc_name!r} in this session (have {known})")
        return states

    def set_threshold(self, threshold: float, mc_name: str | None = None) -> None:
        """Override the decision threshold of one (or every) installed MC.

        The override lives on this session only — the underlying
        :class:`MicroClassifier` (possibly shared with other sessions through
        a trained-model cache) keeps its configured threshold.  It applies to
        decisions drained after the call; already-finalized decisions are
        never rewritten.  This is the actuation point of the control plane's
        ``SetCameraThreshold`` action (runtime threshold drift).
        """
        if self._finished:
            raise RuntimeError("StreamingPipeline already finished")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        for state in self._states_for(mc_name):
            state.threshold_override = float(threshold)

    def current_threshold(self, mc_name: str | None = None) -> float:
        """The decision threshold in effect (first installed MC when unnamed)."""
        return self._states_for(mc_name)[0].threshold

    # -- scoring -------------------------------------------------------------
    def _score_chunks(self, final: bool) -> None:
        """Score every MC's queued chunk (all chunks fill in lockstep)."""
        for state in self._states:
            if state.chunk:
                batch = np.stack(state.chunk, axis=0)
                state.chunk = []
                if state.is_windowed:
                    mc = state.mc
                    reduced = mc.reduce_relu.forward(mc.reduce.forward(batch, False), False)
                    for k in range(reduced.shape[0]):
                        state.reduced[state.reduced_count] = reduced[k]
                        state.reduced_count += 1
                else:
                    probabilities = state.mc.predict_proba_batch(batch)
                    state.probabilities.extend(float(p) for p in probabilities)
            if state.is_windowed:
                self._emit_windowed_probabilities(state, final)

    def _emit_windowed_probabilities(self, state: _McState, final: bool) -> None:
        """Score windowed frames whose temporal context is now available.

        Mirrors ``predict_proba_stream``: frame *i*'s window is the reduced
        maps at positions ``clip([i - half, i + half], 0, n - 1)``, so edge
        frames replicate the boundary reduction.  The right clamp only
        applies once the stream end is known.
        """
        mc = state.mc
        half = mc.window // 2
        last = state.reduced_count - 1
        while len(state.probabilities) < self._num_pushed:
            i = len(state.probabilities)
            if not final and i + half > last:
                break
            indices = np.clip(np.arange(i - half, i + half + 1), 0, last)
            window = [state.reduced[int(j)] for j in indices]
            state.probabilities.append(float(mc.predict_window(window)))
            # Reductions earlier than the next frame's left edge are done.
            cutoff = (i + 1) - half
            while state.reduced and next(iter(state.reduced)) < cutoff:
                state.reduced.popitem(last=False)

    # -- smoothing, events, accounting ----------------------------------------
    def _drain_decisions(
        self,
        new_matches: list[tuple[str, int]],
        closed: list[Event],
        closed_records: list[EventRecord],
        final: bool = False,
    ) -> None:
        for state in self._states:
            while state.decisions_fed < len(state.probabilities):
                probability = state.probabilities[state.decisions_fed]
                decision = 1 if probability >= state.threshold else 0
                state.decisions.append(decision)
                state.decisions_fed += 1
                finalized, ended = state.detector.push(decision)
                self._apply_finalized(state, finalized, new_matches)
                state.events.extend(ended)
                closed.extend(ended)
                closed_records.extend(self._make_record(state, event) for event in ended)
            if final:
                finalized, ended = state.detector.flush()
                self._apply_finalized(state, finalized, new_matches)
                state.events.extend(ended)
                closed.extend(ended)
                closed_records.extend(self._make_record(state, event) for event in ended)
        self._evict_finalized_frames()

    def _make_record(self, state: _McState, event: Event) -> EventRecord:
        """Promote a closed :class:`Event` to a globally identified record.

        Valid at close time: an event only closes once every position in its
        span is finalized, so the probabilities and source indices it covers
        are already materialized.
        """
        record = EventRecord(
            key=EventKey(self._camera_id, self._session_epoch, event.event_id),
            mc_name=event.mc_name,
            start=event.start,
            end=event.end,
            source_start=self.source_indices[event.start],
            source_end=self.source_indices[event.end - 1] + 1,
            peak_score=max(state.probabilities[event.start : event.end]),
        )
        self.closed_records.append(record)
        return record

    def _apply_finalized(self, state: _McState, finalized, new_matches) -> None:
        for decision in finalized:
            state.smoothed.append(decision.smoothed)
            if not decision.smoothed:
                continue
            frame = self._pending[decision.frame_index]
            if self.annotate_frames:
                frame.record_event(state.mc.name, decision.event_id)
            if state.prev_matched_pixels is None:
                diff = 1.0  # placeholder; complexities_from_diffs overwrites it
            else:
                diff = float(np.mean(np.abs(frame.pixels - state.prev_matched_pixels)))
            state.matched_diffs.append(diff)
            state.prev_matched_pixels = frame.pixels
            state.matched_source_indices.append(int(frame.index))
            new_matches.append((state.mc.name, decision.frame_index))

    def _evict_finalized_frames(self) -> None:
        horizon = self.finalized_through
        while self._pending and next(iter(self._pending)) < horizon:
            self._pending.popitem(last=False)
