"""The multi-camera fleet runtime: simulated-clock streaming execution.

:class:`FleetRuntime` runs many cameras against one edge node under a
deterministic discrete-event simulation:

1. every camera's frames *arrive* on the simulated clock at its native frame
   rate (:class:`~repro.fleet.camera.CameraFeed`);
2. arrivals pass node-wide admission control and the camera's bounded
   :class:`~repro.fleet.queues.FrameQueue` (overload sheds load according to
   the queue's drop policy — backpressure made explicit);
3. a :class:`~repro.fleet.worker.WorkerPool` multiplexes queued frames
   through each camera's incremental
   :class:`~repro.core.streaming.StreamingPipeline`, spending the paper's
   phased per-frame schedule of simulated time per frame;
4. matched events are re-encoded and charged against one shared
   :class:`~repro.edge.uplink.ConstrainedUplink`;
5. every step feeds the :class:`~repro.fleet.telemetry.TelemetryRegistry`,
   and :meth:`FleetRuntime.run` returns a :class:`FleetReport` with
   per-camera and aggregate statistics.

Only the *clock* is simulated — frames really are scored by the NumPy
pipelines, so decisions, events, and upload bits are the true FilterForward
outputs for each camera's content.

Beyond ``run()``, the runtime exposes an *incremental* execution surface for
the control plane (:mod:`repro.control`): :meth:`FleetRuntime.start` /
:meth:`FleetRuntime.advance_until` / :meth:`FleetRuntime.finalize` let a
driver interleave several nodes on one clock and actuate between events —
live drop-policy changes (:meth:`set_drop_policy`), per-camera admission
quotas (:meth:`set_camera_quota`), and whole-camera handoff between nodes
(:meth:`detach_camera` / :meth:`attach_camera`, the migration mechanism).
"""

from __future__ import annotations

import heapq
import math
import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.architectures import build_microclassifier
from repro.core.batched import BatchedScorer
from repro.core.microclassifier import MicroClassifierConfig
from repro.core.events import EventRecord
from repro.core.pipeline import PipelineConfig
from repro.core.streaming import StreamingPipeline
from repro.fleet.accuracy import (
    ACCURACY_TASKS,
    CameraAccuracy,
    FleetAccuracy,
    predictions_from_result,
)
from repro.edge.scheduler import Phase, PhasedSchedule
from repro.edge.uplink import ConstrainedUplink
from repro.features.base_dnn import build_mobilenet_like
from repro.features.extractor import FeatureExtractor
from repro.fleet.camera import CameraFeed, CameraSpec
from repro.fleet.queues import AdmissionController, DropPolicy, FrameQueue
from repro.fleet.telemetry import TelemetryRegistry, jain_fairness
from repro.fleet.worker import WorkerPool, default_schedule
from repro.obs.alerts import AlertLog
from repro.obs.slo import CameraSLOStatus, SLOConfig, SLOReport, SLOTracker
from repro.obs.trace import NodeTracer, Tracer
from repro.perf.cost_model import CostModel
from repro.video.frame import Frame

if TYPE_CHECKING:
    from repro.events.plane import DeliveryReport

__all__ = [
    "FleetConfig",
    "CameraReport",
    "CameraLiveStats",
    "CameraHandoff",
    "FleetReport",
    "FleetRuntime",
    "default_pipeline_factory",
    "resolution_scaled_schedule",
]

PipelineFactory = Callable[[CameraSpec], StreamingPipeline]

# Loose admission cap installed when the control plane needs per-camera
# quotas on a node configured without admission control: quotas should bind,
# the node-wide budget should not.
_UNBOUNDED_IN_FLIGHT = 1_000_000_000


@dataclass(frozen=True)
class FleetConfig:
    """Node-level knobs of the fleet runtime.

    ``uplink_capacity_bps`` sizes the uplink the runtime builds for itself;
    it is ignored when an ``uplink`` is injected into
    :class:`FleetRuntime` (as :class:`~repro.fleet.sharding.ShardedFleetRuntime`
    does with each node's slice of the shared datacenter link).

    ``resolution_scaled_service`` derives each camera's per-frame service
    time from the analytic cost model at *that camera's* resolution (the
    paper-calibrated schedule scaled by the multiply-add ratio against the
    paper's 1080p reference), so hosting decisions show up in compute, not
    just in frame rates.  Off by default: the flat paper schedule is the
    seed behaviour.

    ``accuracy_task`` switches the *accuracy plane* on: every camera's
    ground-truth labels for that task
    (:meth:`~repro.fleet.camera.CameraFeed.labels`) are threaded through
    arrival/completion accounting (live ``accuracy.*`` telemetry and
    truth-density stats for control policies), and
    :meth:`FleetRuntime.finalize` scores each camera's admitted-vs-dropped
    decisions with event F1 into :attr:`FleetReport.accuracy`.  Pair it
    with a trained pipeline factory
    (:meth:`repro.fleet.accuracy.TrainedMicroClassifiers.pipeline_factory`)
    for meaningful numbers.

    ``slo`` switches the *observability plane's* latency objectives on: the
    runtime tracks per-camera frame freshness and end-to-end latency against
    the configured targets (:class:`repro.obs.slo.SLOConfig`), surfaces
    error-budget status in :meth:`FleetRuntime.camera_live_stats` and
    :attr:`FleetReport.slo`, and feeds ``slo.*`` violation counters into
    telemetry.  ``None`` (the default) keeps the hot path identical to a
    runtime without SLO accounting.

    ``event_cooldown_seconds`` rate-limits the *publish hook*: after a
    camera publishes an event record for one microclassifier, further
    records for that (camera, MC) pair closing within the cooldown are
    suppressed (counted as ``events.suppressed``) instead of handed to the
    sink.  0.0 (the default) publishes every record.  Collection into
    :attr:`FleetRuntime.event_records` is never suppressed — cooldowns
    shape the delivery plane's load, not the run's ground truth.

    ``batched_scoring`` (on by default) scores the frames in flight on the
    worker pool through one batched base-DNN forward per resident base DNN
    (:class:`repro.core.batched.BatchedScorer`) instead of one ``N=1``
    forward per camera.  The batched forward is bit-exact against the
    per-camera path, so every report, accuracy, telemetry, and trace output
    is bit-identical with the flag on or off — only wall-clock time changes.
    """

    num_workers: int = 4
    queue_capacity: int = 8
    drop_policy: DropPolicy = DropPolicy.DROP_OLDEST
    max_in_flight: int | None = None
    per_camera_quota: int | None = None
    service_time_scale: float = 1.0
    uplink_capacity_bps: float = 1_000_000.0
    schedule_classifiers: int = 1
    resolution_scaled_service: bool = False
    accuracy_task: str | None = None
    slo: SLOConfig | None = None
    batched_scoring: bool = True
    event_cooldown_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1 when set")
        if self.per_camera_quota is not None and self.per_camera_quota < 1:
            raise ValueError("per_camera_quota must be at least 1 when set")
        if self.service_time_scale <= 0:
            raise ValueError("service_time_scale must be positive")
        if self.uplink_capacity_bps <= 0:
            raise ValueError("uplink_capacity_bps must be positive")
        if self.schedule_classifiers < 1:
            raise ValueError("schedule_classifiers must be at least 1")
        if self.event_cooldown_seconds < 0:
            raise ValueError("event_cooldown_seconds must be non-negative")
        if self.accuracy_task is not None and self.accuracy_task not in ACCURACY_TASKS:
            raise ValueError(
                f"Unknown accuracy_task {self.accuracy_task!r}; "
                f"expected one of {ACCURACY_TASKS}"
            )


def resolution_scaled_schedule(
    base: PhasedSchedule, resolution: tuple[int, int], num_classifiers: int = 1
) -> PhasedSchedule:
    """Scale a paper-calibrated schedule to a camera's resolution.

    Every phase is multiplied by the multiply-add ratio between the camera's
    resolution and the cost model's paper reference (1080p), so a 96x64
    camera costs twice the compute of a 64x48 one — the property placement
    and migration quality are measured against.
    """
    camera_model = CostModel(resolution=resolution)
    reference_model = CostModel()
    mc = "localized"
    camera_ops = camera_model.base_dnn_cost() + num_classifiers * camera_model.mc_cost(mc)
    reference_ops = reference_model.base_dnn_cost() + num_classifiers * reference_model.mc_cost(mc)
    ratio = camera_ops / reference_ops
    return PhasedSchedule(
        phases=tuple(
            Phase(name=p.name, start=p.start * ratio, duration=p.duration * ratio)
            for p in base.phases
        )
    )


def default_pipeline_factory(
    alpha: float = 0.125,
    tap_layer: str = "conv2_2/sep",
    threshold: float = 0.6,
    upload_bitrate: float = 12_000.0,
    batch_size: int = 1,
    smoothing_window: int = 5,
    smoothing_votes: int = 2,
    seed: int = 0,
) -> PipelineFactory:
    """Build the default per-camera pipeline factory.

    One thin MobileNet-like base DNN is built per distinct camera resolution
    and shared by every camera at that resolution (the FilterForward
    computation-sharing premise); each camera gets its own feature-map cache
    and one localized binary microclassifier.  ``batch_size=1`` keeps the
    streaming decision latency at the smoothing lookahead alone.
    """
    base_dnns: dict[tuple[int, int], object] = {}

    def factory(spec: CameraSpec) -> StreamingPipeline:
        shape = (spec.height, spec.width, 3)
        key = (spec.height, spec.width)
        if key not in base_dnns:
            base_dnns[key] = build_mobilenet_like(
                shape, alpha=alpha, rng=np.random.default_rng(seed)
            )
        base_dnn = base_dnns[key]
        extractor = FeatureExtractor(base_dnn, [tap_layer], cache_size=4)
        mc_config = MicroClassifierConfig(
            name=f"{spec.camera_id}/primary",
            input_layer=tap_layer,
            threshold=threshold,
            upload_bitrate=upload_bitrate,
        )
        mc = build_microclassifier(
            "localized",
            mc_config,
            extractor.layer_shape(tap_layer),
            rng=np.random.default_rng(seed + zlib.crc32(spec.camera_id.encode()) % 10_000),
        )
        return StreamingPipeline(
            extractor,
            [mc],
            config=PipelineConfig(
                batch_size=batch_size,
                smoothing_window=smoothing_window,
                smoothing_votes=smoothing_votes,
            ),
            frame_rate=spec.frame_rate,
            resolution=spec.resolution,
        )

    return factory


@dataclass
class CameraReport:
    """One camera's end-of-run accounting."""

    camera_id: str
    scenario: str
    resolution: tuple[int, int]
    frame_rate: float
    frames_generated: int = 0
    frames_admitted: int = 0
    frames_dropped_oldest: int = 0
    frames_dropped_newest: int = 0
    frames_rejected: int = 0
    frames_blocked: int = 0
    frames_scored: int = 0
    matched_frames: int = 0
    events: int = 0
    queue_high_water: int = 0
    mean_queue_wait_seconds: float = 0.0
    uploaded_bits: float = 0.0

    @property
    def frames_dropped(self) -> int:
        """Frames lost to queue drops."""
        return self.frames_dropped_oldest + self.frames_dropped_newest

    @property
    def frames_lost(self) -> int:
        """All frames that never reached the pipeline."""
        return self.frames_dropped + self.frames_rejected

    @property
    def drop_rate(self) -> float:
        """Fraction of generated frames lost before scoring."""
        if self.frames_generated == 0:
            return 0.0
        return self.frames_lost / self.frames_generated


@dataclass(frozen=True)
class CameraLiveStats:
    """A point-in-time view of one hosted camera, for control policies."""

    camera_id: str
    scenario: str
    resolution: tuple[int, int]
    frame_rate: float
    generated: int
    scored: int
    matched: int
    rejected: int
    dropped: int
    queue_depth: int
    service_seconds: float
    drop_policy: DropPolicy = DropPolicy.DROP_OLDEST
    truth_known: bool = False
    truth_positive_generated: int = 0
    truth_positive_scored: int = 0
    estimated_upload_bits: float = 0.0
    threshold: float = 0.0
    # Simulated time this hosting stint began: counters reset with each
    # stint, so controllers keeping windowed baselines compare this to spot
    # a migrate-away-and-return and restart their windows.
    attached_at: float = 0.0
    # Live SLO status for this camera (None when FleetConfig.slo is off):
    # controllers can shed or migrate by burn rate instead of raw drops.
    slo: CameraSLOStatus | None = None

    @property
    def match_density(self) -> float:
        """Matched fraction of scored frames — the camera's event value."""
        return self.matched / self.scored if self.scored else 0.0

    @property
    def upload_bits_per_scored_frame(self) -> float:
        """Estimated uplink bits this camera costs per frame it gets scored.

        Derived from the live per-match bit estimate
        (:attr:`estimated_upload_bits`), so an event-dense camera at a high
        upload bitrate reads as upload-heavy long before the end-of-run
        upload replay runs — the signal uplink-aware shedding ranks on.
        """
        return self.estimated_upload_bits / self.scored if self.scored else 0.0

    @property
    def truth_density(self) -> float:
        """Ground-truth positive fraction of generated frames so far.

        Only meaningful when the accuracy plane is on
        (:attr:`FleetConfig.accuracy_task`, signalled by
        :attr:`truth_known`); the shedding controller can rank cameras by
        this instead of the noisier :attr:`match_density` proxy.
        """
        return self.truth_positive_generated / self.generated if self.generated else 0.0


@dataclass(frozen=True)
class CameraHandoff:
    """A detached camera ready to be attached to another node.

    Carries the spec *and* the feed object, whose lazily-rendered stream is
    cached — the destination node replays the remaining arrivals without
    re-rendering the scene.  ``session_epoch`` is the epoch of the stint
    that just ended; the destination installs the camera at ``epoch + 1``
    so the rebuilt detector's restarted event-ID counter never aliases
    global event keys across the migration.
    """

    spec: CameraSpec
    feed: CameraFeed
    detached_at: float
    session_epoch: int = 0


@dataclass
class FleetReport:
    """Aggregate outcome of one fleet run."""

    cameras: dict[str, CameraReport]
    sim_duration: float
    frames_generated: int
    frames_scored: int
    frames_dropped: int
    frames_rejected: int
    events_detected: int
    matched_frames: int
    achieved_fps: float
    offered_fps: float
    worker_utilization: float
    uplink_utilization: float
    uplink_backlog_seconds: float
    total_uploaded_bits: float
    telemetry: dict[str, object] = field(default_factory=dict)
    accuracy: FleetAccuracy | None = None
    slo: SLOReport | None = None
    # Alerting surface: a run driven with a timeline can attach the
    # evaluated AlertLog here (see repro.obs.alerts.evaluate_alerts).
    alerts: AlertLog | None = None
    # Delivery surface: a run published through an event delivery plane
    # attaches this node's DeliveryReport here (see repro.events.plane).
    delivery: "DeliveryReport | None" = None

    @property
    def num_cameras(self) -> int:
        """Cameras in the fleet."""
        return len(self.cameras)

    @property
    def drop_rate(self) -> float:
        """Fraction of generated frames shed (queue drops + admission)."""
        if self.frames_generated == 0:
            return 0.0
        return (self.frames_dropped + self.frames_rejected) / self.frames_generated

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over per-camera scored fractions.

        1.0 means every camera had the same share of its frames scored; the
        lower bound 1/num_cameras means one camera got everything.
        """
        return jain_fairness(
            c.frames_scored / c.frames_generated
            for c in self.cameras.values()
            if c.frames_generated > 0
        )

    @property
    def starved_cameras(self) -> int:
        """Cameras that generated frames but never got one scored."""
        return sum(
            1 for c in self.cameras.values() if c.frames_generated > 0 and c.frames_scored == 0
        )

    def summary(self) -> str:
        """A multi-line human-readable run summary."""
        lines = [
            f"fleet: {self.num_cameras} cameras, {self.frames_generated} frames offered "
            f"({self.offered_fps:.1f} fps aggregate)",
            f"scored {self.frames_scored} frames ({self.achieved_fps:.1f} fps) | "
            f"shed {self.frames_dropped} dropped + {self.frames_rejected} rejected "
            f"({self.drop_rate:.1%})",
            f"events {self.events_detected} | matched frames {self.matched_frames} | "
            f"uploaded {self.total_uploaded_bits / 8 / 1024:.1f} KiB",
            f"workers {self.worker_utilization:.1%} busy | uplink {self.uplink_utilization:.1%} "
            f"utilized, backlog {self.uplink_backlog_seconds:.2f}s | "
            f"sim {self.sim_duration:.2f}s",
            f"fairness {self.fairness_index:.3f} (Jain) | "
            f"starved cameras {self.starved_cameras}/{self.num_cameras}",
        ]
        if self.accuracy is not None:
            lines.append(self.accuracy.summary())
        if self.slo is not None:
            lines.append(self.slo.summary())
        if self.alerts is not None:
            lines.append(self.alerts.summary())
        if self.delivery is not None:
            lines.append(self.delivery.summary())
        return "\n".join(lines)


@dataclass
class _CameraState:
    """Mutable per-camera bookkeeping inside the event loop.

    One state covers one *stint* of a camera on this node; a camera that
    migrates away and later returns gets a fresh state under a new key.
    """

    key: str
    spec: CameraSpec
    feed: CameraFeed
    queue: FrameQueue
    session: StreamingPipeline
    schedule: PhasedSchedule | None = None
    # Estimated uplink bits one matched frame will cost, per MC name
    # (bitrate / frame rate); precomputed at install so the completion hot
    # path does a lookup, not a dict rebuild.
    upload_bits_per_match: dict[str, float] = field(default_factory=dict)
    truth: np.ndarray | None = None
    truth_positive_generated: int = 0
    truth_positive_scored: int = 0
    active: bool = True
    attached_at: float = 0.0
    detached_at: float | None = None
    # Event-record bookkeeping: the stint's epoch in the global event key,
    # and how many of the session's closed records _on_completion already
    # collected (finalize() picks up the flush-closed tail after this mark).
    session_epoch: int = 0
    records_consumed: int = 0
    counted_starved: bool = False
    holding: set[int] = field(default_factory=set)
    source_backlog: list[Frame] = field(default_factory=list)
    arrival_times: dict[int, float] = field(default_factory=dict)
    completion_times: list[float] = field(default_factory=list)
    wait_total: float = 0.0
    wait_count: int = 0
    estimated_upload_bits: float = 0.0
    generated: int = 0
    rejected: int = 0
    blocked: int = 0
    scored: int = 0
    matched: int = 0
    events: int = 0


class FleetRuntime:
    """Runs a camera fleet through one edge node on a simulated clock."""

    def __init__(
        self,
        cameras: Sequence[CameraSpec],
        pipeline_factory: PipelineFactory | None = None,
        config: FleetConfig | None = None,
        telemetry: TelemetryRegistry | None = None,
        uplink: ConstrainedUplink | None = None,
        defer_uploads: bool = False,
        tracer: Tracer | NodeTracer | None = None,
        event_sink: Callable[[EventRecord], None] | None = None,
    ) -> None:
        if not cameras:
            raise ValueError("FleetRuntime requires at least one camera")
        ids = [spec.camera_id for spec in cameras]
        duplicates = {i for i in ids if ids.count(i) > 1}
        if duplicates:
            raise ValueError(f"Duplicate camera ids: {sorted(duplicates)}")
        self.cameras = list(cameras)
        self.config = config or FleetConfig()
        self.telemetry = telemetry or TelemetryRegistry()
        self.pipeline_factory = pipeline_factory or default_pipeline_factory()
        self.workers = WorkerPool(
            num_workers=self.config.num_workers,
            schedule=default_schedule(self.config.schedule_classifiers),
            service_time_scale=self.config.service_time_scale,
            telemetry=self.telemetry,
        )
        # An injected uplink lets several nodes share one datacenter link
        # (each node gets its allocation from repro.edge.uplink.SharedUplink).
        self.uplink = uplink if uplink is not None else ConstrainedUplink(
            self.config.uplink_capacity_bps
        )
        # With deferred uploads the runtime computes each event's bits and
        # availability time but leaves the transfer to an external shared
        # link (the sharded runtime's work-conserving uplink).
        self.defer_uploads = defer_uploads
        self.pending_uploads: list[tuple[float, str, float]] = []
        # A fleet-level Tracer is resolved to this node's NodeTracer so the
        # standalone single-node case needs no node bookkeeping from callers;
        # the sharded runtime passes each node its NodeTracer directly.
        if isinstance(tracer, Tracer):
            tracer = tracer.node("node0")
        self.tracer = tracer
        self.slo = SLOTracker(self.config.slo) if self.config.slo is not None else None
        if self.config.max_in_flight is not None or self.config.per_camera_quota is not None:
            # A quota without an explicit node budget still needs a total cap
            # for the controller; quota * num_cameras is the loosest bound.
            max_in_flight = (
                self.config.max_in_flight
                if self.config.max_in_flight is not None
                else self.config.per_camera_quota * len(self.cameras)
            )
            self.admission = AdmissionController(
                max_in_flight, per_camera_quota=self.config.per_camera_quota
            )
        else:
            self.admission = None
        # Cross-camera batched scoring: frames in flight on the worker pool
        # awaiting their completion event, keyed by (stint key, frame index).
        # The scorer batches them through one base-DNN forward per resident
        # base DNN; bit-exact, so it changes wall-clock time and nothing else.
        # Event delivery: every closed EventRecord is collected (stamped with
        # its close time) into event_records; when a publish hook is attached
        # — at construction or later, e.g. by an EventDeliveryPlane — records
        # surviving the per-(camera, MC) cooldown are handed to it instead of
        # being summed away.  With no sink attached the run's telemetry is
        # byte-identical to a runtime predating the delivery plane.
        self.event_sink = event_sink
        self.event_records: list[EventRecord] = []
        self._last_event_publish: dict[tuple[str, str], float] = {}
        self.batched = BatchedScorer() if self.config.batched_scoring else None
        self._pending_completions: dict[tuple[str, int], Frame] = {}
        self._states: dict[str, _CameraState] = {}
        self._active: dict[str, str] = {}  # camera_id -> state key
        self._dispatch_keys: list[str] = []
        self._schedules: dict[tuple[int, int], PhasedSchedule] = {}
        self._stints: dict[str, int] = {}
        self._heap: list[tuple[float, int, str, str, Frame | None]] = []
        self._sequence = 0
        self._last_event_time = 0.0
        self._round_robin = 0
        self._starved = 0  # cameras with arrivals but no scored frame yet
        self._started = False
        self._finalized = False

    # -- orchestration -------------------------------------------------------
    def run(self) -> FleetReport:
        """Execute the whole fleet to completion and assemble the report."""
        self.start()
        self.advance_until(math.inf)
        return self.finalize()

    def start(self) -> None:
        """Install every camera and seed the event heap (idempotent guard)."""
        if self._started:
            raise RuntimeError("FleetRuntime.start() may only be called once")
        self._started = True
        for spec in self.cameras:
            self._install_camera(spec, CameraFeed(spec), from_time=None, attached_at=0.0)

    @property
    def has_pending_events(self) -> bool:
        """Whether any arrival or completion remains to be processed."""
        return bool(self._heap)

    def next_event_time(self) -> float | None:
        """Simulated time of the next pending event (None when drained)."""
        return self._heap[0][0] if self._heap else None

    @property
    def horizon(self) -> float:
        """Latest feed end time across every camera ever hosted here."""
        ends = [s.spec.start_time + s.spec.duration for s in self._states.values()]
        return max(ends, default=0.0)

    def advance_until(self, until: float) -> None:
        """Process every pending event with timestamp ``<= until``."""
        if not self._started:
            raise RuntimeError("call start() before advance_until()")
        while self._heap and self._heap[0][0] <= until:
            now, _, kind, key, frame = heapq.heappop(self._heap)
            self._last_event_time = max(self._last_event_time, now)
            state = self._states[key]
            if kind == "arrival":
                if not state.active:
                    continue  # camera migrated away; the destination owns this frame
                self._on_arrival(state, frame, now)
            else:
                self._on_completion(state, frame, now)
            self._dispatch(now)

    # -- camera installation and handoff -------------------------------------
    def _schedule_for(self, spec: CameraSpec) -> PhasedSchedule | None:
        if not self.config.resolution_scaled_service:
            return None
        if spec.resolution not in self._schedules:
            self._schedules[spec.resolution] = resolution_scaled_schedule(
                self.workers.schedule, spec.resolution, self.config.schedule_classifiers
            )
        return self._schedules[spec.resolution]

    def _install_camera(
        self,
        spec: CameraSpec,
        feed: CameraFeed,
        from_time: float | None,
        attached_at: float,
        after_time: float | None = None,
        session_epoch: int = 0,
    ) -> _CameraState:
        stint = self._stints.get(spec.camera_id, 0)
        self._stints[spec.camera_id] = stint + 1
        key = spec.camera_id if stint == 0 else f"{spec.camera_id}#{stint}"
        state = _CameraState(
            key=key,
            spec=spec,
            feed=feed,
            queue=FrameQueue(spec.camera_id, self.config.queue_capacity, self.config.drop_policy),
            session=self.pipeline_factory(spec),
            schedule=self._schedule_for(spec),
            truth=(
                feed.labels(self.config.accuracy_task).labels
                if self.config.accuracy_task is not None
                else None
            ),
            attached_at=attached_at,
            session_epoch=session_epoch,
        )
        state.upload_bits_per_match = {
            mc.name: mc.config.upload_bitrate / spec.frame_rate
            for mc in state.session.microclassifiers
        }
        state.session.bind_identity(spec.camera_id, session_epoch)
        if self.tracer is not None:
            state.queue.tracer = self.tracer
            state.session.bind_tracer(self.tracer, spec.camera_id)
        self._states[key] = state
        self._active[spec.camera_id] = key
        self._dispatch_keys.append(key)
        for arrival_time, frame in state.feed.arrivals():
            if from_time is not None and arrival_time < from_time:
                continue
            # A frame arriving exactly at the detach instant was already
            # processed by the source node (advance_until is inclusive).
            if after_time is not None and arrival_time <= after_time:
                continue
            heapq.heappush(self._heap, (arrival_time, self._sequence, "arrival", key, frame))
            self._sequence += 1
        return state

    def detach_camera(self, camera_id: str, now: float) -> CameraHandoff:
        """Stop hosting ``camera_id`` and hand its remaining feed over.

        Frames already queued keep draining here (they were decoded on this
        node); arrivals after ``now`` are the destination's to admit.  Frames
        a BLOCK policy had parked at the source are lost to the move and
        counted as rejected.
        """
        key = self._active.get(camera_id)
        if key is None:
            raise ValueError(f"Camera {camera_id!r} is not active on this node")
        state = self._states[key]
        state.active = False
        state.detached_at = now
        del self._active[camera_id]
        if state.source_backlog:
            lost = len(state.source_backlog)
            for frame in state.source_backlog:
                state.arrival_times.pop(id(frame), None)
                if frame is not None and id(frame) in state.holding:
                    state.holding.discard(id(frame))
                    if self.admission is not None:
                        self.admission.release(camera_id)
                if self.tracer is not None and frame is not None:
                    self.tracer.record_drop(camera_id, frame.index, "migration_lost", now)
            state.source_backlog.clear()
            state.rejected += lost
            self.telemetry.counter("frames.rejected").inc(lost)
            self.telemetry.counter("frames.migration_dropped").inc(lost)
            self._slo_lost(camera_id, lost)
        if state.counted_starved and state.scored == 0:
            self._starved -= 1
            state.counted_starved = False
            self._record_starvation()
        # Any shedding override belongs to this hosting stint; a camera that
        # later returns starts from the node's default quota.
        if self.admission is not None:
            self.admission.set_camera_quota(camera_id, None)
        return CameraHandoff(
            spec=state.spec,
            feed=state.feed,
            detached_at=now,
            session_epoch=state.session_epoch,
        )

    def attach_camera(
        self, handoff: CameraHandoff, now: float, resume_time: float | None = None
    ) -> None:
        """Start hosting a handed-off camera from ``resume_time`` onward.

        Arrivals inside the migration blackout ``(detached_at, resume_time)``
        are charged to this node as generated-and-rejected (the explicit
        migration cost), plus a ``frames.migration_blackout`` counter.
        """
        if not self._started:
            raise RuntimeError("call start() before attach_camera()")
        camera_id = handoff.spec.camera_id
        if camera_id in self._active:
            raise ValueError(f"Camera {camera_id!r} is already active on this node")
        resume_time = resume_time if resume_time is not None else now
        if resume_time < handoff.detached_at:
            raise ValueError("resume_time cannot precede the detach time")
        state = self._install_camera(
            handoff.spec,
            handoff.feed,
            from_time=resume_time,
            attached_at=now,
            after_time=handoff.detached_at,
            session_epoch=handoff.session_epoch + 1,
        )
        blackout = 0
        blackout_positives = 0
        for arrival_time, blackout_frame in handoff.feed.arrivals():
            if handoff.detached_at < arrival_time < resume_time:
                blackout += 1
                if state.truth is not None and state.truth[blackout_frame.index]:
                    blackout_positives += 1
        if blackout:
            state.generated += blackout
            state.rejected += blackout
            self.telemetry.counter("frames.generated").inc(blackout)
            self.telemetry.counter("frames.rejected").inc(blackout)
            self.telemetry.counter("frames.migration_blackout").inc(blackout)
            if blackout_positives:
                state.truth_positive_generated += blackout_positives
                self.telemetry.counter("accuracy.truth_positive_generated").inc(
                    blackout_positives
                )
            self._slo_lost(camera_id, blackout)
            if not state.counted_starved and state.scored == 0:
                self._starved += 1
                state.counted_starved = True
            self._record_starvation()

    # -- control actuators ---------------------------------------------------
    def hosted_cameras(self) -> list[str]:
        """Currently active camera ids, in hosting order."""
        return list(self._active)

    def set_drop_policy(self, camera_id: str, policy: DropPolicy) -> None:
        """Switch one camera's queue overload policy live."""
        key = self._active.get(camera_id)
        if key is None:
            raise ValueError(f"Camera {camera_id!r} is not active on this node")
        self._states[key].queue.set_policy(policy)

    def ensure_admission(self) -> AdmissionController:
        """The node's admission controller, created loose if absent."""
        if self.admission is None:
            self.admission = AdmissionController(_UNBOUNDED_IN_FLIGHT)
        return self.admission

    def set_camera_quota(self, camera_id: str, quota: int | None) -> None:
        """Override (or with ``None`` restore) one camera's in-flight quota."""
        if camera_id not in self._active:
            raise ValueError(f"Camera {camera_id!r} is not active on this node")
        self.ensure_admission().set_camera_quota(camera_id, quota)

    def set_camera_threshold(
        self, camera_id: str, threshold: float, mc_name: str | None = None
    ) -> None:
        """Set one camera's live decision threshold (runtime threshold drift).

        Targets the camera's *primary* (first-installed) microclassifier by
        default — the same one :attr:`CameraLiveStats.threshold` reports, so
        the drift controller's feedback loop observes exactly what it
        actuates; a multi-MC session's other thresholds are untouched unless
        named explicitly.  Actuates on the camera's *session*, so the
        trained microclassifier a cache shares across sessions keeps its
        calibrated threshold; the override also does not survive a
        migration handoff (the destination builds a fresh session), which
        is deliberate — the drift controller re-derives it from the new
        stint's live densities.
        """
        key = self._active.get(camera_id)
        if key is None:
            raise ValueError(f"Camera {camera_id!r} is not active on this node")
        session = self._states[key].session
        if mc_name is None:
            mc_name = session.microclassifiers[0].name
        session.set_threshold(threshold, mc_name=mc_name)
        self.telemetry.gauge(f"accuracy.threshold.{camera_id}").set(threshold)

    def camera_service_seconds(self, camera_id: str) -> float:
        """Simulated per-frame service time of one active camera."""
        key = self._active.get(camera_id)
        if key is None:
            raise ValueError(f"Camera {camera_id!r} is not active on this node")
        return self.workers.service_seconds_for(self._states[key].schedule)

    def camera_live_stats(self) -> dict[str, CameraLiveStats]:
        """Point-in-time stats for every active camera (id order)."""
        stats: dict[str, CameraLiveStats] = {}
        for camera_id in sorted(self._active):
            state = self._states[self._active[camera_id]]
            stats[camera_id] = CameraLiveStats(
                camera_id=camera_id,
                scenario=state.spec.scenario,
                resolution=state.spec.resolution,
                frame_rate=state.spec.frame_rate,
                generated=state.generated,
                scored=state.scored,
                matched=state.matched,
                rejected=state.rejected,
                dropped=state.queue.stats.dropped,
                queue_depth=state.queue.depth,
                service_seconds=self.workers.service_seconds_for(state.schedule),
                drop_policy=state.queue.policy,
                truth_known=state.truth is not None,
                truth_positive_generated=state.truth_positive_generated,
                truth_positive_scored=state.truth_positive_scored,
                estimated_upload_bits=state.estimated_upload_bits,
                threshold=state.session.current_threshold(),
                attached_at=state.attached_at,
                slo=(self.slo.camera_status(camera_id) if self.slo is not None else None),
            )
        return stats

    # -- event handlers ------------------------------------------------------
    def _on_arrival(self, state: _CameraState, frame: Frame, now: float) -> None:
        counters = self.telemetry
        camera_id = state.spec.camera_id
        state.generated += 1
        if not state.counted_starved and state.scored == 0:
            self._starved += 1
            state.counted_starved = True
        counters.counter("frames.generated").inc()
        if state.truth is not None and state.truth[frame.index]:
            state.truth_positive_generated += 1
            counters.counter("accuracy.truth_positive_generated").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.begin_frame(camera_id, frame.index, now)
        if self.admission is not None and not self.admission.try_admit(camera_id):
            state.rejected += 1
            counters.counter("frames.rejected").inc()
            if tracer is not None:
                tracer.record_admission(camera_id, frame.index, False)
                tracer.record_drop(camera_id, frame.index, "admission_rejected", now)
            self._slo_lost(camera_id, 1)
            self._record_starvation()
            return
        if self.admission is not None:
            state.holding.add(id(frame))
            if tracer is not None:
                tracer.record_admission(camera_id, frame.index, True)
        outcome = state.queue.offer(frame, now=now)
        if outcome.admitted:
            state.arrival_times[id(frame)] = now
            counters.counter("frames.admitted").inc()
            if outcome.evicted is not None:
                state.arrival_times.pop(id(outcome.evicted), None)
                counters.counter("frames.dropped_oldest").inc()
                self._release_admission(state, outcome.evicted)
                self._slo_lost(camera_id, 1)
        elif outcome.blocked:
            state.source_backlog.append(frame)
            state.arrival_times[id(frame)] = now
            state.blocked += 1
            counters.counter("frames.blocked").inc()
        else:
            counters.counter("frames.dropped_newest").inc()
            self._release_admission(state, frame)
            self._slo_lost(camera_id, 1)
        self._record_depth(state)
        self._record_starvation()

    def _release_admission(self, state: _CameraState, frame: Frame) -> None:
        """Release the admission slot a frame holds, if it holds one."""
        if self.admission is None:
            return
        if id(frame) in state.holding:
            state.holding.discard(id(frame))
            self.admission.release(state.spec.camera_id)

    def _slo_lost(self, camera_id: str, count: int) -> None:
        """Charge ``count`` lost frames against a camera's freshness budget."""
        if self.slo is None or count <= 0:
            return
        self.slo.record_lost(camera_id, count)
        self.telemetry.counter("slo.freshness_violations").inc(count)

    def _on_completion(self, state: _CameraState, frame: Frame, now: float) -> None:
        counters = self.telemetry
        if self.tracer is not None:
            self.tracer.record_completion(state.spec.camera_id, frame.index, now)
        if self.batched is not None:
            self._pending_completions.pop((state.key, frame.index), None)
            if not self.batched.has(state.session, frame):
                # Batch this frame with every other frame still in flight on
                # the worker pool: their completion events are already on the
                # heap, so all of them will be pushed regardless of what
                # happens between now and then — prefetching their (frozen-
                # weight) activations early is observationally invisible.
                entries = [(state.session, frame)]
                entries.extend(
                    (self._states[key].session, pending)
                    for (key, _), pending in self._pending_completions.items()
                )
                self.batched.prefetch(entries)
            self.batched.prime(state.session, frame)
        update = state.session.push(frame)
        state.completion_times.append(now)
        state.scored += 1
        if state.scored == 1 and state.counted_starved:
            self._starved -= 1
            state.counted_starved = False
        state.matched += len(update.new_matches)
        state.events += len(update.closed_events)
        counters.counter("frames.scored").inc()
        if state.truth is not None and state.truth[frame.index]:
            state.truth_positive_scored += 1
            counters.counter("accuracy.truth_positive_scored").inc()
        if update.new_matches:
            counters.counter("frames.matched").inc(len(update.new_matches))
            # Live uplink-demand estimate: a matched frame will eventually
            # upload ~bitrate/frame_rate bits (the codec targets the MC's
            # upload bitrate at the camera's frame rate).  Tracked per camera
            # and node-wide so uplink-aware control can see upload pressure
            # building *during* the run, not just in the end-of-run replay.
            estimate = sum(
                state.upload_bits_per_match[mc_name] for mc_name, _ in update.new_matches
            )
            state.estimated_upload_bits += estimate
            counters.counter("uplink.estimated_bits").inc(estimate)
        if update.closed_events:
            counters.counter("events.closed").inc(len(update.closed_events))
        if update.closed_records:
            self._collect_records(state, update.closed_records, now)
        self._release_admission(state, frame)
        self._drain_source_backlog(state, now)
        self._record_starvation()

    def _collect_records(
        self, state: _CameraState, records: Sequence[EventRecord], closed_at: float
    ) -> None:
        """Stamp closed records with their close time, collect, and publish.

        Collection into :attr:`event_records` is unconditional; the publish
        hook additionally applies the per-(camera, MC) cooldown.  All
        publish-side telemetry is gated on a sink being attached so a
        sink-less runtime emits exactly the pre-delivery-plane counters.
        """
        camera_id = state.spec.camera_id
        cooldown = self.config.event_cooldown_seconds
        for record in records:
            stamped = replace(record, closed_at=closed_at)
            state.records_consumed += 1
            self.event_records.append(stamped)
            if self.event_sink is None:
                continue
            pair = (camera_id, stamped.mc_name)
            last = self._last_event_publish.get(pair)
            if cooldown > 0.0 and last is not None and stamped.closed_at - last < cooldown:
                self.telemetry.counter("events.suppressed").inc()
                continue
            self._last_event_publish[pair] = stamped.closed_at
            self.event_sink(stamped)

    def _drain_source_backlog(self, state: _CameraState, now: float) -> None:
        """Move blocked frames into the queue as capacity frees (BLOCK policy)."""
        while state.source_backlog and not state.queue.is_full:
            frame = state.source_backlog.pop(0)
            outcome = state.queue.offer(frame, now=now)
            if not outcome.admitted:  # pragma: no cover - queue was checked not-full
                state.source_backlog.insert(0, frame)
                break
            # The wait clock keeps running from the original arrival time,
            # which _on_arrival recorded when the frame was blocked.
            state.arrival_times.setdefault(id(frame), now)
            self.telemetry.counter("frames.admitted").inc()
        self._record_depth(state)

    def _dispatch(self, now: float) -> None:
        """Hand queued frames to idle workers, round-robin across cameras."""
        keys = self._dispatch_keys
        while True:
            worker = self.workers.idle_worker(now)
            if worker is None:
                break
            chosen: _CameraState | None = None
            for offset in range(len(keys)):
                state = self._states[keys[(self._round_robin + offset) % len(keys)]]
                if state.queue.depth > 0:
                    chosen = state
                    self._round_robin = (self._round_robin + offset + 1) % len(keys)
                    break
            if chosen is None:
                break
            frame = chosen.queue.pop()
            arrival = chosen.arrival_times.pop(id(frame), now)
            wait = now - arrival
            chosen.wait_total += wait
            chosen.wait_count += 1
            self.telemetry.histogram("latency.queue_wait_seconds").observe(wait)
            end_time = self.workers.start_frame(worker, now, chosen.schedule)
            camera_id = chosen.spec.camera_id
            if self.slo is not None:
                latency = end_time - arrival
                fresh, within = self.slo.record_scored(camera_id, latency)
                self.telemetry.histogram("latency.e2e_seconds").observe(latency)
                if not fresh:
                    self.telemetry.counter("slo.freshness_violations").inc()
                if not within:
                    self.telemetry.counter("slo.latency_violations").inc()
            if self.tracer is not None and self.tracer.has_trace(camera_id, frame.index):
                self.tracer.record_dispatch(
                    camera_id,
                    frame.index,
                    now,
                    self.workers.phase_intervals(now, chosen.schedule),
                )
            heapq.heappush(self._heap, (end_time, self._sequence, "completion", chosen.key, frame))
            self._sequence += 1
            if self.batched is not None:
                self._pending_completions[(chosen.key, frame.index)] = frame
            self._drain_source_backlog(chosen, now)
            self._record_depth(chosen)

    def _record_depth(self, state: _CameraState) -> None:
        self.telemetry.gauge(f"queue.depth.{state.spec.camera_id}").set(state.queue.depth)
        if self.admission is not None:
            self.telemetry.gauge("admission.in_flight").set(self.admission.in_flight)
            if self.admission.per_camera_quota is not None or self.admission.quota_overrides:
                self.telemetry.gauge("admission.rejected_over_quota").set(
                    self.admission.rejected_over_quota
                )

    def _record_starvation(self) -> None:
        """Cameras whose feed has started but which have scored nothing yet."""
        self.telemetry.gauge("fairness.starved_cameras").set(self._starved)

    # -- reporting -----------------------------------------------------------
    def finalize(self) -> FleetReport:
        """Flush every session, replay uploads, and assemble the report."""
        if not self._started:
            raise RuntimeError("call start() (or run()) before finalize()")
        if self._heap:
            raise RuntimeError("finalize() with pending events; advance_until() first")
        if self._finalized:
            raise RuntimeError("finalize() may only be called once")
        self._finalized = True
        hosted_ends = [
            s.detached_at if s.detached_at is not None else s.spec.start_time + s.spec.duration
            for s in self._states.values()
        ]
        sim_duration = max([self._last_event_time, *hosted_ends])

        uploads: list[tuple[float, str, int, float]] = []
        reports: dict[str, CameraReport] = {}
        accuracies: dict[str, CameraAccuracy] = {}
        total_events = 0
        total_matched = 0
        for key, state in self._states.items():
            spec = state.spec
            result = state.session.finish()
            if state.truth is not None:
                stint = self._stint_accuracy(state, result)
                previous = accuracies.get(spec.camera_id)
                accuracies[spec.camera_id] = (
                    stint if previous is None else previous.merged_with(stint)
                )
            # Events finalized by the flush were not seen by _on_completion.
            state.events = sum(len(r.events) for r in result.per_mc.values())
            state.matched = sum(r.num_matched_frames for r in result.per_mc.values())
            # ... nor were their records: collect the flush-closed tail.  A
            # tail event closes when its stint ends, but never before its
            # last frame finished scoring (under overload, scoring lags).
            stint_end = (
                state.detached_at
                if state.detached_at is not None
                else spec.start_time + spec.duration
            )
            for tail in state.session.closed_records[state.records_consumed :]:
                closed_at = max(stint_end, state.completion_times[tail.end - 1])
                self._collect_records(state, [tail], closed_at)
            camera_bits = 0.0
            for mc_result in result.per_mc.values():
                if mc_result.encoded is None:
                    continue
                session = state.session
                bits_by_position = {
                    pos: compressed.bits
                    for pos, compressed in zip(
                        self._matched_positions(mc_result), mc_result.encoded.frames
                    )
                }
                for event in mc_result.events:
                    bits = sum(
                        bits_by_position.get(pos, 0.0) for pos in range(event.start, event.end)
                    )
                    # An event cannot be uploaded before its last frame was
                    # both captured and actually scored on the node (under
                    # overload, scoring lags capture by the queue wait).
                    last_timestamp = session.timestamps[event.end - 1]
                    captured_at = spec.start_time + last_timestamp + 1.0 / spec.frame_rate
                    scored_at = state.completion_times[event.end - 1]
                    available_at = max(captured_at, scored_at)
                    description = f"{key}/{mc_result.mc_name}/event{event.event_id}"
                    uploads.append((available_at, description, event.event_id, bits))
                    if self.tracer is not None:
                        for pos in range(event.start, event.end):
                            self.tracer.register_upload(
                                description,
                                spec.camera_id,
                                session.source_indices[pos],
                                available_at,
                            )
                    camera_bits += bits
            total_events += state.events
            total_matched += state.matched
            stats = state.queue.stats
            report = CameraReport(
                camera_id=spec.camera_id,
                scenario=spec.scenario,
                resolution=spec.resolution,
                frame_rate=spec.frame_rate,
                frames_generated=state.generated,
                frames_admitted=stats.admitted,
                frames_dropped_oldest=stats.dropped_oldest,
                frames_dropped_newest=stats.dropped_newest,
                frames_rejected=state.rejected,
                frames_blocked=state.blocked,
                frames_scored=state.scored,
                matched_frames=state.matched,
                events=state.events,
                queue_high_water=stats.high_water,
                mean_queue_wait_seconds=(
                    state.wait_total / state.wait_count if state.wait_count else 0.0
                ),
                uploaded_bits=camera_bits,
            )
            existing = reports.get(spec.camera_id)
            if existing is None:
                reports[spec.camera_id] = report
            else:
                reports[spec.camera_id] = self._merge_camera_reports(
                    existing, report, state.wait_total, state.wait_count
                )

        ordered = sorted(uploads, key=lambda u: (u[0], u[1]))
        if self.defer_uploads:
            # The shared-link replay sets the uplink gauges (and patches the
            # report) once it has drained every node's uploads.
            self.pending_uploads = [(t, description, bits) for t, description, _, bits in ordered]
            total_bits = sum(bits for _, _, _, bits in ordered)
            backlog = 0.0
            utilization = 0.0
        else:
            for available_at, description, _, bits in ordered:
                transfer = self.uplink.upload(
                    bits, available_at=available_at, description=description
                )
                if self.tracer is not None:
                    self.tracer.complete_upload(
                        description, transfer.start_time, transfer.end_time
                    )
            total_bits = self.uplink.total_bits
            backlog = self.uplink.backlog_seconds(sim_duration)
            utilization = self.uplink.utilization(sim_duration)
            self.telemetry.gauge("uplink.backlog_seconds").set(backlog)
            self.telemetry.gauge("uplink.utilization").set(utilization)

        counters = self.telemetry.counters()
        generated = int(counters.get("frames.generated", 0))
        scored = int(counters.get("frames.scored", 0))
        dropped = int(
            counters.get("frames.dropped_oldest", 0) + counters.get("frames.dropped_newest", 0)
        )
        rejected = int(counters.get("frames.rejected", 0))
        return FleetReport(
            cameras=reports,
            sim_duration=sim_duration,
            frames_generated=generated,
            frames_scored=scored,
            frames_dropped=dropped,
            frames_rejected=rejected,
            events_detected=total_events,
            matched_frames=total_matched,
            achieved_fps=scored / sim_duration if sim_duration > 0 else 0.0,
            offered_fps=generated / sim_duration if sim_duration > 0 else 0.0,
            worker_utilization=self.workers.utilization(sim_duration),
            uplink_utilization=utilization,
            uplink_backlog_seconds=backlog,
            total_uploaded_bits=total_bits,
            telemetry=self.telemetry.snapshot(),
            accuracy=(
                FleetAccuracy(
                    task=self.config.accuracy_task,
                    cameras=dict(sorted(accuracies.items())),
                )
                if self.config.accuracy_task is not None
                else None
            ),
            slo=(self.slo.report() if self.slo is not None else None),
        )

    def _stint_accuracy(self, state: _CameraState, result) -> CameraAccuracy:
        """Score one hosting stint's decisions against the camera's truth.

        Frames the stint never scored (shed, or hosted elsewhere) predict
        negative here; merging stints ORs the prediction vectors, so a
        migrated camera is scored over its full feed exactly once.
        """
        predictions = predictions_from_result(
            result, state.session.source_indices, state.spec.num_frames
        )
        return CameraAccuracy(
            camera_id=state.spec.camera_id,
            scenario=state.spec.scenario,
            task=self.config.accuracy_task,
            truth=state.truth,
            predictions=predictions,
            frames_generated=state.generated,
            frames_scored=state.scored,
        )

    @staticmethod
    def _merge_camera_reports(
        first: CameraReport, second: CameraReport, wait_total: float, wait_count: int
    ) -> CameraReport:
        """Combine two stints of the same camera on this node."""
        first_waits = first.mean_queue_wait_seconds * first.frames_scored
        combined_count = first.frames_scored + wait_count
        return CameraReport(
            camera_id=first.camera_id,
            scenario=first.scenario,
            resolution=first.resolution,
            frame_rate=first.frame_rate,
            frames_generated=first.frames_generated + second.frames_generated,
            frames_admitted=first.frames_admitted + second.frames_admitted,
            frames_dropped_oldest=first.frames_dropped_oldest + second.frames_dropped_oldest,
            frames_dropped_newest=first.frames_dropped_newest + second.frames_dropped_newest,
            frames_rejected=first.frames_rejected + second.frames_rejected,
            frames_blocked=first.frames_blocked + second.frames_blocked,
            frames_scored=first.frames_scored + second.frames_scored,
            matched_frames=first.matched_frames + second.matched_frames,
            events=first.events + second.events,
            queue_high_water=max(first.queue_high_water, second.queue_high_water),
            mean_queue_wait_seconds=(
                (first_waits + wait_total) / combined_count if combined_count else 0.0
            ),
            uploaded_bits=first.uploaded_bits + second.uploaded_bits,
        )

    @staticmethod
    def _matched_positions(mc_result) -> list[int]:
        """Stream positions of the matched frames, in matched order."""
        return [int(i) for i in mc_result.matched_frame_indices]
