"""Camera-to-node placement policies for multi-node fleet sharding.

When a camera fleet outgrows one edge node, the cluster must decide which
cameras each node hosts.  That decision drives three resources at once:

* **compute** — a node's worker pool saturates at an aggregate frame rate;
  hosting too many high-rate cameras means queueing and shed load;
* **memory** — nodes share one base DNN per distinct camera resolution (the
  FilterForward computation-sharing premise), so co-locating same-resolution
  cameras minimizes resident models;
* **uplink** — event-dense scenarios upload more bits against the node's
  share of the datacenter link.

A :class:`PlacementPolicy` maps a camera list onto ``num_nodes`` shards.
Three concrete policies ship here:

* :class:`RoundRobinPlacement` — cameras are dealt to nodes in arrival
  order, the baseline a naive deployment uses;
* :class:`LoadAwarePlacement` — greedy longest-processing-time bin-packing
  on :func:`estimate_camera_cost` (an analytic ops/s estimate from
  :class:`~repro.perf.cost_model.CostModel` scaled by frame rate and
  scenario event density);
* :class:`ResolutionAwarePlacement` — keeps each resolution's cameras on as
  few nodes as possible (fewest resident base DNNs), balancing estimated
  load across nodes only at the granularity of resolution groups;
* :class:`DistrictAwarePlacement` — keeps each district's cameras (the
  ``d<district>-`` prefix :func:`~repro.fleet.camera.generate_fleet` assigns)
  on as few nodes as possible, the locality grouping a kilocamera citywide
  deployment wants: one district's correlated load surges stay on its nodes
  and district-scope queries touch few shards.

All policies are deterministic: the same camera list always produces the
same shards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache
from typing import Callable, Sequence

from repro.fleet.camera import SCENARIOS, CameraSpec, district_of
from repro.perf.cost_model import CostModel

__all__ = [
    "estimate_camera_cost",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "LoadAwarePlacement",
    "ResolutionAwarePlacement",
    "DistrictAwarePlacement",
    "PLACEMENT_POLICIES",
    "make_placement_policy",
]

# Weight of scenario event density in the cost estimate: matched frames are
# re-encoded and uploaded, so event-heavy feeds cost more than their frame
# rate alone suggests.
_EVENT_DENSITY_WEIGHT = 0.5


@lru_cache(maxsize=4096)
def estimate_camera_cost(spec: CameraSpec, alpha: float = 0.125) -> float:
    """Analytic per-camera load estimate in multiply-adds per second.

    One frame costs a base-DNN pass plus one localized microclassifier at the
    camera's resolution (from :class:`~repro.perf.cost_model.CostModel`);
    multiplying by the frame rate gives ops/s.  The scenario's object spawn
    rates (scaled by the camera's ``event_rate_scale``) add a surcharge for
    event-driven work — smoothing, re-encoding, and upload — so a retail
    entrance at 15 fps outranks a quiet street at the same rate.
    """
    model = CostModel(resolution=spec.resolution, alpha=alpha)
    per_frame_ops = model.base_dnn_cost() + model.mc_cost("localized")
    preset = SCENARIOS[spec.scenario]
    event_density = spec.event_rate_scale * sum(
        float(preset[k])
        for k in ("pedestrian_rate", "red_pedestrian_rate", "car_rate", "cyclist_rate")
    )
    return spec.frame_rate * per_frame_ops * (1.0 + _EVENT_DENSITY_WEIGHT * event_density)


class PlacementPolicy(ABC):
    """Deterministic assignment of cameras to edge nodes."""

    name: str = "abstract"

    def place(self, cameras: Sequence[CameraSpec], num_nodes: int) -> list[list[CameraSpec]]:
        """Partition ``cameras`` into ``num_nodes`` non-empty shards."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if len(cameras) < num_nodes:
            raise ValueError(
                f"Cannot place {len(cameras)} cameras on {num_nodes} nodes: "
                "every node needs at least one camera"
            )
        shards = self._place(list(cameras), num_nodes)
        if len(shards) != num_nodes:
            raise RuntimeError(
                f"{type(self).__name__} returned {len(shards)} shards for {num_nodes} nodes"
            )
        empty = [n for n, shard in enumerate(shards) if not shard]
        if empty:
            raise RuntimeError(
                f"{type(self).__name__} left nodes {empty} without cameras "
                "(degenerate cost function?)"
            )
        placed = [spec.camera_id for shard in shards for spec in shard]
        if sorted(placed) != sorted(spec.camera_id for spec in cameras):
            raise RuntimeError(f"{type(self).__name__} lost or duplicated cameras")
        return shards

    @abstractmethod
    def _place(self, cameras: list[CameraSpec], num_nodes: int) -> list[list[CameraSpec]]:
        """Policy-specific partitioning (inputs already validated)."""


class RoundRobinPlacement(PlacementPolicy):
    """Deal cameras to nodes cyclically in list order (the naive baseline)."""

    name = "round_robin"

    def _place(self, cameras: list[CameraSpec], num_nodes: int) -> list[list[CameraSpec]]:
        shards: list[list[CameraSpec]] = [[] for _ in range(num_nodes)]
        for i, spec in enumerate(cameras):
            shards[i % num_nodes].append(spec)
        return shards


class LoadAwarePlacement(PlacementPolicy):
    """Greedy LPT bin-packing on the analytic per-camera cost estimate.

    Cameras are sorted by :func:`estimate_camera_cost` descending and each is
    assigned to the currently least-loaded node.  The classic LPT guarantee
    applies: the spread between the heaviest and lightest node never exceeds
    one camera's cost.
    """

    name = "load_aware"

    def __init__(self, cost_fn: Callable[[CameraSpec], float] | None = None) -> None:
        self.cost_fn = cost_fn or estimate_camera_cost

    def _place(self, cameras: list[CameraSpec], num_nodes: int) -> list[list[CameraSpec]]:
        shards: list[list[CameraSpec]] = [[] for _ in range(num_nodes)]
        loads = [0.0] * num_nodes
        costs = {spec.camera_id: self.cost_fn(spec) for spec in cameras}
        # Ties broken by camera_id so equal-cost fleets still place deterministically.
        ranked = sorted(cameras, key=lambda s: (-costs[s.camera_id], s.camera_id))
        for spec in ranked:
            target = min(range(num_nodes), key=lambda n: (loads[n], n))
            shards[target].append(spec)
            loads[target] += costs[spec.camera_id]
        return shards

    def node_loads(self, shards: Sequence[Sequence[CameraSpec]]) -> list[float]:
        """Estimated aggregate load of each shard (for reports and tests)."""
        return [sum(self.cost_fn(spec) for spec in shard) for shard in shards]


class ResolutionAwarePlacement(PlacementPolicy):
    """Co-locate same-resolution cameras to minimize resident base DNNs.

    Resolution groups are placed whole (largest estimated load first) onto
    the least-loaded node; a group is split only when a node would otherwise
    sit empty.  The result hosts at most ``num_nodes + num_resolutions - 1``
    distinct ``(node, resolution)`` pairs — i.e. nearly every node runs a
    single shared base DNN.
    """

    name = "resolution_aware"

    def __init__(self, cost_fn: Callable[[CameraSpec], float] | None = None) -> None:
        self.cost_fn = cost_fn or estimate_camera_cost

    def _place(self, cameras: list[CameraSpec], num_nodes: int) -> list[list[CameraSpec]]:
        costs = {spec.camera_id: self.cost_fn(spec) for spec in cameras}
        groups: dict[tuple[int, int], list[CameraSpec]] = {}
        for spec in cameras:
            groups.setdefault(spec.resolution, []).append(spec)
        ranked = sorted(
            groups.values(),
            key=lambda g: (-sum(costs[s.camera_id] for s in g), g[0].camera_id),
        )
        shards: list[list[CameraSpec]] = [[] for _ in range(num_nodes)]
        loads = [0.0] * num_nodes
        for group in ranked:
            target = min(range(num_nodes), key=lambda n: (loads[n], n))
            shards[target].extend(group)
            loads[target] += sum(costs[s.camera_id] for s in group)
        # Feed starved nodes by splitting the largest shard; the donated
        # cameras share one resolution, so each split adds exactly one
        # (node, resolution) pair.
        for target in range(num_nodes):
            while not shards[target]:
                donor = max(range(num_nodes), key=lambda n: (len(shards[n]), -n))
                donor_shard = sorted(shards[donor], key=lambda s: s.camera_id)
                resolution = donor_shard[-1].resolution
                movable = [s for s in donor_shard if s.resolution == resolution]
                moved = movable[len(movable) // 2 :] if len(movable) > 1 else movable[-1:]
                moved_ids = {s.camera_id for s in moved}
                moved_cost = sum(costs[s.camera_id] for s in moved)
                shards[donor] = [s for s in shards[donor] if s.camera_id not in moved_ids]
                shards[target].extend(moved)
                loads[donor] -= moved_cost
                loads[target] += moved_cost
        return shards


class DistrictAwarePlacement(PlacementPolicy):
    """Co-locate each district's cameras (locality-first LPT on districts).

    District groups (from the camera id's ``d<district>-`` prefix; cameras
    without one each form their own group) are placed whole onto the
    least-loaded node, largest estimated load first, then starved nodes are
    fed by splitting the camera-richest shard along its largest district.
    Whole districts mean a district's spatially correlated load surge lands
    on — and is shed or migrated from — a small fixed set of nodes, and the
    hierarchy's per-node aggregates stay meaningful per-district summaries.
    """

    name = "district_aware"

    def __init__(self, cost_fn: Callable[[CameraSpec], float] | None = None) -> None:
        self.cost_fn = cost_fn or estimate_camera_cost

    def _place(self, cameras: list[CameraSpec], num_nodes: int) -> list[list[CameraSpec]]:
        costs = {spec.camera_id: self.cost_fn(spec) for spec in cameras}
        groups: dict[str, list[CameraSpec]] = {}
        for spec in cameras:
            key = district_of(spec.camera_id) or spec.camera_id
            groups.setdefault(key, []).append(spec)
        ranked = sorted(
            groups.values(),
            key=lambda g: (-sum(costs[s.camera_id] for s in g), g[0].camera_id),
        )
        shards: list[list[CameraSpec]] = [[] for _ in range(num_nodes)]
        loads = [0.0] * num_nodes
        for group in ranked:
            target = min(range(num_nodes), key=lambda n: (loads[n], n))
            shards[target].extend(group)
            loads[target] += sum(costs[s.camera_id] for s in group)
        # Feed starved nodes from the camera-richest shard's largest
        # district; the donated cameras share one district, so each split
        # fragments exactly one locality group.
        for target in range(num_nodes):
            while not shards[target]:
                donor = max(range(num_nodes), key=lambda n: (len(shards[n]), -n))
                by_district: dict[str, list[CameraSpec]] = {}
                for spec in shards[donor]:
                    key = district_of(spec.camera_id) or spec.camera_id
                    by_district.setdefault(key, []).append(spec)
                largest = max(
                    by_district.values(), key=lambda g: (len(g), g[0].camera_id)
                )
                movable = sorted(largest, key=lambda s: s.camera_id)
                moved = movable[len(movable) // 2 :] if len(movable) > 1 else movable[-1:]
                moved_ids = {s.camera_id for s in moved}
                moved_cost = sum(costs[s.camera_id] for s in moved)
                shards[donor] = [s for s in shards[donor] if s.camera_id not in moved_ids]
                shards[target].extend(moved)
                loads[donor] -= moved_cost
                loads[target] += moved_cost
        return shards


PLACEMENT_POLICIES: dict[str, type[PlacementPolicy]] = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    LoadAwarePlacement.name: LoadAwarePlacement,
    ResolutionAwarePlacement.name: ResolutionAwarePlacement,
    DistrictAwarePlacement.name: DistrictAwarePlacement,
}


def make_placement_policy(policy: str | PlacementPolicy, **kwargs) -> PlacementPolicy:
    """Resolve a policy name (or pass through an instance) to a policy object."""
    if isinstance(policy, PlacementPolicy):
        return policy
    try:
        return PLACEMENT_POLICIES[policy](**kwargs)
    except KeyError:
        raise ValueError(
            f"Unknown placement policy {policy!r}; expected one of {sorted(PLACEMENT_POLICIES)}"
        ) from None
