"""Multi-node fleet sharding: a cluster of edge nodes behind one uplink.

The single-node :class:`~repro.fleet.runtime.FleetRuntime` answers "what does
*one* constrained box do with 32 cameras"; this module answers the next
question the edge-video-analytics literature asks — how a *cluster* of such
boxes shares a camera fleet and a common datacenter uplink.

:class:`ShardedFleetRuntime` partitions the fleet with a
:class:`~repro.fleet.placement.PlacementPolicy`, gives every node its own
full runtime (bounded queues, admission control, worker pool, telemetry) and
a static slice of one :class:`~repro.edge.uplink.SharedUplink`, then runs
each node on the same deterministic simulated clock (all nodes share the
time origin; static uplink slicing keeps their simulations independent, so
running them in node order is exact, not an approximation).
:class:`ShardedFleetReport` aggregates the per-node
:class:`~repro.fleet.runtime.FleetReport`\\ s into cluster-level metrics:
cluster drop rate, shared-uplink utilization, per-camera fairness across the
whole fleet, and the load imbalance a placement policy leaves behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.edge.uplink import SharedUplink
from repro.fleet.camera import CameraSpec
from repro.fleet.placement import (
    PlacementPolicy,
    estimate_camera_cost,
    make_placement_policy,
)
from repro.fleet.runtime import (
    FleetConfig,
    FleetReport,
    FleetRuntime,
    PipelineFactory,
    default_pipeline_factory,
)
from repro.fleet.telemetry import TelemetryRegistry, jain_fairness

__all__ = [
    "ShardingConfig",
    "NodeReport",
    "ShardedFleetReport",
    "ShardedFleetRuntime",
]

UPLINK_ALLOCATIONS = ("equal", "by_cameras", "by_cost")


@dataclass(frozen=True)
class ShardingConfig:
    """Cluster-level knobs of the sharded fleet runtime."""

    num_nodes: int = 2
    placement: str = "round_robin"
    total_uplink_bps: float = 2_000_000.0
    uplink_allocation: str = "equal"
    node_config: FleetConfig = field(default_factory=FleetConfig)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.total_uplink_bps <= 0:
            raise ValueError("total_uplink_bps must be positive")
        if self.uplink_allocation not in UPLINK_ALLOCATIONS:
            raise ValueError(
                f"Unknown uplink_allocation {self.uplink_allocation!r}; "
                f"expected one of {UPLINK_ALLOCATIONS}"
            )


@dataclass
class NodeReport:
    """One edge node's end-of-run accounting within the cluster."""

    node_id: str
    camera_ids: list[str]
    estimated_cost: float
    uplink_allocation_bps: float
    report: FleetReport

    @property
    def num_cameras(self) -> int:
        """Cameras this node hosted."""
        return len(self.camera_ids)

    @property
    def queue_wait_p99(self) -> float:
        """99th-percentile queue wait on this node in seconds."""
        waits = self.report.telemetry.get("latency.queue_wait_seconds")
        if isinstance(waits, dict):
            return float(waits.get("p99", 0.0))
        return 0.0

    @property
    def resolutions(self) -> set[tuple[int, int]]:
        """Distinct camera resolutions resident on this node."""
        return {c.resolution for c in self.report.cameras.values()}


@dataclass
class ShardedFleetReport:
    """Aggregate outcome of one sharded cluster run."""

    nodes: list[NodeReport]
    placement_policy: str
    total_uplink_bps: float
    total_uplink_bits: float
    sim_duration: float

    @property
    def num_nodes(self) -> int:
        """Edge nodes in the cluster."""
        return len(self.nodes)

    @property
    def num_cameras(self) -> int:
        """Cameras across the whole cluster."""
        return sum(n.num_cameras for n in self.nodes)

    @property
    def frames_generated(self) -> int:
        """Frames offered across all nodes."""
        return sum(n.report.frames_generated for n in self.nodes)

    @property
    def frames_scored(self) -> int:
        """Frames scored across all nodes."""
        return sum(n.report.frames_scored for n in self.nodes)

    @property
    def frames_dropped(self) -> int:
        """Frames lost to queue drops across all nodes."""
        return sum(n.report.frames_dropped for n in self.nodes)

    @property
    def frames_rejected(self) -> int:
        """Frames rejected by admission control across all nodes."""
        return sum(n.report.frames_rejected for n in self.nodes)

    @property
    def events_detected(self) -> int:
        """Events detected across all nodes."""
        return sum(n.report.events_detected for n in self.nodes)

    @property
    def drop_rate(self) -> float:
        """Cluster-wide fraction of generated frames shed."""
        generated = self.frames_generated
        if generated == 0:
            return 0.0
        return (self.frames_dropped + self.frames_rejected) / generated

    @property
    def uplink_utilization(self) -> float:
        """Fraction of the shared datacenter link consumed over the run."""
        if self.sim_duration <= 0:
            return 0.0
        return self.total_uplink_bits / (self.total_uplink_bps * self.sim_duration)

    @property
    def worst_node_queue_wait_p99(self) -> float:
        """Largest per-node queue-wait p99 in seconds (the placement's tail)."""
        return max((n.queue_wait_p99 for n in self.nodes), default=0.0)

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over per-camera scored fractions, cluster-wide."""
        return jain_fairness(
            c.frames_scored / c.frames_generated
            for n in self.nodes
            for c in n.report.cameras.values()
            if c.frames_generated > 0
        )

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean offered frame rate across nodes (1.0 = perfectly even)."""
        offered = [n.report.offered_fps for n in self.nodes]
        mean = sum(offered) / len(offered) if offered else 0.0
        if mean == 0.0:
            return 1.0
        return max(offered) / mean

    @property
    def resident_base_dnns(self) -> int:
        """Total ``(node, resolution)`` pairs — base-DNN instances the cluster holds."""
        return sum(len(n.resolutions) for n in self.nodes)

    def summary(self) -> str:
        """A multi-line human-readable cluster summary."""
        lines = [
            f"cluster: {self.num_nodes} nodes, {self.num_cameras} cameras, "
            f"placement={self.placement_policy}",
            f"scored {self.frames_scored}/{self.frames_generated} frames "
            f"(drop rate {self.drop_rate:.1%}) | events {self.events_detected}",
            f"shared uplink {self.uplink_utilization:.1%} of "
            f"{self.total_uplink_bps / 1e6:.2f} Mbps | "
            f"fairness {self.fairness_index:.3f} (Jain)",
            f"worst node queue-wait p99 {self.worst_node_queue_wait_p99 * 1e3:.0f} ms | "
            f"load imbalance {self.load_imbalance:.2f}x | "
            f"resident base DNNs {self.resident_base_dnns}",
        ]
        for node in self.nodes:
            report = node.report
            lines.append(
                f"  {node.node_id}: {node.num_cameras} cams, "
                f"scored {report.frames_scored}/{report.frames_generated} "
                f"({report.drop_rate:.1%} shed), "
                f"wait p99 {node.queue_wait_p99 * 1e3:.0f} ms, "
                f"uplink {node.uplink_allocation_bps / 1e3:.0f} kbps"
            )
        return "\n".join(lines)


class ShardedFleetRuntime:
    """Runs a camera fleet across several edge nodes behind one uplink."""

    def __init__(
        self,
        cameras: Sequence[CameraSpec],
        config: ShardingConfig | None = None,
        pipeline_factory: PipelineFactory | None = None,
        placement: PlacementPolicy | None = None,
    ) -> None:
        self.config = config or ShardingConfig()
        ids = [spec.camera_id for spec in cameras]
        duplicates = {i for i in ids if ids.count(i) > 1}
        if duplicates:
            raise ValueError(f"Duplicate camera ids: {sorted(duplicates)}")
        self.policy = (
            placement if placement is not None else make_placement_policy(self.config.placement)
        )
        self.shards = self.policy.place(cameras, self.config.num_nodes)
        self.node_ids = [f"node{i}" for i in range(self.config.num_nodes)]
        # Cost the shards with the same estimate the policy balanced them by,
        # so by_cost uplink slices and NodeReport.estimated_cost describe the
        # load the placement actually considered.
        cost_fn = getattr(self.policy, "cost_fn", None) or estimate_camera_cost
        self._shard_costs = [sum(cost_fn(spec) for spec in shard) for shard in self.shards]
        self.shared_uplink = SharedUplink(
            self.config.total_uplink_bps, self._allocation_weights()
        )
        self.nodes: dict[str, FleetRuntime] = {}
        for node_id, shard in zip(self.node_ids, self.shards):
            self.nodes[node_id] = FleetRuntime(
                shard,
                # Each node is its own box: without an injected factory every
                # node builds (and shares internally) its own base DNNs.
                pipeline_factory=pipeline_factory or default_pipeline_factory(),
                config=self.config.node_config,
                telemetry=TelemetryRegistry(),
                uplink=self.shared_uplink.links[node_id],
            )

    def _allocation_weights(self) -> dict[str, float]:
        mode = self.config.uplink_allocation
        if mode == "equal":
            weights = [1.0] * len(self.shards)
        elif mode == "by_cameras":
            weights = [float(len(shard)) for shard in self.shards]
        else:  # by_cost
            weights = list(self._shard_costs)
        return dict(zip(self.node_ids, weights))

    def run(self) -> ShardedFleetReport:
        """Execute every node to completion and assemble the cluster report.

        Nodes only interact through their static uplink slices, so running
        them sequentially in node order reproduces the concurrent cluster
        exactly (and deterministically).
        """
        node_reports: list[NodeReport] = []
        for node_id, shard, cost in zip(self.node_ids, self.shards, self._shard_costs):
            report = self.nodes[node_id].run()
            node_reports.append(
                NodeReport(
                    node_id=node_id,
                    camera_ids=[spec.camera_id for spec in shard],
                    estimated_cost=cost,
                    uplink_allocation_bps=self.shared_uplink.links[node_id].capacity_bps,
                    report=report,
                )
            )
        sim_duration = max((n.report.sim_duration for n in node_reports), default=0.0)
        return ShardedFleetReport(
            nodes=node_reports,
            placement_policy=self.policy.name,
            total_uplink_bps=self.config.total_uplink_bps,
            total_uplink_bits=self.shared_uplink.total_bits,
            sim_duration=sim_duration,
        )
