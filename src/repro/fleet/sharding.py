"""Multi-node fleet sharding: a cluster of edge nodes behind one uplink.

The single-node :class:`~repro.fleet.runtime.FleetRuntime` answers "what does
*one* constrained box do with 32 cameras"; this module answers the next
question the edge-video-analytics literature asks — how a *cluster* of such
boxes shares a camera fleet and a common datacenter uplink.

:class:`ShardedFleetRuntime` partitions the fleet with a
:class:`~repro.fleet.placement.PlacementPolicy`, gives every node its own
full runtime (bounded queues, admission control, worker pool, telemetry) and
a share of one datacenter link, then runs each node on the same
deterministic simulated clock.  Two uplink regimes are supported:

* ``static`` — each node owns a fixed slice of a
  :class:`~repro.edge.uplink.SharedUplink`.  Nodes never interact, so
  running them sequentially in node order is exact.
* ``work_conserving`` — nodes defer their uploads and the cluster replays
  them, globally time-ordered across nodes, through a
  :class:`~repro.edge.uplink.WorkConservingUplink` (weighted GPS): idle
  per-node capacity flows to backlogged nodes, and the bits moved above a
  node's static guarantee are reported as reclaimed.

With a :class:`~repro.control.loop.ControlLoop` attached, all nodes advance
in lockstep between control ticks and the loop's controllers actuate the
cluster live — adaptive shedding, uplink re-weighting, camera migration —
with every decision logged and counted in the cluster report.  At kilocamera
scale the flat loop's cluster-side cost — every controller walking every
camera, plus an end-of-run merge of every node's full registry — grows as
O(cameras x metrics); attaching a
:class:`~repro.control.hierarchy.HierarchicalControlPlane` instead keeps
local policies on their nodes and bounds per-interval cluster work (and the
end-of-run cluster telemetry) at O(nodes).
:class:`ShardedFleetReport` aggregates the per-node
:class:`~repro.fleet.runtime.FleetReport`\\ s into cluster-level metrics:
cluster drop rate, shared-uplink utilization, per-camera fairness across the
whole fleet, load imbalance, and the control plane's interventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.control.hierarchy import HierarchicalControlPlane
from repro.control.loop import ClusterActuator, ControlLoop
from repro.edge.uplink import (
    SharedTransferRequest,
    SharedUplink,
    WorkConservingUplink,
)
from repro.fleet.accuracy import FleetAccuracy
from repro.fleet.camera import CameraSpec
from repro.fleet.placement import (
    PlacementPolicy,
    estimate_camera_cost,
    make_placement_policy,
)
from repro.fleet.runtime import (
    FleetConfig,
    FleetReport,
    FleetRuntime,
    PipelineFactory,
    default_pipeline_factory,
)
from repro.fleet.telemetry import TelemetryRegistry, jain_fairness
from repro.obs.alerts import AlertLog, evaluate_alerts
from repro.obs.slo import SLOReport
from repro.obs.timeline import MetricsTimeline
from repro.obs.trace import Tracer

if TYPE_CHECKING:
    from repro.events.plane import DeliveryReport, EventDeliveryPlane

__all__ = [
    "ShardingConfig",
    "NodeReport",
    "ShardedFleetReport",
    "ShardedFleetRuntime",
]

UPLINK_ALLOCATIONS = ("equal", "by_cameras", "by_cost")
UPLINK_SHARING_MODES = ("static", "work_conserving")


@dataclass(frozen=True)
class ShardingConfig:
    """Cluster-level knobs of the sharded fleet runtime."""

    num_nodes: int = 2
    placement: str = "round_robin"
    total_uplink_bps: float = 2_000_000.0
    uplink_allocation: str = "equal"
    uplink_sharing: str = "static"
    node_config: FleetConfig = field(default_factory=FleetConfig)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.total_uplink_bps <= 0:
            raise ValueError("total_uplink_bps must be positive")
        if self.uplink_allocation not in UPLINK_ALLOCATIONS:
            raise ValueError(
                f"Unknown uplink_allocation {self.uplink_allocation!r}; "
                f"expected one of {UPLINK_ALLOCATIONS}"
            )
        if self.uplink_sharing not in UPLINK_SHARING_MODES:
            raise ValueError(
                f"Unknown uplink_sharing {self.uplink_sharing!r}; "
                f"expected one of {UPLINK_SHARING_MODES}"
            )


@dataclass
class NodeReport:
    """One edge node's end-of-run accounting within the cluster."""

    node_id: str
    camera_ids: list[str]
    estimated_cost: float
    uplink_allocation_bps: float
    report: FleetReport
    reclaimed_uplink_bits: float = 0.0
    cameras_migrated_in: int = 0
    cameras_migrated_out: int = 0

    @property
    def num_cameras(self) -> int:
        """Cameras this node hosted at the end of the run."""
        return len(self.camera_ids)

    @property
    def queue_wait_p99(self) -> float:
        """99th-percentile queue wait on this node in seconds."""
        waits = self.report.telemetry.get("latency.queue_wait_seconds")
        if isinstance(waits, dict):
            return float(waits.get("p99", 0.0))
        return 0.0

    @property
    def resolutions(self) -> set[tuple[int, int]]:
        """Distinct camera resolutions resident on this node."""
        return {c.resolution for c in self.report.cameras.values()}


@dataclass
class ShardedFleetReport:
    """Aggregate outcome of one sharded cluster run."""

    nodes: list[NodeReport]
    placement_policy: str
    total_uplink_bps: float
    total_uplink_bits: float
    sim_duration: float
    uplink_sharing: str = "static"
    reclaimed_uplink_bits: float = 0.0
    migrations_performed: int = 0
    shedding_interventions: int = 0
    uplink_rebalances: int = 0
    threshold_drifts: int = 0
    control_ticks: int = 0
    control_log: list[str] = field(default_factory=list)
    # Decision provenance: the control plane's stamped DecisionRecord dicts —
    # one per controller decision context per tick, including explicit no-ops.
    decision_records: list[dict] = field(default_factory=list)
    # Hierarchical runs only: total coordination payload (bytes of serialized
    # per-node aggregates) exchanged at each control tick.  The scale
    # contract: every entry is O(nodes), independent of camera count.
    coordination_payload_bytes: list[int] = field(default_factory=list)
    telemetry: dict[str, object] = field(default_factory=dict)
    accuracy: FleetAccuracy | None = None
    slo: SLOReport | None = None
    alerts: AlertLog | None = None
    # Cluster-scope event delivery accounting (runs with an
    # EventDeliveryPlane attached only).  Fixed-size: counts and
    # percentiles, never per-event lines.
    delivery: "DeliveryReport | None" = None

    @property
    def num_nodes(self) -> int:
        """Edge nodes in the cluster."""
        return len(self.nodes)

    @property
    def num_cameras(self) -> int:
        """Cameras across the whole cluster (each counted where it ended up)."""
        return sum(n.num_cameras for n in self.nodes)

    @property
    def frames_generated(self) -> int:
        """Frames offered across all nodes."""
        return sum(n.report.frames_generated for n in self.nodes)

    @property
    def frames_scored(self) -> int:
        """Frames scored across all nodes."""
        return sum(n.report.frames_scored for n in self.nodes)

    @property
    def frames_dropped(self) -> int:
        """Frames lost to queue drops across all nodes."""
        return sum(n.report.frames_dropped for n in self.nodes)

    @property
    def frames_rejected(self) -> int:
        """Frames rejected by admission control across all nodes."""
        return sum(n.report.frames_rejected for n in self.nodes)

    @property
    def events_detected(self) -> int:
        """Events detected across all nodes."""
        return sum(n.report.events_detected for n in self.nodes)

    @property
    def drop_rate(self) -> float:
        """Cluster-wide fraction of generated frames shed."""
        generated = self.frames_generated
        if generated == 0:
            return 0.0
        return (self.frames_dropped + self.frames_rejected) / generated

    @property
    def uplink_utilization(self) -> float:
        """Fraction of the shared datacenter link consumed over the run.

        A zero-bandwidth link (or a report built outside ``ShardingConfig``
        validation) has no capacity to utilize; report 0.0 rather than
        dividing by zero.
        """
        if self.sim_duration <= 0 or self.total_uplink_bps <= 0:
            return 0.0
        return self.total_uplink_bits / (self.total_uplink_bps * self.sim_duration)

    @property
    def reclaimed_uplink_bytes(self) -> float:
        """Idle uplink capacity reclaimed by work conservation, in bytes."""
        return self.reclaimed_uplink_bits / 8.0

    @property
    def worst_node_queue_wait_p99(self) -> float:
        """Largest per-node queue-wait p99 in seconds (the placement's tail)."""
        return max((n.queue_wait_p99 for n in self.nodes), default=0.0)

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over per-camera scored fractions, cluster-wide.

        A camera that migrated contributes one share per hosting node (each
        stint's scored fraction of the frames offered there).
        """
        return jain_fairness(
            c.frames_scored / c.frames_generated
            for n in self.nodes
            for c in n.report.cameras.values()
            if c.frames_generated > 0
        )

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean offered frame rate across nodes (1.0 = perfectly even)."""
        offered = [n.report.offered_fps for n in self.nodes]
        mean = sum(offered) / len(offered) if offered else 0.0
        if mean == 0.0:
            return 1.0
        return max(offered) / mean

    @property
    def resident_base_dnns(self) -> int:
        """Total ``(node, resolution)`` pairs — base-DNN instances the cluster holds."""
        return sum(len(n.resolutions) for n in self.nodes)

    def summary(self) -> str:
        """A multi-line human-readable cluster summary."""
        lines = [
            f"cluster: {self.num_nodes} nodes, {self.num_cameras} cameras, "
            f"placement={self.placement_policy}, uplink={self.uplink_sharing}",
            f"scored {self.frames_scored}/{self.frames_generated} frames "
            f"(drop rate {self.drop_rate:.1%}) | events {self.events_detected}",
            f"shared uplink {self.uplink_utilization:.1%} of "
            f"{self.total_uplink_bps / 1e6:.2f} Mbps | "
            f"fairness {self.fairness_index:.3f} (Jain)",
            f"worst node queue-wait p99 {self.worst_node_queue_wait_p99 * 1e3:.0f} ms | "
            f"load imbalance {self.load_imbalance:.2f}x | "
            f"resident base DNNs {self.resident_base_dnns}",
        ]
        if self.accuracy is not None:
            lines.append(self.accuracy.summary())
        if self.slo is not None:
            lines.append(self.slo.summary())
        if self.alerts is not None:
            lines.append(self.alerts.summary())
        if self.delivery is not None:
            lines.append(self.delivery.summary())
        if self.uplink_sharing == "work_conserving":
            lines.append(
                f"work-conserving uplink reclaimed {self.reclaimed_uplink_bytes / 1024:.1f} KiB "
                f"of idle capacity"
            )
        if self.control_ticks:
            lines.append(
                f"control plane: {self.control_ticks} ticks, "
                f"{self.migrations_performed} migrations, "
                f"{self.shedding_interventions} shedding interventions, "
                f"{self.uplink_rebalances} uplink rebalances, "
                f"{self.threshold_drifts} threshold drifts"
            )
        if self.coordination_payload_bytes:
            lines.append(
                f"hierarchical coordination: peak "
                f"{max(self.coordination_payload_bytes)} B of aggregates per tick "
                f"across {self.num_nodes} nodes"
            )
        for node in self.nodes:
            report = node.report
            migrated = ""
            if node.cameras_migrated_in or node.cameras_migrated_out:
                migrated = (
                    f", migrated +{node.cameras_migrated_in}/-{node.cameras_migrated_out}"
                )
            lines.append(
                f"  {node.node_id}: {node.num_cameras} cams{migrated}, "
                f"scored {report.frames_scored}/{report.frames_generated} "
                f"({report.drop_rate:.1%} shed), "
                f"wait p99 {node.queue_wait_p99 * 1e3:.0f} ms, "
                f"uplink {node.uplink_allocation_bps / 1e3:.0f} kbps"
            )
        return "\n".join(lines)


class ShardedFleetRuntime:
    """Runs a camera fleet across several edge nodes behind one uplink."""

    def __init__(
        self,
        cameras: Sequence[CameraSpec],
        config: ShardingConfig | None = None,
        pipeline_factory: PipelineFactory | None = None,
        placement: PlacementPolicy | None = None,
        control_loop: ControlLoop | None = None,
        tracer: Tracer | None = None,
        timeline: MetricsTimeline | None = None,
        scrape_interval: float = 0.25,
        alert_rules: Sequence = (),
        hierarchy: HierarchicalControlPlane | None = None,
        event_plane: "EventDeliveryPlane | None" = None,
    ) -> None:
        if scrape_interval <= 0:
            raise ValueError("scrape_interval must be positive")
        if alert_rules and timeline is None:
            raise ValueError("alert_rules need a timeline to evaluate over")
        if control_loop is not None and hierarchy is not None:
            raise ValueError(
                "attach either a flat control loop or a hierarchical control "
                "plane, not both"
            )
        self.config = config or ShardingConfig()
        self.tracer = tracer
        self.timeline = timeline
        self.scrape_interval = float(scrape_interval)
        self.alert_rules = list(alert_rules)
        ids = [spec.camera_id for spec in cameras]
        duplicates = {i for i in ids if ids.count(i) > 1}
        if duplicates:
            raise ValueError(f"Duplicate camera ids: {sorted(duplicates)}")
        self.policy = (
            placement if placement is not None else make_placement_policy(self.config.placement)
        )
        self.control_loop = control_loop
        self.hierarchy = hierarchy
        self.shards = self.policy.place(cameras, self.config.num_nodes)
        self.node_ids = [f"node{i}" for i in range(self.config.num_nodes)]
        # Cost the shards with the same estimate the policy balanced them by,
        # so by_cost uplink slices and NodeReport.estimated_cost describe the
        # load the placement actually considered.
        cost_fn = getattr(self.policy, "cost_fn", None) or estimate_camera_cost
        self._shard_costs = [sum(cost_fn(spec) for spec in shard) for shard in self.shards]
        self._work_conserving = self.config.uplink_sharing == "work_conserving"
        weights = self._allocation_weights()
        if self._work_conserving:
            self.shared_uplink = WorkConservingUplink(self.config.total_uplink_bps, weights)
            self._current_weights = dict(self.shared_uplink.weights)
        else:
            self.shared_uplink = SharedUplink(self.config.total_uplink_bps, weights)
            self._current_weights = None
        self._hosted: dict[str, list[str]] = {}
        self._migrations: list[tuple[str, str, str]] = []
        self._migrated_in: dict[str, int] = {node_id: 0 for node_id in self.node_ids}
        self._migrated_out: dict[str, int] = {node_id: 0 for node_id in self.node_ids}
        self.nodes: dict[str, FleetRuntime] = {}
        for node_id, shard in zip(self.node_ids, self.shards):
            self._hosted[node_id] = [spec.camera_id for spec in shard]
            self.nodes[node_id] = FleetRuntime(
                shard,
                # Each node is its own box: without an injected factory every
                # node builds (and shares internally) its own base DNNs.
                pipeline_factory=pipeline_factory or default_pipeline_factory(),
                config=self.config.node_config,
                telemetry=TelemetryRegistry(),
                uplink=(
                    None if self._work_conserving else self.shared_uplink.links[node_id]
                ),
                defer_uploads=self._work_conserving,
                tracer=(self.tracer.node(node_id) if self.tracer is not None else None),
            )
        self.event_plane = event_plane
        if event_plane is not None:
            # Installs the plane as every node's publish hook: records the
            # runtime closes (cooldown permitting) land in the node's
            # outbox, ready to ride the shared uplink with the frames.
            for node_id in self.node_ids:
                event_plane.attach(node_id, self.nodes[node_id])

    def _allocation_weights(self) -> dict[str, float]:
        mode = self.config.uplink_allocation
        if mode == "equal":
            weights = [1.0] * len(self.shards)
        elif mode == "by_cameras":
            weights = [float(len(shard)) for shard in self.shards]
        else:  # by_cost
            weights = list(self._shard_costs)
        return dict(zip(self.node_ids, weights))

    # -- control-plane surface -----------------------------------------------
    def current_uplink_weights(self) -> dict[str, float] | None:
        """Latest GPS weights (None when the link is statically sliced)."""
        return dict(self._current_weights) if self._current_weights is not None else None

    def uplink_guarantees(self) -> dict[str, float]:
        """Per-node guaranteed uplink bps (static slice, or the GPS guarantee).

        The observation surface of uplink-aware control: a node whose live
        estimated upload bits outrun ``guarantee * now`` is building backlog
        the end-of-run replay will have to drain.
        """
        if self._work_conserving:
            return {n: self.shared_uplink.guaranteed_bps(n) for n in self.node_ids}
        return {n: self.shared_uplink.links[n].capacity_bps for n in self.node_ids}

    def set_uplink_weights(self, now: float, weights: dict[str, float]) -> None:
        """Schedule new shared-uplink weights from ``now`` onward."""
        if not self._work_conserving:
            raise RuntimeError(
                "uplink weights can only be adjusted under work-conserving sharing"
            )
        self.shared_uplink.schedule_weights(now, weights)
        self._current_weights = dict(weights)

    def record_migration(self, camera_id: str, source: str, destination: str) -> None:
        """Track one applied camera handoff in the cluster's bookkeeping."""
        self._hosted[source].remove(camera_id)
        self._hosted[destination].append(camera_id)
        self._migrations.append((camera_id, source, destination))
        self._migrated_out[source] += 1
        self._migrated_in[destination] += 1

    # -- orchestration -------------------------------------------------------
    def _run_lockstep(self, interval: float, on_tick) -> dict[str, FleetReport]:
        """Advance every node in lockstep, firing ``on_tick`` at each boundary.

        The one driver behind every interval-synchronized run path (flat
        control loop, hierarchical plane, timeline-only scraping): all nodes
        advance to each tick time before the callback observes, so it always
        sees a consistent cluster snapshot.  The run ends when no node has
        pending events (migrations can add events, so the check re-runs
        every tick).
        """
        for node_id in self.node_ids:
            self.nodes[node_id].start()
        tick_time = interval
        while any(runtime.has_pending_events for runtime in self.nodes.values()):
            for node_id in self.node_ids:
                self.nodes[node_id].advance_until(tick_time)
            on_tick(tick_time)
            tick_time += interval
        return {node_id: self.nodes[node_id].finalize() for node_id in self.node_ids}

    def run(self) -> ShardedFleetReport:
        """Execute every node to completion and assemble the cluster report.

        Without a control plane, nodes only interact through their uplink
        shares, so running them sequentially in node order reproduces the
        concurrent cluster exactly.  With a flat loop or a hierarchical
        plane attached, all nodes advance in lockstep between control ticks
        so controllers see — and act on — a consistent cluster state.
        """
        if self.control_loop is not None:
            if self.timeline is not None and self.control_loop.timeline is None:
                # The control loop already ticks at the cadence the timeline
                # wants; attach it so every tick scrapes all node registries.
                self.control_loop.timeline = self.timeline
            actuator = ClusterActuator(self)
            reports = self._run_lockstep(
                self.control_loop.interval_seconds,
                lambda now: self.control_loop.tick(now, self.nodes, actuator),
            )
        elif self.hierarchy is not None:
            if self.timeline is not None and self.hierarchy.timeline is None:
                # The hierarchy scrapes both levels (per-node sources plus
                # the fixed-size cluster rollup) at its own tick cadence.
                self.hierarchy.timeline = self.timeline
            self.hierarchy.bind(self)
            reports = self._run_lockstep(
                self.hierarchy.interval_seconds,
                lambda now: self.hierarchy.tick(now, self),
            )
        elif self.timeline is not None:
            # No control plane, but a timeline wants interval-boundary
            # scrapes: lockstep stepping reproduces the sequential run
            # exactly, since nodes only interact through uplink shares.
            def scrape(now: float) -> None:
                for node_id in self.node_ids:
                    self.timeline.scrape(now, node_id, self.nodes[node_id].telemetry)

            reports = self._run_lockstep(self.scrape_interval, scrape)
        else:
            reports = {node_id: self.nodes[node_id].run() for node_id in self.node_ids}
        sim_duration = max((r.sim_duration for r in reports.values()), default=0.0)

        reclaimed_bits = 0.0
        node_reclaimed: dict[str, float] = {node_id: 0.0 for node_id in self.node_ids}
        event_end_times: dict[str, float] = {}
        if self._work_conserving:
            requests = [
                SharedTransferRequest(
                    node_id=node_id,
                    bits=bits,
                    available_at=available_at,
                    description=description,
                )
                for node_id in self.node_ids
                for available_at, description, bits in self.nodes[node_id].pending_uploads
            ]
            if self.event_plane is not None:
                # Event publish attempts join the same drain as the frame
                # uploads: drain() globally time-orders the merged list, so
                # event bytes genuinely contend with video for the link.
                requests.extend(self.event_plane.transfer_requests())
            if self.tracer is not None:
                # Route each completed shared transfer back to its node's
                # tracer so sampled frames get their upload spans even though
                # the cluster (not the node) replayed the transfer.
                self.shared_uplink.on_transfer = lambda tr: self.tracer.node(
                    tr.node_id
                ).complete_upload(tr.description, tr.start_time, tr.end_time)
            self.shared_uplink.drain(requests)
            reclaimed_bits = self.shared_uplink.reclaimed_bits
            if self.event_plane is not None:
                event_end_times = {
                    transfer.description: transfer.end_time
                    for transfer in self.shared_uplink.transfers
                    if transfer.description.startswith("evt/")
                }
            for node_id in self.node_ids:
                node_reclaimed[node_id] = self.shared_uplink.node_reclaimed_bits(node_id)
                report = reports[node_id]
                guaranteed = self.shared_uplink.guaranteed_bps(node_id)
                if sim_duration > 0:
                    report.uplink_utilization = self.shared_uplink.node_bits(node_id) / (
                        guaranteed * sim_duration
                    )
                report.uplink_backlog_seconds = self.shared_uplink.node_backlog_seconds(
                    node_id, sim_duration
                )
                # Keep the node's telemetry (and its snapshot in the report)
                # consistent with the patched uplink fields.
                telemetry = self.nodes[node_id].telemetry
                telemetry.gauge("uplink.utilization").set(report.uplink_utilization)
                telemetry.gauge("uplink.backlog_seconds").set(report.uplink_backlog_seconds)
                report.telemetry = telemetry.snapshot()

        if self.event_plane is not None:
            if not self._work_conserving:
                # Static slices: replay each admitted publish attempt
                # through its node's own link slice.  Frame uploads already
                # occupied the slice live during the run, so event bytes
                # queue behind the node's video FIFO — same capacity, no
                # free side channel.
                for request in self.event_plane.transfer_requests():
                    transfer = self.shared_uplink.links[request.node_id].upload(
                        request.bits, request.available_at, request.description
                    )
                    event_end_times[request.description] = transfer.end_time
            self.event_plane.finalize(event_end_times)
            for node_id in self.node_ids:
                report = reports[node_id]
                report.delivery = self.event_plane.node_reports[node_id]
                # finalize() stamped post-hoc delivery counters and the
                # latency histogram into each node's registry; refresh the
                # report's snapshot (and let the end-of-run scrape below
                # capture them) to match.
                report.telemetry = self.nodes[node_id].telemetry.snapshot()

        if self.timeline is not None:
            # One final end-of-run scrape per node: captures the uplink
            # gauges finalize() (or the work-conserving replay above) set
            # after the last interval boundary.
            for node_id in self.node_ids:
                self.timeline.scrape(sim_duration, node_id, self.nodes[node_id].telemetry)
            if self.hierarchy is not None:
                self.timeline.scrape(sim_duration, "cluster", self.hierarchy.telemetry)

        node_reports: list[NodeReport] = []
        for node_id, cost in zip(self.node_ids, self._shard_costs):
            if self._work_conserving:
                allocation_bps = self.shared_uplink.guaranteed_bps(node_id)
            else:
                allocation_bps = self.shared_uplink.links[node_id].capacity_bps
            node_reports.append(
                NodeReport(
                    node_id=node_id,
                    camera_ids=list(self._hosted[node_id]),
                    estimated_cost=cost,
                    uplink_allocation_bps=allocation_bps,
                    report=reports[node_id],
                    reclaimed_uplink_bits=node_reclaimed[node_id],
                    cameras_migrated_in=self._migrated_in[node_id],
                    cameras_migrated_out=self._migrated_out[node_id],
                )
            )

        cluster_telemetry = TelemetryRegistry()
        control_ticks = 0
        shedding_interventions = 0
        uplink_rebalances = 0
        threshold_drifts = 0
        control_log: list[str] = []
        decision_records: list[dict] = []
        coordination_payload_bytes: list[int] = []
        if self.hierarchy is not None:
            # Hierarchical runs never merge per-node registries into the
            # cluster view: the cluster's telemetry is the coordinator's
            # fixed-size rollup (gauges derived from per-node aggregates),
            # so assembling it costs O(nodes), not O(cameras x metrics).
            cluster_telemetry.merge(self.hierarchy.telemetry)
            control_ticks = self.hierarchy.ticks
            shedding_interventions = int(
                self.hierarchy.counter_value("control.shedding.interventions")
            )
            uplink_rebalances = int(
                self.hierarchy.counter_value("control.uplink.rebalances")
            )
            threshold_drifts = int(
                self.hierarchy.counter_value("control.threshold.drifts")
            )
            control_log = list(self.hierarchy.decision_log)
            decision_records = list(self.hierarchy.decision_records)
            coordination_payload_bytes = list(self.hierarchy.payload_bytes)
        else:
            for node_id in self.node_ids:
                cluster_telemetry.merge(self.nodes[node_id].telemetry, prefix=f"{node_id}.")
        if self.control_loop is not None:
            cluster_telemetry.merge(self.control_loop.telemetry)
            control_ticks = self.control_loop.ticks
            shedding_interventions = int(
                self.control_loop.counter_value("control.shedding.interventions")
            )
            uplink_rebalances = int(
                self.control_loop.counter_value("control.uplink.rebalances")
            )
            threshold_drifts = int(
                self.control_loop.counter_value("control.threshold.drifts")
            )
            control_log = list(self.control_loop.decision_log)
            decision_records = list(self.control_loop.decision_records)
        alerts = (
            evaluate_alerts(self.timeline, self.alert_rules)
            if self.timeline is not None and self.alert_rules
            else None
        )
        return ShardedFleetReport(
            nodes=node_reports,
            # A migrated camera's stints are ORed into one prediction
            # vector, so cluster accuracy scores each camera exactly once.
            accuracy=FleetAccuracy.merged(r.accuracy for r in reports.values()),
            # A migrated camera's SLO counters merge across its hosting
            # nodes; burn state is the pessimistic union.
            slo=SLOReport.merged([r.slo for r in reports.values()]),
            placement_policy=self.policy.name,
            total_uplink_bps=self.config.total_uplink_bps,
            total_uplink_bits=self.shared_uplink.total_bits,
            sim_duration=sim_duration,
            uplink_sharing=self.config.uplink_sharing,
            reclaimed_uplink_bits=reclaimed_bits,
            migrations_performed=len(self._migrations),
            shedding_interventions=shedding_interventions,
            uplink_rebalances=uplink_rebalances,
            threshold_drifts=threshold_drifts,
            control_ticks=control_ticks,
            control_log=control_log,
            decision_records=decision_records,
            coordination_payload_bytes=coordination_payload_bytes,
            telemetry=cluster_telemetry.snapshot(),
            alerts=alerts,
            delivery=(
                self.event_plane.cluster_report if self.event_plane is not None else None
            ),
        )
