"""Bounded per-camera frame queues, drop policies, and admission control.

On a constrained edge node the filtering pipeline cannot always keep up with
the aggregate frame rate of every attached camera, so frames queue between
ingest and the worker pool.  Each camera gets a bounded :class:`FrameQueue`
with an explicit overload policy:

* ``DROP_OLDEST`` — evict the head to admit the new frame (freshness wins;
  the right default for live monitoring, where a stale frame is worthless);
* ``DROP_NEWEST`` — reject the incoming frame (completeness of what is
  already queued wins);
* ``BLOCK`` — admit nothing and signal backpressure to the caller, who
  decides whether to stall the source or shed elsewhere.

An optional :class:`AdmissionController` bounds the *total* number of frames
in flight across the whole node, providing load shedding before queues even
see a frame.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.video.frame import Frame

__all__ = ["DropPolicy", "OfferOutcome", "QueueStats", "FrameQueue", "AdmissionController"]


class DropPolicy(str, Enum):
    """What a full queue does with an incoming frame."""

    DROP_OLDEST = "drop_oldest"
    DROP_NEWEST = "drop_newest"
    BLOCK = "block"


@dataclass(frozen=True)
class OfferOutcome:
    """Result of offering one frame to a bounded queue."""

    admitted: bool
    evicted: Frame | None = None
    blocked: bool = False


@dataclass
class QueueStats:
    """Lifetime accounting for one queue."""

    offered: int = 0
    admitted: int = 0
    dropped_oldest: int = 0
    dropped_newest: int = 0
    blocked: int = 0
    popped: int = 0
    high_water: int = 0

    @property
    def dropped(self) -> int:
        """Frames lost to either drop policy."""
        return self.dropped_oldest + self.dropped_newest


class FrameQueue:
    """A bounded FIFO of decoded frames for one camera."""

    def __init__(
        self,
        camera_id: str,
        capacity: int,
        policy: DropPolicy = DropPolicy.DROP_OLDEST,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.camera_id = camera_id
        self.capacity = int(capacity)
        self.policy = DropPolicy(policy)
        self.stats = QueueStats()
        self._frames: deque[Frame] = deque()
        # Optional frame-lifecycle tracer (repro.obs.trace.NodeTracer); the
        # fleet runtime installs it so enqueue/evict decisions land on the
        # sampled frames' span trees.  Emission needs the simulated time,
        # so only offer() calls that pass ``now`` trace.
        self.tracer = None

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def depth(self) -> int:
        """Frames currently queued."""
        return len(self._frames)

    @property
    def is_full(self) -> bool:
        """Whether the queue is at capacity."""
        return len(self._frames) >= self.capacity

    def set_policy(self, policy: DropPolicy) -> None:
        """Switch the overload policy live (the control plane's shedding knob).

        Already-queued frames are untouched; only future :meth:`offer` calls
        see the new policy.
        """
        self.policy = DropPolicy(policy)

    def offer(self, frame: Frame, now: float | None = None) -> OfferOutcome:
        """Offer one frame; the policy decides what happens at capacity.

        ``now`` is the simulated offer time, only needed when a tracer is
        attached (trace events carry timestamps).
        """
        self.stats.offered += 1
        tracing = self.tracer is not None and now is not None
        if not self.is_full:
            outcome = self._admit(frame)
            if tracing:
                self.tracer.record_enqueue(self.camera_id, frame.index, self.depth)
            return outcome
        if self.policy is DropPolicy.DROP_OLDEST:
            evicted = self._frames.popleft()
            self.stats.dropped_oldest += 1
            self._admit(frame)
            if tracing:
                self.tracer.record_enqueue(self.camera_id, frame.index, self.depth)
                self.tracer.record_drop(self.camera_id, evicted.index, "evicted_oldest", now)
            return OfferOutcome(admitted=True, evicted=evicted)
        if self.policy is DropPolicy.DROP_NEWEST:
            self.stats.dropped_newest += 1
            if tracing:
                self.tracer.record_drop(self.camera_id, frame.index, "dropped_newest", now)
            return OfferOutcome(admitted=False, evicted=frame)
        self.stats.blocked += 1
        if tracing:
            self.tracer.annotate(self.camera_id, frame.index, "blocked_at", now)
        return OfferOutcome(admitted=False, blocked=True)

    def _admit(self, frame: Frame) -> OfferOutcome:
        self._frames.append(frame)
        self.stats.admitted += 1
        self.stats.high_water = max(self.stats.high_water, len(self._frames))
        return OfferOutcome(admitted=True)

    def pop(self) -> Frame | None:
        """Dequeue the oldest frame (None when empty)."""
        if not self._frames:
            return None
        self.stats.popped += 1
        return self._frames.popleft()

    def peek(self) -> Frame | None:
        """The oldest queued frame without removing it (None when empty)."""
        return self._frames[0] if self._frames else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrameQueue({self.camera_id!r}, depth={self.depth}/{self.capacity}, "
            f"policy={self.policy.value})"
        )


class AdmissionController:
    """Caps the total number of frames in flight across the node.

    A frame is *in flight* from the moment it is admitted until it is either
    scored or dropped.  When the cap is reached new arrivals are rejected at
    the door — cheaper than queueing them just to drop them later, and the
    mechanism that keeps aggregate memory bounded no matter how many cameras
    are attached.

    An optional ``per_camera_quota`` additionally caps how much of the
    node-wide budget any single camera may hold.  Without it, one high-rate
    camera can keep the budget permanently full and starve its neighbours;
    with it, a camera at quota is rejected even while the node has headroom,
    leaving room for the quiet cameras' next frames.  Per-camera accounting
    requires callers to pass ``camera_id`` to both :meth:`try_admit` and
    :meth:`release`.

    :meth:`set_camera_quota` installs a per-camera *override* of the default
    quota — the adaptive-shedding control plane's actuator: tightening one
    camera's quota sheds its load at the door while its neighbours keep
    theirs.
    """

    def __init__(self, max_in_flight: int, per_camera_quota: int | None = None) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if per_camera_quota is not None and per_camera_quota < 1:
            raise ValueError("per_camera_quota must be at least 1 when set")
        self.max_in_flight = int(max_in_flight)
        self.per_camera_quota = int(per_camera_quota) if per_camera_quota is not None else None
        self._in_flight = 0
        self._per_camera: dict[str, int] = {}
        self._quota_overrides: dict[str, int] = {}
        self.admitted = 0
        self.rejected = 0
        self.rejected_over_quota = 0

    @property
    def in_flight(self) -> int:
        """Frames currently admitted but not yet released."""
        return self._in_flight

    def camera_in_flight(self, camera_id: str) -> int:
        """Frames camera ``camera_id`` currently holds in flight."""
        return self._per_camera.get(camera_id, 0)

    def quota_for(self, camera_id: str) -> int | None:
        """The quota in force for ``camera_id`` (override, else the default)."""
        override = self._quota_overrides.get(camera_id)
        return override if override is not None else self.per_camera_quota

    def set_camera_quota(self, camera_id: str, quota: int | None) -> None:
        """Override (or with ``None`` restore) one camera's in-flight quota."""
        if quota is None:
            self._quota_overrides.pop(camera_id, None)
            return
        if quota < 1:
            raise ValueError("quota must be at least 1 when set")
        self._quota_overrides[camera_id] = int(quota)

    @property
    def quota_overrides(self) -> dict[str, int]:
        """Per-camera quota overrides currently in force."""
        return dict(self._quota_overrides)

    def try_admit(self, camera_id: str | None = None) -> bool:
        """Admit one frame if the node-wide budget (and camera quota) allows."""
        if (self.per_camera_quota is not None or self._quota_overrides) and camera_id is None:
            raise ValueError("camera_id is required when a per-camera quota is set")
        if self._in_flight >= self.max_in_flight:
            self.rejected += 1
            return False
        quota = self.quota_for(camera_id) if camera_id is not None else None
        if quota is not None and self._per_camera.get(camera_id, 0) >= quota:
            self.rejected += 1
            self.rejected_over_quota += 1
            return False
        self._in_flight += 1
        if camera_id is not None:
            self._per_camera[camera_id] = self._per_camera.get(camera_id, 0) + 1
        self.admitted += 1
        return True

    def release(self, camera_id: str | None = None) -> None:
        """Mark one in-flight frame as scored or dropped."""
        if (self.per_camera_quota is not None or self._quota_overrides) and camera_id is None:
            raise ValueError("camera_id is required when a per-camera quota is set")
        if self._in_flight <= 0:
            raise RuntimeError("release() without a matching try_admit()")
        if camera_id is not None:
            held = self._per_camera.get(camera_id, 0)
            if held <= 0:
                raise RuntimeError(f"release({camera_id!r}) without a matching try_admit()")
            self._per_camera[camera_id] = held - 1
        self._in_flight -= 1
