"""The fleet accuracy plane: trained per-camera microclassifiers + event F1.

PRs 1-3 drove every fleet and control decision off *proxy* signals — match
density from randomly initialized microclassifiers, service-time models —
so the system could report how many frames it shed but never what that
shedding *cost in accuracy*.  This module closes that gap with the paper's
own evaluation loop, at fleet scale:

* :func:`camera_seed_ladder` — a deterministic per-camera seed ladder: each
  camera derives independent seeds for its training scene, its weight
  initialization, and its training shuffle from ``(camera_id, spec.seed)``,
  so fleets retrain bit-identically across runs and processes.
* :class:`TrainedMicroClassifiers` — trains one real
  :class:`~repro.core.architectures.LocalizedBinaryClassifierMC` (or any
  Figure-2 architecture) per camera on that camera's *own* synthetic
  labelled frames, with per-camera threshold calibration, behind an
  in-process cache keyed by camera spec.  Its :meth:`pipeline_factory`
  plugs directly into :class:`~repro.fleet.runtime.FleetRuntime`, sharing
  one base DNN per resolution (the FilterForward premise).
* :class:`CameraAccuracy` / :class:`FleetAccuracy` — event-level scoring of
  a fleet run against ground truth: every generated frame has a known label
  (:meth:`~repro.fleet.camera.CameraFeed.labels`), every dropped or
  rejected frame counts as a predicted negative, and
  :func:`~repro.metrics.event_metrics.event_f1_score` turns the per-camera
  prediction/truth pair into event F1, precision, and recall (paper
  Section 4.2).  Cluster-level merging ORs the prediction vectors of a
  camera's hosting stints, so migration mid-run is scored correctly.
* :func:`evaluate_offline` — the no-fleet reference: the same trained
  pipelines replayed over every frame with no queueing, the upper bound an
  F1-vs-drop-rate curve is anchored to.

With :attr:`FleetConfig.accuracy_task
<repro.fleet.runtime.FleetConfig.accuracy_task>` set, the runtime threads
the truth labels through arrival and completion accounting and attaches a
:class:`FleetAccuracy` to its report — turning "queue metrics moved" into
"accuracy moved" for every scheduling and control experiment on top.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.core.architectures import build_microclassifier
from repro.core.microclassifier import MicroClassifier, MicroClassifierConfig
from repro.core.pipeline import PipelineConfig
from repro.core.smoothing import KVotingSmoother
from repro.core.streaming import StreamingPipeline
from repro.core.training import TrainingConfig, TrainingHistory, train_classifier
from repro.features.base_dnn import build_mobilenet_like
from repro.features.extractor import FeatureExtractor
from repro.fleet.camera import CameraFeed, CameraSpec
from repro.metrics.event_metrics import EventF1Breakdown, event_f1_score
from repro.video.synthetic import (
    SurveillanceSceneGenerator,
    TASK_PEDESTRIAN,
    TASK_PEOPLE_WITH_RED,
)

__all__ = [
    "ACCURACY_TASKS",
    "TRAINABLE_ARCHITECTURES",
    "camera_seed_ladder",
    "predictions_from_result",
    "AccuracyConfig",
    "TrainedCameraModel",
    "TrainedMicroClassifiers",
    "CameraAccuracy",
    "FleetAccuracy",
    "evaluate_offline",
]

ACCURACY_TASKS = (TASK_PEDESTRIAN, TASK_PEOPLE_WITH_RED)

# Architectures safe to train once and share across any number of pipeline
# sessions: inference must be stateless.  The windowed MC buffers per-stream
# reductions, so wiring it through the cache is a tracked follow-on.
TRAINABLE_ARCHITECTURES = ("localized", "full_frame")

# Rungs of the per-camera seed ladder; each purpose gets an independent,
# reproducible stream so changing e.g. the training shuffle cannot silently
# move the training scene.
_SEED_PURPOSES = ("train_scene", "weights", "training")


def camera_seed_ladder(spec: CameraSpec, purpose: str, base_seed: int = 0) -> int:
    """Deterministic derived seed for one camera and one purpose.

    The ladder hashes ``(camera_id, spec.seed, purpose, base_seed)`` through
    a 64-bit SHA-256 digest so that (a) two cameras get distinct seeds even
    when their spec seeds collide (64 bits makes accidental collisions
    negligible at any realistic fleet size), (b) the same camera gets
    independent streams per purpose, and (c) a fleet-level ``base_seed``
    shifts every camera's ladder at once.
    """
    if purpose not in _SEED_PURPOSES:
        raise ValueError(f"Unknown seed purpose {purpose!r}; expected one of {_SEED_PURPOSES}")
    token = f"{spec.camera_id}:{spec.seed}:{purpose}:{base_seed}".encode()
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


@dataclass(frozen=True)
class AccuracyConfig:
    """Knobs of the per-camera training protocol.

    ``train_frames`` sizes each camera's labelled training clip — rendered
    from the same scenario and resolution as the live feed but under the
    seed ladder's ``train_scene`` rung, so training and live content are
    drawn from the same distribution without overlapping.
    ``train_event_rate_scale`` optionally densifies training events (rare
    events are the paper's regime; short training clips may need more
    positives than a live feed would show).
    """

    task: str = TASK_PEDESTRIAN
    architecture: str = "localized"  # one of TRAINABLE_ARCHITECTURES
    tap_layer: str = "conv2_2/sep"
    alpha: float = 0.125
    train_frames: int = 96
    train_event_rate_scale: float = 1.0
    epochs: float = 3.0
    batch_size: int = 16
    learning_rate: float = 2e-3
    threshold: float = 0.5
    calibrate_threshold: bool = True
    smoothing_window: int = 5
    smoothing_votes: int = 2
    pipeline_batch_size: int = 1
    upload_bitrate: float = 12_000.0
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.task not in ACCURACY_TASKS:
            raise ValueError(f"Unknown task {self.task!r}; expected one of {ACCURACY_TASKS}")
        if self.architecture not in TRAINABLE_ARCHITECTURES:
            raise ValueError(
                f"Unsupported architecture {self.architecture!r}; expected one of "
                f"{TRAINABLE_ARCHITECTURES} (the windowed MC keeps per-stream state "
                "and is not yet wired through the shared trained-model cache)"
            )
        if self.train_frames < 8:
            raise ValueError("train_frames must be at least 8")
        if self.train_event_rate_scale <= 0:
            raise ValueError("train_event_rate_scale must be positive")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")


@dataclass
class TrainedCameraModel:
    """One camera's trained microclassifier plus its training provenance."""

    camera_id: str
    mc: MicroClassifier
    threshold: float
    history: TrainingHistory
    train_breakdown: EventF1Breakdown
    train_positive_frames: int
    seeds: dict[str, int]

    @property
    def train_f1(self) -> float:
        """Event F1 on the (smoothed) training split — a sanity signal only."""
        return self.train_breakdown.f1


class TrainedMicroClassifiers:
    """Per-camera trained-model cache and fleet pipeline factory.

    One instance owns one base DNN per distinct camera resolution (shared by
    every camera at that resolution) and one trained microclassifier per
    camera spec.  Training happens lazily on first use and is cached for the
    life of the process, so a benchmark sweeping many shedding regimes over
    the same fleet trains each camera exactly once — and a camera migrating
    between nodes keeps its trained model.
    """

    def __init__(self, config: AccuracyConfig | None = None) -> None:
        self.config = config or AccuracyConfig()
        self._base_dnns: dict[tuple[int, int], object] = {}
        self._models: dict[CameraSpec, TrainedCameraModel] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- shared components ---------------------------------------------------
    def base_dnn(self, spec: CameraSpec):
        """The shared base DNN for ``spec``'s resolution (built on first use)."""
        key = (spec.height, spec.width)
        if key not in self._base_dnns:
            self._base_dnns[key] = build_mobilenet_like(
                (spec.height, spec.width, 3),
                alpha=self.config.alpha,
                rng=np.random.default_rng(self.config.base_seed),
            )
        return self._base_dnns[key]

    def _extractor(self, spec: CameraSpec) -> FeatureExtractor:
        return FeatureExtractor(self.base_dnn(spec), [self.config.tap_layer], cache_size=4)

    # -- training ------------------------------------------------------------
    def trained(self, spec: CameraSpec) -> TrainedCameraModel:
        """The trained model for ``spec`` (trained on first request, cached)."""
        cached = self._models.get(spec)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        model = self._train(spec)
        self._models[spec] = model
        return model

    def _training_spec(self, spec: CameraSpec) -> CameraSpec:
        """The labelled training clip's spec: same camera, disjoint seed rung."""
        return replace(
            spec,
            seed=camera_seed_ladder(spec, "train_scene", self.config.base_seed),
            num_frames=self.config.train_frames,
            event_rate_scale=spec.event_rate_scale * self.config.train_event_rate_scale,
            start_time=0.0,
        )

    def _train(self, spec: CameraSpec) -> TrainedCameraModel:
        config = self.config
        seeds = {
            purpose: camera_seed_ladder(spec, purpose, config.base_seed)
            for purpose in _SEED_PURPOSES
        }
        train_spec = self._training_spec(spec)
        generator = SurveillanceSceneGenerator(train_spec.scene_config())
        objects = generator.spawn_objects()
        stream = generator.render_stream(objects)
        labels = generator.labels_for_task(objects, config.task).labels

        extractor = self._extractor(spec)
        maps = np.stack(
            [
                extractor.extract_pixels(frame.pixels)[config.tap_layer].astype(np.float32)
                for frame in stream
            ],
            axis=0,
        )
        mc_config = MicroClassifierConfig(
            name=f"{spec.camera_id}/trained",
            input_layer=config.tap_layer,
            threshold=config.threshold,
            upload_bitrate=config.upload_bitrate,
        )
        mc = build_microclassifier(
            config.architecture,
            mc_config,
            extractor.layer_shape(config.tap_layer),
            rng=np.random.default_rng(seeds["weights"]),
        )
        history = train_classifier(
            mc,
            maps,
            labels,
            TrainingConfig(
                epochs=config.epochs,
                batch_size=config.batch_size,
                learning_rate=config.learning_rate,
                seed=seeds["training"],
            ),
        )
        probabilities = mc.predict_proba_batch(maps)
        threshold = config.threshold
        if config.calibrate_threshold:
            threshold = self._calibrate(probabilities, labels)
            mc.config = replace(mc.config, threshold=threshold)
        smoother = KVotingSmoother(config.smoothing_window, config.smoothing_votes)
        smoothed = smoother.smooth((probabilities >= threshold).astype(np.int8))
        breakdown = event_f1_score(labels, smoothed, return_breakdown=True)
        return TrainedCameraModel(
            camera_id=spec.camera_id,
            mc=mc,
            threshold=threshold,
            history=history,
            train_breakdown=breakdown,
            train_positive_frames=int(labels.sum()),
            seeds=seeds,
        )

    def _calibrate(self, probabilities: np.ndarray, labels: np.ndarray) -> float:
        """Pick the threshold maximizing event F1 on the training split.

        A training clip with zero positive events gives calibration no
        signal: every candidate scores either F1 = 0.0 (it fires on
        something, all false positives) or the degenerate 1.0 of an empty
        prediction against empty truth.  Either way the sweep would "win"
        with an arbitrary quantile of the probability distribution — often
        the lowest, an overly permissive threshold that fires on everything
        live — so calibration keeps the configured threshold instead, both
        for the explicit all-negative case and whenever no candidate beats
        F1 = 0.
        """
        if not labels.any():
            return self.config.threshold
        smoother = KVotingSmoother(self.config.smoothing_window, self.config.smoothing_votes)
        candidates = np.unique(
            np.clip(np.quantile(probabilities, np.linspace(0.05, 0.95, 19)), 0.02, 0.98)
        )
        best_threshold, best_f1 = self.config.threshold, 0.0
        for candidate in candidates:
            smoothed = smoother.smooth((probabilities >= candidate).astype(np.int8))
            f1 = event_f1_score(labels, smoothed)
            if f1 > best_f1:
                best_threshold, best_f1 = float(candidate), f1
        return best_threshold

    # -- fleet integration ----------------------------------------------------
    def pipeline_factory(self):
        """A :class:`~repro.fleet.runtime.FleetRuntime` pipeline factory.

        Each camera gets a fresh :class:`StreamingPipeline` wrapping its
        cached trained microclassifier and a per-camera feature-map cache
        over the shared per-resolution base DNN.  Localized and full-frame
        MCs are stateless at inference time, so one trained model safely
        backs any number of pipeline sessions (reruns, migration stints).
        """

        def factory(spec: CameraSpec) -> StreamingPipeline:
            model = self.trained(spec)
            return StreamingPipeline(
                self._extractor(spec),
                [model.mc],
                config=PipelineConfig(
                    batch_size=self.config.pipeline_batch_size,
                    smoothing_window=self.config.smoothing_window,
                    smoothing_votes=self.config.smoothing_votes,
                ),
                frame_rate=spec.frame_rate,
                resolution=spec.resolution,
            )

        return factory


def predictions_from_result(
    result, source_indices: Sequence[int], num_frames: int
) -> np.ndarray:
    """Per-source-frame prediction vector from one pipeline session's result.

    Source frame *i* predicts positive iff any microclassifier's smoothed
    decision matched a pushed frame whose original index was *i* (the
    session's ``source_indices`` maps dense pushed positions back to source
    frames, which gap under load shedding).  Shared by the fleet runtime's
    stint scoring and :func:`evaluate_offline`, so the two can never
    diverge on position/source-index semantics.
    """
    predictions = np.zeros(num_frames, dtype=np.int8)
    for mc_result in result.per_mc.values():
        for position in mc_result.matched_frame_indices:
            predictions[source_indices[int(position)]] = 1
    return predictions


@dataclass(eq=False)
class CameraAccuracy:
    """One camera's event-level accuracy over one fleet run.

    ``predictions[i]`` is 1 iff source frame *i* was scored and smoothed to
    a match by any of the camera's microclassifiers — a frame shed by the
    queues, admission control, or a migration blackout is a predicted
    negative, which is exactly the accuracy cost of shedding it.
    """

    camera_id: str
    scenario: str
    task: str
    truth: np.ndarray = field(repr=False)
    predictions: np.ndarray = field(repr=False)
    frames_generated: int = 0
    frames_scored: int = 0

    def __post_init__(self) -> None:
        self.truth = np.asarray(self.truth).astype(np.int8)
        self.predictions = np.asarray(self.predictions).astype(np.int8)
        if self.truth.shape != self.predictions.shape:
            raise ValueError(
                f"truth and predictions disagree on length: "
                f"{self.truth.shape} vs {self.predictions.shape}"
            )
        self._breakdown = event_f1_score(self.truth, self.predictions, return_breakdown=True)

    @property
    def breakdown(self) -> EventF1Breakdown:
        """Event F1 plus precision/recall components."""
        return self._breakdown

    @property
    def f1(self) -> float:
        """Event F1 (harmonic mean of frame precision and event recall)."""
        return self._breakdown.f1

    @property
    def precision(self) -> float:
        """Per-frame precision of the uploaded (predicted-positive) frames."""
        return self._breakdown.precision

    @property
    def recall(self) -> float:
        """Existence-weighted event recall."""
        return self._breakdown.recall

    @property
    def num_events(self) -> int:
        """Ground-truth events in this camera's feed."""
        return self._breakdown.num_events

    @property
    def truth_positive_frames(self) -> int:
        """Ground-truth positive frames in this camera's feed."""
        return int(self.truth.sum())

    @property
    def predicted_positive_frames(self) -> int:
        """Frames this camera's pipeline matched (would upload)."""
        return int(self.predictions.sum())

    @property
    def drop_rate(self) -> float:
        """Fraction of generated frames never scored."""
        if self.frames_generated == 0:
            return 0.0
        return 1.0 - self.frames_scored / self.frames_generated

    def merged_with(self, other: "CameraAccuracy") -> "CameraAccuracy":
        """Combine two hosting stints of the same camera (migration).

        Truth is a property of the feed and must agree; predictions OR —
        each stint scored a disjoint slice of the feed.
        """
        if self.camera_id != other.camera_id or self.task != other.task:
            raise ValueError("merged_with() requires the same camera and task")
        if not np.array_equal(self.truth, other.truth):
            raise ValueError(f"truth mismatch across stints of {self.camera_id!r}")
        return CameraAccuracy(
            camera_id=self.camera_id,
            scenario=self.scenario,
            task=self.task,
            truth=self.truth,
            predictions=np.maximum(self.predictions, other.predictions),
            frames_generated=self.frames_generated + other.frames_generated,
            frames_scored=self.frames_scored + other.frames_scored,
        )


@dataclass(eq=False)
class FleetAccuracy:
    """Event-level accuracy of a whole fleet (or cluster) run."""

    task: str
    cameras: dict[str, CameraAccuracy]

    @property
    def num_cameras(self) -> int:
        """Cameras scored."""
        return len(self.cameras)

    @property
    def macro_f1(self) -> float:
        """Unweighted mean event F1 across cameras (the headline number)."""
        if not self.cameras:
            return 0.0
        return float(np.mean([c.f1 for c in self.cameras.values()]))

    @property
    def macro_precision(self) -> float:
        """Unweighted mean frame precision across cameras."""
        if not self.cameras:
            return 0.0
        return float(np.mean([c.precision for c in self.cameras.values()]))

    @property
    def macro_recall(self) -> float:
        """Unweighted mean event recall across cameras."""
        if not self.cameras:
            return 0.0
        return float(np.mean([c.recall for c in self.cameras.values()]))

    @property
    def num_events(self) -> int:
        """Ground-truth events across the fleet."""
        return sum(c.num_events for c in self.cameras.values())

    @property
    def drop_rate(self) -> float:
        """Fraction of generated frames never scored, fleet-wide."""
        generated = sum(c.frames_generated for c in self.cameras.values())
        scored = sum(c.frames_scored for c in self.cameras.values())
        if generated == 0:
            return 0.0
        return 1.0 - scored / generated

    def worst_camera(self) -> CameraAccuracy | None:
        """The camera with the lowest event F1 (None for an empty fleet)."""
        if not self.cameras:
            return None
        return min(self.cameras.values(), key=lambda c: (c.f1, c.camera_id))

    def summary(self) -> str:
        """A one-line human-readable accuracy summary."""
        worst = self.worst_camera()
        worst_part = f" | worst {worst.camera_id} F1 {worst.f1:.3f}" if worst else ""
        return (
            f"accuracy[{self.task}]: macro-F1 {self.macro_f1:.3f} "
            f"(P {self.macro_precision:.3f} / R {self.macro_recall:.3f}) over "
            f"{self.num_cameras} cameras, {self.num_events} events, "
            f"drop rate {self.drop_rate:.1%}{worst_part}"
        )

    @classmethod
    def merged(cls, parts: Iterable["FleetAccuracy | None"]) -> "FleetAccuracy | None":
        """Merge per-node accuracies into one cluster view (OR per camera)."""
        merged: dict[str, CameraAccuracy] = {}
        task: str | None = None
        seen = False
        for part in parts:
            if part is None:
                continue
            seen = True
            if task is None:
                task = part.task
            elif task != part.task:
                raise ValueError(f"Cannot merge accuracies of tasks {task!r} and {part.task!r}")
            for camera_id, accuracy in part.cameras.items():
                existing = merged.get(camera_id)
                merged[camera_id] = (
                    accuracy if existing is None else existing.merged_with(accuracy)
                )
        if not seen or task is None:
            return None
        return cls(task=task, cameras=dict(sorted(merged.items())))


def evaluate_offline(
    cameras: Sequence[CameraSpec],
    models: TrainedMicroClassifiers,
    feeds: dict[str, CameraFeed] | None = None,
) -> FleetAccuracy:
    """Score the trained pipelines with *no* fleet between them and the frames.

    Every frame of every camera is pushed in order through a fresh
    :class:`StreamingPipeline` — no queues, no admission, no drops — which
    is the offline upper bound the fleet's F1-vs-drop-rate curves are
    anchored to (a no-shedding fleet run reproduces it exactly).
    ``feeds`` allows reusing already-rendered :class:`CameraFeed` streams.
    """
    factory = models.pipeline_factory()
    task = models.config.task
    scored: dict[str, CameraAccuracy] = {}
    for spec in cameras:
        feed = (feeds or {}).get(spec.camera_id) or CameraFeed(spec)
        pipeline = factory(spec)
        result = pipeline.process_stream(feed.stream)
        predictions = predictions_from_result(
            result, pipeline.source_indices, spec.num_frames
        )
        scored[spec.camera_id] = CameraAccuracy(
            camera_id=spec.camera_id,
            scenario=spec.scenario,
            task=task,
            truth=feed.labels(task).labels,
            predictions=predictions,
            frames_generated=spec.num_frames,
            frames_scored=spec.num_frames,
        )
    return FleetAccuracy(task=task, cameras=dict(sorted(scored.items())))
