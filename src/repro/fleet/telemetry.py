"""Runtime observability for the fleet runtime.

A small, dependency-free metrics registry in the Prometheus style:
monotonically increasing :class:`Counter`\\ s, last-value :class:`Gauge`\\ s
(with min/max watermarks), and :class:`Histogram`\\ s that retain a bounded
window of recent observations for exact windowed quantiles plus exact
running aggregates (count, total, min, max) over everything ever observed.
Everything is deterministic — no wall-clock reads — so fleet runs with the
same seed produce identical telemetry snapshots.
"""

from __future__ import annotations

import math
import re
from collections import deque
from itertools import islice
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_HISTOGRAM_WINDOW",
    "TelemetryRegistry",
    "jain_fairness",
    "sanitize_metric_name",
]

# Retained-observation bound per histogram.  Control windows span one
# control interval (tens to hundreds of observations), so any bound far
# above that keeps `percentile_since` exact for the control contract while
# capping memory at O(window) per histogram instead of O(frames).
DEFAULT_HISTOGRAM_WINDOW = 65536

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Rewrite a dotted metric name into a valid Prometheus metric name.

    Prometheus names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; every other
    character (the registry's dots, camera-id dashes, ...) becomes ``_``,
    and a leading digit gets a ``_`` prefix.
    """
    sanitized = _INVALID_METRIC_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def jain_fairness(shares: Iterable[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` over ``shares``.

    1.0 means every share is equal; the lower bound ``1/n`` means one member
    got everything.  Empty or all-zero inputs count as perfectly fair
    (nothing was distributed unevenly).
    """
    values = [float(x) for x in shares]
    if not values:
        return 1.0
    square_sum = sum(x * x for x in values)
    if square_sum == 0.0:
        return 1.0
    return sum(values) ** 2 / (len(values) * square_sum)


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; ``amount`` must be non-negative."""
        if amount < 0:
            raise ValueError(f"Counter {self.name!r} cannot decrease (amount={amount})")
        self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self._value:g})"


class Gauge:
    """A value that goes up and down, with min/max watermarks."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._updates = 0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        value = float(value)
        self._value = value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        self._updates += 1

    def add(self, delta: float) -> None:
        """Adjust the gauge relative to its current value."""
        self.set(self._value + delta)

    @property
    def value(self) -> float:
        """Most recently set value."""
        return self._value

    @property
    def min(self) -> float:
        """Smallest value ever set (0.0 if never set)."""
        return self._min if self._updates else 0.0

    @property
    def max(self) -> float:
        """Largest value ever set (0.0 if never set)."""
        return self._max if self._updates else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self._value:g}, max={self.max:g})"


class Histogram:
    """Distribution of observed values, bounded memory, exact where it counts.

    Only the most recent ``window`` observations are retained; aggregate
    statistics (:attr:`count`, :attr:`total`, :attr:`mean`, :attr:`min`,
    :attr:`max`) run over *everything* ever observed and stay exact forever.
    :meth:`percentile_since` — the control-plane contract — indexes by
    absolute observation number and is exact whenever the requested window
    still sits inside the retained tail (control intervals observe far
    fewer values than the bound); older starts degrade gracefully to the
    retained tail rather than raising.
    """

    def __init__(self, name: str, window: int = DEFAULT_HISTOGRAM_WINDOW) -> None:
        if window < 1:
            raise ValueError("histogram window must be at least 1")
        self.name = name
        self.window = window
        self._values: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._values.append(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Number of observations ever made (not just retained)."""
        return self._count

    @property
    def discarded(self) -> int:
        """Observations aged out of the retained window."""
        return self._count - len(self._values)

    @property
    def total(self) -> float:
        """Exact sum of all observations ever made."""
        return self._total

    @property
    def mean(self) -> float:
        """Average over all observations ever made (0.0 when empty)."""
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observation ever made (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observation ever made (0.0 when empty)."""
        return self._max if self._count else 0.0

    @property
    def values(self) -> tuple[float, ...]:
        """Retained observations in arrival order (for windowed statistics)."""
        return tuple(self._values)

    def percentile(self, q: float) -> float:
        """``q``-th percentile (nearest-rank; ``q`` in [0, 100]).

        Exact until observations age out of the window; afterwards computed
        over the retained tail.
        """
        return self.percentile_since(q, 0)

    def percentile_since(self, q: float, start: int) -> float:
        """Percentile over observations from absolute index ``start`` onward.

        Control loops remember the observation count at their previous tick
        and pass it here to get the quantile of just the last interval's
        window (0.0 when the window is empty).  Exact when ``start`` is
        within the retained window — always true for control intervals
        shorter than the bound — else best-effort over the retained tail.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if start < 0:
            raise ValueError("start must be non-negative")
        relative = max(0, start - self.discarded)
        if relative >= len(self._values):
            return 0.0
        ordered = sorted(islice(self._values, relative, None))
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other``'s distribution into this one.

        Aggregates (count/total/min/max) merge exactly; the retained window
        is extended with ``other``'s retained tail, aging out the oldest
        values past the bound — identical to re-observing when both sides
        are under their bounds.
        """
        if not other._count:
            return
        self._values.extend(other._values)
        self._count += other._count
        self._total += other._total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:g})"


class TelemetryRegistry:
    """Get-or-create store of named counters, gauges, and histograms.

    Names are dotted paths (``frames.dropped.oldest``,
    ``queue.depth.cam007``); :meth:`snapshot` flattens everything into one
    dictionary for reports and tests.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        if name not in self._counters:
            self._check_unused(name, self._gauges, self._histograms)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        if name not in self._gauges:
            self._check_unused(name, self._counters, self._histograms)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        if name not in self._histograms:
            self._check_unused(name, self._counters, self._gauges)
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    @staticmethod
    def _check_unused(name: str, *families: dict) -> None:
        for family in families:
            if name in family:
                raise ValueError(f"Metric name {name!r} already used by another metric type")

    def merge(self, other: "TelemetryRegistry", prefix: str = "") -> "TelemetryRegistry":
        """Fold ``other``'s metrics into this registry under ``prefix``.

        Counters add, histograms concatenate their observations, and gauges
        carry over their last value and min/max watermarks.  The sharded
        runtime uses this to aggregate per-node registries into one cluster
        registry (``prefix="node0."`` etc.) without hand-rolled dict walking.
        Returns ``self`` so merges chain.
        """
        for name, counter in sorted(other._counters.items()):
            self.counter(prefix + name).inc(counter.value)
        for name, gauge in sorted(other._gauges.items()):
            merged = self.gauge(prefix + name)
            if gauge._updates:
                merged.set(gauge.min)
                merged.set(gauge.max)
                merged.set(gauge.value)
        for name, hist in sorted(other._histograms.items()):
            # Aggregate merge (exact counts/totals/watermarks, windows
            # concatenate) instead of re-observing every value: merging a
            # node registry costs O(metrics + retained), not O(frames).
            self.histogram(prefix + name).merge_from(hist)
        return self

    def counters(self, prefix: str = "") -> dict[str, float]:
        """Counter values whose names start with ``prefix``."""
        return {
            name: counter.value
            for name, counter in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, object]:
        """Flatten all metrics into one ``{name: value-or-summary}`` dict."""
        snap: dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            snap[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            snap[name] = {"value": gauge.value, "min": gauge.min, "max": gauge.max}
        for name, hist in sorted(self._histograms.items()):
            snap[name] = {
                "count": hist.count,
                "mean": hist.mean,
                "min": hist.min,
                "max": hist.max,
                "p50": hist.percentile(50),
                "p99": hist.percentile(99),
            }
        return snap

    def to_prometheus(self, labels: Mapping[str, str] | None = None) -> str:
        """The whole registry in Prometheus text-exposition format.

        Dotted names are sanitized (:func:`sanitize_metric_name`), every
        family gets ``# HELP`` / ``# TYPE`` lines, counters take the
        conventional ``_total`` suffix, and histograms are exposed
        summary-style: ``{quantile="0.5"}`` / ``{quantile="0.99"}`` series
        plus ``_sum`` and ``_count``.  Optional ``labels`` are attached to
        every sample line (the sharded runtime labels nodes this way).
        Output is deterministic: families sort by name.
        """

        def label_block(extra: Mapping[str, str] | None = None) -> str:
            pairs = dict(labels or {})
            if extra:
                pairs.update(extra)
            if not pairs:
                return ""
            body = ",".join(f'{key}="{value}"' for key, value in sorted(pairs.items()))
            return "{" + body + "}"

        def fmt(value: float) -> str:
            return f"{float(value):.10g}"

        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = sanitize_metric_name(name)
            lines.append(f"# HELP {metric}_total Telemetry counter {name!r}.")
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total{label_block()} {fmt(counter.value)}")
        for name, gauge in sorted(self._gauges.items()):
            metric = sanitize_metric_name(name)
            lines.append(f"# HELP {metric} Telemetry gauge {name!r}.")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{label_block()} {fmt(gauge.value)}")
        for name, hist in sorted(self._histograms.items()):
            metric = sanitize_metric_name(name)
            lines.append(f"# HELP {metric} Telemetry histogram {name!r}.")
            lines.append(f"# TYPE {metric} summary")
            lines.append(
                f"{metric}{label_block({'quantile': '0.5'})} {fmt(hist.percentile(50))}"
            )
            lines.append(
                f"{metric}{label_block({'quantile': '0.99'})} {fmt(hist.percentile(99))}"
            )
            lines.append(f"{metric}_sum{label_block()} {fmt(hist.total)}")
            lines.append(f"{metric}_count{label_block()} {fmt(hist.count)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def format_lines(self, prefixes: Iterable[str] = ("",)) -> list[str]:
        """Human-readable ``name = value`` lines (for examples/benchmarks)."""
        lines = []
        for name, value in self.snapshot().items():
            if not any(name.startswith(p) for p in prefixes):
                continue
            if isinstance(value, dict):
                body = ", ".join(f"{k}={v:g}" for k, v in value.items())
                lines.append(f"{name}: {body}")
            else:
                lines.append(f"{name} = {value:g}")
        return lines
