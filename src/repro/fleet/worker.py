"""Worker pool multiplexing many cameras through the shared pipeline.

The paper (Section 4.4) runs the base DNN and the microclassifiers in
*phases* — never pipelined — so the two inference stacks do not contend for
cores.  The fleet runtime keeps that discipline: each worker processes one
frame at a time, walking the :class:`~repro.edge.scheduler.PhasedSchedule`
(decode → base DNN → MC batches) to completion before taking the next
frame, and per-phase latencies feed the telemetry histograms.  Service
times come from the calibrated analytic throughput model, so the simulated
clock reflects paper-grade hardware rather than this repository's NumPy
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.edge.scheduler import PhasedSchedule, build_phased_schedule
from repro.fleet.telemetry import TelemetryRegistry
from repro.perf.throughput_model import ThroughputModel

__all__ = ["Worker", "WorkerPool", "default_schedule"]


def default_schedule(
    num_classifiers: int = 1, architecture: str = "localized"
) -> PhasedSchedule:
    """The paper-calibrated per-frame phase timeline for one FilterForward node."""
    breakdown = ThroughputModel().filterforward_breakdown(num_classifiers, architecture)
    return build_phased_schedule(breakdown)


@dataclass
class Worker:
    """One sequential execution slot of the edge node."""

    worker_id: int
    busy_until: float = 0.0
    frames_processed: int = 0
    busy_seconds: float = 0.0

    def is_idle(self, now: float) -> bool:
        """Whether the worker can start a frame at time ``now``."""
        return self.busy_until <= now


@dataclass
class WorkerPool:
    """A fixed pool of workers sharing one phased per-frame schedule.

    Parameters
    ----------
    num_workers:
        Parallel execution slots (e.g. cores dedicated to inference).
    schedule:
        The per-frame phase timeline each worker walks; defaults to the
        paper-calibrated single-MC FilterForward schedule.
    service_time_scale:
        Multiplier on the schedule's total (1.0 = paper-grade hardware;
        smaller values model faster nodes or downscaled frames).
    telemetry:
        Registry receiving per-phase latency histograms.
    """

    num_workers: int = 4
    schedule: PhasedSchedule = field(default_factory=default_schedule)
    service_time_scale: float = 1.0
    telemetry: TelemetryRegistry | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.service_time_scale <= 0:
            raise ValueError("service_time_scale must be positive")
        self.workers = [Worker(worker_id=i) for i in range(self.num_workers)]

    @property
    def service_seconds(self) -> float:
        """Simulated processing time of one frame on the default schedule."""
        return self.schedule.total_seconds * self.service_time_scale

    def service_seconds_for(self, schedule: PhasedSchedule | None = None) -> float:
        """Simulated processing time of one frame under ``schedule``.

        ``None`` means the pool's default schedule; the fleet runtime passes
        a per-resolution schedule here when resolution-scaled service times
        are enabled.
        """
        schedule = schedule if schedule is not None else self.schedule
        return schedule.total_seconds * self.service_time_scale

    def estimated_throughput(self, schedule: PhasedSchedule | None = None) -> float:
        """Sustainable frames/second of the pool under ``schedule``.

        The exact reciprocal view of :meth:`service_seconds_for`: both
        apply ``service_time_scale`` and honor a per-resolution schedule
        override.  This is the pool's one capacity-estimate surface —
        ``capacity_fps`` delegates here, and anything sizing load against
        the pool (benchmark regime tuning, provisioning checks) should use
        it rather than reading ``schedule.total_seconds`` directly, so
        estimates cannot drift from the service times the simulation
        actually charges when a per-resolution schedule is installed
        mid-run.
        """
        service = self.service_seconds_for(schedule)
        return self.num_workers / service if service > 0 else float("inf")

    @property
    def capacity_fps(self) -> float:
        """Aggregate sustainable frame rate on the pool's default schedule."""
        return self.estimated_throughput()

    def idle_worker(self, now: float) -> Worker | None:
        """An idle worker at time ``now`` (lowest ID first), or None."""
        for worker in self.workers:
            if worker.is_idle(now):
                return worker
        return None

    def next_free_time(self) -> float:
        """Earliest time any worker becomes available."""
        return min(worker.busy_until for worker in self.workers)

    def start_frame(
        self, worker: Worker, now: float, schedule: PhasedSchedule | None = None
    ) -> float:
        """Occupy ``worker`` with one frame starting at ``now``.

        ``schedule`` overrides the pool default for this frame (the fleet
        runtime passes the frame's camera-resolution schedule when
        resolution-scaled service times are on).  Returns the completion time
        and records per-phase latencies.
        """
        if not worker.is_idle(now):
            raise RuntimeError(f"Worker {worker.worker_id} is busy until {worker.busy_until}")
        schedule = schedule if schedule is not None else self.schedule
        service = schedule.total_seconds * self.service_time_scale
        worker.busy_until = now + service
        worker.frames_processed += 1
        worker.busy_seconds += service
        if self.telemetry is not None:
            for phase in schedule.phases:
                self.telemetry.histogram(f"worker.phase_seconds.{phase.name}").observe(
                    phase.duration * self.service_time_scale
                )
            self.telemetry.histogram("worker.service_seconds").observe(service)
        return worker.busy_until

    def phase_intervals(
        self, start_time: float, schedule: PhasedSchedule | None = None
    ) -> tuple[tuple[str, float, float], ...]:
        """Absolute ``(name, start, end)`` sub-intervals of one frame's service.

        The same phase walk :meth:`start_frame` charges, projected onto the
        simulated clock from ``start_time`` — the frame tracer turns these
        into per-stage service sub-spans.
        """
        schedule = schedule if schedule is not None else self.schedule
        scale = self.service_time_scale
        return tuple(
            (phase.name, start_time + phase.start * scale, start_time + phase.end * scale)
            for phase in schedule.phases
        )

    def utilization(self, duration: float) -> float:
        """Fraction of pool capacity used over ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return sum(w.busy_seconds for w in self.workers) / (self.num_workers * duration)

    @property
    def frames_processed(self) -> int:
        """Total frames processed across the pool."""
        return sum(w.frames_processed for w in self.workers)
