"""Camera descriptors and the synthetic fleet generator.

A :class:`CameraSpec` describes one attached camera — resolution, frame
rate, how long it records, and which *scenario* its content follows.
Scenarios are presets over :class:`~repro.video.synthetic.SceneConfig`
covering the regimes a real deployment mixes on one node: quiet residential
streets, busy intersections, retail entrances, highway overpasses, and
night-time feeds (darker, noisier, fewer events).  :func:`generate_fleet`
samples a diverse fleet deterministically from a seed, and
:class:`CameraFeed` turns a spec into a timestamped arrival sequence for the
fleet runtime's simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from repro.video.annotations import FrameLabels
from repro.video.frame import Frame
from repro.video.scenes import MovingObject
from repro.video.stream import InMemoryVideoStream
from repro.video.synthetic import SceneConfig, SurveillanceSceneGenerator

__all__ = ["SCENARIOS", "CameraSpec", "CameraFeed", "generate_fleet", "district_of"]

# Scenario presets: object spawn rates (events per frame) and rendering
# knobs, before the per-camera ``event_rate_scale`` is applied.
SCENARIOS: dict[str, dict[str, float | bool]] = {
    "quiet_residential": {
        "pedestrian_rate": 0.010,
        "red_pedestrian_rate": 0.004,
        "car_rate": 0.015,
        "cyclist_rate": 0.004,
        "noise_std": 0.010,
    },
    "urban_day": {
        "pedestrian_rate": 0.040,
        "red_pedestrian_rate": 0.015,
        "car_rate": 0.050,
        "cyclist_rate": 0.010,
        "noise_std": 0.012,
    },
    "busy_intersection": {
        "pedestrian_rate": 0.090,
        "red_pedestrian_rate": 0.030,
        "car_rate": 0.120,
        "cyclist_rate": 0.025,
        "noise_std": 0.015,
    },
    "retail_entrance": {
        "pedestrian_rate": 0.120,
        "red_pedestrian_rate": 0.050,
        "car_rate": 0.008,
        "cyclist_rate": 0.004,
        "noise_std": 0.010,
    },
    "highway_overpass": {
        "pedestrian_rate": 0.002,
        "red_pedestrian_rate": 0.001,
        "car_rate": 0.200,
        "cyclist_rate": 0.002,
        "noise_std": 0.012,
    },
    "night_watch": {
        "pedestrian_rate": 0.008,
        "red_pedestrian_rate": 0.003,
        "car_rate": 0.020,
        "cyclist_rate": 0.002,
        "noise_std": 0.035,
        "night": True,
    },
}


@dataclass(frozen=True)
class CameraSpec:
    """Static description of one fleet camera."""

    camera_id: str
    width: int
    height: int
    frame_rate: float
    num_frames: int
    scenario: str = "urban_day"
    seed: int = 0
    event_rate_scale: float = 1.0
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"Unknown scenario {self.scenario!r}; expected one of {sorted(SCENARIOS)}"
            )
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if self.frame_rate <= 0:
            raise ValueError("frame_rate must be positive")
        if self.event_rate_scale < 0:
            raise ValueError("event_rate_scale must be non-negative")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")

    @property
    def resolution(self) -> tuple[int, int]:
        """``(width, height)`` in pixels."""
        return (self.width, self.height)

    @property
    def duration(self) -> float:
        """Recording duration in seconds."""
        return self.num_frames / self.frame_rate

    @property
    def is_night(self) -> bool:
        """Whether the scenario is a night-time feed."""
        return bool(SCENARIOS[self.scenario].get("night", False))

    def scene_config(self) -> SceneConfig:
        """The synthetic-scene configuration implementing this spec."""
        preset = SCENARIOS[self.scenario]
        scale = self.event_rate_scale
        return SceneConfig(
            width=self.width,
            height=self.height,
            frame_rate=self.frame_rate,
            num_frames=self.num_frames,
            seed=self.seed,
            pedestrian_rate=float(preset["pedestrian_rate"]) * scale,
            red_pedestrian_rate=float(preset["red_pedestrian_rate"]) * scale,
            car_rate=float(preset["car_rate"]) * scale,
            cyclist_rate=float(preset["cyclist_rate"]) * scale,
            noise_std=float(preset["noise_std"]),
            max_person_duration=max(2, int(2.0 * self.frame_rate)),
        )


class CameraFeed:
    """Turns a :class:`CameraSpec` into a timestamped frame-arrival sequence.

    The synthetic scene is rendered lazily on first use; frame *i* arrives at
    ``start_time + (i + 1) / frame_rate`` (a frame exists once its exposure
    interval ends).  The spawned objects are cached alongside the rendered
    stream so :meth:`labels` returns ground truth for exactly the frames the
    feed emits — the accuracy plane scores every admitted-or-dropped frame
    decision against these labels.
    """

    def __init__(self, spec: CameraSpec) -> None:
        self.spec = spec
        self._labels: dict[str, FrameLabels] = {}

    @cached_property
    def _generator(self) -> SurveillanceSceneGenerator:
        return SurveillanceSceneGenerator(self.spec.scene_config())

    @cached_property
    def objects(self) -> list[MovingObject]:
        """The scene's moving objects (spawned once, shared with labels)."""
        return self._generator.spawn_objects()

    @cached_property
    def stream(self) -> InMemoryVideoStream:
        """The rendered camera stream."""
        return self._generator.render_stream(self.objects)

    def labels(self, task: str) -> FrameLabels:
        """Per-frame ground truth for ``task`` over this feed's frames.

        Derived from the same spawned objects the rendered stream shows, so
        frame *i*'s label describes frame *i*'s content exactly; cached per
        task (labelling does not require rendering).
        """
        if task not in self._labels:
            self._labels[task] = self._generator.labels_for_task(self.objects, task)
        return self._labels[task]

    def arrivals(self) -> Iterator[tuple[float, Frame]]:
        """Yield ``(arrival_time, frame)`` in capture order."""
        spec = self.spec
        for i, frame in enumerate(self.stream):
            yield spec.start_time + (i + 1) / spec.frame_rate, frame

    def __len__(self) -> int:
        return self.spec.num_frames


def district_of(camera_id: str) -> str | None:
    """The district prefix of a generated camera id (None when undistricted).

    :func:`generate_fleet` with ``districts`` set names cameras
    ``d<district>-cam<index>``; this parses the prefix back out so placement
    and control code can group cameras by locality without carrying the
    fleet list around.
    """
    prefix, sep, _ = camera_id.partition("-")
    if sep and len(prefix) > 1 and prefix.startswith("d") and prefix[1:].isdigit():
        return prefix
    return None


def generate_fleet(
    num_cameras: int,
    seed: int = 0,
    duration_seconds: float = 4.0,
    resolutions: Sequence[tuple[int, int]] = ((64, 48), (80, 48), (96, 64)),
    frame_rates: Sequence[float] = (5.0, 8.0, 10.0, 15.0),
    scenarios: Sequence[str] | None = None,
    stagger_seconds: float = 0.25,
    districts: int | None = None,
) -> list[CameraSpec]:
    """Deterministically sample a diverse synthetic camera fleet.

    Cameras cycle through every scenario (so any fleet of at least
    ``len(SCENARIOS)`` cameras covers all content regimes) while resolution,
    frame rate, per-camera event density, and start offsets are drawn from
    the seeded generator.

    ``districts`` models a citywide deployment: cameras split into that many
    contiguous districts, camera ids gain a ``d<district>-`` prefix (parse it
    back with :func:`district_of`), and each district leans on a *primary*
    scenario — every other camera follows the district's regime, the rest
    cycle for diversity — so load is spatially correlated the way real
    deployments are.  The random draws per camera are identical with and
    without districting; only ids and scenario assignment change.
    """
    if num_cameras < 1:
        raise ValueError("num_cameras must be at least 1")
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    if districts is not None and not 1 <= districts <= num_cameras:
        raise ValueError("districts must be in [1, num_cameras]")
    names = list(scenarios) if scenarios is not None else sorted(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(f"Unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}")
    district_index: list[int] = []
    if districts is not None:
        base, extra = divmod(num_cameras, districts)
        for d in range(districts):
            district_index.extend([d] * (base + (1 if d < extra else 0)))
    id_width = max(3, len(str(num_cameras - 1)))
    rng = np.random.default_rng(seed)
    fleet: list[CameraSpec] = []
    local_index: dict[int, int] = {}
    for i in range(num_cameras):
        width, height = resolutions[int(rng.integers(len(resolutions)))]
        frame_rate = float(frame_rates[int(rng.integers(len(frame_rates)))])
        num_frames = max(1, int(round(duration_seconds * frame_rate)))
        if districts is not None:
            d = district_index[i]
            j = local_index.get(d, 0)
            local_index[d] = j + 1
            camera_id = f"d{d:02d}-cam{i:0{id_width}d}"
            # District primary scenario on even local slots, cycle otherwise.
            scenario = names[d % len(names)] if j % 2 == 0 else names[(d + j) % len(names)]
        else:
            camera_id = f"cam{i:0{id_width}d}"
            scenario = names[i % len(names)]
        fleet.append(
            CameraSpec(
                camera_id=camera_id,
                width=int(width),
                height=int(height),
                frame_rate=frame_rate,
                num_frames=num_frames,
                scenario=scenario,
                seed=int(rng.integers(2**31)),
                event_rate_scale=float(rng.uniform(0.5, 1.5)),
                start_time=float(rng.uniform(0.0, stagger_seconds)),
            )
        )
    return fleet
