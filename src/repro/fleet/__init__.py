"""Streaming multi-camera fleet runtime and multi-node sharding.

The paper's premise is many cameras per constrained edge node; this package
turns the single-stream reproduction into that system.  A synthetic camera
fleet (:mod:`repro.fleet.camera`) feeds bounded per-camera queues with
explicit overload policies (:mod:`repro.fleet.queues`); a worker pool
multiplexes the queues through per-camera incremental pipelines on the
paper's phased schedule (:mod:`repro.fleet.worker`); counters, gauges, and
histograms record every step (:mod:`repro.fleet.telemetry`); and
:class:`~repro.fleet.runtime.FleetRuntime` orchestrates it all on a
deterministic simulated clock, producing a
:class:`~repro.fleet.runtime.FleetReport`.

Above the single node, :mod:`repro.fleet.placement` decides which cameras
each node of a *cluster* hosts (round-robin, load-aware bin-packing,
resolution-aware co-location) and
:class:`~repro.fleet.sharding.ShardedFleetRuntime` runs the whole cluster
behind one shared datacenter uplink, aggregating per-node telemetry into a
:class:`~repro.fleet.sharding.ShardedFleetReport`.
"""

from repro.fleet.accuracy import (
    ACCURACY_TASKS,
    AccuracyConfig,
    CameraAccuracy,
    FleetAccuracy,
    TrainedCameraModel,
    TrainedMicroClassifiers,
    camera_seed_ladder,
    evaluate_offline,
)
from repro.fleet.camera import (
    SCENARIOS,
    CameraFeed,
    CameraSpec,
    district_of,
    generate_fleet,
)
from repro.fleet.placement import (
    PLACEMENT_POLICIES,
    DistrictAwarePlacement,
    LoadAwarePlacement,
    PlacementPolicy,
    ResolutionAwarePlacement,
    RoundRobinPlacement,
    estimate_camera_cost,
    make_placement_policy,
)
from repro.fleet.queues import (
    AdmissionController,
    DropPolicy,
    FrameQueue,
    OfferOutcome,
    QueueStats,
)
from repro.fleet.runtime import (
    CameraHandoff,
    CameraLiveStats,
    CameraReport,
    FleetConfig,
    FleetReport,
    FleetRuntime,
    default_pipeline_factory,
    resolution_scaled_schedule,
)
from repro.fleet.sharding import (
    NodeReport,
    ShardedFleetReport,
    ShardedFleetRuntime,
    ShardingConfig,
)
from repro.fleet.telemetry import Counter, Gauge, Histogram, TelemetryRegistry
from repro.fleet.worker import Worker, WorkerPool, default_schedule

__all__ = [
    "ACCURACY_TASKS",
    "PLACEMENT_POLICIES",
    "SCENARIOS",
    "AccuracyConfig",
    "AdmissionController",
    "CameraAccuracy",
    "CameraFeed",
    "CameraHandoff",
    "CameraLiveStats",
    "CameraReport",
    "CameraSpec",
    "Counter",
    "DistrictAwarePlacement",
    "DropPolicy",
    "FleetAccuracy",
    "FleetConfig",
    "FleetReport",
    "FleetRuntime",
    "FrameQueue",
    "Gauge",
    "Histogram",
    "LoadAwarePlacement",
    "NodeReport",
    "OfferOutcome",
    "PlacementPolicy",
    "QueueStats",
    "ResolutionAwarePlacement",
    "RoundRobinPlacement",
    "ShardedFleetReport",
    "ShardedFleetRuntime",
    "ShardingConfig",
    "TelemetryRegistry",
    "TrainedCameraModel",
    "TrainedMicroClassifiers",
    "Worker",
    "WorkerPool",
    "camera_seed_ladder",
    "default_pipeline_factory",
    "default_schedule",
    "district_of",
    "estimate_camera_cost",
    "evaluate_offline",
    "generate_fleet",
    "make_placement_policy",
    "resolution_scaled_schedule",
]
