"""Streaming multi-camera fleet runtime.

The paper's premise is many cameras per constrained edge node; this package
turns the single-stream reproduction into that system.  A synthetic camera
fleet (:mod:`repro.fleet.camera`) feeds bounded per-camera queues with
explicit overload policies (:mod:`repro.fleet.queues`); a worker pool
multiplexes the queues through per-camera incremental pipelines on the
paper's phased schedule (:mod:`repro.fleet.worker`); counters, gauges, and
histograms record every step (:mod:`repro.fleet.telemetry`); and
:class:`~repro.fleet.runtime.FleetRuntime` orchestrates it all on a
deterministic simulated clock, producing a
:class:`~repro.fleet.runtime.FleetReport`.
"""

from repro.fleet.camera import SCENARIOS, CameraFeed, CameraSpec, generate_fleet
from repro.fleet.queues import (
    AdmissionController,
    DropPolicy,
    FrameQueue,
    OfferOutcome,
    QueueStats,
)
from repro.fleet.runtime import (
    CameraReport,
    FleetConfig,
    FleetReport,
    FleetRuntime,
    default_pipeline_factory,
)
from repro.fleet.telemetry import Counter, Gauge, Histogram, TelemetryRegistry
from repro.fleet.worker import Worker, WorkerPool, default_schedule

__all__ = [
    "SCENARIOS",
    "AdmissionController",
    "CameraFeed",
    "CameraReport",
    "CameraSpec",
    "Counter",
    "DropPolicy",
    "FleetConfig",
    "FleetReport",
    "FleetRuntime",
    "FrameQueue",
    "Gauge",
    "Histogram",
    "OfferOutcome",
    "QueueStats",
    "TelemetryRegistry",
    "Worker",
    "WorkerPool",
    "default_pipeline_factory",
    "default_schedule",
    "generate_fleet",
]
