"""Analytic multiply-add cost model at paper-scale resolutions.

Each function evaluates the paper's Section 4.5 formulas for one component
at arbitrary feature-map or frame sizes, so costs can be computed for the
full 1920x1080 / 2048x850 inputs without instantiating (or running) any
weights.  :class:`CostModel` bundles them for a given camera resolution.

Reference feature-map shapes for a 1920x1080 frame (Figure 2):

* ``conv5_6/sep`` (full-frame object detector input): ``33 x 60 x 1024``
* ``conv4_2/sep`` (localized / windowed input):       ``67 x 120 x 512``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.discrete_classifier import DiscreteClassifierConfig
from repro.features.base_dnn import mobilenet_layer_shapes, mobilenet_multiply_adds
from repro.nn.cost import conv_multiply_adds, dense_multiply_adds, separable_conv_multiply_adds

__all__ = [
    "full_frame_mc_cost",
    "localized_mc_cost",
    "windowed_mc_cost",
    "discrete_classifier_cost",
    "CostModel",
]


def full_frame_mc_cost(
    feature_shape: tuple[int, int, int],
    hidden_filters: int = 32,
    num_hidden_layers: int = 2,
) -> int:
    """Multiply-adds of the full-frame object detector MC (Figure 2a)."""
    h, w, c = feature_shape
    total = 0
    in_channels = c
    for _ in range(num_hidden_layers):
        total += conv_multiply_adds(h, w, in_channels, kernel=1, filters=hidden_filters)
        in_channels = hidden_filters
    total += conv_multiply_adds(h, w, in_channels, kernel=1, filters=1)
    return int(total)


def localized_mc_cost(
    feature_shape: tuple[int, int, int],
    first_depth: int = 16,
    second_depth: int = 32,
    fc_units: int = 200,
) -> int:
    """Multiply-adds of the localized binary classifier MC (Figure 2b)."""
    h, w, c = feature_shape
    total = separable_conv_multiply_adds(h, w, c, kernel=3, filters=first_depth, stride=1)
    total += separable_conv_multiply_adds(h, w, first_depth, kernel=3, filters=second_depth, stride=2)
    h2, w2 = -(-h // 2), -(-w // 2)
    total += dense_multiply_adds(h2, w2, second_depth, fc_units)
    total += fc_units  # final 1-unit head
    return int(total)


def windowed_mc_cost(
    feature_shape: tuple[int, int, int],
    window: int = 5,
    reduce_filters: int = 32,
    conv_filters: int = 32,
    fc_units: int = 200,
) -> int:
    """Marginal per-frame multiply-adds of the windowed, localized MC (Figure 2c).

    Because the shared 1x1 reductions are buffered and reused across
    overlapping windows, each new frame pays for exactly one reduction plus
    one pass of the window head.
    """
    h, w, c = feature_shape
    total = conv_multiply_adds(h, w, c, kernel=1, filters=reduce_filters)
    concat_depth = reduce_filters * window
    total += conv_multiply_adds(h, w, concat_depth, kernel=3, filters=conv_filters, stride=1)
    total += conv_multiply_adds(h, w, conv_filters, kernel=3, filters=conv_filters, stride=2)
    h2, w2 = -(-h // 2), -(-w // 2)
    total += dense_multiply_adds(h2, w2, conv_filters, fc_units)
    total += fc_units
    return int(total)


def discrete_classifier_cost(
    config: DiscreteClassifierConfig, resolution: tuple[int, int]
) -> int:
    """Multiply-adds of a discrete classifier on full-resolution pixels.

    ``resolution`` is ``(width, height)``.  This is the DC's *total* cost —
    nothing is amortized across applications.
    """
    width, height = resolution
    h, w, channels = height, width, 3
    total = 0
    for i, (filters, stride) in enumerate(zip(config.kernels, config.strides)):
        if config.separable:
            total += separable_conv_multiply_adds(
                h, w, channels, kernel=config.kernel_size, filters=filters, stride=stride
            )
        else:
            total += conv_multiply_adds(
                h, w, channels, kernel=config.kernel_size, filters=filters, stride=stride
            )
        h, w = -(-h // stride), -(-w // stride)
        channels = filters
        if i < config.pooling_layers:
            h, w = max(1, h // 2), max(1, w // 2)
    total += dense_multiply_adds(h, w, channels, config.fc_units)
    total += config.fc_units
    return int(total)


@dataclass(frozen=True)
class CostModel:
    """Per-component multiply-add costs for one camera resolution.

    Parameters
    ----------
    resolution:
        ``(width, height)`` of the camera stream in pixels.
    alpha:
        Base-DNN width multiplier (1.0 reproduces the paper's MobileNet).
    crop_fraction:
        Fraction of the feature-map *area* retained by the microclassifiers'
        optional spatial crop (1.0 = no crop).  Cropping reduces MC cost
        proportionally (Section 3.2).
    """

    resolution: tuple[int, int] = (1920, 1080)
    alpha: float = 1.0
    crop_fraction: float = 1.0

    def _scaled_shape(self, shape: tuple[int, int, int]) -> tuple[int, int, int]:
        if self.crop_fraction >= 1.0:
            return shape
        h, w, c = shape
        # The paper's crops are horizontal bands, so the crop reduces height.
        return (max(1, int(round(h * self.crop_fraction))), w, c)

    def layer_shapes(self) -> dict[str, tuple[int, int, int]]:
        """Base-DNN feature-map shapes at this resolution."""
        return mobilenet_layer_shapes(self.resolution, alpha=self.alpha)

    def base_dnn_cost(self) -> int:
        """Multiply-adds of one base-DNN (feature extractor) pass."""
        return mobilenet_multiply_adds(self.resolution, alpha=self.alpha)

    def full_dnn_cost(self) -> int:
        """Multiply-adds of one complete MobileNet pass (the per-app naive baseline)."""
        return self.base_dnn_cost()

    def mc_cost(self, architecture: str, **kwargs) -> int:
        """Marginal multiply-adds of one microclassifier of ``architecture``."""
        shapes = self.layer_shapes()
        key = architecture.lower()
        if key == "full_frame":
            return full_frame_mc_cost(self._scaled_shape(shapes["conv5_6/sep"]), **kwargs)
        if key == "localized":
            return localized_mc_cost(self._scaled_shape(shapes["conv4_2/sep"]), **kwargs)
        if key == "windowed":
            return windowed_mc_cost(self._scaled_shape(shapes["conv4_2/sep"]), **kwargs)
        raise ValueError(
            f"Unknown architecture {architecture!r}; expected full_frame, localized, or windowed"
        )

    def dc_cost(self, config: DiscreteClassifierConfig) -> int:
        """Total multiply-adds of one discrete classifier at this resolution."""
        return discrete_classifier_cost(config, self.resolution)

    def marginal_cost_ratio(self, architecture: str, dc_config: DiscreteClassifierConfig) -> float:
        """How many times cheaper an MC is than a DC (the paper's 11x-23x claim)."""
        return self.dc_cost(dc_config) / self.mc_cost(architecture)
