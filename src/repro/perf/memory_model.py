"""Memory model for the edge node.

The paper's edge node has 32 GB of RAM; one full MobileNet instance consumes
"more than 1 GB of memory" (Section 2.2.3), which is why the
multiple-MobileNets baseline runs out of memory beyond ~30 concurrent
classifiers (Section 4.4).  Microclassifiers, by contrast, add only their
(small) weights and activation buffers on top of the single shared base DNN.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryEstimate", "MemoryModel"]

_GIB = 1024**3


@dataclass(frozen=True)
class MemoryEstimate:
    """Estimated memory footprint of one deployment option."""

    strategy: str
    num_classifiers: int
    bytes_used: float
    bytes_available: float

    @property
    def gigabytes_used(self) -> float:
        """Footprint in GiB."""
        return self.bytes_used / _GIB

    @property
    def fits(self) -> bool:
        """Whether the deployment fits in the node's memory."""
        return self.bytes_used <= self.bytes_available


@dataclass(frozen=True)
class MemoryModel:
    """Edge-node memory accounting.

    Parameters
    ----------
    node_memory_bytes:
        Total RAM of the edge node (32 GB in the paper's testbed).
    mobilenet_instance_bytes:
        Memory of one full MobileNet instance including framework overhead
        and activations at full resolution (paper: "more than 1 GB").
    base_dnn_bytes:
        Memory of FilterForward's single shared base DNN.
    mc_instance_bytes:
        Memory added by each microclassifier (weights + activation buffers).
    dc_instance_bytes:
        Memory of one discrete classifier (weights + full-resolution
        activations, which dominate).
    """

    node_memory_bytes: float = 32.0 * _GIB
    mobilenet_instance_bytes: float = 1.05 * _GIB
    base_dnn_bytes: float = 1.05 * _GIB
    mc_instance_bytes: float = 40.0 * 1024**2
    dc_instance_bytes: float = 350.0 * 1024**2

    def mobilenets_memory(self, num_classifiers: int) -> MemoryEstimate:
        """Footprint of running ``num_classifiers`` full MobileNets."""
        self._validate(num_classifiers)
        return MemoryEstimate(
            strategy="multiple_mobilenets",
            num_classifiers=num_classifiers,
            bytes_used=num_classifiers * self.mobilenet_instance_bytes,
            bytes_available=self.node_memory_bytes,
        )

    def filterforward_memory(self, num_classifiers: int) -> MemoryEstimate:
        """Footprint of FilterForward: one base DNN plus N microclassifiers."""
        self._validate(num_classifiers)
        return MemoryEstimate(
            strategy="filterforward",
            num_classifiers=num_classifiers,
            bytes_used=self.base_dnn_bytes + num_classifiers * self.mc_instance_bytes,
            bytes_available=self.node_memory_bytes,
        )

    def discrete_classifiers_memory(self, num_classifiers: int) -> MemoryEstimate:
        """Footprint of running ``num_classifiers`` discrete classifiers."""
        self._validate(num_classifiers)
        return MemoryEstimate(
            strategy="discrete_classifiers",
            num_classifiers=num_classifiers,
            bytes_used=num_classifiers * self.dc_instance_bytes,
            bytes_available=self.node_memory_bytes,
        )

    def mobilenets_fit(self, num_classifiers: int) -> bool:
        """Whether ``num_classifiers`` full MobileNets fit in memory."""
        return self.mobilenets_memory(num_classifiers).fits

    def max_mobilenets(self) -> int:
        """Largest number of full MobileNet instances that fit (paper: ~30)."""
        return int(self.node_memory_bytes // self.mobilenet_instance_bytes)

    @staticmethod
    def _validate(num_classifiers: int) -> None:
        if num_classifiers < 1:
            raise ValueError("num_classifiers must be positive")
