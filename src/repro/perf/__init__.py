"""Performance models: multiply-add costs, throughput, and memory.

The paper's scalability results (Figures 5 and 6) were measured on a
quad-core Intel CPU running Caffe (base DNN) and TensorFlow (MCs/DCs).
This repository reproduces those results with an analytic model driven by
per-component multiply-add counts and calibrated effective compute rates,
plus wall-clock micro-benchmarks of the NumPy kernels to confirm the same
ordering.  The cost model (Figure 7's x-axis) uses the exact formulas from
Section 4.5 at full paper-scale resolutions.
"""

from repro.perf.cost_model import (
    CostModel,
    discrete_classifier_cost,
    full_frame_mc_cost,
    localized_mc_cost,
    windowed_mc_cost,
)
from repro.perf.memory_model import MemoryModel, MemoryEstimate
from repro.perf.throughput_model import (
    ExecutionBreakdown,
    ThroughputModel,
    ThroughputModelConfig,
)

__all__ = [
    "CostModel",
    "ExecutionBreakdown",
    "MemoryEstimate",
    "MemoryModel",
    "ThroughputModel",
    "ThroughputModelConfig",
    "discrete_classifier_cost",
    "full_frame_mc_cost",
    "localized_mc_cost",
    "windowed_mc_cost",
]
